// Command mcb runs the Monte Carlo particle transport benchmark on the
// simulated message-passing substrate, optionally under the CDC record or
// replay tool stacks.
//
// Usage:
//
//	mcb -ranks 16 -particles 400                 # plain run
//	mcb -ranks 16 -mode record -dir /tmp/rec     # record receive order
//	mcb -ranks 16 -mode replay -dir /tmp/rec     # replay it exactly
//
// The global tally printed at the end is order-sensitive: plain runs vary
// from invocation to invocation, while a replay reproduces the recorded
// run's tally bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/record"
	"cdcreplay/internal/recorddir"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

func main() {
	ranks := flag.Int("ranks", 16, "number of simulated MPI ranks")
	particles := flag.Int("particles", 400, "particles per rank (weak scaling)")
	steps := flag.Int("steps", 2, "time steps")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	flush := flag.Duration("flush", 0, "periodic chunk flush interval for record mode (0 = event-count flushing only)")
	flushRows := flag.Int("flushrows", 0, "flush the record to storage every N rows (0 = only at close); bounds data lost to a crash")
	durable := flag.Bool("durable", false, "fsync the record at every flush point (crash-consistent, slower)")
	seed := flag.Int64("seed", 0, "network noise seed (0 = arbitrary)")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "mcb: -dir is required for record/replay")
		os.Exit(2)
	}
	params := mcb.Params{Particles: *particles, TimeSteps: *steps, Seed: 7}
	var salvaged bool
	switch *mode {
	case "record":
		err := recorddir.Create(*dir, recorddir.Manifest{
			Ranks: *ranks,
			App:   "mcb",
			Params: map[string]string{
				"particles": fmt.Sprint(*particles),
				"steps":     fmt.Sprint(*steps),
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
			os.Exit(1)
		}
	case "replay":
		m, err := recorddir.Open(*dir, "mcb", *ranks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
			os.Exit(1)
		}
		salvaged = m.Salvaged
	}
	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 8})

	var mu sync.Mutex
	var global mcb.Result
	var liveNotes []string
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		var stack simmpi.MPI
		var finish func() error
		switch *mode {
		case "plain":
			stack, finish = mpi, func() error { return nil }
		case "record":
			f, err := recorddir.CreateRankFile(*dir, rank)
			if err != nil {
				return err
			}
			enc, err := core.NewEncoder(f, core.EncoderOptions{Durable: *durable})
			if err != nil {
				return err
			}
			rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc),
				record.Options{FlushInterval: *flush, FlushEveryRows: *flushRows})
			stack = rec
			finish = func() error {
				if err := rec.Close(); err != nil {
					return err
				}
				return f.Close()
			}
		case "replay":
			recFile, err := recorddir.LoadRank(*dir, rank)
			if err != nil {
				return err
			}
			rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{LiveAfterExhausted: salvaged})
			stack = rp
			finish = func() error {
				if err := rp.Verify(); err != nil {
					return err
				}
				if live, why := rp.Live(); live {
					mu.Lock()
					liveNotes = append(liveNotes, fmt.Sprintf("rank %d: %s", rank, why))
					mu.Unlock()
				}
				return nil
			}
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		res, rerr := mcb.Run(stack, params)
		if ferr := finish(); rerr == nil {
			rerr = ferr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		if rank == 0 {
			global = res
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
		os.Exit(1)
	}
	if *mode == "record" {
		if err := recorddir.Finalize(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
			os.Exit(1)
		}
	}
	if len(liveNotes) > 0 {
		fmt.Println("replayed the salvaged record to its crash frontier; execution continued live:")
		for _, n := range liveNotes {
			fmt.Println("  " + n)
		}
	}
	fmt.Printf("mode=%s ranks=%d particles/rank=%d steps=%d\n", *mode, *ranks, *particles, *steps)
	fmt.Printf("global tracks: %.0f  (%.0f tracks/sec)\n", global.GlobalTracks, global.TracksPerSec())
	fmt.Printf("global tally:  %.17g\n", global.GlobalTally)
}
