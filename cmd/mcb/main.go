// Command mcb runs the Monte Carlo particle transport benchmark on the
// simulated message-passing substrate, optionally under the CDC record or
// replay tool stacks.
//
// Usage:
//
//	mcb -ranks 16 -particles 400                 # plain run
//	mcb -ranks 16 -mode record -dir /tmp/rec     # record receive order
//	mcb -ranks 16 -mode replay -dir /tmp/rec     # replay it exactly
//	mcb -mode record -dir /tmp/rec -http :6060   # + live pipeline metrics
//
// The global tally printed at the end is order-sensitive: plain runs vary
// from invocation to invocation, while a replay reproduces the recorded
// run's tally bit for bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/cdc"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
	"cdcreplay/internal/simmpi"
)

func main() {
	ranks := flag.Int("ranks", 16, "number of simulated MPI ranks")
	particles := flag.Int("particles", 400, "particles per rank (weak scaling)")
	steps := flag.Int("steps", 2, "time steps")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	layout := flag.String("layout", "dir", "storage layout for record mode: dir|sharded (replay reads it from the manifest)")
	flush := flag.Duration("flush", 0, "periodic chunk flush interval for record mode (0 = event-count flushing only)")
	flushRows := flag.Int("flushrows", 0, "flush the record to storage every N rows (0 = only at close); bounds data lost to a crash")
	durable := flag.Bool("durable", false, "fsync the record at every flush point (crash-consistent, slower; requires -flush or -flushrows)")
	seed := flag.Int64("seed", 0, "network noise seed (0 = arbitrary)")
	httpAddr := flag.String("http", "", "serve live pipeline metrics and pprof on this address (e.g. :6060)")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "mcb: -dir is required for record/replay")
		os.Exit(2)
	}
	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		addr, stop, err := obshttp.Serve(*httpAddr, reg.Snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	params := mcb.Params{Particles: *particles, TimeSteps: *steps, Seed: 7}
	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 8, Obs: reg})

	var mu sync.Mutex
	var global mcb.Result
	app := func(rank int, mpi simmpi.MPI) error {
		res, err := mcb.Run(mpi, params)
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			global = res
			mu.Unlock()
		}
		return nil
	}

	var err error
	switch *mode {
	case "plain":
		err = w.RunRanked(app)
	case "record":
		opts := []cdc.Option{
			cdc.WithDir(*dir),
			cdc.WithStoreLayout(*layout),
			cdc.WithApp("mcb"),
			cdc.WithParams(map[string]string{
				"particles": fmt.Sprint(*particles),
				"steps":     fmt.Sprint(*steps),
			}),
			cdc.WithObs(reg),
		}
		if *flush > 0 {
			opts = append(opts, cdc.WithFlushInterval(*flush))
		}
		if *flushRows > 0 {
			opts = append(opts, cdc.WithFlushEveryRows(*flushRows))
		}
		if *durable {
			opts = append(opts, cdc.WithDurable())
		}
		_, err = cdc.Record(w, app, opts...)
	case "replay":
		var rep *cdc.ReplayReport
		rep, err = cdc.Replay(w, app, cdc.WithDir(*dir), cdc.WithApp("mcb"), cdc.WithObs(reg))
		if err == nil {
			if live, notes := rep.Live(); live {
				fmt.Println("replayed the salvaged record to its crash frontier; execution continued live:")
				for _, n := range notes {
					fmt.Println("  " + n)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcb: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mode=%s ranks=%d particles/rank=%d steps=%d\n", *mode, *ranks, *particles, *steps)
	fmt.Printf("global tracks: %.0f  (%.0f tracks/sec)\n", global.GlobalTracks, global.TracksPerSec())
	fmt.Printf("global tally:  %.17g\n", global.GlobalTally)
}
