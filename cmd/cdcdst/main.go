// Command cdcdst explores schedules of the record/replay pipeline under a
// deterministic sequencer and checks the pipeline's replay theorems as
// executable properties on every schedule (see DESIGN.md §11):
//
//	P1  replay releases the recorded receive order exactly
//	P2  re-recording during replay is byte-identical (Theorem 1)
//	P3  decoding restores each schedule's own observed order
//	P4  crash-salvage-replay preserves the salvaged prefix
//
// The separate -feed mode runs P6 instead: a live-paced feed seeked to any
// epoch boundary must release exactly the frame stream a batch decode from
// that boundary yields, swept across storage backends and decode widths.
//
// Usage:
//
//	cdcdst -policy random -seeds 64                  # random walk, all props
//	cdcdst -policy reorder -depth 4 -workload mcb    # bounded delivery reorder
//	cdcdst -policy exhaustive -depth 3               # every prefix up to depth
//	cdcdst -feed -workload exchange                  # P6 feed-seek identity sweep
//	cdcdst -repro traces/fail-00.trace               # replay a failing schedule
//	cdcdst -workload pairs -corpus-out internal/cdcformat/testdata/fuzz/FuzzChunkDecode
//
// A red run writes every captured failure as a replayable trace (full and
// shrunk) under -trace-out and prints the repro command, then exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cdcreplay/internal/dst"
	"cdcreplay/internal/harness"
)

func main() {
	policy := flag.String("policy", "random", "exploration policy ("+strings.Join(dst.PolicyNames(), "|")+")")
	workload := flag.String("workload", "pairs", "application under test ("+strings.Join(dst.WorkloadNames(), "|")+")")
	seeds := flag.Int("seeds", 64, "schedules to explore (seeded policies)")
	seed := flag.Int64("seed", 1, "base schedule seed")
	depth := flag.Int("depth", 0, "policy depth: reorder delay bound, pct change points, exhaustive decision depth (0 = default)")
	ranks := flag.Int("ranks", 0, "world size (0 = workload default)")
	props := flag.String("props", "", "comma-separated properties to check, e.g. p1,p3 (empty = all)")
	short := flag.Bool("short", false, "reduced workload sizes")
	maxSchedules := flag.Int("max-schedules", 0, "exhaustive sweep cap (0 = default)")
	shrinkBudget := flag.Int("shrink-budget", 0, "re-executions per failure during shrinking (0 = default)")
	traceOut := flag.String("trace-out", "dst-traces", "directory for failing-schedule trace files")
	corpusOut := flag.String("corpus-out", "", "write decoded chunk encodings as Go fuzz seed corpus files into this directory")
	repro := flag.String("repro", "", "replay a trace file instead of exploring")
	feedP6 := flag.Bool("feed", false, "run the P6 feed-seek identity sweep instead of schedule exploration")
	quiet := flag.Bool("q", false, "suppress progress lines (summary only)")
	flag.Parse()

	hcfg := harness.Config{Out: os.Stdout}

	if *feedP6 {
		rep, err := dst.CheckFeed(dst.FeedConfig{Workload: *workload, Seed: *seed, Short: *short})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcdst: feed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("P6 feed-seek: %d checks over %d epoch boundaries\n", rep.Checks, rep.Epochs)
		if len(rep.Failures) > 0 {
			for _, f := range rep.Failures {
				fmt.Fprintf(os.Stderr, "  FAIL %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Println("every seeked feed released its batch-replay frame stream exactly")
		return
	}

	if *repro != "" {
		if err := harness.DSTRepro(hcfg, *repro); err != nil {
			fmt.Fprintf(os.Stderr, "cdcdst: %v\n", err)
			os.Exit(1)
		}
		return
	}

	dcfg := dst.Config{
		Policy:        *policy,
		Workload:      *workload,
		Ranks:         *ranks,
		Seeds:         *seeds,
		Seed:          *seed,
		Depth:         *depth,
		Short:         *short,
		MaxSchedules:  *maxSchedules,
		ShrinkBudget:  *shrinkBudget,
		CollectCorpus: *corpusOut != "",
	}
	if *props != "" {
		dcfg.Props = strings.Split(*props, ",")
	}
	if *quiet {
		dcfg.Logf = func(string, ...any) {}
	}

	rep, err := harness.DST(hcfg, dcfg, *traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcdst: %v\n", err)
		os.Exit(1)
	}
	if *corpusOut != "" {
		n, err := dst.WriteFuzzCorpus(*corpusOut, rep.Corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcdst: corpus: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d corpus file(s) to %s\n", n, *corpusOut)
	}
	if rep.TotalFailures > 0 {
		os.Exit(1)
	}
}
