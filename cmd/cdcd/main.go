// Command cdcd is the record-ingest daemon: it accepts order-record
// streams from recording application instances over TCP (see
// internal/ingestwire for the protocol) and writes per-tenant record
// directories through the CDC encode pipeline.
//
// Usage:
//
//	cdcd -addr :7070 -root /var/lib/cdcd
//	cdcd -addr :7070 -root /var/lib/cdcd -http :6060   # + live metrics
//
// SIGTERM/SIGINT drains gracefully: new handshakes are rejected with
// RejectDraining, connected clients get a DRAIN frame, and every open rank
// file is sealed before exit. A SIGKILL is recovered on the next start via
// the storage backend's salvage sweep; clients resume from the durable
// frontier.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cdcreplay/internal/ingestd"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/shardstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "TCP listen address for ingest sessions")
	root := flag.String("root", "", "record root directory (required); runs land at <root>/<tenant>/<run>")
	httpAddr := flag.String("http", "", "serve live ingest metrics and pprof on this address (e.g. :6060)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take before forced close")
	durable := flag.Bool("durable", false, "fsync records at every flush cut")
	layout := flag.String("store", "dir", "storage layout for new runs: dir (one record file per rank) or sharded (fan-out shard directories with fragment compaction)")
	flag.Parse()

	if *root == "" {
		fmt.Fprintln(os.Stderr, "cdcd: -root is required")
		os.Exit(2)
	}
	var backend store.Root
	switch *layout {
	case store.LayoutDir:
		// nil lets ingestd default to the dir layout under -root.
	case store.LayoutSharded:
		backend = shardstore.OpenRoot(*root)
	default:
		fmt.Fprintf(os.Stderr, "cdcd: unknown -store layout %q (want %q or %q)\n", *layout, store.LayoutDir, store.LayoutSharded)
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	if *httpAddr != "" {
		maddr, stop, err := obshttp.Serve(*httpAddr, reg.Snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcd: %v\n", err)
			os.Exit(1)
		}
		defer stop() //cdc:allow(errsink) metrics listener teardown at exit
		fmt.Printf("metrics: http://%s/metrics\n", maddr)
	}

	srv, err := ingestd.New(ingestd.Config{
		Addr:    *addr,
		Root:    *root,
		Store:   backend,
		Durable: *durable,
		Obs:     reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcd: %v\n", err)
		os.Exit(1)
	}
	for _, rs := range srv.Salvaged() {
		switch {
		case rs.Skipped:
			fmt.Fprintf(os.Stderr, "cdcd: skipped %s: %s\n", rs.Dir, rs.Finding)
		case rs.Adopted:
			fmt.Printf("cdcd: adopted salvaged run %s\n", rs.Dir)
		default:
			fmt.Printf("cdcd: salvaged interrupted run %s\n", rs.Dir)
		}
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "cdcd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cdcd: ingesting on %s, records under %s\n", srv.Addr(), *root)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("cdcd: %v, draining (limit %v)\n", s, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "cdcd: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cdcd: drained cleanly")
}
