// Command cdcbench regenerates the paper's evaluation tables and figures
// (§6) on the simulated substrate.
//
// Usage:
//
//	cdcbench -exp all            # every experiment at quick scale
//	cdcbench -exp fig13 -full    # one experiment at paper-leaning scale
//	cdcbench -exp pipeline -metrics-out BENCH_pipeline.json
//	cdcbench -exp all -http :6060   # live metrics + pprof while running
//
// Experiments: fig1, fig13, fig14, fig15, fig16, fig17, queue, piggyback,
// replay, ablations, pipeline, encode, store, decode, feed, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"cdcreplay/internal/harness"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1|fig13|fig14|fig15|fig16|fig17|queue|piggyback|replay|ablations|pipeline|encode|store|decode|feed|all)")
	full := flag.Bool("full", false, "paper-leaning scales (slower)")
	seed := flag.Int64("seed", 1, "network noise seed")
	metricsOut := flag.String("metrics-out", "", "write the pipeline experiment's metrics to this JSON file")
	httpAddr := flag.String("http", "", "serve live metrics (/metrics, /debug/vars) and pprof on this address while experiments run")
	flag.Parse()

	cfg := harness.Config{Out: os.Stdout, Full: *full, Seed: *seed}

	if *httpAddr != "" {
		// Experiments create short-lived registries; the endpoint follows
		// whichever one is current.
		var current atomic.Pointer[obs.Registry]
		cfg.OnRegistry = func(reg *obs.Registry) { current.Store(reg) }
		addr, stop, err := obshttp.Serve(*httpAddr, func() obs.Snapshot {
			return current.Load().Snapshot()
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcbench: -http: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n\n", addr)
	}

	type runner struct {
		name string
		fn   func(harness.Config) error
	}
	wrap := func(f func(harness.Config) (any, error)) func(harness.Config) error {
		return func(c harness.Config) error { _, err := f(c); return err }
	}
	runners := []runner{
		{"fig1", wrap(func(c harness.Config) (any, error) { return harness.Fig1(c) })},
		{"fig13", wrap(func(c harness.Config) (any, error) { return harness.Fig13(c) })},
		{"fig14", wrap(func(c harness.Config) (any, error) { return harness.Fig14(c) })},
		{"fig15", wrap(func(c harness.Config) (any, error) { return harness.Fig15(c) })},
		{"fig16", wrap(func(c harness.Config) (any, error) { return harness.Fig16(c) })},
		{"fig17", wrap(func(c harness.Config) (any, error) { return harness.Fig17(c) })},
		{"queue", wrap(func(c harness.Config) (any, error) { return harness.QueueRates(c) })},
		{"piggyback", wrap(func(c harness.Config) (any, error) { return harness.PiggybackOverhead(c) })},
		{"replay", wrap(func(c harness.Config) (any, error) { return harness.ReplayValidation(c) })},
		{"ablations", wrap(func(c harness.Config) (any, error) { return harness.Ablations(c) })},
		{"pipeline", func(c harness.Config) error {
			res, err := harness.Pipeline(c)
			if err != nil {
				return err
			}
			if *metricsOut != "" {
				if err := res.WriteJSON(*metricsOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *metricsOut)
			}
			return nil
		}},
		{"encode", func(c harness.Config) error {
			res, err := harness.Encode(c)
			if err != nil {
				return err
			}
			if *metricsOut != "" {
				if err := res.WriteJSON(*metricsOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *metricsOut)
			}
			return nil
		}},
		{"store", func(c harness.Config) error {
			res, err := harness.StoreBench(c)
			if err != nil {
				return err
			}
			if *metricsOut != "" {
				if err := res.WriteJSON(*metricsOut); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *metricsOut)
			}
			return nil
		}},
		{"feed", func(c harness.Config) error {
			res, err := harness.Feed(c)
			if res != nil && *metricsOut != "" {
				// Write even a failed capture: CI's jq gate reads the JSON to
				// say which invariant (digest identity, pacing) broke.
				if werr := res.WriteJSON(*metricsOut); werr != nil && err == nil {
					err = werr
				} else if werr == nil {
					fmt.Printf("wrote %s\n", *metricsOut)
				}
			}
			return err
		}},
		{"decode", func(c harness.Config) error {
			res, err := harness.DecodeBench(c)
			if res != nil && *metricsOut != "" {
				// Write even a failed capture: CI's jq gate reads the JSON to
				// say which invariant (digest identity, throughput) broke.
				if werr := res.WriteJSON(*metricsOut); werr != nil && err == nil {
					err = werr
				} else if werr == nil {
					fmt.Printf("wrote %s\n", *metricsOut)
				}
			}
			return err
		}},
	}

	ran := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran = true
		if err := r.fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "cdcbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "cdcbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
