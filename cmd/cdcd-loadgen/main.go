// Command cdcd-loadgen stress-tests the cdcd ingest daemon: it runs an
// in-process daemon, streams synthetic order records from many concurrent
// client sessions, optionally hard-kills and restarts the daemon
// mid-ingest, and verifies that every session's final record holds exactly
// the events the client observed — the exactly-once ack contract under
// crash, reconnect, and backpressure.
//
// Usage:
//
//	cdcd-loadgen -sessions 12 -events 1500 -kill 1 -out BENCH_ingest.json
package main

import (
	"flag"
	"fmt"
	"os"

	"cdcreplay/internal/harness"
)

func main() {
	sessions := flag.Int("sessions", 12, "concurrent client sessions")
	events := flag.Int("events", 1500, "synthetic events per session")
	kills := flag.Int("kill", 0, "hard daemon kills (with restart) during ingest")
	tenants := flag.Int("tenants", 3, "tenants the sessions spread over")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", "", "write the JSON result here (default stdout only)")
	root := flag.String("root", "", "record root (default: a fresh temp dir, removed on success)")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cdcd-loadgen-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcd-loadgen: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir) //cdc:allow(errsink) best-effort temp cleanup
	}

	res, err := harness.Ingest(dir, harness.IngestParams{
		Sessions: *sessions,
		Events:   *events,
		Kills:    *kills,
		Tenants:  *tenants,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcd-loadgen: %v\n", err)
		os.Exit(1)
	}
	if err := res.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "cdcd-loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cdcd-loadgen: %d sessions x %d events, %d kills: %.0f events/s, p99 enqueue %dns, %d throttles, %d resumes, verified=%v\n",
		res.Sessions, res.Events, res.Kills, res.EventsPerSec, res.P99EnqueueNs, res.Throttles, res.Resumes, res.Verified)
	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			fmt.Fprintf(os.Stderr, "cdcd-loadgen: %v\n", err)
			os.Exit(1)
		}
	}
}
