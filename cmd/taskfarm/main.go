// Command taskfarm runs the master/worker task farm on the simulated
// substrate, optionally under the CDC record or replay tool stacks. The
// task→worker assignment races and so differs run to run; a replay
// reproduces the recorded assignment and the order-sensitive reduction
// exactly.
//
// Usage:
//
//	taskfarm -ranks 8 -tasks 64
//	taskfarm -ranks 8 -tasks 64 -mode record -dir /tmp/farm
//	taskfarm -ranks 8 -tasks 64 -mode replay -dir /tmp/farm
//	taskfarm -mode record -dir /tmp/farm -http :6060   # + live metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/cdc"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/taskfarm"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of simulated MPI ranks (1 master + workers)")
	tasks := flag.Int("tasks", 64, "number of work units")
	work := flag.Int("work", 200, "per-task compute scale")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	layout := flag.String("layout", "dir", "storage layout for record mode: dir|sharded (replay reads it from the manifest)")
	seed := flag.Int64("seed", 0, "network noise seed")
	httpAddr := flag.String("http", "", "serve live pipeline metrics and pprof on this address (e.g. :6060)")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "taskfarm: -dir is required for record/replay")
		os.Exit(2)
	}
	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		addr, stop, err := obshttp.Serve(*httpAddr, reg.Snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	params := taskfarm.Params{Tasks: *tasks, Work: *work}
	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 8, Obs: reg})

	var mu sync.Mutex
	var master taskfarm.Result
	app := func(rank int, mpi simmpi.MPI) error {
		res, err := taskfarm.Run(mpi, params)
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			master = res
			mu.Unlock()
		}
		return nil
	}

	var err error
	switch *mode {
	case "plain":
		err = w.RunRanked(app)
	case "record":
		_, err = cdc.Record(w, app,
			cdc.WithDir(*dir),
			cdc.WithStoreLayout(*layout),
			cdc.WithApp("taskfarm"),
			cdc.WithParams(map[string]string{
				"tasks": fmt.Sprint(*tasks),
				"work":  fmt.Sprint(*work),
			}),
			cdc.WithObs(reg))
	case "replay":
		var rep *cdc.ReplayReport
		rep, err = cdc.Replay(w, app, cdc.WithDir(*dir), cdc.WithApp("taskfarm"), cdc.WithObs(reg))
		if err == nil {
			if live, notes := rep.Live(); live {
				for _, n := range notes {
					fmt.Fprintf(os.Stderr, "taskfarm: %s\n", n)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mode=%s ranks=%d tasks=%d\n", *mode, *ranks, *tasks)
	fmt.Printf("reduction: %.17g\n", master.Reduction)
	limit := len(master.Assignment)
	if limit > 16 {
		limit = 16
	}
	fmt.Printf("assignment (first %d): %v\n", limit, master.Assignment[:limit])
}
