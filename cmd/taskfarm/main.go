// Command taskfarm runs the master/worker task farm on the simulated
// substrate, optionally under the CDC record or replay tool stacks. The
// task→worker assignment races and so differs run to run; a replay
// reproduces the recorded assignment and the order-sensitive reduction
// exactly.
//
// Usage:
//
//	taskfarm -ranks 8 -tasks 64
//	taskfarm -ranks 8 -tasks 64 -mode record -dir /tmp/farm
//	taskfarm -ranks 8 -tasks 64 -mode replay -dir /tmp/farm
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/recorddir"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/taskfarm"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of simulated MPI ranks (1 master + workers)")
	tasks := flag.Int("tasks", 64, "number of work units")
	work := flag.Int("work", 200, "per-task compute scale")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	seed := flag.Int64("seed", 0, "network noise seed")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "taskfarm: -dir is required for record/replay")
		os.Exit(2)
	}
	params := taskfarm.Params{Tasks: *tasks, Work: *work}
	var salvaged bool
	switch *mode {
	case "record":
		err := recorddir.Create(*dir, recorddir.Manifest{
			Ranks: *ranks,
			App:   "taskfarm",
			Params: map[string]string{
				"tasks": fmt.Sprint(*tasks),
				"work":  fmt.Sprint(*work),
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
			os.Exit(1)
		}
	case "replay":
		m, err := recorddir.Open(*dir, "taskfarm", *ranks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
			os.Exit(1)
		}
		salvaged = m.Salvaged
	}

	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 8})
	var mu sync.Mutex
	var master taskfarm.Result
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		var stack simmpi.MPI
		finish := func() error { return nil }
		switch *mode {
		case "plain":
			stack = mpi
		case "record":
			f, err := recorddir.CreateRankFile(*dir, rank)
			if err != nil {
				return err
			}
			enc, err := core.NewEncoder(f, core.EncoderOptions{})
			if err != nil {
				return err
			}
			rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
			stack = rec
			finish = func() error {
				if err := rec.Close(); err != nil {
					return err
				}
				return f.Close()
			}
		case "replay":
			recFile, err := recorddir.LoadRank(*dir, rank)
			if err != nil {
				return err
			}
			rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{LiveAfterExhausted: salvaged})
			stack = rp
			finish = func() error {
				if err := rp.Verify(); err != nil {
					return err
				}
				if live, why := rp.Live(); live {
					fmt.Fprintf(os.Stderr, "taskfarm: rank %d: %s\n", rank, why)
				}
				return nil
			}
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		res, rerr := taskfarm.Run(stack, params)
		if ferr := finish(); rerr == nil {
			rerr = ferr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		if rank == 0 {
			master = res
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
		os.Exit(1)
	}
	if *mode == "record" {
		if err := recorddir.Finalize(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "taskfarm: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("mode=%s ranks=%d tasks=%d\n", *mode, *ranks, *tasks)
	fmt.Printf("reduction: %.17g\n", master.Reduction)
	limit := len(master.Assignment)
	if limit > 16 {
		limit = 16
	}
	fmt.Printf("assignment (first %d): %v\n", limit, master.Assignment[:limit])
}
