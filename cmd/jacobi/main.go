// Command jacobi runs the hidden-determinism Poisson solver (paper §6.3)
// on the simulated substrate, optionally under the CDC record or replay
// tool stacks.
//
// Usage:
//
//	jacobi -ranks 8 -iters 500
//	jacobi -ranks 8 -iters 500 -mode record -dir /tmp/rec
//	jacobi -ranks 8 -iters 500 -mode replay -dir /tmp/rec
//	jacobi -mode record -dir /tmp/rec -http :6060   # + live pipeline metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/cdc"
	"cdcreplay/internal/jacobi"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
	"cdcreplay/internal/simmpi"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of simulated MPI ranks")
	rows := flag.Int("rows", 16, "grid rows per rank")
	cols := flag.Int("cols", 32, "grid columns")
	iters := flag.Int("iters", 500, "Jacobi iterations")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	layout := flag.String("layout", "dir", "storage layout for record mode: dir|sharded (replay reads it from the manifest)")
	flush := flag.Duration("flush", 0, "periodic chunk flush interval for record mode (0 = event-count flushing only)")
	seed := flag.Int64("seed", 0, "network noise seed")
	httpAddr := flag.String("http", "", "serve live pipeline metrics and pprof on this address (e.g. :6060)")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "jacobi: -dir is required for record/replay")
		os.Exit(2)
	}
	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.NewRegistry()
		addr, stop, err := obshttp.Serve(*httpAddr, reg.Snapshot)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
			os.Exit(1)
		}
		defer stop()
		fmt.Printf("metrics: http://%s/metrics\n", addr)
	}
	params := jacobi.Params{Rows: *rows, Cols: *cols, Iterations: *iters}
	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 6, Obs: reg})

	var mu sync.Mutex
	var residual float64
	app := func(rank int, mpi simmpi.MPI) error {
		res, err := jacobi.Run(mpi, params)
		if err != nil {
			return err
		}
		if rank == 0 {
			mu.Lock()
			residual = res.Residual
			mu.Unlock()
		}
		return nil
	}

	var err error
	var recorded int64
	switch *mode {
	case "plain":
		err = w.RunRanked(app)
	case "record":
		opts := []cdc.Option{
			cdc.WithDir(*dir),
			cdc.WithStoreLayout(*layout),
			cdc.WithApp("jacobi"),
			cdc.WithParams(map[string]string{
				"rows":  fmt.Sprint(*rows),
				"cols":  fmt.Sprint(*cols),
				"iters": fmt.Sprint(*iters),
			}),
			cdc.WithObs(reg),
		}
		if *flush > 0 {
			opts = append(opts, cdc.WithFlushInterval(*flush))
		}
		var rep *cdc.RecordReport
		rep, err = cdc.Record(w, app, opts...)
		if err == nil {
			recorded = rep.TotalBytes()
		}
	case "replay":
		var rep *cdc.ReplayReport
		rep, err = cdc.Replay(w, app, cdc.WithDir(*dir), cdc.WithApp("jacobi"), cdc.WithObs(reg))
		if err == nil {
			if live, notes := rep.Live(); live {
				for _, n := range notes {
					fmt.Fprintf(os.Stderr, "jacobi: %s\n", n)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("mode=%s ranks=%d grid=%dx%d iters=%d residual=%.6g\n",
		*mode, *ranks, *rows, *cols, *iters, residual)
	if *mode == "record" {
		fmt.Printf("record size: %d bytes total (%.1f bytes/rank)\n", recorded, float64(recorded)/float64(*ranks))
	}
}
