// Command jacobi runs the hidden-determinism Poisson solver (paper §6.3)
// on the simulated substrate, optionally under the CDC record or replay
// tool stacks.
//
// Usage:
//
//	jacobi -ranks 8 -iters 500
//	jacobi -ranks 8 -iters 500 -mode record -dir /tmp/rec
//	jacobi -ranks 8 -iters 500 -mode replay -dir /tmp/rec
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/jacobi"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/recorddir"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of simulated MPI ranks")
	rows := flag.Int("rows", 16, "grid rows per rank")
	cols := flag.Int("cols", 32, "grid columns")
	iters := flag.Int("iters", 500, "Jacobi iterations")
	mode := flag.String("mode", "plain", "plain|record|replay")
	dir := flag.String("dir", "", "record directory (required for record/replay)")
	flush := flag.Duration("flush", 0, "periodic chunk flush interval for record mode (0 = event-count flushing only)")
	seed := flag.Int64("seed", 0, "network noise seed")
	flag.Parse()

	if (*mode == "record" || *mode == "replay") && *dir == "" {
		fmt.Fprintln(os.Stderr, "jacobi: -dir is required for record/replay")
		os.Exit(2)
	}
	params := jacobi.Params{Rows: *rows, Cols: *cols, Iterations: *iters}
	var salvaged bool
	switch *mode {
	case "record":
		err := recorddir.Create(*dir, recorddir.Manifest{
			Ranks: *ranks,
			App:   "jacobi",
			Params: map[string]string{
				"rows":  fmt.Sprint(*rows),
				"cols":  fmt.Sprint(*cols),
				"iters": fmt.Sprint(*iters),
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
			os.Exit(1)
		}
	case "replay":
		m, err := recorddir.Open(*dir, "jacobi", *ranks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
			os.Exit(1)
		}
		salvaged = m.Salvaged
	}
	w := simmpi.NewWorld(*ranks, simmpi.Options{Seed: *seed, MaxJitter: 6})

	var mu sync.Mutex
	var residual float64
	var recorded int64
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		var stack simmpi.MPI
		finish := func() error { return nil }
		switch *mode {
		case "plain":
			stack = mpi
		case "record":
			f, err := recorddir.CreateRankFile(*dir, rank)
			if err != nil {
				return err
			}
			enc, err := core.NewEncoder(f, core.EncoderOptions{})
			if err != nil {
				return err
			}
			rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{FlushInterval: *flush})
			stack = rec
			finish = func() error {
				if err := rec.Close(); err != nil {
					return err
				}
				mu.Lock()
				recorded += enc.BytesWritten()
				mu.Unlock()
				return f.Close()
			}
		case "replay":
			recFile, err := recorddir.LoadRank(*dir, rank)
			if err != nil {
				return err
			}
			rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{LiveAfterExhausted: salvaged})
			stack = rp
			finish = func() error {
				if err := rp.Verify(); err != nil {
					return err
				}
				if live, why := rp.Live(); live {
					fmt.Fprintf(os.Stderr, "jacobi: rank %d: %s\n", rank, why)
				}
				return nil
			}
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
		res, rerr := jacobi.Run(stack, params)
		if ferr := finish(); rerr == nil {
			rerr = ferr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		if rank == 0 {
			residual = res.Residual
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
		os.Exit(1)
	}
	if *mode == "record" {
		if err := recorddir.Finalize(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "jacobi: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("mode=%s ranks=%d grid=%dx%d iters=%d residual=%.6g\n",
		*mode, *ranks, *rows, *cols, *iters, residual)
	if *mode == "record" {
		fmt.Printf("record size: %d bytes total (%.1f bytes/rank)\n", recorded, float64(recorded)/float64(*ranks))
	}
}
