// Command cdcinspect inspects CDC record files and record directories.
// All subcommands stream frames through core.OpenRecord, so arbitrarily
// large records inspect in constant memory.
//
// Usage:
//
//	cdcinspect verify  [-json] <record-file>...      # CRC scan; exit 1 if damaged
//	cdcinspect salvage [-json] <record-dir>          # recover a crashed run in place
//	cdcinspect salvage [-json] -o <out> <record-dir> # dir layout: recover into a copy
//	cdcinspect stats   [-json] [-decode-workers N] <record-file>...  # callsite/chunk summary
//	cdcinspect dump    [-json] [-decode-workers N] <record-file>     # per-chunk tables
//	cdcinspect feed    [-rank N] [-rate R | -max] [-http addr] <record-dir>  # live-paced replay
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"cdcreplay/cdc"
	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/recorddir"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage: cdcinspect <command> [flags] <args>

Commands:
  verify   CRC-scan record files; exit 1 if any is truncated or damaged
  salvage  recover a replayable prefix from a crashed record directory
  stats    per-callsite summary of record files
  dump     stats plus per-chunk tables for one record file
  feed     play a rank's record as a live-paced event feed

Run 'cdcinspect <command> -h' for command flags.
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "verify":
		os.Exit(cmdVerify(args))
	case "salvage":
		os.Exit(cmdSalvage(args))
	case "stats":
		os.Exit(cmdStats(args))
	case "dump":
		os.Exit(cmdDump(args))
	case "feed":
		os.Exit(cmdFeed(args))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "cdcinspect: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
}

// emitJSON writes v as indented JSON on stdout.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: %v\n", err)
		os.Exit(1)
	}
}

// verifyResult is one file's CRC-scan outcome.
type verifyResult struct {
	File        string `json:"file"`
	OK          bool   `json:"ok"`
	Truncated   bool   `json:"truncated,omitempty"`
	Frames      uint64 `json:"frames"`
	Events      uint64 `json:"events"`
	FlushPoints uint64 `json:"flush_points"`
	Error       string `json:"error,omitempty"`
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdcinspect verify [-json] <record-file>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	code := 0
	var results []verifyResult
	for _, path := range fs.Args() {
		r := verifyFile(path)
		if !r.OK {
			code = 1
		}
		if *jsonOut {
			results = append(results, r)
			continue
		}
		switch {
		case r.OK:
			fmt.Printf("%s: ok: %d frames, %d events, %d flush points\n",
				r.File, r.Frames, r.Events, r.FlushPoints)
		case r.Truncated:
			fmt.Printf("%s: TRUNCATED after %d intact frames (%d events, %d flush points): %s\n",
				r.File, r.Frames, r.Events, r.FlushPoints, r.Error)
		default:
			fmt.Printf("%s: DAMAGED: %s\n", r.File, r.Error)
		}
	}
	if *jsonOut {
		emitJSON(results)
	}
	return code
}

// verifyFile CRC-scans one record file and reports its intact prefix.
func verifyFile(path string) verifyResult {
	r := verifyResult{File: path}
	f, err := os.Open(path)
	if err != nil {
		r.Error = err.Error()
		return r
	}
	defer f.Close()
	it, err := core.OpenRecord(f)
	if err == nil {
		defer it.Close()
		for err == nil {
			_, err = it.Next()
		}
		r.Frames, r.Events, r.FlushPoints = it.Frames(), it.Events(), it.FlushPoints()
		if err == io.EOF {
			r.OK = true
			return r
		}
	}
	var trunc *core.TruncatedRecordError
	if errors.As(err, &trunc) {
		r.Truncated = true
		r.Frames, r.Events, r.FlushPoints = trunc.Frames, trunc.Events, trunc.FlushPoints
		r.Error = trunc.Cause.Error()
	} else {
		r.Error = err.Error()
	}
	return r
}

// salvageRank is one rank's salvage outcome in JSON form.
type salvageRank struct {
	Rank          int    `json:"rank"`
	Truncated     bool   `json:"truncated"`
	Damage        string `json:"damage,omitempty"`
	SegmentsKept  int    `json:"segments_kept"`
	SegmentsTotal int    `json:"segments_total"`
	EventsKept    uint64 `json:"events_kept"`
	EventsTotal   uint64 `json:"events_total"`
	// FrontierClock is the rank's salvage cut; null when the rank was
	// intact end to end.
	FrontierClock *uint64 `json:"frontier_clock,omitempty"`
}

func cmdSalvage(args []string) int {
	fs := flag.NewFlagSet("salvage", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	out := fs.String("o", "", "output directory for the salvaged record (default: salvage in place)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdcinspect salvage [-json] [-o <out-dir>] <record-dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	dir := fs.Arg(0)
	var report *store.SalvageReport
	var err error
	if *out != "" {
		// Copy-out salvage is a dir-layout operation: it re-emits one record
		// file per rank. Other layouts salvage in place through their store.
		report, err = recorddir.Salvage(dir, *out)
	} else {
		var st cdc.Store
		if st, err = cdc.OpenStore(dir); err == nil {
			report, err = st.Salvage()
		}
		*out = dir
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: salvage: %v\n", err)
		return 1
	}
	if report == nil {
		fmt.Printf("%s: already complete; nothing to salvage\n", dir)
		return 0
	}
	kept, total := report.Events()
	if *jsonOut {
		ranks := make([]salvageRank, 0, len(report.Ranks))
		for _, rs := range report.Ranks {
			sr := salvageRank{
				Rank:          rs.Rank,
				Truncated:     rs.Truncated,
				Damage:        rs.Damage,
				SegmentsKept:  rs.SegmentsKept,
				SegmentsTotal: rs.SegmentsTotal,
				EventsKept:    rs.EventsKept,
				EventsTotal:   rs.EventsTotal,
			}
			if rs.Frontier != math.MaxUint64 {
				fc := rs.Frontier
				sr.FrontierClock = &fc
			}
			ranks = append(ranks, sr)
		}
		emitJSON(struct {
			From        string        `json:"from"`
			To          string        `json:"to"`
			EventsKept  uint64        `json:"events_kept"`
			EventsTotal uint64        `json:"events_total"`
			Ranks       []salvageRank `json:"ranks"`
		}{dir, *out, kept, total, ranks})
		return 0
	}
	fmt.Printf("salvaged %s -> %s: %d of %d events kept\n", dir, *out, kept, total)
	for _, rs := range report.Ranks {
		state := "clean"
		if rs.Truncated {
			state = "truncated (" + rs.Damage + ")"
		}
		front := "intact"
		if rs.Frontier != math.MaxUint64 {
			front = fmt.Sprintf("clock %d", rs.Frontier)
		}
		fmt.Printf("  rank %d: %s; kept %d/%d segments, %d/%d events; frontier %s\n",
			rs.Rank, state, rs.SegmentsKept, rs.SegmentsTotal, rs.EventsKept, rs.EventsTotal, front)
	}
	return 0
}

// callsiteStats is one callsite's aggregate within a record file.
type callsiteStats struct {
	ID     uint64 `json:"id"`
	Name   string `json:"name,omitempty"`
	Chunks int    `json:"chunks"`
	Events uint64 `json:"events"`
}

// fileStats is one record file's aggregate summary.
type fileStats struct {
	File          string          `json:"file"`
	Bytes         int64           `json:"bytes"`
	Frames        uint64          `json:"frames"`
	Chunks        uint64          `json:"chunks"`
	Events        uint64          `json:"events"`
	Moves         uint64          `json:"moves"`
	Values        uint64          `json:"cdc_values"`
	FlushPoints   uint64          `json:"flush_points"`
	BytesPerEvent float64         `json:"bytes_per_event"`
	DecodeWorkers int             `json:"decode_workers"`
	DecodeMs      float64         `json:"decode_ms"`
	Callsites     []callsiteStats `json:"callsites"`
}

// chunkDump is one chunk's decoded tables, for the dump subcommand.
type chunkDump struct {
	Callsite   string       `json:"callsite"`
	Index      int          `json:"index"`
	Events     uint64       `json:"events"`
	Moves      []moveDump   `json:"moves,omitempty"`
	WithNext   int          `json:"with_next"`
	Unmatched  int          `json:"unmatched"`
	EpochLine  []epochEntry `json:"epoch_line,omitempty"`
	Ties       int          `json:"ties"`
	Senders    bool         `json:"senders"`
	Exceptions int          `json:"exceptions"`
}

type epochEntry struct {
	Rank  int32  `json:"rank"`
	Clock uint64 `json:"clock"`
}

// moveDump is one permutation-difference row (permdiff.Move with JSON tags).
type moveDump struct {
	ObservedIndex int64 `json:"observed_index"`
	Delay         int64 `json:"delay"`
}

// scanFile streams one record file, filling stats and (when dump is
// non-nil) per-chunk tables. workers > 0 decodes frames through the
// parallel pipeline; the reported decode time covers the whole scan either
// way, so the two modes compare directly.
func scanFile(path string, workers int, dump *[]chunkDump) (st fileStats, err error) {
	st = fileStats{File: path, DecodeWorkers: workers}
	f, err := os.Open(path)
	if err != nil {
		return st, err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		st.Bytes = fi.Size()
	}
	start := time.Now()
	defer func() { st.DecodeMs = float64(time.Since(start).Nanoseconds()) / 1e6 }()
	it, err := core.OpenRecordOptions(f, core.DecoderOptions{DecodeWorkers: workers})
	if err != nil {
		return st, err
	}
	defer it.Close()
	byCallsite := map[uint64]*callsiteStats{}
	var order []uint64
	lookup := func(cs uint64) *callsiteStats {
		if s, ok := byCallsite[cs]; ok {
			return s
		}
		s := &callsiteStats{ID: cs}
		byCallsite[cs] = s
		order = append(order, cs)
		return s
	}
	chunkIndex := map[uint64]int{}
	for {
		frame, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, err
		}
		if frame.Chunk == nil {
			if frame.CallsiteName != "" {
				lookup(frame.CallsiteID).Name = frame.CallsiteName
			}
			continue
		}
		c := frame.Chunk
		s := lookup(c.Callsite)
		s.Chunks++
		s.Events += c.NumMatched
		st.Chunks++
		st.Moves += uint64(len(c.Moves))
		st.Values += uint64(c.ValueCount())
		if dump != nil {
			name := s.Name
			if name == "" {
				name = fmt.Sprintf("%#x", c.Callsite)
			}
			d := chunkDump{
				Callsite:   name,
				Index:      chunkIndex[c.Callsite],
				Events:     c.NumMatched,
				WithNext:   len(c.WithNext),
				Unmatched:  len(c.Unmatched),
				Ties:       len(c.TiedClocks),
				Senders:    len(c.Senders) > 0,
				Exceptions: len(c.Exceptions),
			}
			for _, m := range c.Moves {
				d.Moves = append(d.Moves, moveDump{ObservedIndex: m.ObservedIndex, Delay: m.Delay})
			}
			for _, e := range c.EpochLine {
				d.EpochLine = append(d.EpochLine, epochEntry{Rank: e.Rank, Clock: e.Clock})
			}
			*dump = append(*dump, d)
			chunkIndex[c.Callsite]++
		}
	}
	st.Frames, st.Events, st.FlushPoints = it.Frames(), it.Events(), it.FlushPoints()
	if st.Events > 0 {
		st.BytesPerEvent = float64(st.Bytes) / float64(st.Events)
	}
	for _, cs := range order {
		st.Callsites = append(st.Callsites, *byCallsite[cs])
	}
	return st, nil
}

func printStats(st fileStats) {
	fmt.Printf("%s: %d bytes, %d callsites, %d chunks, %d receive events\n",
		st.File, st.Bytes, len(st.Callsites), st.Chunks, st.Events)
	fmt.Printf("  decoded in %.2f ms (%d decode workers)\n", st.DecodeMs, st.DecodeWorkers)
	if st.Events > 0 {
		fmt.Printf("  %.3f bytes/event, %.1f%% permuted, %d CDC values (vs %d uncompressed)\n",
			st.BytesPerEvent, 100*float64(st.Moves)/float64(st.Events),
			st.Values, 5*st.Events)
	}
	for _, s := range st.Callsites {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("%#x", s.ID)
		}
		fmt.Printf("  callsite %s: %d chunks, %d events\n", name, s.Chunks, s.Events)
	}
}

func cmdStats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	workers := fs.Int("decode-workers", 0, "decode frames on a worker pool (0 = serial)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdcinspect stats [-json] [-decode-workers N] <record-file>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	var all []fileStats
	for _, path := range fs.Args() {
		st, err := scanFile(path, *workers, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcinspect: %s: %v\n", path, err)
			return 1
		}
		if *jsonOut {
			all = append(all, st)
		} else {
			printStats(st)
		}
	}
	if *jsonOut {
		emitJSON(all)
	}
	return 0
}

func cmdDump(args []string) int {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	workers := fs.Int("decode-workers", 0, "decode frames on a worker pool (0 = serial)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdcinspect dump [-json] [-decode-workers N] <record-file>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	var chunks []chunkDump
	st, err := scanFile(fs.Arg(0), *workers, &chunks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: %s: %v\n", fs.Arg(0), err)
		return 1
	}
	if *jsonOut {
		emitJSON(struct {
			fileStats
			ChunkTables []chunkDump `json:"chunk_tables"`
		}{st, chunks})
		return 0
	}
	printStats(st)
	for _, d := range chunks {
		fmt.Printf("  %s chunk %d: n=%d moves=%d with_next=%d unmatched=%d epoch=%d ties=%d senders=%v exceptions=%d\n",
			d.Callsite, d.Index, d.Events, len(d.Moves), d.WithNext, d.Unmatched,
			len(d.EpochLine), d.Ties, d.Senders, d.Exceptions)
		for _, m := range d.Moves {
			fmt.Printf("    move: obs %d delay %+d\n", m.ObservedIndex, m.Delay)
		}
		for _, e := range d.EpochLine {
			fmt.Printf("    epoch: rank %d clock %d\n", e.Rank, e.Clock)
		}
	}
	return 0
}
