// Command cdcinspect decodes a CDC record file and prints its structure:
// callsites, chunks, permutation moves, epoch lines and value accounting.
// It decodes incrementally (core.FrameReader), so arbitrarily large records
// inspect in constant memory.
//
// Usage:
//
//	cdcinspect /tmp/rec/rank0000.cdc
//	cdcinspect -v /tmp/rec/rank0000.cdc          # per-chunk tables
//	cdcinspect -verify /tmp/rec/rank*.cdc        # CRC scan; exit 1 if truncated
//	cdcinspect -salvage -o /tmp/fixed /tmp/rec   # recover a crashed record dir
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/core"
	"cdcreplay/internal/recorddir"
)

type callsiteSummary struct {
	name   string
	chunks int
	events uint64
	order  int
}

func main() {
	verbose := flag.Bool("v", false, "dump per-chunk tables")
	verify := flag.Bool("verify", false, "scan record files for frame CRC/truncation damage; exit 1 if any is damaged")
	salvage := flag.Bool("salvage", false, "recover a replayable prefix from a crashed record directory")
	out := flag.String("o", "", "output directory for -salvage")
	flag.Parse()
	switch {
	case *salvage:
		if flag.NArg() != 1 || *out == "" {
			fmt.Fprintln(os.Stderr, "usage: cdcinspect -salvage -o <out-dir> <record-dir>")
			os.Exit(2)
		}
		os.Exit(runSalvage(flag.Arg(0), *out))
	case *verify:
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "usage: cdcinspect -verify <record-file>...")
			os.Exit(2)
		}
		code := 0
		for _, path := range flag.Args() {
			if runVerify(path) != 0 {
				code = 1
			}
		}
		os.Exit(code)
	case flag.NArg() != 1:
		fmt.Fprintln(os.Stderr, "usage: cdcinspect [-v] <record-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	st, _ := f.Stat()
	fr, err := core.NewFrameReader(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: %v\n", err)
		os.Exit(1)
	}
	defer fr.Close()

	summaries := map[uint64]*callsiteSummary{}
	var order []uint64
	var events, moves, chunks, values uint64
	chunkIndex := map[uint64]int{}
	var verboseLines []string
	for {
		frame, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcinspect: %v\n", err)
			os.Exit(1)
		}
		if frame.Chunk == nil {
			s := summary(summaries, &order, frame.CallsiteID)
			s.name = frame.CallsiteName
			continue
		}
		c := frame.Chunk
		s := summary(summaries, &order, c.Callsite)
		s.chunks++
		s.events += c.NumMatched
		chunks++
		events += c.NumMatched
		moves += uint64(len(c.Moves))
		values += uint64(c.ValueCount())
		if *verbose {
			verboseLines = append(verboseLines, describeChunk(c, chunkIndex[c.Callsite], s))
			chunkIndex[c.Callsite]++
		}
	}

	fmt.Printf("%s: %d bytes, %d callsites, %d chunks, %d receive events\n",
		path, st.Size(), len(summaries), chunks, events)
	if events > 0 {
		fmt.Printf("  %.3f bytes/event, %.1f%% permuted, %d CDC values (vs %d uncompressed)\n",
			float64(st.Size())/float64(events), 100*float64(moves)/float64(events),
			values, 5*events)
	}
	for _, cs := range order {
		s := summaries[cs]
		name := s.name
		if name == "" {
			name = fmt.Sprintf("%#x", cs)
		}
		fmt.Printf("  callsite %s: %d chunks, %d events\n", name, s.chunks, s.events)
	}
	for _, line := range verboseLines {
		fmt.Print(line)
	}
}

// runVerify CRC-scans one record file and reports its intact prefix.
func runVerify(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: %v\n", err)
		return 1
	}
	defer f.Close()
	scan := func() error {
		fr, err := core.NewFrameReader(f)
		if err != nil {
			return err
		}
		defer fr.Close()
		for {
			if _, err := fr.Next(); err == io.EOF {
				fmt.Printf("%s: ok: %d frames, %d events, %d flush points\n",
					path, fr.Frames(), fr.Events(), fr.FlushPoints())
				return nil
			} else if err != nil {
				return err
			}
		}
	}
	if err := scan(); err != nil {
		var trunc *core.TruncatedRecordError
		if errors.As(err, &trunc) {
			fmt.Printf("%s: TRUNCATED after %d intact frames (%d events, %d flush points): %v\n",
				path, trunc.Frames, trunc.Events, trunc.FlushPoints, trunc.Cause)
		} else {
			fmt.Printf("%s: DAMAGED: %v\n", path, err)
		}
		return 1
	}
	return 0
}

// runSalvage recovers a crashed record directory into out.
func runSalvage(dir, out string) int {
	report, err := recorddir.Salvage(dir, out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: salvage: %v\n", err)
		return 1
	}
	kept, total := report.Events()
	fmt.Printf("salvaged %s -> %s: %d of %d events kept\n", dir, out, kept, total)
	for _, rs := range report.Ranks {
		state := "clean"
		if rs.Truncated {
			state = "truncated (" + rs.Damage + ")"
		}
		front := "intact"
		if rs.Frontier != math.MaxUint64 {
			front = fmt.Sprintf("clock %d", rs.Frontier)
		}
		fmt.Printf("  rank %d: %s; kept %d/%d segments, %d/%d events; frontier %s\n",
			rs.Rank, state, rs.SegmentsKept, rs.SegmentsTotal, rs.EventsKept, rs.EventsTotal, front)
	}
	return 0
}

func summary(m map[uint64]*callsiteSummary, order *[]uint64, cs uint64) *callsiteSummary {
	if s, ok := m[cs]; ok {
		return s
	}
	s := &callsiteSummary{order: len(*order)}
	m[cs] = s
	*order = append(*order, cs)
	return s
}

func describeChunk(c *cdcformat.Chunk, idx int, s *callsiteSummary) string {
	name := s.name
	if name == "" {
		name = fmt.Sprintf("%#x", c.Callsite)
	}
	out := fmt.Sprintf("  %s chunk %d: n=%d moves=%d with_next=%d unmatched=%d epoch=%d ties=%d senders=%v exceptions=%d\n",
		name, idx, c.NumMatched, len(c.Moves), len(c.WithNext), len(c.Unmatched),
		len(c.EpochLine), len(c.TiedClocks), len(c.Senders) > 0, len(c.Exceptions))
	for _, m := range c.Moves {
		out += fmt.Sprintf("    move: obs %d delay %+d\n", m.ObservedIndex, m.Delay)
	}
	for _, e := range c.EpochLine {
		out += fmt.Sprintf("    epoch: rank %d clock %d\n", e.Rank, e.Clock)
	}
	return out
}
