package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdcreplay/cdc"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/obs/obshttp"
)

// cmdFeed plays one rank's record as a live-paced feed on stdout, one line
// per release. It is the terminal twin of the obshttp /feed route: the same
// events, human-formatted (or NDJSON with -json), plus an optional -http
// address that serves /feed and /metrics for the run's duration.
func cmdFeed(args []string) int {
	fs := flag.NewFlagSet("feed", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit one NDJSON object per release")
	rank := fs.Int("rank", 0, "rank whose record to stream")
	rate := fs.Float64("rate", 1, "sim rate: recorded seconds per feed second")
	maxRate := fs.Bool("max", false, "release without pacing waits (overrides -rate)")
	interval := fs.Duration("interval", time.Millisecond, "feed time per recorded clock tick at 1x")
	start := fs.Int("start", 0, "epoch boundary to start from (0 = record head)")
	httpAddr := fs.String("http", "", "also serve /feed and /metrics on this address")
	quiet := fs.Bool("quiet", false, "suppress per-event lines; print only the summary")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdcinspect feed [-json] [-rank N] [-rate R | -max] [-interval D] [-start E] [-http addr] [-quiet] <record-dir>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	reg := obs.NewRegistry()
	feedRate := *rate
	if *maxRate {
		feedRate = cdc.FeedRateMax
	}
	f, err := cdc.OpenFeed(
		cdc.WithDir(fs.Arg(0)),
		cdc.WithFeedRank(*rank),
		cdc.WithFeedRate(feedRate),
		cdc.WithFeedInterval(*interval),
		cdc.WithStartEpoch(*start),
		cdc.WithObs(reg),
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: feed: %v\n", err)
		return 1
	}
	defer f.Close()

	if *httpAddr != "" {
		addr, shutdown, err := obshttp.ServeFeed(*httpAddr, reg.Snapshot, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcinspect: feed: -http: %v\n", err)
			return 1
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "cdcinspect: serving /feed and /metrics on http://%s\n", addr)
	}

	sub, err := f.Subscribe()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcinspect: feed: %v\n", err)
		return 1
	}
	code := 0
	for {
		ev, ok := sub.Recv()
		if !ok {
			break
		}
		if ev.Kind == cdc.FeedEnd && ev.Err != "" {
			fmt.Fprintf(os.Stderr, "cdcinspect: feed ended with error: %s\n", ev.Err)
			code = 1
		}
		if *quiet {
			continue
		}
		if *jsonOut {
			emitFeedJSON(ev)
			continue
		}
		printFeedEvent(ev)
	}
	s := f.Stats()
	fmt.Fprintf(os.Stderr, "cdcinspect: feed done: %d releases over %d epochs (lead %d, drops %d)\n",
		s.Released, s.Epochs, s.Lead, s.Drops)
	return code
}

// feedEventJSON mirrors the obshttp /feed line shape so piped tooling can
// treat the two sources interchangeably.
type feedEventJSON struct {
	Seq        uint64 `json:"seq"`
	Kind       string `json:"kind"`
	Epoch      int    `json:"epoch"`
	Clock      uint64 `json:"clock,omitempty"`
	DueNs      int64  `json:"due_unix_ns,omitempty"`
	AtNs       int64  `json:"at_unix_ns"`
	FrameKind  uint8  `json:"frame_kind,omitempty"`
	FrameBytes int    `json:"frame_bytes,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Err        string `json:"err,omitempty"`
}

func emitFeedJSON(ev cdc.FeedEvent) {
	l := feedEventJSON{
		Seq:     ev.Seq,
		Kind:    ev.Kind.String(),
		Epoch:   ev.Epoch,
		Clock:   ev.Clock,
		AtNs:    ev.At.UnixNano(),
		Dropped: ev.Dropped,
		Err:     ev.Err,
	}
	if !ev.Due.IsZero() {
		l.DueNs = ev.Due.UnixNano()
	}
	if ev.Frame != nil {
		l.FrameKind = ev.Frame.Kind
		l.FrameBytes = len(ev.Frame.Payload)
	}
	emitJSON(l)
}

func printFeedEvent(ev cdc.FeedEvent) {
	at := ev.At.Format("15:04:05.000")
	switch ev.Kind {
	case cdc.FeedFlush:
		fmt.Printf("%s  #%-6d epoch %d  flush clock=%d\n", at, ev.Seq, ev.Epoch, ev.Clock)
	case cdc.FeedFrame:
		fmt.Printf("%s  #%-6d epoch %d  frame kind=%d bytes=%d\n",
			at, ev.Seq, ev.Epoch, ev.Frame.Kind, len(ev.Frame.Payload))
	case cdc.FeedSeek:
		fmt.Printf("%s  #%-6d seek -> epoch %d\n", at, ev.Seq, ev.Epoch)
	case cdc.FeedGap:
		fmt.Printf("%s  #%-6d gap: %d releases dropped\n", at, ev.Seq, ev.Dropped)
	case cdc.FeedEnd:
		if ev.Err != "" {
			fmt.Printf("%s  #%-6d end (error: %s)\n", at, ev.Seq, ev.Err)
		} else {
			fmt.Printf("%s  #%-6d end\n", at, ev.Seq)
		}
	}
}
