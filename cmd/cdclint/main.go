// Command cdclint runs cdcreplay's repo-specific static analyzers over the
// module and exits non-zero on findings. It enforces the determinism and
// safety invariants DESIGN.md §10 documents: no wall-clock or randomness
// in the encode/decode packages, no map-iteration order leaking into
// serialized bytes, no swallowed storage errors, guarded obs instruments,
// no copied locks or unaligned atomics, and no panics in library code.
//
// Usage:
//
//	cdclint [-json] [-out file] [-list] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
// Exit status: 0 clean, 1 findings, 2 usage or load/typecheck failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"cdcreplay/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON ({count, findings})")
	outFile := flag.String("out", "", "write the report to this file instead of stdout")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cdclint [-json] [-out file] [-list] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(cwd, flag.Args(), lint.Analyzers(), lint.Config{})
	if err != nil {
		fatal(err)
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *jsonOut {
		err = lint.WriteJSON(out, findings)
	} else {
		err = lint.WriteText(out, findings)
	}
	if err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdclint:", err)
	os.Exit(2)
}
