// Command cdclint runs cdcreplay's repo-specific static analyzers over the
// module and exits non-zero on findings. It enforces the determinism and
// safety invariants DESIGN.md §10 and §15 document: no wall-clock or
// randomness in the encode/decode packages (nodeterm, and interprocedurally
// nodetermflow), no map-iteration order leaking into serialized bytes
// (maporder), no swallowed storage errors (errsink), guarded obs
// instruments (obsguard), no copied locks or unaligned atomics (locksafe),
// no library panics (panicfree), no lock-acquisition cycles across the call
// graph (lockorder), and no unstoppable goroutines or undrained channels
// (leakcheck).
//
// Usage:
//
//	cdclint [-json|-sarif] [-out file] [-list] [-check a,b] \
//	        [-baseline file] [-write-baseline] [-lenient] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
//
// The baseline ratchet: findings matching the committed baseline file
// (default lint.baseline.json at the module root) are grandfathered and do
// not fail the run; fresh findings do. Stale baseline entries produce a
// warning suggesting -write-baseline, which rewrites the baseline WITHOUT
// them — it never adds entries, so the ratchet only shrinks.
//
// Exit status: 0 clean (or all findings grandfathered), 1 fresh findings,
// 2 usage error or packages that failed to load/typecheck. Load failures
// are themselves findings (check "loaderror"); -lenient downgrades them to
// stderr warnings for CI bring-up on a partially broken tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON ({count, findings})")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	outFile := flag.String("out", "", "write the report to this file instead of stdout")
	list := flag.Bool("list", false, "list the analyzers and exit")
	checks := flag.String("check", "", "comma-separated subset of checks to run (default: all)")
	baselinePath := flag.String("baseline", "", "baseline file for the ratchet (default: <module root>/"+lint.BaselineName+"; 'none' disables)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline without its stale entries (shrink-only) and exit")
	lenient := flag.Bool("lenient", false, "downgrade package load/typecheck failures from exit 2 to stderr warnings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cdclint [-json|-sarif] [-out file] [-list] [-check a,b] [-baseline file] [-write-baseline] [-lenient] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "cdclint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	analyzers, err := lint.SelectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, a := range analyzers {
			kind := "package"
			if a.RunModule != nil {
				kind = "module"
			}
			fmt.Printf("%-12s [%s] %s\n", a.Name, kind, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, _, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	findings, err := lint.Run(cwd, flag.Args(), analyzers, lint.Config{})
	if err != nil {
		fatal(err)
	}

	// Split off load errors: they are a distinct failure class (exit 2)
	// because "the analyzer did not see this package" must never read as
	// "this package is clean".
	var loadErrs []lint.Finding
	kept := findings[:0]
	for _, f := range findings {
		if f.Check == lint.LoadErrorCheck {
			loadErrs = append(loadErrs, f)
			continue
		}
		kept = append(kept, f)
	}
	findings = kept
	if *lenient {
		for _, f := range loadErrs {
			fmt.Fprintf(os.Stderr, "cdclint: warning: %s\n", f)
		}
		loadErrs = nil
	}

	// Baseline ratchet.
	resolvedBaseline := *baselinePath
	switch resolvedBaseline {
	case "none":
		resolvedBaseline = ""
	case "":
		resolvedBaseline = filepath.Join(root, lint.BaselineName)
	}
	var stale []lint.BaselineEntry
	if resolvedBaseline != "" {
		baseline, err := lint.LoadBaseline(resolvedBaseline)
		if err != nil {
			fatal(err)
		}
		if *writeBaseline {
			shrunk := baseline.Shrink(findings)
			f, err := os.Create(resolvedBaseline)
			if err != nil {
				fatal(err)
			}
			if err := lint.WriteBaseline(f, shrunk); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cdclint: baseline %s: %d entries kept, %d stale dropped\n",
				resolvedBaseline, len(shrunk.Entries), len(baseline.Entries)-len(shrunk.Entries))
			return
		}
		findings, stale = baseline.Apply(findings)
	}

	// Load errors join the report (they are findings) but drive exit 2.
	findings = append(findings, loadErrs...)
	lint.SortFindings(findings)

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	switch {
	case *sarifOut:
		err = lint.WriteSARIF(out, findings)
	case *jsonOut:
		err = lint.WriteJSON(out, findings)
	default:
		err = lint.WriteText(out, findings)
	}
	if err != nil {
		fatal(err)
	}

	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "cdclint: warning: stale baseline entry (no longer produced): %s:%d [%s] %s\n",
			e.File, e.Line, e.Check, e.Message)
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "cdclint: baseline has %d stale entr%s; run cdclint -write-baseline to shrink it\n",
			len(stale), plural(len(stale)))
	}

	switch {
	case len(loadErrs) > 0:
		os.Exit(2)
	case len(findings) > 0:
		os.Exit(1)
	}
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cdclint:", err)
	os.Exit(2)
}
