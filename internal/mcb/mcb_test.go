package mcb

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

func TestParticleCodecRoundTrip(t *testing.T) {
	p := particle{Energy: 0.123456789, Segments: 42}
	got, err := decodeParticle(encodeParticle(p))
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("got %+v want %+v", got, p)
	}
	if _, err := decodeParticle([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short payload")
	}
}

// runPlain runs MCB without any tool stack and returns per-rank results.
func runPlain(t *testing.T, n int, seed int64, params Params) []Result {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{Seed: seed, MaxJitter: 6})
	results := make([]Result, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		r, err := Run(mpi, params)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
		mu.Lock()
		results[rank] = r
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestConservation(t *testing.T) {
	const n = 4
	params := Params{Particles: 60, TimeSteps: 2, Seed: 5}
	results := runPlain(t, n, 3, params)
	var retired, sent, received, tracks uint64
	for _, r := range results {
		retired += r.Retired
		sent += r.Sent
		received += r.Received
		tracks += r.Tracks
	}
	wantRetired := uint64(n * 60 * 2)
	if retired != wantRetired {
		t.Errorf("retired %d particles, want %d", retired, wantRetired)
	}
	if sent != received {
		t.Errorf("sent %d != received %d", sent, received)
	}
	if sent == 0 {
		t.Error("no particles crossed domain boundaries; communication pattern not exercised")
	}
	if tracks < wantRetired {
		t.Errorf("tracks %d < retired %d", tracks, retired)
	}
}

func TestGlobalAggregatesAgreeAcrossRanks(t *testing.T) {
	results := runPlain(t, 3, 11, Params{Particles: 40, TimeSteps: 1, Seed: 2})
	for i := 1; i < len(results); i++ {
		if results[i].GlobalTally != results[0].GlobalTally {
			t.Fatalf("rank %d global tally %v != rank 0's %v", i, results[i].GlobalTally, results[0].GlobalTally)
		}
		if results[i].GlobalTracks != results[0].GlobalTracks {
			t.Fatalf("rank %d global tracks %v != rank 0's %v", i, results[i].GlobalTracks, results[0].GlobalTracks)
		}
	}
	if results[0].TracksPerSec() <= 0 {
		t.Error("tracks/sec metric not positive")
	}
}

// TestRunToRunNondeterminism demonstrates the paper's §2.1 symptom: the
// same configuration produces different tallies across runs because
// receive order differs.
func TestRunToRunNondeterminism(t *testing.T) {
	params := Params{Particles: 80, TimeSteps: 2, Seed: 9, CrossProb: 0.5}
	tallies := map[string]bool{}
	for trial := 0; trial < 6; trial++ {
		results := runPlain(t, 4, int64(100+trial), params)
		tallies[fmt.Sprintf("%.17g", results[0].GlobalTally)] = true
	}
	if len(tallies) < 2 {
		t.Fatalf("global tally identical across 6 runs; MCB is not exhibiting non-determinism")
	}
}

// TestRecordReplayReproducesTally is the end-to-end headline: record an MCB
// run, replay it on a differently-seeded network, and require bit-identical
// tallies (per rank and global).
func TestRecordReplayReproducesTally(t *testing.T) {
	const n = 4
	params := Params{Particles: 50, TimeSteps: 2, Seed: 21, CrossProb: 0.4}

	w := simmpi.NewWorld(n, simmpi.Options{Seed: 777, MaxJitter: 8})
	recTallies := make([]float64, n)
	files := make([][]byte, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 32})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		r, rerr := Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		recTallies[rank] = r.Tally
		files[rank] = buf.Bytes()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}

	w2 := simmpi.NewWorld(n, simmpi.Options{Seed: 888, MaxJitter: 8})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{})
		r, rerr := Run(rp, params)
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		if r.Tally != recTallies[rank] {
			return fmt.Errorf("rank %d: replay tally %.17g != recorded %.17g (diff %g)",
				rank, r.Tally, recTallies[rank], math.Abs(r.Tally-recTallies[rank]))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
}

func TestSingleRankDegenerateCase(t *testing.T) {
	// One rank: every "crossing" sends to itself.
	results := runPlain(t, 1, 1, Params{Particles: 30, TimeSteps: 1, Seed: 7})
	if results[0].Retired != 30 {
		t.Fatalf("retired %d, want 30", results[0].Retired)
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}
	p.fill()
	if p.Particles == 0 || p.BatchSize == 0 || p.PoolSize == 0 || p.TimeSteps == 0 ||
		p.MeanSegments == 0 || p.CrossProb == 0 || p.TrackWork == 0 {
		t.Fatalf("defaults not filled: %+v", p)
	}
}

func TestNeighborsRing(t *testing.T) {
	p := Params{}
	if got := p.neighbors(0, 4); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("ring neighbors = %v", got)
	}
	if got := p.neighbors(0, 2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("2-rank ring neighbors = %v", got)
	}
	if got := p.neighbors(0, 1); len(got) != 0 {
		t.Fatalf("single-rank neighbors = %v", got)
	}
}

func TestNeighborsTorus(t *testing.T) {
	p := Params{Topology: Torus2D}
	// 16 ranks → 4x4 torus: rank 5 has neighbors 1, 9, 4, 6.
	got := p.neighbors(5, 16)
	want := map[int]bool{1: true, 9: true, 4: true, 6: true}
	if len(got) != 4 {
		t.Fatalf("torus neighbors = %v", got)
	}
	for _, nb := range got {
		if !want[nb] {
			t.Fatalf("unexpected neighbor %d in %v", nb, got)
		}
	}
	// Symmetry: u is a neighbor of v iff v is a neighbor of u, for every
	// world size (quiescence depends on it).
	for _, n := range []int{2, 3, 4, 6, 9, 12, 16, 24} {
		adj := make(map[int]map[int]bool, n)
		for r := 0; r < n; r++ {
			adj[r] = map[int]bool{}
			for _, nb := range p.neighbors(r, n) {
				if nb == r {
					t.Fatalf("n=%d rank %d is its own neighbor", n, r)
				}
				adj[r][nb] = true
			}
		}
		for r := 0; r < n; r++ {
			for nb := range adj[r] {
				if !adj[nb][r] {
					t.Fatalf("n=%d: %d→%d not symmetric", n, r, nb)
				}
			}
		}
	}
}

func TestTorusConservationAndReplay(t *testing.T) {
	const n = 9 // 3x3 torus
	params := Params{Particles: 40, TimeSteps: 2, Seed: 8, Topology: Torus2D}
	results := runPlain(t, n, 5, params)
	var retired, sent, received uint64
	for _, r := range results {
		retired += r.Retired
		sent += r.Sent
		received += r.Received
	}
	if retired != uint64(n*40*2) {
		t.Fatalf("retired %d, want %d", retired, n*40*2)
	}
	if sent != received || sent == 0 {
		t.Fatalf("sent %d received %d", sent, received)
	}
}
