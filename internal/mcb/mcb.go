// Package mcb implements a domain-decomposed Monte Carlo particle
// transport benchmark modelled on MCB from the CORAL suite — the paper's
// representative non-deterministic application (§2.1, [1], [3]).
//
// Ranks form a 1D ring of spatial domains, each owning a population of
// particles. The communication pattern reproduces what §2.1 describes:
//
//   - at the start of a time step each rank posts a pool of non-blocking
//     wildcard receives for incoming particles;
//   - it processes local particles in batches, and after each batch polls
//     the receive pool with Testsome (first-come, first-served);
//   - a particle whose random walk crosses a domain boundary is sent to
//     the neighbour immediately, and each received particle is appended to
//     the local work list, with the receive re-posted at once;
//   - the end of the time step is coordinated globally (quiescence by
//     counting sent and received particles).
//
// Because receive order differs run to run, the order in which particles
// are processed differs, and the double-precision tally accumulated in
// processing order differs between runs (a + (b + c) ≠ (a + b) + c) —
// the motivating symptom of §2.1. Under order-replay the tally is
// reproduced bit for bit.
//
// The performance metric is tracks/sec: Monte Carlo segment computations
// per second, the paper's Fig. 16 y-axis.
package mcb

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"cdcreplay/internal/simmpi"
)

// ParticleTag is the message tag for particle exchanges.
const ParticleTag = 11

// ControlTag is the message tag for the time-step coordination messages —
// the second message type §2.1 describes ("a message to coordinate the
// exit of the particle-processing loop at the end of the time step").
// Control receives form a second MF callsite with a far more regular
// pattern than particle traffic, which is what the paper's MF
// identification (§4.4) exploits.
const ControlTag = 12

// Topology selects the domain decomposition.
type Topology int

const (
	// Ring1D connects each rank to two neighbours (the default).
	Ring1D Topology = iota
	// Torus2D arranges ranks on a near-square periodic grid with four
	// neighbours, the decomposition large particle-transport codes use.
	Torus2D
)

// Params configure one MCB run.
type Params struct {
	// Particles is the initial particle count per rank (weak scaling
	// keeps it constant; the paper uses 4000).
	Particles int
	// MeanSegments is the mean number of track segments a particle lives
	// (geometric-ish lifetime). Default 20.
	MeanSegments int
	// BatchSize is the number of local particles processed between
	// Testsome polls. Default 8.
	BatchSize int
	// CrossProb is the per-segment probability of crossing a domain
	// boundary. Default 0.3.
	CrossProb float64
	// TimeSteps is the number of simulated time steps. Default 3.
	TimeSteps int
	// PoolSize is the number of outstanding wildcard receives. Default 8.
	PoolSize int
	// Seed seeds the per-rank physics RNG. Two runs with the same seed
	// still diverge numerically because the RNG is consumed in particle
	// *processing* order, which depends on receive order.
	Seed int64
	// TrackWork adds synthetic per-segment computation (iterations of a
	// floating-point kernel) so recording overhead is measured against a
	// realistic compute/communication ratio. Default 40.
	TrackWork int
	// Topology selects the domain decomposition (default Ring1D).
	Topology Topology
}

// neighbors returns the distinct neighbour ranks of rank under the
// decomposition.
func (p *Params) neighbors(rank, n int) []int {
	var cand []int
	switch p.Topology {
	case Torus2D:
		// Near-square periodic grid: cols × rows ≥ n with the last row
		// possibly short is hard to keep periodic, so use the largest
		// divisor grid: rows = floor(sqrt(n)) reduced to a divisor.
		rows := 1
		for r := int(math.Sqrt(float64(n))); r >= 1; r-- {
			if n%r == 0 {
				rows = r
				break
			}
		}
		cols := n / rows
		rr, cc := rank/cols, rank%cols
		cand = []int{
			((rr+rows-1)%rows)*cols + cc, // up
			((rr+1)%rows)*cols + cc,      // down
			rr*cols + (cc+cols-1)%cols,   // left
			rr*cols + (cc+1)%cols,        // right
		}
	default:
		cand = []int{(rank + n - 1) % n, (rank + 1) % n}
	}
	var out []int
	seen := map[int]bool{rank: true} // no self-neighbours
	for _, c := range cand {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func (p *Params) fill() {
	if p.Particles == 0 {
		p.Particles = 100
	}
	if p.MeanSegments == 0 {
		p.MeanSegments = 20
	}
	if p.BatchSize == 0 {
		p.BatchSize = 8
	}
	if p.CrossProb == 0 {
		p.CrossProb = 0.3
	}
	if p.TimeSteps == 0 {
		p.TimeSteps = 3
	}
	if p.PoolSize == 0 {
		p.PoolSize = 8
	}
	if p.TrackWork == 0 {
		p.TrackWork = 40
	}
}

// Result summarizes one rank's run.
type Result struct {
	// Tracks is the number of track segments this rank computed.
	Tracks uint64
	// Tally is the rank's order-sensitive local tally.
	Tally float64
	// GlobalTally is the Allreduce sum of tallies (order-sensitive per
	// rank, deterministic reduction across ranks).
	GlobalTally float64
	// GlobalTracks is the Allreduce sum of track counts.
	GlobalTracks float64
	// Retired counts particles that finished their random walk on this
	// rank.
	Retired uint64
	// Sent and Received count particle messages.
	Sent, Received uint64
	// Elapsed is this rank's wall-clock time.
	Elapsed time.Duration
}

// TracksPerSec is the paper's Fig. 16 metric, computed from the global
// track count and this rank's elapsed time.
func (r Result) TracksPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.GlobalTracks / r.Elapsed.Seconds()
}

// particle is the unit of work exchanged between domains.
type particle struct {
	Energy   float64
	Segments int32 // remaining track segments
}

const particleBytes = 12

func encodeParticle(p particle) []byte {
	buf := make([]byte, particleBytes)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(p.Energy))
	binary.LittleEndian.PutUint32(buf[8:], uint32(p.Segments))
	return buf
}

func decodeParticle(b []byte) (particle, error) {
	if len(b) != particleBytes {
		return particle{}, fmt.Errorf("mcb: particle payload is %d bytes, want %d", len(b), particleBytes)
	}
	return particle{
		Energy:   math.Float64frombits(binary.LittleEndian.Uint64(b)),
		Segments: int32(binary.LittleEndian.Uint32(b[8:])),
	}, nil
}

// Run executes the benchmark on one rank. All ranks of the world must call
// Run with identical Params.
func Run(mpi simmpi.MPI, p Params) (Result, error) {
	p.fill()
	start := time.Now()
	res := Result{}
	rng := rand.New(rand.NewSource(p.Seed + int64(mpi.Rank())*1_000_003))

	n := mpi.Size()
	nbrs := p.neighbors(mpi.Rank(), n)

	// Local particle work list.
	local := make([]particle, 0, p.Particles*2)
	for i := 0; i < p.Particles; i++ {
		local = append(local, particle{
			Energy:   rng.Float64(),
			Segments: int32(1 + rng.Intn(2*p.MeanSegments)),
		})
	}

	// Receive pool: posted once, re-posted per completion, reused across
	// time steps (matching MCB's persistent wildcard receives).
	pool := make([]*simmpi.Request, p.PoolSize)
	for i := range pool {
		req, err := mpi.Irecv(simmpi.AnySource, ParticleTag)
		if err != nil {
			return res, err
		}
		pool[i] = req
	}

	sink := 0.0
	track := func(pt *particle) (crossed bool, dst int) {
		res.Tracks++
		// Synthetic per-segment compute load.
		x := pt.Energy + float64(res.Tracks)
		for i := 0; i < p.TrackWork; i++ {
			x = x*1.0000001 + 0.5
		}
		sink += x
		pt.Segments--
		pt.Energy *= 0.99
		if len(nbrs) > 0 && rng.Float64() < p.CrossProb {
			return true, nbrs[rng.Intn(len(nbrs))]
		}
		return false, 0
	}

	retire := func(pt particle) {
		// Order-sensitive accumulation (§2.1): both the value added and
		// the running product depend on processing order.
		res.Retired++
		res.Tally = res.Tally*1.0000000001 + pt.Energy
	}

	poll := func() error {
		idxs, sts, err := mpi.Testsome(pool)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			pt, err := decodeParticle(sts[k].Data)
			if err != nil {
				return err
			}
			res.Received++
			local = append(local, pt)
			req, err := mpi.Irecv(simmpi.AnySource, ParticleTag)
			if err != nil {
				return err
			}
			pool[i] = req
		}
		return nil
	}

	// Control receive pool: one slot per neighbour, reused across steps.
	ctrlPeers := len(nbrs)
	ctrl := make([]*simmpi.Request, 0, ctrlPeers)
	for i := 0; i < ctrlPeers; i++ {
		req, err := mpi.Irecv(simmpi.AnySource, ControlTag)
		if err != nil {
			return res, err
		}
		ctrl = append(ctrl, req)
	}

	for step := 0; step < p.TimeSteps; step++ {
		// Announce the step to the neighbours and wait for theirs — the
		// exit/entry coordination messages of §2.1, polled from a second
		// MF callsite.
		if ctrlPeers > 0 {
			for _, nb := range nbrs {
				if err := mpi.Send(nb, ControlTag, []byte{byte(step)}); err != nil {
					return res, err
				}
			}
			got := 0
			for got < ctrlPeers {
				idxs, _, err := mpi.Testsome(ctrl)
				if err != nil {
					return res, err
				}
				for _, i := range idxs {
					got++
					req, err := mpi.Irecv(simmpi.AnySource, ControlTag)
					if err != nil {
						return res, err
					}
					ctrl[i] = req
				}
				if len(idxs) == 0 {
					runtime.Gosched()
				}
			}
		}

		// Process until global quiescence: all particles of this step
		// retired or parked, and all in-flight exchanges drained.
		for {
			// Drain local work in batches, polling between batches.
			for len(local) > 0 {
				batch := p.BatchSize
				if batch > len(local) {
					batch = len(local)
				}
				for b := 0; b < batch; b++ {
					pt := local[len(local)-1]
					local = local[:len(local)-1]
					sentAway := false
					for pt.Segments > 0 {
						crossed, dst := track(&pt)
						// A particle that exhausts its last segment while
						// crossing retires here; only live particles
						// travel.
						if crossed && pt.Segments > 0 {
							if err := mpi.Send(dst, ParticleTag, encodeParticle(pt)); err != nil {
								return res, err
							}
							res.Sent++
							sentAway = true
							break
						}
					}
					if !sentAway {
						retire(pt)
					}
				}
				if err := poll(); err != nil {
					return res, err
				}
			}
			// Local queue empty: agree globally whether exchanges are
			// drained (quiescence by counting sent, received and queued
			// work — a positive sum on any rank keeps everyone in the
			// step).
			if err := poll(); err != nil {
				return res, err
			}
			pending, err := mpi.Allreduce(
				float64(res.Sent)-float64(res.Received)+float64(len(local)), simmpi.OpSum)
			if err != nil {
				return res, err
			}
			if pending == 0 {
				break
			}
		}
		// Refill for the next time step (sources emit fresh particles).
		if step+1 < p.TimeSteps {
			for i := 0; i < p.Particles; i++ {
				local = append(local, particle{
					Energy:   rng.Float64(),
					Segments: int32(1 + rng.Intn(2*p.MeanSegments)),
				})
			}
		}
	}
	if sink == math.Inf(1) {
		return res, fmt.Errorf("mcb: compute sink overflowed")
	}

	res.Elapsed = time.Since(start)
	var err error
	res.GlobalTally, err = mpi.Allreduce(res.Tally, simmpi.OpSum)
	if err != nil {
		return res, err
	}
	res.GlobalTracks, err = mpi.Allreduce(float64(res.Tracks), simmpi.OpSum)
	if err != nil {
		return res, err
	}
	return res, nil
}
