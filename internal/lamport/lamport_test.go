package lamport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cdcreplay/internal/simmpi"
)

// runWorld runs fn on every rank with a lamport layer stacked on the raw
// endpoint.
func runWorld(t *testing.T, n int, opts simmpi.Options, fn func(l *Layer) error) {
	t.Helper()
	w := simmpi.NewWorld(n, opts)
	if err := w.Run(func(mpi simmpi.MPI) error { return fn(Wrap(mpi)) }); err != nil {
		t.Fatal(err)
	}
}

func TestClockStartsAtInitialClock(t *testing.T) {
	w := simmpi.NewWorld(1, simmpi.Options{})
	l := Wrap(w.Comm(0))
	if l.Clock() != InitialClock {
		t.Fatalf("initial clock = %d, want %d", l.Clock(), InitialClock)
	}
}

func TestSendIncrementsClock(t *testing.T) {
	runWorld(t, 2, simmpi.Options{Seed: 1}, func(l *Layer) error {
		if l.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := l.Send(1, 0, []byte("p")); err != nil {
					return err
				}
			}
			if l.Clock() != InitialClock+3 {
				return fmt.Errorf("clock after 3 sends = %d", l.Clock())
			}
			return nil
		}
		for i := uint64(0); i < 3; i++ {
			req, _ := l.Irecv(0, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			// Definition 4.i: message carries the sender clock before
			// its increment, so clocks are InitialClock, +1, +2.
			if st.Clock != InitialClock+i {
				return fmt.Errorf("message %d carried clock %d", i, st.Clock)
			}
			if string(st.Data) != "p" {
				return fmt.Errorf("payload corrupted: %q", st.Data)
			}
		}
		return nil
	})
}

func TestReceiveAdvancesToMax(t *testing.T) {
	runWorld(t, 2, simmpi.Options{Seed: 2}, func(l *Layer) error {
		switch l.Rank() {
		case 0:
			// Tick our clock far ahead with local sends to ourselves? No
			// self-sends needed: send many messages to advance the clock.
			for i := 0; i < 10; i++ {
				if err := l.Send(1, 1, nil); err != nil {
					return err
				}
			}
			return l.Send(1, 2, nil) // carries clock InitialClock+10
		case 1:
			req, _ := l.Irecv(0, 2)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			// Definition 4.ii: clock := max(received, own)+1.
			if st.Clock != InitialClock+10 || l.Clock() != InitialClock+11 {
				return fmt.Errorf("recv clock %d, own clock %d", st.Clock, l.Clock())
			}
			// Drain the rest so no messages are lost.
			for i := 0; i < 10; i++ {
				r, _ := l.Irecv(0, 1)
				if _, err := l.Wait(r); err != nil {
					return err
				}
			}
			return nil
		}
		return nil
	})
}

func TestHappenedBeforeOrdering(t *testing.T) {
	// A chain 0 → 1 → 2 must carry strictly increasing clocks
	// (Definition 5: e → f implies fc(e) < fc(f)).
	runWorld(t, 3, simmpi.Options{Seed: 3}, func(l *Layer) error {
		switch l.Rank() {
		case 0:
			return l.Send(1, 0, nil)
		case 1:
			req, _ := l.Irecv(0, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			if err := l.Send(2, 0, nil); err != nil {
				return err
			}
			_ = st
			return nil
		case 2:
			req, _ := l.Irecv(1, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			if st.Clock < InitialClock+1 {
				return fmt.Errorf("dependent message clock %d not greater than source's", st.Clock)
			}
			return nil
		}
		return nil
	})
}

func TestPerSenderClocksStrictlyIncrease(t *testing.T) {
	// The (source, clock) message identifier is unique because each
	// sender's attached clocks strictly increase.
	runWorld(t, 2, simmpi.Options{Seed: 4, MaxJitter: 6}, func(l *Layer) error {
		const n = 50
		if l.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := l.Send(1, 0, nil); err != nil {
					return err
				}
			}
			return nil
		}
		last := int64(-1)
		for i := 0; i < n; i++ {
			req, _ := l.Irecv(0, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			if int64(st.Clock) <= last {
				return fmt.Errorf("clock %d did not increase past %d", st.Clock, last)
			}
			last = int64(st.Clock)
		}
		return nil
	})
}

func TestTestsomeUpdatesClockPerCompletion(t *testing.T) {
	runWorld(t, 3, simmpi.Options{Seed: 5, MaxJitter: 0}, func(l *Layer) error {
		if l.Rank() > 0 {
			return l.Send(0, 0, []byte{byte(l.Rank())})
		}
		reqs := make([]*simmpi.Request, 2)
		reqs[0], _ = l.Irecv(1, 0)
		reqs[1], _ = l.Irecv(2, 0)
		got := 0
		deadline := time.Now().Add(5 * time.Second)
		for got < 2 {
			if time.Now().After(deadline) {
				return errors.New("timed out")
			}
			idxs, sts, err := l.Testsome(reqs)
			if err != nil {
				return err
			}
			for k := range idxs {
				if sts[k].Clock != InitialClock {
					return fmt.Errorf("first message from %d has clock %d", sts[k].Source, sts[k].Clock)
				}
			}
			got += len(idxs)
		}
		// Two receives of InitialClock messages: max(1,1)+1 = 2, then
		// max(1,2)+1 = 3.
		if l.Clock() != 3 {
			return fmt.Errorf("clock after 2 receives = %d", l.Clock())
		}
		return nil
	})
}

func TestShortMessageRejected(t *testing.T) {
	// A message sent *below* the lamport layer has no piggyback header;
	// the layer must reject it rather than misparse.
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 6})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 0 {
			return mpi.Send(1, 0, []byte{1, 2}) // raw send: 2 bytes only
		}
		l := Wrap(mpi)
		req, _ := l.Irecv(0, 0)
		_, err := l.Wait(req)
		if err == nil {
			return errors.New("lamport layer accepted headerless message")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	runWorld(t, 4, simmpi.Options{Seed: 7}, func(l *Layer) error {
		// Rank r sends r messages into the void (to rank (r+1)%4 tag 9)
		// to skew clocks, then everyone barriers.
		for i := 0; i < l.Rank(); i++ {
			if err := l.Send((l.Rank()+1)%4, 9, nil); err != nil {
				return err
			}
		}
		if err := l.Barrier(); err != nil {
			return err
		}
		// Max clock before the barrier is InitialClock+3 (rank 3 sent 3
		// messages), so all clocks must now be InitialClock+4.
		if l.Clock() != InitialClock+4 {
			return fmt.Errorf("rank %d clock after barrier = %d", l.Rank(), l.Clock())
		}
		// Drain pending messages so the world shuts down cleanly.
		prev := (l.Rank() + 3) % 4
		for i := 0; i < prev; i++ {
			req, _ := l.Irecv(prev, 9)
			if _, err := l.Wait(req); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestAllreducePassesValueAndTicksClock(t *testing.T) {
	runWorld(t, 3, simmpi.Options{Seed: 8}, func(l *Layer) error {
		before := l.Clock()
		sum, err := l.Allreduce(1, simmpi.OpSum)
		if err != nil {
			return err
		}
		if sum != 3 {
			return fmt.Errorf("sum = %v", sum)
		}
		if l.Clock() <= before {
			return fmt.Errorf("clock did not advance across allreduce")
		}
		return nil
	})
}

func TestReceiveMaxPolicy(t *testing.T) {
	runWorld(t, 2, simmpi.Options{Seed: 30}, func(l *Layer) error { return nil })
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 31, MaxJitter: 0})
	err := w.Run(func(mpi simmpi.MPI) error {
		l := WrapPolicy(mpi, ReceiveMax)
		if mpi.Rank() == 0 {
			// Two sends: clocks attached 1, 2.
			if err := l.Send(1, 0, nil); err != nil {
				return err
			}
			return l.Send(1, 0, nil)
		}
		for i := uint64(1); i <= 2; i++ {
			req, _ := l.Irecv(0, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			if st.Clock != i {
				return fmt.Errorf("message carried clock %d, want %d", st.Clock, i)
			}
		}
		// ReceiveMax: clock = max(own=1, 1) then max(·, 2) = 2; no +1.
		if l.Clock() != 2 {
			return fmt.Errorf("clock after receives = %d, want 2", l.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPolicySendClocksStillStrictlyIncrease(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 32, MaxJitter: 6})
	err := w.Run(func(mpi simmpi.MPI) error {
		l := WrapPolicy(mpi, ReceiveMax)
		const n = 40
		if l.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := l.Send(1, 0, nil); err != nil {
					return err
				}
			}
			return nil
		}
		last := uint64(0)
		for i := 0; i < n; i++ {
			req, _ := l.Irecv(0, 0)
			st, err := l.Wait(req)
			if err != nil {
				return err
			}
			if st.Clock <= last {
				return fmt.Errorf("clock %d did not increase past %d", st.Clock, last)
			}
			last = st.Clock
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllWrapperPaths drives every MF wrapper and collective through the
// layer on a small gather so the completion hooks all run.
func TestAllWrapperPaths(t *testing.T) {
	runWorld(t, 3, simmpi.Options{Seed: 50, MaxJitter: 0}, func(l *Layer) error {
		if l.Rank() > 0 {
			for i := 0; i < 6; i++ {
				if err := l.Send(0, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			if err := l.Barrier(); err != nil {
				return err
			}
			_, err := l.Allgather(float64(l.Rank()))
			if err != nil {
				return err
			}
			if _, err := l.Reduce(1, simmpi.OpSum, 0); err != nil {
				return err
			}
			if _, err := l.Bcast(nil, 0); err != nil {
				return err
			}
			_, err = l.Gather(2, 0)
			return err
		}
		post := func() *simmpi.Request {
			req, _ := l.Irecv(simmpi.AnySource, 1)
			return req
		}
		got := 0
		// Testany.
		reqs := []*simmpi.Request{post(), post()}
		for got < 2 {
			if i, ok, st, err := l.Testany(reqs); err != nil {
				return err
			} else if ok {
				if st.Clock == 0 {
					return errors.New("missing piggyback clock")
				}
				got++
				reqs[i] = post()
			}
		}
		// Testall (reqs still holds two live receives).
		for {
			ok, sts, err := l.Testall(reqs)
			if err != nil {
				return err
			}
			if ok {
				got += len(sts)
				break
			}
		}
		// Waitany + Waitsome + Waitall.
		reqs = []*simmpi.Request{post(), post()}
		i, _, err := l.Waitany(reqs)
		if err != nil {
			return err
		}
		got++
		reqs[i] = post()
		idxs, _, err := l.Waitsome(reqs)
		if err != nil {
			return err
		}
		got += len(idxs)
		var rest []*simmpi.Request
		for k := range reqs {
			skip := false
			for _, j := range idxs {
				if j == k {
					skip = true
				}
			}
			if !skip {
				rest = append(rest, reqs[k])
			}
		}
		for got < 12 {
			if len(rest) == 0 {
				rest = append(rest, post())
			}
			sts, err := l.Waitall(rest)
			if err != nil {
				return err
			}
			got += len(sts)
			rest = nil
		}
		if err := l.Barrier(); err != nil {
			return err
		}
		all, err := l.Allgather(float64(l.Rank()))
		if err != nil {
			return err
		}
		if len(all) != 3 {
			return fmt.Errorf("allgather = %v", all)
		}
		sum, err := l.Reduce(1, simmpi.OpSum, 0)
		if err != nil {
			return err
		}
		if sum != 3 {
			return fmt.Errorf("reduce = %v", sum)
		}
		data, err := l.Bcast([]byte("hello"), 0)
		if err != nil {
			return err
		}
		if string(data) != "hello" {
			return fmt.Errorf("bcast = %q", data)
		}
		g, err := l.Gather(2, 0)
		if err != nil {
			return err
		}
		if len(g) != 3 {
			return fmt.Errorf("gather = %v", g)
		}
		if l.Size() != 3 {
			return fmt.Errorf("size = %d", l.Size())
		}
		return nil
	})
}

func TestManualModeDefersTicks(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 51, MaxJitter: 0})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 0 {
			return Wrap(mpi).Send(1, 0, nil)
		}
		l := WrapManual(mpi)
		req, _ := l.Irecv(0, 0)
		st, err := l.Wait(req)
		if err != nil {
			return err
		}
		if st.Clock != InitialClock {
			return fmt.Errorf("clock header not stripped: %d", st.Clock)
		}
		if l.Clock() != InitialClock {
			return fmt.Errorf("manual layer ticked automatically: %d", l.Clock())
		}
		l.TickReceive(st.Clock)
		if l.Clock() != InitialClock+1 {
			return fmt.Errorf("TickReceive = %d", l.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
