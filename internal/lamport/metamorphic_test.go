package lamport_test

import (
	"bytes"
	"reflect"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// clockTee forwards rows to the CDC encoder while retaining the
// matched-event clock stream in observed order.
type clockTee struct {
	cdc    *baseline.CDCMethod
	clocks []uint64
}

func (c *clockTee) Name() string { return "clock-tee" }
func (c *clockTee) Observe(cs uint64, ev tables.Event) error {
	if ev.Flag {
		c.clocks = append(c.clocks, ev.Clock)
	}
	return c.cdc.Observe(cs, ev)
}
func (c *clockTee) RegisterCallsite(id uint64, name string) error {
	return c.cdc.RegisterCallsite(id, name)
}
func (c *clockTee) FlushAll(clock uint64) error { return c.cdc.FlushAll(clock) }
func (c *clockTee) Close() error                { return c.cdc.Close() }
func (c *clockTee) BytesWritten() int64         { return c.cdc.BytesWritten() }

// TestMetamorphicDeliveryPermutation is the metamorphic replay theorem at
// the clock layer (paper Theorem 2): the replayed Lamport clock stream is a
// function of the *observed* receive order alone. Permuting the network's
// delivery order underneath the replayer — any FIFO-respecting permutation,
// here induced by re-seeding the delivery jitter — must leave every rank's
// released clock stream, final clock, and verification verdict identical.
func TestMetamorphicDeliveryPermutation(t *testing.T) {
	const ranks = 3
	params := workload.ExchangeParams{Rounds: 2, MessagesPerRound: 3, Payload: 8, Seed: 7}
	app := func(mpi simmpi.MPI) error {
		_, err := workload.Exchange(mpi, params)
		return err
	}

	// Record once, on a jittery network, capturing each rank's observed
	// clock stream and encoded record.
	bufs := make([]*bytes.Buffer, ranks)
	recClocks := make([][]uint64, ranks)
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: 1, MaxJitter: 5})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		bufs[rank] = &bytes.Buffer{}
		enc, err := core.NewEncoder(bufs[rank], core.EncoderOptions{ChunkEvents: 64})
		if err != nil {
			return err
		}
		tee := &clockTee{cdc: baseline.NewCDC(enc)}
		rec := record.New(lamport.Wrap(mpi), tee, record.Options{})
		aerr := app(rec)
		cerr := rec.Close()
		recClocks[rank] = tee.clocks
		if aerr != nil {
			return aerr
		}
		return cerr
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	// Replay several times, each on a differently-permuted delivery order.
	var first [][]uint64
	var firstFinal []uint64
	for trial := 0; trial < 4; trial++ {
		repClocks := make([][]uint64, ranks)
		finals := make([]uint64, ranks)
		w := simmpi.NewWorld(ranks, simmpi.Options{Seed: int64(100 + 37*trial), MaxJitter: 7})
		err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
			rec, err := core.ReadRecord(bytes.NewReader(bufs[rank].Bytes()))
			if err != nil {
				return err
			}
			ll := lamport.WrapManual(mpi)
			rp := replay.New(ll, rec, replay.Options{
				OnRelease: func(st simmpi.Status) {
					repClocks[rank] = append(repClocks[rank], st.Clock)
				},
			})
			if aerr := app(rp); aerr != nil {
				return aerr
			}
			finals[rank] = ll.Clock()
			return rp.Verify()
		})
		if err != nil {
			t.Fatalf("replay trial %d: %v", trial, err)
		}
		// Replayed clocks must equal the recorded observed stream…
		if !reflect.DeepEqual(repClocks, recClocks) {
			t.Fatalf("trial %d: replayed clock streams diverge from recorded:\n%v\n%v",
				trial, repClocks, recClocks)
		}
		// …and be identical across delivery permutations.
		if trial == 0 {
			first, firstFinal = repClocks, finals
			continue
		}
		if !reflect.DeepEqual(repClocks, first) {
			t.Fatalf("trial %d: clock stream changed with delivery order", trial)
		}
		if !reflect.DeepEqual(finals, firstFinal) {
			t.Fatalf("trial %d: final clocks changed with delivery order: %v vs %v",
				trial, finals, firstFinal)
		}
	}
}

// TestObservationOrderSensitivity documents the contrapositive that makes
// order replay necessary at all: the Classic clock rule is NOT oblivious to
// the observation order, so two observation orders of the same delivery set
// can yield different clocks — which is exactly why the replayer re-applies
// ticks in recorded order rather than arrival order.
func TestObservationOrderSensitivity(t *testing.T) {
	a := lamport.WrapManual(nil)
	a.TickReceive(5)
	a.TickReceive(2)
	b := lamport.WrapManual(nil)
	b.TickReceive(2)
	b.TickReceive(5)
	if a.Clock() == b.Clock() {
		t.Fatalf("Classic rule unexpectedly order-oblivious (both %d); the order-replay machinery would be unnecessary", a.Clock())
	}
}
