// Package lamport implements the Lamport-clock piggybacking layer
// (paper §4.3, Definition 4).
//
// The layer wraps an MPI endpoint the way a PMPI module wraps MPI calls.
// Every outgoing payload is prefixed with the sender's current clock
// (8 bytes, little endian), after which the clock increments by one
// (Definition 4.i). When a receive completes at the application level, the
// layer strips the prefix, exposes it as Status.Clock, and sets its own
// clock to max(received, own)+1 (Definition 4.ii).
//
// Because sender clocks strictly increase, the pair (source rank, clock)
// uniquely identifies a message — the message identifier CDC needs to
// survive the application-level out-of-order problem of paper Fig. 3, where
// (source, tag) is ambiguous.
//
// Clock updates happen in the order the application observes completions,
// so replaying the completion order replays the clocks (Theorem 2).
package lamport

import (
	"encoding/binary"
	"fmt"

	"cdcreplay/internal/simmpi"
)

// HeaderLen is the piggyback prefix size in bytes (the paper's 8-byte
// clock, §6.2).
const HeaderLen = 8

// Policy selects the replayable clock definition. The paper uses the
// classic Lamport rules (Definition 4) and names the search for other
// replayable clock definitions as future work (§4.3): any rule that is a
// deterministic function of the events the replay reproduces — sends in
// program order and receives in replayed order — is replayable. The rules
// differ in how closely the resulting reference order tracks the observed
// order, and hence in record size (see BenchmarkAblationClockPolicy).
type Policy int

const (
	// Classic is Definition 4: send attaches then increments; receive
	// sets clock to max(received, own)+1.
	Classic Policy = iota
	// ReceiveMax drops the +1 on the receive side: receive sets clock to
	// max(received, own). Clocks advance only at sends, so a burst of
	// receives does not inflate the clock between two sends; per-sender
	// attached clocks still strictly increase (the send-side increment
	// alone guarantees message-identifier uniqueness), and the update
	// remains a deterministic function of the replayed receive order.
	ReceiveMax
)

// Layer is a clock-piggybacking MPI layer for one rank.
type Layer struct {
	next   simmpi.MPI
	clock  uint64
	manual bool
	policy Policy
}

var _ simmpi.MPI = (*Layer)(nil)

// InitialClock is the clock value a process starts with. Starting at 1
// (rather than 0) lets the CDC chunk decoder treat "no clock received yet
// from sender s" as the exclusive lower bound 0 of the first epoch window.
const InitialClock = 1

// Wrap returns a Layer stacked on next.
func Wrap(next simmpi.MPI) *Layer { return &Layer{next: next, clock: InitialClock} }

// WrapPolicy returns a Layer using the given clock policy. Record and
// replay must use the same policy.
func WrapPolicy(next simmpi.MPI, p Policy) *Layer {
	return &Layer{next: next, clock: InitialClock, policy: p}
}

// WrapManualPolicy is WrapManual with a clock policy.
func WrapManualPolicy(next simmpi.MPI, p Policy) *Layer {
	return &Layer{next: next, manual: true, clock: InitialClock, policy: p}
}

// WrapManual returns a Layer whose receive-side clock rule (Definition
// 4.ii) is NOT applied automatically at completion. The replay engine uses
// this mode: it polls completions below in arrival order but must apply
// clock ticks in the *replayed* observed order (Theorem 2), which it does
// by calling TickReceive as it releases each event to the application.
// Completions still have their piggyback header stripped and Status.Clock
// set.
func WrapManual(next simmpi.MPI) *Layer {
	return &Layer{next: next, manual: true, clock: InitialClock}
}

// TickReceive applies the receive clock rule for a message carrying clock:
// Definition 4.ii under the Classic policy (max then +1), or the plain max
// under ReceiveMax. Only meaningful on a manual layer; the automatic mode
// ticks internally.
func (l *Layer) TickReceive(clock uint64) {
	if clock > l.clock {
		l.clock = clock
	}
	if l.policy == Classic {
		l.clock++
	}
}

// Clock returns the rank's current Lamport clock.
func (l *Layer) Clock() uint64 { return l.clock }

// Rank returns the rank of the wrapped endpoint.
func (l *Layer) Rank() int { return l.next.Rank() }

// Size returns the world size.
func (l *Layer) Size() int { return l.next.Size() }

// Send attaches the current clock and increments it.
func (l *Layer) Send(dst, tag int, data []byte) error {
	buf := make([]byte, HeaderLen+len(data))
	binary.LittleEndian.PutUint64(buf, l.clock)
	copy(buf[HeaderLen:], data)
	l.clock++
	return l.next.Send(dst, tag, buf)
}

// Irecv passes through; the clock is handled at completion.
func (l *Layer) Irecv(src, tag int) (*simmpi.Request, error) {
	return l.next.Irecv(src, tag)
}

// onComplete strips the piggyback prefix and ticks the clock.
func (l *Layer) onComplete(st *simmpi.Status) error {
	if len(st.Data) < HeaderLen {
		return fmt.Errorf("lamport: message from %d lacks piggyback header (%d bytes)", st.Source, len(st.Data))
	}
	recv := binary.LittleEndian.Uint64(st.Data)
	st.Clock = recv
	st.Data = st.Data[HeaderLen:]
	if !l.manual {
		l.TickReceive(recv)
	}
	return nil
}

// Test forwards and processes a completion if any.
func (l *Layer) Test(req *simmpi.Request) (bool, simmpi.Status, error) {
	ok, st, err := l.next.Test(req)
	if err != nil || !ok {
		return ok, st, err
	}
	if err := l.onComplete(&st); err != nil {
		return false, simmpi.Status{}, err
	}
	return true, st, nil
}

// Testany forwards and processes a completion if any.
func (l *Layer) Testany(reqs []*simmpi.Request) (int, bool, simmpi.Status, error) {
	i, ok, st, err := l.next.Testany(reqs)
	if err != nil || !ok {
		return i, ok, st, err
	}
	if err := l.onComplete(&st); err != nil {
		return -1, false, simmpi.Status{}, err
	}
	return i, true, st, nil
}

// Testsome forwards and processes completions in reported order.
func (l *Layer) Testsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	idxs, sts, err := l.next.Testsome(reqs)
	if err != nil {
		return idxs, sts, err
	}
	for i := range sts {
		if err := l.onComplete(&sts[i]); err != nil {
			return nil, nil, err
		}
	}
	return idxs, sts, nil
}

// Testall forwards and processes completions in reported order.
func (l *Layer) Testall(reqs []*simmpi.Request) (bool, []simmpi.Status, error) {
	ok, sts, err := l.next.Testall(reqs)
	if err != nil || !ok {
		return ok, sts, err
	}
	for i := range sts {
		if err := l.onComplete(&sts[i]); err != nil {
			return false, nil, err
		}
	}
	return true, sts, nil
}

// Wait forwards and processes the completion.
func (l *Layer) Wait(req *simmpi.Request) (simmpi.Status, error) {
	st, err := l.next.Wait(req)
	if err != nil {
		return st, err
	}
	if err := l.onComplete(&st); err != nil {
		return simmpi.Status{}, err
	}
	return st, nil
}

// Waitany forwards and processes the completion.
func (l *Layer) Waitany(reqs []*simmpi.Request) (int, simmpi.Status, error) {
	i, st, err := l.next.Waitany(reqs)
	if err != nil {
		return i, st, err
	}
	if err := l.onComplete(&st); err != nil {
		return -1, simmpi.Status{}, err
	}
	return i, st, nil
}

// Waitsome forwards and processes completions in reported order.
func (l *Layer) Waitsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	idxs, sts, err := l.next.Waitsome(reqs)
	if err != nil {
		return idxs, sts, err
	}
	for i := range sts {
		if err := l.onComplete(&sts[i]); err != nil {
			return nil, nil, err
		}
	}
	return idxs, sts, nil
}

// Waitall forwards and processes completions in reported order.
func (l *Layer) Waitall(reqs []*simmpi.Request) ([]simmpi.Status, error) {
	sts, err := l.next.Waitall(reqs)
	if err != nil {
		return sts, err
	}
	for i := range sts {
		if err := l.onComplete(&sts[i]); err != nil {
			return nil, err
		}
	}
	return sts, nil
}

// syncClock deterministically advances every participant to
// max(all clocks)+1 across a collective.
func (l *Layer) syncClock() error {
	m, err := l.next.Allreduce(float64(l.clock), simmpi.OpMax)
	if err != nil {
		return err
	}
	l.clock = uint64(m) + 1
	return nil
}

// Barrier synchronizes ranks and their clocks: every participant leaves
// with clock = max(all clocks)+1, a deterministic update.
func (l *Layer) Barrier() error { return l.syncClock() }

// Allreduce reduces v and synchronizes clocks like Barrier.
func (l *Layer) Allreduce(v float64, op simmpi.ReduceOp) (float64, error) {
	out, err := l.next.Allreduce(v, op)
	if err != nil {
		return 0, err
	}
	return out, l.syncClock()
}

// Reduce reduces v at root and synchronizes clocks.
func (l *Layer) Reduce(v float64, op simmpi.ReduceOp, root int) (float64, error) {
	out, err := l.next.Reduce(v, op, root)
	if err != nil {
		return 0, err
	}
	return out, l.syncClock()
}

// Bcast distributes root's data and synchronizes clocks.
func (l *Layer) Bcast(data []byte, root int) ([]byte, error) {
	out, err := l.next.Bcast(data, root)
	if err != nil {
		return nil, err
	}
	return out, l.syncClock()
}

// Gather collects values at root and synchronizes clocks.
func (l *Layer) Gather(v float64, root int) ([]float64, error) {
	out, err := l.next.Gather(v, root)
	if err != nil {
		return nil, err
	}
	return out, l.syncClock()
}

// Allgather collects values everywhere and synchronizes clocks.
func (l *Layer) Allgather(v float64) ([]float64, error) {
	out, err := l.next.Allgather(v)
	if err != nil {
		return nil, err
	}
	return out, l.syncClock()
}
