package workload

import (
	"fmt"
	"testing"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

func matchedOf(events []tables.Event) []tables.MatchedEntry {
	var out []tables.MatchedEntry
	for _, ev := range events {
		if ev.Flag {
			out = append(out, tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock})
		}
	}
	return out
}

func TestStreamEventCount(t *testing.T) {
	events := Stream(StreamParams{Events: 500, Seed: 1, UnmatchedProb: 0.5})
	if got := len(matchedOf(events)); got != 500 {
		t.Fatalf("got %d matched events, want 500", got)
	}
}

func TestStreamPerSenderClocksIncrease(t *testing.T) {
	events := Stream(StreamParams{Events: 2000, Senders: 6, Disorder: 8, Seed: 2})
	last := map[int32]uint64{}
	for _, m := range matchedOf(events) {
		if m.Clock <= last[m.Rank] {
			t.Fatalf("sender %d clock %d did not increase past %d", m.Rank, m.Clock, last[m.Rank])
		}
		last[m.Rank] = m.Clock
	}
}

func TestStreamDisorderControlsPermutation(t *testing.T) {
	inOrder := Stream(StreamParams{Events: 2000, Senders: 6, Disorder: 0, Seed: 3})
	disordered := Stream(StreamParams{Events: 2000, Senders: 6, Disorder: 6, Seed: 3})
	c0 := cdcformat.BuildChunk(0, inOrder)
	c1 := cdcformat.BuildChunk(0, disordered)
	if len(c0.Moves) != 0 {
		t.Fatalf("zero-disorder stream produced %d moves", len(c0.Moves))
	}
	if len(c1.Moves) == 0 {
		t.Fatal("disordered stream produced no moves")
	}
}

func TestStreamDeterministicForSeed(t *testing.T) {
	a := Stream(MCBLike(1000, 1, 7))
	b := Stream(MCBLike(1000, 1, 7))
	if len(a) != len(b) {
		t.Fatal("same seed produced different stream lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
}

func TestIntensityScalesEvents(t *testing.T) {
	x1 := Stream(MCBLike(1000, 1, 5))
	x2 := Stream(MCBLike(1000, 2, 5))
	if got1, got2 := len(matchedOf(x1)), len(matchedOf(x2)); got2 != 2*got1 {
		t.Fatalf("intensity 2 produced %d events, want %d", got2, 2*got1)
	}
}

func TestDeterministicLikeHasNoMovesAndNoUnmatched(t *testing.T) {
	events := Stream(DeterministicLike(1000, 9))
	c := cdcformat.BuildChunk(0, events)
	if len(c.Moves) != 0 || len(c.Unmatched) != 0 {
		t.Fatalf("deterministic stream: %d moves, %d unmatched runs", len(c.Moves), len(c.Unmatched))
	}
	if len(c.WithNext) == 0 {
		t.Fatal("deterministic stream produced no grouped completions")
	}
}

func TestExchangeConservation(t *testing.T) {
	const n = 4
	w := simmpi.NewWorld(n, simmpi.Options{Seed: 11, MaxJitter: 6})
	var sent, received uint64
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	err := w.Run(func(mpi simmpi.MPI) error {
		r, err := Exchange(mpi, ExchangeParams{Rounds: 3, MessagesPerRound: 5, Seed: 13})
		if err != nil {
			return fmt.Errorf("rank %d: %w", mpi.Rank(), err)
		}
		<-mu
		sent += r.Sent
		received += r.Received
		mu <- struct{}{}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sent != received {
		t.Fatalf("sent %d != received %d", sent, received)
	}
	if sent != uint64(n*3*5) {
		t.Fatalf("sent %d, want %d", sent, n*3*5)
	}
}

func TestExchangeSingleRank(t *testing.T) {
	w := simmpi.NewWorld(1, simmpi.Options{Seed: 12})
	err := w.Run(func(mpi simmpi.MPI) error {
		r, err := Exchange(mpi, ExchangeParams{Rounds: 2, MessagesPerRound: 3})
		if err != nil {
			return err
		}
		if r.Sent != 0 {
			return fmt.Errorf("single rank sent %d messages", r.Sent)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
