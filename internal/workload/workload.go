// Package workload generates synthetic non-deterministic communication
// event streams with tunable intensity and disorder, standing in for the
// "applications with greater communication intensity" the paper
// extrapolates to in Fig. 15 (§6.1) and serving as the driver for
// compression ablation sweeps.
//
// Two generators are provided:
//
//   - Stream: a pure event-stream generator (no message passing) that
//     emulates the statistical structure of a recorder's observed events —
//     per-sender strictly increasing piggyback clocks, bounded cross-sender
//     reordering, unmatched-test runs, and multi-completion grouping. It
//     drives the compression benchmarks without paying for a live run.
//
//   - Exchange: a live simmpi application performing random pairwise
//     exchanges at a configurable messages-per-compute-unit rate, used
//     where a real tool stack must be exercised.
package workload

import (
	"math/rand"
	"sort"

	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

func sortUint64(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// StreamParams shape a synthetic observed-event stream.
type StreamParams struct {
	// Events is the number of matched receive events to generate.
	Events int
	// Senders is the number of distinct message sources.
	Senders int
	// Disorder is the window (in events) within which cross-sender
	// arrival order is shuffled; 0 yields the reference order exactly
	// (hidden determinism), larger values increase the permutation
	// percentage. Typical MCB-like traffic sits around 2–6.
	Disorder int
	// UnmatchedProb is the probability of a failed-test run before a
	// matched event (Test-family polling traffic).
	UnmatchedProb float64
	// MaxUnmatched bounds the length of a failed-test run. Default 8.
	MaxUnmatched int
	// GroupProb is the probability a matched event is delivered together
	// with its successor (Waitsome/Testsome multi-completion traffic).
	GroupProb float64
	// ClockStride is the mean clock advance per send at one sender.
	// Default 2.
	ClockStride int
	// Seed seeds the generator.
	Seed int64
}

func (p *StreamParams) fill() {
	if p.Senders == 0 {
		p.Senders = 8
	}
	if p.MaxUnmatched == 0 {
		p.MaxUnmatched = 8
	}
	if p.ClockStride == 0 {
		p.ClockStride = 2
	}
}

// Stream generates the event rows a recorder would observe for one rank.
func Stream(p StreamParams) []tables.Event {
	p.fill()
	rng := rand.New(rand.NewSource(p.Seed))

	type msg struct {
		rank  int32
		clock uint64
	}
	// Clocks advance globally (a receiver's incoming piggyback clocks
	// track its own Lamport clock), so the pre-shuffle stream is exactly
	// the reference order and Disorder alone controls the permutation.
	var global uint64
	msgs := make([]msg, p.Events)
	for i := range msgs {
		s := rng.Intn(p.Senders)
		global += uint64(1 + rng.Intn(2*p.ClockStride-1))
		msgs[i] = msg{rank: int32(s), clock: global}
	}
	// Bounded-window shuffle across senders, then restore each sender's
	// internal clock order (swap chains could otherwise transitively
	// invert same-sender messages, which MPI-level FIFO delivery forbids
	// in recorder-observed arrival order): each sender's clocks are
	// reassigned ascending over its (shuffled) positions.
	if p.Disorder > 0 {
		for i := 0; i+1 < len(msgs); i++ {
			j := i + rng.Intn(p.Disorder+1)
			if j >= len(msgs) {
				j = len(msgs) - 1
			}
			msgs[i], msgs[j] = msgs[j], msgs[i]
		}
		positions := make(map[int32][]int, p.Senders)
		clocksOf := make(map[int32][]uint64, p.Senders)
		for i, m := range msgs {
			positions[m.rank] = append(positions[m.rank], i)
			clocksOf[m.rank] = append(clocksOf[m.rank], m.clock)
		}
		for r, pos := range positions {
			cs := clocksOf[r]
			sortUint64(cs)
			for k, i := range pos {
				msgs[i].clock = cs[k]
			}
		}
	}

	events := make([]tables.Event, 0, p.Events+p.Events/4)
	for i, m := range msgs {
		if rng.Float64() < p.UnmatchedProb {
			events = append(events, tables.Unmatched(uint64(1+rng.Intn(p.MaxUnmatched))))
		}
		withNext := i+1 < len(msgs) && rng.Float64() < p.GroupProb
		events = append(events, tables.Matched(m.rank, m.clock, withNext))
	}
	return events
}

// MCBLike returns StreamParams tuned to resemble the MCB event statistics
// the paper reports: roughly 30% permuted messages and frequent unmatched
// polls. intensity scales the event count (the paper's "communication
// intensity × k").
func MCBLike(events int, intensity float64, seed int64) StreamParams {
	return StreamParams{
		Events:        int(float64(events) * intensity),
		Senders:       8,
		Disorder:      4,
		UnmatchedProb: 0.3,
		GroupProb:     0.15,
		Seed:          seed,
	}
}

// DeterministicLike returns StreamParams resembling hidden-deterministic
// halo traffic (Fig. 17): in-order receives, regular grouping, no failed
// tests.
func DeterministicLike(events int, seed int64) StreamParams {
	return StreamParams{
		Events:    events,
		Senders:   2,
		Disorder:  0,
		GroupProb: 0.5,
		Seed:      seed,
	}
}

// ExchangeParams configure the live random-exchange application.
type ExchangeParams struct {
	// Rounds is the number of exchange rounds.
	Rounds int
	// MessagesPerRound is how many messages each rank sends per round to
	// random peers (the communication-intensity knob).
	MessagesPerRound int
	// Payload is the message payload size in bytes.
	Payload int
	// Seed seeds per-rank peer selection.
	Seed int64
}

func (p *ExchangeParams) fill() {
	if p.Rounds == 0 {
		p.Rounds = 10
	}
	if p.MessagesPerRound == 0 {
		p.MessagesPerRound = 8
	}
	if p.Payload == 0 {
		p.Payload = 64
	}
}

// ExchangeResult summarizes one rank's exchange run.
type ExchangeResult struct {
	Sent, Received uint64
}

// Exchange runs random pairwise traffic: every rank sends
// MessagesPerRound messages to random peers each round, receives with
// wildcard Testsome polling, and rounds are separated by quiescence
// (counting) so no messages leak across the end of the run.
func Exchange(mpi simmpi.MPI, p ExchangeParams) (ExchangeResult, error) {
	p.fill()
	res := ExchangeResult{}
	rng := rand.New(rand.NewSource(p.Seed + int64(mpi.Rank())*7919))
	payload := make([]byte, p.Payload)

	const tag = 31
	pool := make([]*simmpi.Request, 4)
	for i := range pool {
		req, err := mpi.Irecv(simmpi.AnySource, tag)
		if err != nil {
			return res, err
		}
		pool[i] = req
	}
	poll := func() error {
		idxs, _, err := mpi.Testsome(pool)
		if err != nil {
			return err
		}
		for _, i := range idxs {
			res.Received++
			req, err := mpi.Irecv(simmpi.AnySource, tag)
			if err != nil {
				return err
			}
			pool[i] = req
		}
		return nil
	}

	for round := 0; round < p.Rounds; round++ {
		for m := 0; m < p.MessagesPerRound; m++ {
			dst := rng.Intn(mpi.Size())
			if dst == mpi.Rank() {
				dst = (dst + 1) % mpi.Size()
			}
			if mpi.Size() == 1 {
				break
			}
			if err := mpi.Send(dst, tag, payload); err != nil {
				return res, err
			}
			res.Sent++
			if err := poll(); err != nil {
				return res, err
			}
		}
		// Quiesce the round.
		for {
			if err := poll(); err != nil {
				return res, err
			}
			pending, err := mpi.Allreduce(float64(res.Sent)-float64(res.Received), simmpi.OpSum)
			if err != nil {
				return res, err
			}
			if pending == 0 {
				break
			}
		}
	}
	return res, nil
}
