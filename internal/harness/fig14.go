package harness

import (
	"io"

	"cdcreplay/internal/core"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/stats"
)

// Fig14Result reproduces paper Fig. 14: the per-rank percentage of
// permutated messages on MCB.
type Fig14Result struct {
	Ranks int
	// Percent holds each rank's 100·Np/N.
	Percent []float64
	// Histogram bins the percentages in 5%-wide bins like the paper.
	Histogram *stats.Histogram
	// Summary describes the distribution (the paper reports ~30% mean).
	Summary stats.Summary
}

// Fig14 measures the observed-vs-reference similarity per rank.
func Fig14(cfg Config) (*Fig14Result, error) {
	cfg.fill()
	ranks := cfg.pick(32, 96)
	run, err := captureMCB(&cfg, ranks, mcb.Params{
		Particles: cfg.pick(150, 800),
		TimeSteps: cfg.pick(2, 4),
		Seed:      cfg.Seed + 14,
	})
	if err != nil {
		return nil, err
	}
	return fig14FromRun(&cfg, run)
}

func fig14FromRun(cfg *Config, run *MCBRun) (*Fig14Result, error) {
	res := &Fig14Result{
		Ranks:     run.Ranks,
		Histogram: stats.NewHistogram(0, 100, 20),
	}
	for _, rows := range run.Rows {
		enc, err := core.NewEncoder(io.Discard, core.EncoderOptions{OmitSenderColumn: true})
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			if err := enc.Observe(row.Callsite, row.Ev); err != nil {
				return nil, err
			}
		}
		if err := enc.Close(); err != nil {
			return nil, err
		}
		p := enc.Stats().PermutationPercent()
		res.Percent = append(res.Percent, p)
		res.Histogram.Add(p)
	}
	res.Summary = stats.Summarize(res.Percent)

	cfg.printf("Figure 14: percentage of permutated messages per rank (MCB, %d ranks)\n", run.Ranks)
	cfg.printf("%s", res.Histogram.Render(40))
	cfg.printf("  mean %.1f%%, median %.1f%%, min %.1f%%, max %.1f%% (paper: ~30%% mean)\n",
		res.Summary.Mean, res.Summary.Median, res.Summary.Min, res.Summary.Max)
	return res, nil
}
