package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/store/shardstore"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// StoreBackendRun is one backend's measurement: record a multi-rank stream
// through the Store API with per-epoch commits, replay it in full, and —
// on seekable backends — decode only the final epoch via the chunk index.
type StoreBackendRun struct {
	// Layout is the backend's store layout name (dir, sharded, mem).
	Layout string `json:"layout"`
	// Seekable reports whether committed index offsets are random-access
	// decode points on this backend.
	Seekable bool `json:"seekable"`
	// RecordNs is the wall-clock time to record and finalize every rank.
	RecordNs           int64   `json:"record_ns"`
	RecordEventsPerSec float64 `json:"record_events_per_sec"`
	// ReplayFullNs is the wall-clock time to LoadRank-decode every rank
	// from byte zero.
	ReplayFullNs       int64   `json:"replay_full_ns"`
	ReplayEventsPerSec float64 `json:"replay_events_per_sec"`
	// SeekTailNs is the wall-clock time to decode only past the last
	// committed cut of every rank, entered through the index (seekable
	// backends only; 0 otherwise). The index exists so a replayer can skip
	// to an epoch — this must beat decoding the whole blob.
	SeekTailNs int64 `json:"seek_tail_ns"`
	// Bytes is the total record size across ranks; Cuts the committed
	// index entries across ranks.
	Bytes int64 `json:"bytes"`
	Cuts  int   `json:"cuts"`
}

// StoreBenchResult is the machine-readable BENCH_store.json payload: the
// same workload pushed through every storage backend.
type StoreBenchResult struct {
	Seed   int64 `json:"seed"`
	Full   bool  `json:"full"`
	Ranks  int   `json:"ranks"`
	Events int   `json:"events"`
	Epochs int   `json:"epochs"`
	// Verified reports every backend decoded exactly the matched events it
	// recorded.
	Verified bool              `json:"verified"`
	Backends []StoreBackendRun `json:"backends"`
}

// Validate checks the capture is usable as a regression gate.
func (r *StoreBenchResult) Validate() error {
	if len(r.Backends) < 3 {
		return fmt.Errorf("store: want all three backends, have %d", len(r.Backends))
	}
	if !r.Verified {
		return fmt.Errorf("store: a backend decoded different events than it recorded")
	}
	for _, b := range r.Backends {
		if b.RecordEventsPerSec <= 0 || b.ReplayEventsPerSec <= 0 {
			return fmt.Errorf("store: backend %s measured no throughput", b.Layout)
		}
		if b.Seekable && b.SeekTailNs <= 0 {
			return fmt.Errorf("store: seekable backend %s measured no seek time", b.Layout)
		}
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *StoreBenchResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// storeBenchRecord streams evs through st rank by rank, committing a cut
// per epoch, and returns the total matched events written.
func storeBenchRecord(st store.Store, evs [][]tables.Event, epochs int) (uint64, error) {
	if err := st.Create(store.Manifest{Ranks: len(evs), App: "storebench"}); err != nil {
		return 0, err
	}
	var matched uint64
	for rank, stream := range evs {
		w, err := st.CreateRank(rank)
		if err != nil {
			return 0, err
		}
		enc, err := core.NewEncoder(w, core.EncoderOptions{
			ChunkEvents:  256,
			SeekableCuts: st.Seekable(),
			OnFlushPoint: func(clock, events uint64, offset int64) error {
				return w.Commit(store.Cut{Clock: clock, Events: events, Offset: offset})
			},
		})
		if err != nil {
			return 0, err
		}
		per := (len(stream) + epochs - 1) / epochs
		var maxClock uint64
		for i, ev := range stream {
			if err := enc.Observe(1, ev); err != nil {
				return 0, err
			}
			if ev.Clock > maxClock {
				maxClock = ev.Clock
			}
			if ev.Flag {
				matched++
			}
			if (i+1)%per == 0 && i+1 < len(stream) {
				if err := enc.FlushAll(maxClock); err != nil {
					return 0, err
				}
			}
		}
		if err := enc.Close(); err != nil {
			return 0, err
		}
		if err := w.Close(); err != nil {
			return 0, err
		}
	}
	return matched, st.Finalize()
}

// storeBenchReplay decodes every rank from byte zero and returns the total
// matched events.
func storeBenchReplay(st store.Store, ranks int) (uint64, error) {
	var matched uint64
	for rank := 0; rank < ranks; rank++ {
		rec, err := store.LoadRank(st, rank)
		if err != nil {
			return 0, err
		}
		for _, chunks := range rec.Chunks {
			for _, c := range chunks {
				matched += c.NumMatched
			}
		}
	}
	return matched, nil
}

// storeBenchSeekTail decodes only past the last committed cut of every
// rank, entered directly through the chunk index.
func storeBenchSeekTail(st store.Store, m store.Manifest) error {
	for rank := 0; rank < m.Ranks; rank++ {
		idx := m.RankIndex(rank)
		if len(idx) < 2 {
			continue
		}
		offset := idx[len(idx)-2].Offset
		r, err := st.OpenRank(rank)
		if err != nil {
			return err
		}
		it, err := core.OpenRecordAt(io.NewSectionReader(r, offset, r.Size()-offset))
		if err != nil {
			r.Close() //cdc:allow(errsink) best-effort cleanup; the open error is already propagating
			return err
		}
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				it.Close() //cdc:allow(errsink) best-effort cleanup; the decode error is already propagating
				r.Close()  //cdc:allow(errsink) best-effort cleanup; the decode error is already propagating
				return err
			}
		}
		if err := it.Close(); err != nil {
			r.Close() //cdc:allow(errsink) best-effort cleanup; the close error is already propagating
			return err
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	return nil
}

// StoreBench pushes one synthetic multi-rank stream through every storage
// backend (dir, sharded, mem) behind the Store API, measuring record
// throughput with per-epoch index commits, full replay throughput, and —
// where cuts are seekable — the index-entry seek that skips straight to
// the final epoch.
func StoreBench(cfg Config) (*StoreBenchResult, error) {
	cfg.fill()
	ranks := 4
	perRank := cfg.pick(20_000, 100_000)
	const epochs = 16
	result := &StoreBenchResult{
		Seed:     cfg.Seed,
		Full:     cfg.Full,
		Ranks:    ranks,
		Epochs:   epochs,
		Verified: true,
	}

	evs := make([][]tables.Event, ranks)
	var total uint64
	for rank := range evs {
		evs[rank] = workload.Stream(workload.StreamParams{
			Events: perRank, Senders: 4, Disorder: 3, UnmatchedProb: 0.1,
			Seed: cfg.Seed + int64(rank)*101,
		})
		for _, ev := range evs[rank] {
			if ev.Flag {
				total++
			}
		}
	}
	result.Events = int(total)

	tmp, err := os.MkdirTemp("", "storebench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	backends := []struct {
		name string
		st   store.Store
	}{
		{"dir", dirstore.New(filepath.Join(tmp, "dir"))},
		{"sharded", shardstore.New(filepath.Join(tmp, "sharded"))},
		{"mem", memstore.New()},
	}

	cfg.printf("Store backends: %d ranks x %d events, %d epochs per rank\n",
		ranks, perRank, epochs)
	cfg.printf("%8s %12s %12s %12s %12s %10s %6s\n",
		"layout", "record ev/s", "replay ev/s", "seek tail", "bytes", "cuts", "seek")
	for _, b := range backends {
		run := StoreBackendRun{Layout: b.st.Layout(), Seekable: b.st.Seekable()}

		start := time.Now()
		wrote, err := storeBenchRecord(b.st, evs, epochs)
		if err != nil {
			return nil, fmt.Errorf("store: recording via %s: %w", b.name, err)
		}
		run.RecordNs = time.Since(start).Nanoseconds()
		run.RecordEventsPerSec = float64(wrote) / (float64(run.RecordNs) / 1e9)

		start = time.Now()
		read, err := storeBenchReplay(b.st, ranks)
		if err != nil {
			return nil, fmt.Errorf("store: replaying via %s: %w", b.name, err)
		}
		run.ReplayFullNs = time.Since(start).Nanoseconds()
		run.ReplayEventsPerSec = float64(read) / (float64(run.ReplayFullNs) / 1e9)
		if read != wrote {
			result.Verified = false
		}

		m, err := b.st.Manifest()
		if err != nil {
			return nil, err
		}
		for rank := 0; rank < ranks; rank++ {
			idx := m.RankIndex(rank)
			run.Cuts += len(idx)
			if len(idx) > 0 {
				run.Bytes += idx[len(idx)-1].Offset
			}
		}
		if run.Seekable {
			start = time.Now()
			if err := storeBenchSeekTail(b.st, m); err != nil {
				return nil, fmt.Errorf("store: seeking via %s: %w", b.name, err)
			}
			run.SeekTailNs = time.Since(start).Nanoseconds()
		}

		result.Backends = append(result.Backends, run)
		seek := "-"
		if run.Seekable {
			seek = time.Duration(run.SeekTailNs).Round(time.Microsecond).String()
		}
		cfg.printf("%8s %12.0f %12.0f %12s %12s %10d %6v\n",
			run.Layout, run.RecordEventsPerSec, run.ReplayEventsPerSec,
			seek, human(run.Bytes), run.Cuts, run.Seekable)
	}
	if err := result.Validate(); err != nil {
		return result, err
	}
	return result, nil
}
