package harness

import (
	"fmt"
	"io"
	"sync"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/jacobi"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
)

// Fig17Result reproduces paper Fig. 17: record sizes under hidden
// deterministic communication (Jacobi/Poisson halo exchange with
// MPI_ANY_SOURCE). The paper reports gzip 91 MB vs CDC 2 MB (2.2%).
type Fig17Result struct {
	Ranks      int
	Iterations int
	Events     uint64
	GzipBytes  int64
	CDCBytes   int64
	// CDCPercent is CDC's size as a percentage of gzip's.
	CDCPercent float64
}

// Fig17 records the Jacobi solver with gzip and CDC backends.
func Fig17(cfg Config) (*Fig17Result, error) {
	cfg.fill()
	ranks := cfg.pick(16, 64)
	params := jacobi.Params{
		Rows:       8,
		Cols:       16,
		Iterations: cfg.pick(250, 1000), // paper: 1K iterations
	}

	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + 17, MaxJitter: 6})
	rows := make([][]Row, ranks)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		cap := newCapture()
		rec := record.New(lamport.Wrap(mpi), cap, record.Options{})
		_, rerr := jacobi.Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		rows[rank] = cap.rows
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig17Result{Ranks: ranks, Iterations: params.Iterations}
	for _, rankRows := range rows {
		for _, r := range rankRows {
			if r.Ev.Flag {
				res.Events++
			}
		}
		gz, err := feed(baseline.NewGzip(), rankRows)
		if err != nil {
			return nil, err
		}
		res.GzipBytes += gz
		enc, _ := core.NewEncoder(io.Discard, core.EncoderOptions{OmitSenderColumn: true})
		cd, err := feed(baseline.NewCDC(enc), rankRows)
		if err != nil {
			return nil, err
		}
		res.CDCBytes += cd
	}
	if res.GzipBytes > 0 {
		res.CDCPercent = 100 * float64(res.CDCBytes) / float64(res.GzipBytes)
	}

	cfg.printf("Figure 17: hidden deterministic communication (Jacobi, %d ranks, %d iterations, %d events)\n",
		res.Ranks, res.Iterations, res.Events)
	cfg.printf("  gzip: %12s\n", human(res.GzipBytes))
	cfg.printf("  CDC:  %12s  (%.1f%% of gzip; paper: 2.2%%)\n", human(res.CDCBytes), res.CDCPercent)
	return res, nil
}
