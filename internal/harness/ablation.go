package harness

import (
	"fmt"
	"io"
	"sync"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// AblationRow is one configuration's measurement.
type AblationRow struct {
	Name          string
	BytesPerEvent float64
	PermutedPct   float64
}

// AblationResult holds the design-choice sweeps DESIGN.md calls out:
// epoch chunk size, clock policy, network jitter, and the sender-column
// robustness extension.
type AblationResult struct {
	ChunkSize    []AblationRow
	ClockPolicy  []AblationRow
	Jitter       []AblationRow
	SenderColumn []AblationRow
}

// captureWithPolicy runs MCB under a capturing recorder with the given
// clock policy and jitter.
func captureWithPolicy(cfg *Config, ranks, jitter int, policy lamport.Policy, seed int64) ([][]tables.Event, error) {
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: seed, MaxJitter: jitter})
	rows := make([][]tables.Event, ranks)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		cap := newCapture()
		rec := record.New(lamport.WrapPolicy(mpi, policy), cap, record.Options{})
		_, rerr := mcb.Run(rec, mcb.Params{
			Particles: cfg.pick(150, 500),
			TimeSteps: 2,
			Seed:      seed,
		})
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
		events := make([]tables.Event, len(cap.rows))
		for i, r := range cap.rows {
			events[i] = r.Ev
		}
		mu.Lock()
		rows[rank] = events
		mu.Unlock()
		return nil
	})
	return rows, err
}

// encodeWith encodes captured rows through a CDC encoder with the given
// options and reports size and permutation statistics.
func encodeWith(rows [][]tables.Event, opts core.EncoderOptions) (AblationRow, error) {
	var row AblationRow
	var bytesTotal int64
	var permuted, matched uint64
	for _, evs := range rows {
		enc, err := core.NewEncoder(io.Discard, opts)
		if err != nil {
			return row, err
		}
		m := baseline.NewCDC(enc)
		for _, ev := range evs {
			if err := m.Observe(0, ev); err != nil {
				return row, err
			}
		}
		if err := m.Close(); err != nil {
			return row, err
		}
		bytesTotal += m.BytesWritten()
		permuted += enc.Stats().PermutedMessages
		matched += enc.Stats().MatchedEvents
	}
	if matched > 0 {
		row.BytesPerEvent = float64(bytesTotal) / float64(matched)
		row.PermutedPct = 100 * float64(permuted) / float64(matched)
	}
	return row, nil
}

// Ablations runs the design-choice sweeps and prints them.
func Ablations(cfg Config) (*AblationResult, error) {
	cfg.fill()
	ranks := cfg.pick(8, 16)
	res := &AblationResult{}

	base, err := captureWithPolicy(&cfg, ranks, 8, lamport.Classic, cfg.Seed+21)
	if err != nil {
		return nil, err
	}

	cfg.printf("Ablation: epoch chunk size (§3.5 memory/size trade)\n")
	for _, chunk := range []int{256, 1024, 4096, 16384} {
		row, err := encodeWith(base, core.EncoderOptions{ChunkEvents: chunk, OmitSenderColumn: true})
		if err != nil {
			return nil, err
		}
		row.Name = fmt.Sprintf("chunk %5d", chunk)
		res.ChunkSize = append(res.ChunkSize, row)
		cfg.printf("  %-12s %7.3f B/event\n", row.Name, row.BytesPerEvent)
	}

	cfg.printf("Ablation: sender/tag column (replay robustness extension)\n")
	for _, omit := range []bool{true, false} {
		row, err := encodeWith(base, core.EncoderOptions{OmitSenderColumn: omit})
		if err != nil {
			return nil, err
		}
		if omit {
			row.Name = "paper format"
		} else {
			row.Name = "with columns"
		}
		res.SenderColumn = append(res.SenderColumn, row)
		cfg.printf("  %-12s %7.3f B/event\n", row.Name, row.BytesPerEvent)
	}

	cfg.printf("Ablation: clock policy (§4.3 future work)\n")
	for _, pc := range []struct {
		name   string
		policy lamport.Policy
	}{{"classic", lamport.Classic}, {"receiveMax", lamport.ReceiveMax}} {
		rows, err := captureWithPolicy(&cfg, ranks, 8, pc.policy, cfg.Seed+22)
		if err != nil {
			return nil, err
		}
		row, err := encodeWith(rows, core.EncoderOptions{OmitSenderColumn: true})
		if err != nil {
			return nil, err
		}
		row.Name = pc.name
		res.ClockPolicy = append(res.ClockPolicy, row)
		cfg.printf("  %-12s %7.3f B/event  %5.1f%% permuted\n", row.Name, row.BytesPerEvent, row.PermutedPct)
	}

	cfg.printf("Ablation: network jitter window (noise → permutation → size)\n")
	for _, jitter := range []int{0, 4, 16, 64} {
		rows, err := captureWithPolicy(&cfg, ranks, jitter, lamport.Classic, cfg.Seed+23)
		if err != nil {
			return nil, err
		}
		row, err := encodeWith(rows, core.EncoderOptions{OmitSenderColumn: true})
		if err != nil {
			return nil, err
		}
		row.Name = fmt.Sprintf("jitter %3d", jitter)
		res.Jitter = append(res.Jitter, row)
		cfg.printf("  %-12s %7.3f B/event  %5.1f%% permuted\n", row.Name, row.BytesPerEvent, row.PermutedPct)
	}
	return res, nil
}
