package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/internal/dst"
)

// DST drives one schedule-exploration run (cmd/cdcdst): it explores, prints
// a summary, and for every captured failure writes a replayable trace file
// (both the full and the shrunk schedule) plus the exact repro command.
// traceDir == "" skips trace files. The returned report is the caller's exit
// status: any TotalFailures > 0 is a red run.
func DST(cfg Config, dcfg dst.Config, traceDir string) (*dst.Report, error) {
	cfg.fill()
	if dcfg.Logf == nil {
		dcfg.Logf = func(format string, args ...any) {
			cfg.printf(format+"\n", args...)
		}
	}
	rep, err := dst.Explore(dcfg)
	if err != nil {
		return nil, err
	}
	cfg.printf("\npolicy=%s workload=%s: %d schedules, %d decisions, digest %016x\n",
		rep.Policy, rep.Workload, rep.Schedules, rep.Decisions, rep.Digest)
	if rep.TotalFailures == 0 {
		cfg.printf("all explored schedules satisfy the enabled properties\n")
		return rep, nil
	}
	cfg.printf("%d failing schedule(s), %d captured:\n", rep.TotalFailures, len(rep.Failures))
	for i, f := range rep.Failures {
		cfg.printf("  [%d] %s\n      %s\n      shrunk %d -> %d decisions: %v\n",
			i, f.Trace, f.Err, len(f.Trace.Decisions), len(f.Shrunk), f.Shrunk)
		if traceDir == "" {
			continue
		}
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return rep, err
		}
		full := filepath.Join(traceDir, fmt.Sprintf("fail-%02d.trace", i))
		if err := f.Trace.WriteFile(full); err != nil {
			return rep, err
		}
		shrunkTrace := *f.Trace
		shrunkTrace.Decisions = f.Shrunk
		small := filepath.Join(traceDir, fmt.Sprintf("fail-%02d.shrunk.trace", i))
		if err := shrunkTrace.WriteFile(small); err != nil {
			return rep, err
		}
		cfg.printf("      repro: go run ./cmd/cdcdst -repro %s   (shrunk: %s)\n", full, small)
	}
	return rep, nil
}

// DSTRepro replays a trace file written by DST and reports whether it still
// fails (err non-nil) — the CLI's -repro entry point.
func DSTRepro(cfg Config, path string) error {
	cfg.fill()
	tr, err := dst.ReadTraceFile(path)
	if err != nil {
		return err
	}
	cfg.printf("replaying trace: %s\n", tr)
	if rerr := dst.Repro(tr); rerr != nil {
		return fmt.Errorf("trace reproduces the failure: %w", rerr)
	}
	cfg.printf("trace no longer fails\n")
	return nil
}
