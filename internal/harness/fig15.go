package harness

import (
	"cdcreplay/internal/mcb"
)

// Fig15Point is one sample of the per-node record-size estimate.
type Fig15Point struct {
	Method    string
	Intensity float64
	Hours     float64
	MB        float64
}

// Fig15Result reproduces paper Fig. 15: per-node record-size estimates as
// simulation time increases, for gzip and CDC at communication intensities
// ×1, ×1.5 and ×2. Like the paper, the curve is an extrapolation: measured
// bytes/event × measured events/sec/process × 24 processes/node × time.
type Fig15Result struct {
	// EventsPerSecPerProc is the measured event production rate.
	EventsPerSecPerProc float64
	// BytesPerEvent by method name.
	BytesPerEvent map[string]float64
	Points        []Fig15Point
	// BudgetHours reports how long each (method, intensity) combination
	// can record into a 500 MB node-local budget (the paper's ramdisk
	// discussion: gzip ~5h vs CDC >24h at ×1).
	BudgetHours map[string]map[float64]float64
}

// ProcsPerNode matches Catalyst's 24 cores/node (paper Table 1).
const ProcsPerNode = 24

// Fig15Budget is the node-local storage budget the paper discusses.
const Fig15Budget = 500.0 // MB

// PaperEventsPerSecPerProc is MCB's event production rate on Catalyst
// (§6.1: about 9.7 million receive events over a 12.3 s run at 3072
// processes; §6.2 quotes 258 events/sec/process). Our simulator produces
// events far faster in wall-clock terms, so the Fig. 15 extrapolation is
// normalized to the paper's rate to make the absolute hours comparable.
const PaperEventsPerSecPerProc = 258.0

// Fig15 measures MCB's per-event record cost and extrapolates node-local
// storage growth.
func Fig15(cfg Config) (*Fig15Result, error) {
	cfg.fill()
	ranks := cfg.pick(24, 48)
	run, err := captureMCB(&cfg, ranks, mcb.Params{
		Particles: cfg.pick(150, 600),
		TimeSteps: cfg.pick(2, 3),
		Seed:      cfg.Seed + 15,
	})
	if err != nil {
		return nil, err
	}
	quiet := Config{Seed: cfg.Seed}
	quiet.fill() // discard the intermediate Fig. 13 table
	f13, err := fig13FromRun(&quiet, run)
	if err != nil {
		return nil, err
	}
	return fig15FromMeasurements(&cfg, run, f13)
}

func fig15FromMeasurements(cfg *Config, run *MCBRun, f13 *Fig13Result) (*Fig15Result, error) {
	res := &Fig15Result{
		BytesPerEvent: map[string]float64{},
		BudgetHours:   map[string]map[float64]float64{},
	}
	events := float64(run.MatchedEvents())
	res.EventsPerSecPerProc = events / run.Elapsed.Seconds() / float64(run.Ranks)
	for _, name := range []string{"gzip", "CDC"} {
		if m := f13.Find(name); m != nil {
			res.BytesPerEvent[name] = m.BytesPerEvent
		}
	}

	intensities := []float64{1, 1.5, 2}
	hours := []float64{0, 5, 10, 15, 20, 24}
	cfg.printf("Figure 15: per-node record size estimate vs simulation time (%d procs/node)\n", ProcsPerNode)
	cfg.printf("  measured bytes/event: gzip %.3f, CDC %.3f; measured event rate: %.0f ev/s/proc\n",
		res.BytesPerEvent["gzip"], res.BytesPerEvent["CDC"], res.EventsPerSecPerProc)
	cfg.printf("  Normalized to the paper's MCB event rate (%.0f ev/s/proc, from 9.7M events / 12.3 s / 3072 procs):\n",
		PaperEventsPerSecPerProc)
	for _, name := range []string{"gzip", "CDC"} {
		res.BudgetHours[name] = map[float64]float64{}
		for _, in := range intensities {
			ratePerNodeMB := res.BytesPerEvent[name] * PaperEventsPerSecPerProc * in * ProcsPerNode / 1e6
			for _, h := range hours {
				mb := ratePerNodeMB * h * 3600
				res.Points = append(res.Points, Fig15Point{Method: name, Intensity: in, Hours: h, MB: mb})
			}
			budget := 1e9
			if ratePerNodeMB > 0 {
				budget = Fig15Budget / (ratePerNodeMB * 3600)
			}
			res.BudgetHours[name][in] = budget
			cfg.printf("  %-5s x%.1f: %8.1f MB/node after 24 h; 500 MB budget lasts %6.1f h\n",
				name, in, ratePerNodeMB*24*3600, budget)
		}
	}
	cfg.printf("  (paper: gzip exhausts 500 MB in ~5 h; CDC runs >24 h, ~1 GB at x2 intensity)\n")
	return res, nil
}
