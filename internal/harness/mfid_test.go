package harness

import (
	"io"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
)

// TestMFIDSeparatesMixedStreams constructs the situation §4.4 targets: two
// MF callsites whose streams are each perfectly clock-ordered, but whose
// interleaving is bursty, so a merged record looks heavily permuted while
// per-callsite records have no permutation at all.
func TestMFIDSeparatesMixedStreams(t *testing.T) {
	var rows []Row
	clockA, clockB := uint64(1), uint64(2)
	// Bursts: 8 events from callsite A, then 8 from B covering an
	// overlapping clock range, repeatedly.
	for burst := 0; burst < 200; burst++ {
		for i := 0; i < 8; i++ {
			clockA += 2
			rows = append(rows, Row{Callsite: 1, Ev: tables.Matched(0, clockA, false)})
		}
		for i := 0; i < 8; i++ {
			clockB += 2
			rows = append(rows, Row{Callsite: 2, Ev: tables.Matched(1, clockB, false)})
		}
	}

	size := func(merge bool) int64 {
		enc, err := core.NewEncoder(io.Discard, core.EncoderOptions{OmitSenderColumn: true})
		if err != nil {
			t.Fatal(err)
		}
		var m baseline.Method
		if merge {
			m = baseline.NewCDCNoMFID(enc)
		} else {
			m = baseline.NewCDC(enc)
		}
		n, err := feed(m, rows)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	merged := size(true)
	split := size(false)
	if split >= merged {
		t.Fatalf("MF identification did not help on bursty mixed streams: split %d >= merged %d", split, merged)
	}
	t.Logf("merged %d B, per-callsite %d B (%.1fx)", merged, split, float64(merged)/float64(split))
}
