package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// EncodeWorkerRun is one worker-count measurement of the chunk-encoding
// pipeline over the shared synthetic workload.
type EncodeWorkerRun struct {
	// Workers is the EncoderOptions.EncodeWorkers setting; 1 is the
	// single-threaded reference path.
	Workers int `json:"workers"`
	// NsTotal is the wall-clock encode time for the whole stream.
	NsTotal int64 `json:"ns_total"`
	// EventsPerSec and NsPerEvent are the throughput views of NsTotal.
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	// Speedup is this run's throughput over the workers=1 run.
	Speedup float64 `json:"speedup"`
	// AllocsPerEvent is heap allocations per observed event (mallocs from
	// runtime.MemStats), the pooling-effectiveness gauge.
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Bytes is the record size produced (identical across worker counts).
	Bytes int64 `json:"bytes"`
	// Digest is the SHA-256 of the produced record stream.
	Digest string `json:"digest"`
}

// EncodeResult is the machine-readable BENCH_encode.json payload: the
// serial-vs-parallel encode throughput comparison plus the byte-identity
// check across worker counts.
type EncodeResult struct {
	Seed   int64 `json:"seed"`
	Full   bool  `json:"full"`
	Events int   `json:"events"`
	Rows   int   `json:"rows"`
	// Identical reports that every worker count produced the exact same
	// record bytes as the workers=1 reference (the ordered-commit format
	// guarantee, checked by digest).
	Identical bool              `json:"identical_output"`
	Runs      []EncodeWorkerRun `json:"runs"`
}

// Validate checks the capture is usable as a regression gate.
func (r *EncodeResult) Validate() error {
	if len(r.Runs) < 2 {
		return fmt.Errorf("encode: need a serial run and at least one parallel run, have %d", len(r.Runs))
	}
	if !r.Identical {
		return fmt.Errorf("encode: parallel output diverged from serial output")
	}
	for _, run := range r.Runs {
		if run.EventsPerSec <= 0 {
			return fmt.Errorf("encode: workers=%d measured no throughput", run.Workers)
		}
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *EncodeResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// encodeStream is the fixed multi-callsite workload every worker count
// encodes: three MCB-like streams interleaved the way a recorder's CDC
// thread sees them.
type encodeStream struct {
	callsites []uint64
	rows      []Row
	events    int
}

func makeEncodeStream(events int, seed int64) encodeStream {
	s := encodeStream{callsites: []uint64{0x10, 0x20, 0x30}}
	perSite := make([][]tables.Event, len(s.callsites))
	for i := range s.callsites {
		perSite[i] = workload.Stream(workload.MCBLike(events/len(s.callsites), 1, seed+int64(i)))
	}
	// Round-robin interleave, emulating arrival interleaving across
	// concurrent callsites.
	for n := 0; ; n++ {
		emitted := false
		for i, evs := range perSite {
			if n < len(evs) {
				s.rows = append(s.rows, Row{Callsite: s.callsites[i], Ev: evs[n]})
				emitted = true
			}
		}
		if !emitted {
			break
		}
	}
	for _, r := range s.rows {
		if r.Ev.Flag {
			s.events++
		}
	}
	return s
}

// encodeOnce drives one encoder over the stream and reports wall time,
// malloc count, and the produced bytes.
func encodeOnce(s encodeStream, workers int, chunkEvents int) (ns int64, mallocs uint64, out []byte, err error) {
	var buf bytes.Buffer
	buf.Grow(1 << 20)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	enc, err := core.NewEncoder(&buf, core.EncoderOptions{
		ChunkEvents:   chunkEvents,
		EncodeWorkers: workers,
	})
	if err != nil {
		return 0, 0, nil, err
	}
	for i, cs := range s.callsites {
		if err := enc.RegisterCallsite(cs, fmt.Sprintf("bench/site%d", i)); err != nil {
			return 0, 0, nil, err
		}
	}
	for _, r := range s.rows {
		if err := enc.Observe(r.Callsite, r.Ev); err != nil {
			return 0, 0, nil, err
		}
	}
	if err := enc.Close(); err != nil {
		return 0, 0, nil, err
	}
	ns = time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return ns, after.Mallocs - before.Mallocs, buf.Bytes(), nil
}

// Encode measures the chunk-encoding pipeline serial vs parallel
// (EncodeWorkers 1/2/4/8) over one shared synthetic workload, reporting
// throughput, allocations per event, and the byte-identity of every
// parallel output against the serial reference.
func Encode(cfg Config) (*EncodeResult, error) {
	cfg.fill()
	events := cfg.pick(60_000, 300_000)
	s := makeEncodeStream(events, cfg.Seed+11)
	result := &EncodeResult{
		Seed:      cfg.Seed,
		Full:      cfg.Full,
		Events:    s.events,
		Rows:      len(s.rows),
		Identical: true,
	}
	const chunkEvents = 512 // enough chunks in flight to exercise the pool

	cfg.printf("Encode pipeline: serial vs parallel over %d rows (%d matched events)\n",
		len(s.rows), s.events)
	cfg.printf("%8s %12s %12s %10s %14s %10s\n",
		"workers", "total", "events/s", "speedup", "allocs/event", "bytes")
	var refDigest string
	var refEps float64
	for _, workers := range []int{1, 2, 4, 8} {
		// Warm-up run primes the builder/job/gzip pools and the page
		// cache so the measured pass sees steady state.
		if _, _, _, err := encodeOnce(s, workers, chunkEvents); err != nil {
			return nil, fmt.Errorf("encode: warmup workers=%d: %w", workers, err)
		}
		ns, mallocs, out, err := encodeOnce(s, workers, chunkEvents)
		if err != nil {
			return nil, fmt.Errorf("encode: workers=%d: %w", workers, err)
		}
		sum := sha256.Sum256(out)
		run := EncodeWorkerRun{
			Workers:        workers,
			NsTotal:        ns,
			EventsPerSec:   float64(s.events) / (float64(ns) / 1e9),
			NsPerEvent:     float64(ns) / float64(s.events),
			AllocsPerEvent: float64(mallocs) / float64(s.events),
			Bytes:          int64(len(out)),
			Digest:         hex.EncodeToString(sum[:]),
		}
		if workers == 1 {
			refDigest, refEps = run.Digest, run.EventsPerSec
		} else if run.Digest != refDigest {
			result.Identical = false
		}
		run.Speedup = run.EventsPerSec / refEps
		result.Runs = append(result.Runs, run)
		cfg.printf("%8d %12s %12.0f %9.2fx %14.3f %10d\n",
			workers, time.Duration(ns).Round(time.Microsecond), run.EventsPerSec,
			run.Speedup, run.AllocsPerEvent, run.Bytes)
	}
	if !result.Identical {
		cfg.printf("WARNING: parallel output diverged from serial output\n")
	}
	if err := result.Validate(); err != nil {
		return result, err
	}
	return result, nil
}
