package harness

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

// QueueResult reproduces the §6.2 observe-queue throughput measurement:
// the CDC thread must drain events faster than the application produces
// them, so the bounded queue never blocks the main thread.
type QueueResult struct {
	EnqueueRate float64 // events/sec/process produced by the application
	DrainRate   float64 // events/sec/process the CDC goroutine can absorb
	Blocked     uint64  // Enqueue calls that found the queue full
}

// QueueRates measures both rates on a live MCB run.
func QueueRates(cfg Config) (*QueueResult, error) {
	cfg.fill()
	ranks := cfg.pick(8, 24)
	params := mcb.Params{Particles: cfg.pick(200, 800), TimeSteps: 2, Seed: cfg.Seed + 18}
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + 18, MaxJitter: 8})
	var mu sync.Mutex
	res := &QueueResult{}
	var produced uint64
	var appTime, drainTime time.Duration
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		enc, _ := core.NewEncoder(&bytes.Buffer{}, core.EncoderOptions{OmitSenderColumn: true})
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		start := time.Now()
		_, rerr := mcb.Run(rec, params)
		elapsed := time.Since(start)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		st := rec.Stats()
		mu.Lock()
		produced += st.Enqueued
		res.Blocked += st.EnqueueBlocked
		appTime += elapsed
		drainTime += st.DrainDuration
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if appTime > 0 {
		res.EnqueueRate = float64(produced) / appTime.Seconds()
	}
	if drainTime > 0 {
		res.DrainRate = float64(produced) / drainTime.Seconds()
	}

	cfg.printf("Observe-queue rates (§6.2): enqueue %.0f events/sec/proc, drain capacity %.0f events/sec/proc, blocked %d\n",
		res.EnqueueRate, res.DrainRate, res.Blocked)
	cfg.printf("  (paper: recording speed 331K events/sec/proc vs production 258 events/sec/proc)\n")
	return res, nil
}

// PiggybackResult reproduces the §6.2 clock-piggybacking overhead
// measurement (paper: 1.18%).
type PiggybackResult struct {
	PlainTracksPerSec     float64
	PiggybackTracksPerSec float64
	OverheadPercent       float64
	// ByteOverheadPercent is the deterministic complement to the noisy
	// wall-clock number: the fraction of all sent bytes that are
	// piggyback headers (8 bytes × messages / total bytes).
	ByteOverheadPercent float64
}

// PiggybackOverhead compares MCB with and without the 8-byte clock layer
// (no recording in either case).
func PiggybackOverhead(cfg Config) (*PiggybackResult, error) {
	cfg.fill()
	ranks := cfg.pick(8, 24)
	params := mcb.Params{Particles: cfg.pick(300, 1000), TimeSteps: 2, Seed: cfg.Seed + 19, TrackWork: 600}
	run := func(withClock bool) (float64, simmpi.Traffic, error) {
		w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + 19, MaxJitter: 8})
		var mu sync.Mutex
		var tracks float64
		var traffic simmpi.Traffic
		start := time.Now()
		err := w.Run(func(mpi simmpi.MPI) error {
			var stack simmpi.MPI = mpi
			if withClock {
				stack = lamport.Wrap(mpi)
			}
			res, err := mcb.Run(stack, params)
			if err != nil {
				return err
			}
			tr := mpi.(*simmpi.Comm).Traffic()
			mu.Lock()
			if tracks == 0 {
				tracks = res.GlobalTracks
			}
			traffic.SentMessages += tr.SentMessages
			traffic.SentBytes += tr.SentBytes
			mu.Unlock()
			return nil
		})
		if err != nil {
			return 0, traffic, err
		}
		return tracks / time.Since(start).Seconds(), traffic, nil
	}
	res := &PiggybackResult{}
	var err error
	if res.PlainTracksPerSec, _, err = run(false); err != nil {
		return nil, err
	}
	var pbTraffic simmpi.Traffic
	if res.PiggybackTracksPerSec, pbTraffic, err = run(true); err != nil {
		return nil, err
	}
	if res.PlainTracksPerSec > 0 {
		res.OverheadPercent = 100 * (res.PlainTracksPerSec - res.PiggybackTracksPerSec) / res.PlainTracksPerSec
	}
	if pbTraffic.SentBytes > 0 {
		res.ByteOverheadPercent = 100 * float64(8*pbTraffic.SentMessages) / float64(pbTraffic.SentBytes)
	}
	cfg.printf("Clock piggybacking overhead (§6.2): plain %.0f vs piggybacked %.0f tracks/sec → %.2f%% wall-clock (noisy)\n",
		res.PlainTracksPerSec, res.PiggybackTracksPerSec, res.OverheadPercent)
	cfg.printf("  piggyback bytes: %.2f%% of all sent bytes (8 B on %d messages; paper reports 1.18%% runtime)\n",
		res.ByteOverheadPercent, pbTraffic.SentMessages)
	return res, nil
}

// ReplayResult validates Theorems 1–2 end to end on MCB.
type ReplayResult struct {
	Ranks int
	// TalliesMatch reports whether every rank's replayed tally equals the
	// recorded one bit for bit.
	TalliesMatch bool
	// MaxAbsDiff is the largest per-rank tally difference (0 when
	// matching).
	MaxAbsDiff float64
	// RecordBytes is the total record size used for the replay.
	RecordBytes int64
}

// ReplayValidation records an MCB run, replays it on a differently-seeded
// network, and compares the order-sensitive tallies.
func ReplayValidation(cfg Config) (*ReplayResult, error) {
	cfg.fill()
	ranks := cfg.pick(8, 24)
	params := mcb.Params{Particles: cfg.pick(100, 400), TimeSteps: 2, Seed: cfg.Seed + 20, CrossProb: 0.4}

	files := make([][]byte, ranks)
	tallies := make([]float64, ranks)
	var mu sync.Mutex
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + 20, MaxJitter: 8})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		r, rerr := mcb.Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		files[rank] = buf.Bytes()
		tallies[rank] = r.Tally
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &ReplayResult{Ranks: ranks, TalliesMatch: true}
	for _, f := range files {
		res.RecordBytes += int64(len(f))
	}
	w2 := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + 999, MaxJitter: 8})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		// Streaming replay: a prescan pass summarizes the record, then the
		// replayer pulls chunks lazily — the record is never materialized.
		scanIt, err := core.OpenRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		meta, err := replay.ScanRecord(scanIt)
		if err != nil {
			return err
		}
		feedIt, err := core.OpenRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := replay.NewStream(lamport.WrapManual(mpi), meta, replay.IterSource(feedIt), replay.Options{})
		defer rp.Close() //cdc:allow(errsink) in-memory source; decode errors surface during replay
		r, rerr := mcb.Run(rp, params)
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		mu.Lock()
		if d := math.Abs(r.Tally - tallies[rank]); d > res.MaxAbsDiff {
			res.MaxAbsDiff = d
		}
		if r.Tally != tallies[rank] {
			res.TalliesMatch = false
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	cfg.printf("Replay validation (Theorems 1–2): %d ranks, record %s\n", ranks, human(res.RecordBytes))
	cfg.printf("  tallies bit-identical: %v (max |diff| %g)\n", res.TalliesMatch, res.MaxAbsDiff)
	return res, nil
}
