package harness

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Out: &bytes.Buffer{}, Seed: 42}
}

func TestDecodeBenchShape(t *testing.T) {
	res, err := DecodeBench(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.DigestIdentical {
		t.Fatal("frame-stream digests differ across pool widths")
	}
	if !res.Seekable {
		t.Fatal("decode bench must run over a seekable backend (segment parallelism)")
	}
	for i, run := range res.Runs {
		if run.Digest != res.Runs[0].Digest {
			t.Fatalf("run %d (workers=%d) digest %s != serial %s", i, run.Workers, run.Digest, res.Runs[0].Digest)
		}
	}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clocks) == 0 {
		t.Fatal("no received clocks")
	}
	// The paper's observation: received clocks almost always increase.
	if res.MonotoneFraction < 0.5 {
		t.Fatalf("monotone fraction %.2f; clocks are not near-ordered", res.MonotoneFraction)
	}
}

func TestFig13Shape(t *testing.T) {
	var out bytes.Buffer
	res, err := Fig13(Config{Out: &out, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	raw := res.Find("w/o compression")
	gz := res.Find("gzip")
	re := res.Find("CDC (RE)")
	nomf := res.Find("CDC (RE + PE + LPE)")
	cdc := res.Find("CDC")
	if raw == nil || gz == nil || re == nil || nomf == nil || cdc == nil {
		t.Fatalf("missing methods: %+v", res.Methods)
	}
	// The paper's ordering: raw > gzip > RE > RE+PE+LPE >= CDC.
	if !(raw.Bytes > gz.Bytes && gz.Bytes > re.Bytes && re.Bytes > nomf.Bytes) {
		t.Fatalf("size ordering violated: raw=%d gzip=%d RE=%d noMFID=%d CDC=%d",
			raw.Bytes, gz.Bytes, re.Bytes, nomf.Bytes, cdc.Bytes)
	}
	// MF identification's benefit depends on the traffic mix: MCB's
	// control stream is tiny next to its particle stream, so at quick
	// scale the split brings mostly fixed framing overhead (callsite
	// names, per-chunk IDs) that amortizes with run length. Require it
	// to stay a small constant. The case where the split clearly wins is
	// exercised by TestMFIDSeparatesMixedStreams.
	if float64(cdc.Bytes) > 1.12*float64(nomf.Bytes) {
		t.Fatalf("MF identification cost more than 12%%: %d vs %d", cdc.Bytes, nomf.Bytes)
	}
	if res.CDCvsGzip < 1.5 {
		t.Fatalf("CDC only %.2fx better than gzip", res.CDCvsGzip)
	}
	if res.CDCvsRaw < 10 {
		t.Fatalf("CDC only %.1fx better than raw", res.CDCvsRaw)
	}
	if !strings.Contains(out.String(), "Figure 13") {
		t.Fatal("missing table header")
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Percent) == 0 {
		t.Fatal("no per-rank percentages")
	}
	// MCB receives are mostly in reference order (paper: ~30% permuted,
	// i.e. 70% similarity). Allow a generous band for the simulator.
	if res.Summary.Mean > 60 {
		t.Fatalf("mean permutation %.1f%%; receives are not clock-ordered enough", res.Summary.Mean)
	}
	if res.Histogram.Total() != len(res.Percent) {
		t.Fatal("histogram sample count mismatch")
	}
}

func TestFig15Shape(t *testing.T) {
	res, err := Fig15(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerEvent["CDC"] >= res.BytesPerEvent["gzip"] {
		t.Fatalf("CDC bytes/event %.3f >= gzip %.3f", res.BytesPerEvent["CDC"], res.BytesPerEvent["gzip"])
	}
	// CDC must survive longer on the 500 MB budget at every intensity.
	for _, in := range []float64{1, 1.5, 2} {
		if res.BudgetHours["CDC"][in] <= res.BudgetHours["gzip"][in] {
			t.Fatalf("intensity %.1f: CDC budget %.1fh <= gzip %.1fh",
				in, res.BudgetHours["CDC"][in], res.BudgetHours["gzip"][in])
		}
	}
	if len(res.Points) == 0 {
		t.Fatal("no series points")
	}
}

func TestFig17Shape(t *testing.T) {
	res, err := Fig17(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("no events recorded")
	}
	// The paper's headline: CDC shrinks hidden-deterministic records to a
	// few percent of gzip's size.
	if res.CDCPercent > 35 {
		t.Fatalf("CDC is %.1f%% of gzip on deterministic traffic; expected a small fraction", res.CDCPercent)
	}
}

func TestQueueRates(t *testing.T) {
	res, err := QueueRates(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.DrainRate <= res.EnqueueRate {
		t.Fatalf("CDC thread drains at %.0f ev/s, slower than production %.0f ev/s", res.DrainRate, res.EnqueueRate)
	}
}

func TestReplayValidation(t *testing.T) {
	res, err := ReplayValidation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TalliesMatch {
		t.Fatalf("replay tallies diverged by up to %g", res.MaxAbsDiff)
	}
}

func TestPiggybackOverheadRuns(t *testing.T) {
	res, err := PiggybackOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.PlainTracksPerSec <= 0 || res.PiggybackTracksPerSec <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
}

func TestAblations(t *testing.T) {
	res, err := Ablations(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChunkSize) != 4 || len(res.ClockPolicy) != 2 || len(res.Jitter) != 4 || len(res.SenderColumn) != 2 {
		t.Fatalf("rows missing: %+v", res)
	}
	// The sender/tag column must cost something but stay fractional.
	paper, cols := res.SenderColumn[0], res.SenderColumn[1]
	if cols.BytesPerEvent <= paper.BytesPerEvent {
		t.Fatalf("sender column was free? %v vs %v", cols.BytesPerEvent, paper.BytesPerEvent)
	}
	if cols.BytesPerEvent > paper.BytesPerEvent+0.5 {
		t.Fatalf("sender column too costly: %v vs %v", cols.BytesPerEvent, paper.BytesPerEvent)
	}
	// A much wider jitter window must not show less permutation than a
	// narrow one (goroutine scheduling adds a noise floor at jitter 0, so
	// compare against the narrow-window configuration).
	if res.Jitter[3].PermutedPct < res.Jitter[1].PermutedPct {
		t.Fatalf("jitter sweep inverted: %+v", res.Jitter)
	}
}
