package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
)

// Fig16Point is one (process count, mode) measurement.
type Fig16Point struct {
	Ranks        int
	Mode         string // "none", "gzip", "CDC"
	TracksPerSec float64
}

// Fig16Result reproduces paper Fig. 16: weak-scaling MCB throughput
// without recording, with gzip recording and with CDC recording. The paper
// reports 13.1–25.5% CDC overhead and a 4.6–13.9% CDC-vs-gzip gap.
type Fig16Result struct {
	Points []Fig16Point
	// OverheadCDC and OverheadGzip are percentage slowdowns vs "none",
	// indexed by rank count.
	OverheadCDC  map[int]float64
	OverheadGzip map[int]float64
}

// fig16Modes builds the per-rank tool stack for each mode.
func fig16Stack(mode string, mpi simmpi.MPI) (simmpi.MPI, func() error) {
	switch mode {
	case "gzip":
		rec := record.New(lamport.Wrap(mpi), baseline.NewGzip(), record.Options{})
		return rec, rec.Close
	case "CDC":
		enc, _ := core.NewEncoder(io.Discard, core.EncoderOptions{OmitSenderColumn: true})
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		return rec, rec.Close
	default:
		return mpi, func() error { return nil }
	}
}

// runMCBMode runs MCB at the given scale under one recording mode and
// returns the global tracks/sec.
func runMCBMode(cfg *Config, ranks int, mode string, params mcb.Params) (float64, error) {
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed + int64(ranks), MaxJitter: 8})
	var mu sync.Mutex
	var tracks float64
	start := time.Now()
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		stack, closeFn := fig16Stack(mode, mpi)
		res, rerr := mcb.Run(stack, params)
		if cerr := closeFn(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		if tracks == 0 {
			tracks = res.GlobalTracks
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return tracks / time.Since(start).Seconds(), nil
}

// Fig16 measures recording overhead under weak scaling (constant particles
// per process, like the paper's 4000/process).
func Fig16(cfg Config) (*Fig16Result, error) {
	cfg.fill()
	var scales []int
	if cfg.Full {
		scales = []int{4, 8, 16, 32, 64}
	} else {
		scales = []int{4, 8, 16}
	}
	// TrackWork sets the compute/communication ratio. The paper's MCB is
	// compute-heavy (258 receive events/sec/process against full-core
	// Monte Carlo tracking), so the per-segment kernel here is sized to
	// keep recording work a modest fraction of tracking work, as on
	// Catalyst.
	params := mcb.Params{
		Particles: cfg.pick(200, 600),
		TimeSteps: 2,
		Seed:      cfg.Seed + 16,
		TrackWork: 600,
	}
	res := &Fig16Result{
		OverheadCDC:  map[int]float64{},
		OverheadGzip: map[int]float64{},
	}
	cfg.printf("Figure 16: MCB weak-scaling throughput (tracks/sec), %d particles/process\n", params.Particles)
	for _, ranks := range scales {
		base := 0.0
		for _, mode := range []string{"none", "gzip", "CDC"} {
			tps, err := runMCBMode(&cfg, ranks, mode, params)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, Fig16Point{Ranks: ranks, Mode: mode, TracksPerSec: tps})
			if mode == "none" {
				base = tps
			}
			overhead := 0.0
			if base > 0 {
				overhead = 100 * (base - tps) / base
			}
			switch mode {
			case "gzip":
				res.OverheadGzip[ranks] = overhead
			case "CDC":
				res.OverheadCDC[ranks] = overhead
			}
			cfg.printf("  %4d procs  %-5s %12.0f tracks/sec  (overhead %5.1f%%)\n", ranks, mode, tps, overhead)
		}
	}
	cfg.printf("  (paper: CDC overhead 13.1–25.5%%, CDC vs gzip gap 4.6–13.9%%)\n")
	return res, nil
}
