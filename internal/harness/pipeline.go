package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/cdc"
	"cdcreplay/internal/jacobi"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/taskfarm"
)

// StageBytes are the per-stage byte totals of one recorded workload,
// summed over ranks: the same event stream sized after each pipeline
// stage (DESIGN.md §8 stage boundaries).
type StageBytes struct {
	// Raw is the uncompressed accounting (162 bits per row, paper Fig. 4).
	Raw uint64 `json:"raw"`
	// RE is after redundancy elimination (Fig. 6 tables, plain varints).
	RE uint64 `json:"re"`
	// PE is after permutation encoding (moves vs the reference order).
	PE uint64 `json:"pe"`
	// LPE is after linear predictive encoding of the index columns.
	LPE uint64 `json:"lpe"`
	// Gzip is the final on-disk size (stream-level, includes framing).
	Gzip uint64 `json:"gzip"`
}

// StageRatios are stage-over-stage compression ratios (input ÷ output;
// > 1 means the stage shrank the record) plus the end-to-end total.
type StageRatios struct {
	RE    float64 `json:"re"`
	PE    float64 `json:"pe"`
	LPE   float64 `json:"lpe"`
	Gzip  float64 `json:"gzip"`
	Total float64 `json:"total"`
}

func ratios(b StageBytes) StageRatios {
	div := func(a, b uint64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	return StageRatios{
		RE:    div(b.Raw, b.RE),
		PE:    div(b.RE, b.PE),
		LPE:   div(b.PE, b.LPE),
		Gzip:  div(b.LPE, b.Gzip),
		Total: div(b.Raw, b.Gzip),
	}
}

// QueueMetrics summarize the observe queue (§4.2, §6.2) over the run.
type QueueMetrics struct {
	// Enqueued counts rows accepted by the SPSC ring across ranks.
	Enqueued uint64 `json:"enqueued"`
	// Stalls counts blocking enqueues that found the ring full.
	Stalls uint64 `json:"stalls"`
	// DepthMax is the peak buffered backlog any rank's CDC thread let
	// build up.
	DepthMax int64 `json:"depth_max"`
}

// FlushMetrics summarize the CDC thread's storage flushes.
type FlushMetrics struct {
	// Count is the number of flush-all passes.
	Count uint64 `json:"count"`
	// MeanNs and MaxNs characterize flush latency; P99Ns is the bucketed
	// upper bound on the 99th percentile.
	MeanNs float64 `json:"mean_ns"`
	P99Ns  uint64  `json:"p99_ns"`
	MaxNs  uint64  `json:"max_ns"`
}

// NetMetrics summarize the simulated network's delivery behaviour.
type NetMetrics struct {
	// Messages counts deposited messages world-wide.
	Messages uint64 `json:"messages"`
	// JitterMeanTicks is the mean drawn delivery delay.
	JitterMeanTicks float64 `json:"jitter_mean_ticks"`
	// InflightMax is the peak single-mailbox backlog.
	InflightMax int64 `json:"inflight_max"`
}

// PipelineWorkload is one workload's full pipeline observability capture.
type PipelineWorkload struct {
	Name   string       `json:"name"`
	Ranks  int          `json:"ranks"`
	Rows   uint64       `json:"rows"`
	Chunks uint64       `json:"chunks"`
	Bytes  StageBytes   `json:"bytes"`
	Ratios StageRatios  `json:"ratios"`
	Queue  QueueMetrics `json:"queue"`
	Flush  FlushMetrics `json:"flush"`
	Net    NetMetrics   `json:"net"`
}

// PipelineResult is the machine-readable BENCH_pipeline.json payload: one
// entry per workload, each recorded under a fresh obs.Registry so the
// numbers are exactly that workload's.
type PipelineResult struct {
	Seed      int64              `json:"seed"`
	Full      bool               `json:"full"`
	Workloads []PipelineWorkload `json:"workloads"`
}

// Validate checks the capture is usable as a regression gate: every
// workload must have observed rows and a positive ratio at every stage.
// A zero ratio means a stage's byte counter never moved — instrumentation
// came unwired somewhere.
func (r *PipelineResult) Validate() error {
	if len(r.Workloads) == 0 {
		return fmt.Errorf("pipeline: no workloads captured")
	}
	for _, w := range r.Workloads {
		if w.Rows == 0 {
			return fmt.Errorf("pipeline: workload %s observed no rows", w.Name)
		}
		stages := map[string]float64{
			"re": w.Ratios.RE, "pe": w.Ratios.PE, "lpe": w.Ratios.LPE,
			"gzip": w.Ratios.Gzip, "total": w.Ratios.Total,
		}
		for stage, v := range stages {
			if v <= 0 {
				return fmt.Errorf("pipeline: workload %s has ratio %s = %v (stage byte counter never moved)", w.Name, stage, v)
			}
		}
		if w.Queue.Enqueued == 0 {
			return fmt.Errorf("pipeline: workload %s recorded no queue enqueues", w.Name)
		}
		if w.Flush.Count == 0 {
			return fmt.Errorf("pipeline: workload %s recorded no flushes", w.Name)
		}
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *PipelineResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// workloadFromSnapshot maps the DESIGN.md §8 metric names into the report
// shape.
func workloadFromSnapshot(name string, ranks int, s obs.Snapshot) PipelineWorkload {
	bytes := StageBytes{
		Raw:  s.Counter("encode.bytes.raw"),
		RE:   s.Counter("encode.bytes.re"),
		PE:   s.Counter("encode.bytes.pe"),
		LPE:  s.Counter("encode.bytes.lpe"),
		Gzip: s.Counter("encode.bytes.gzip"),
	}
	flush := s.Histogram("record.flush.ns")
	jitter := s.Histogram("net.jitter.ticks")
	return PipelineWorkload{
		Name:   name,
		Ranks:  ranks,
		Rows:   s.Counter("record.rows"),
		Chunks: s.Counter("encode.chunks"),
		Bytes:  bytes,
		Ratios: ratios(bytes),
		Queue: QueueMetrics{
			Enqueued: s.Counter("record.queue.enqueued"),
			Stalls:   s.Counter("record.queue.stalls"),
			DepthMax: s.Gauge("record.queue.depth").Max,
		},
		Flush: FlushMetrics{
			Count:  s.Counter("record.flushes"),
			MeanNs: flush.Mean(),
			P99Ns:  flush.Quantile(0.99),
			MaxNs:  flush.Max,
		},
		Net: NetMetrics{
			Messages:        s.Counter("net.messages"),
			JitterMeanTicks: jitter.Mean(),
			InflightMax:     s.Gauge("net.inflight").Max,
		},
	}
}

// Pipeline records each benchmark workload under a fully-instrumented CDC
// stack (fresh registry per workload) and reports per-stage byte counts,
// compression ratios, queue behaviour, flush latency, and network jitter.
// cfg.OnRegistry, when set, observes each workload's live registry while
// it runs (the cdcbench -http hook).
func Pipeline(cfg Config) (*PipelineResult, error) {
	cfg.fill()
	result := &PipelineResult{Seed: cfg.Seed, Full: cfg.Full}
	dir, err := os.MkdirTemp("", "cdc-pipeline-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	type workload struct {
		name      string
		ranks     int
		flushRows int // cadence scaled so every workload exercises mid-run flushes
		app       cdc.App
	}
	mcbParams := mcb.Params{Particles: cfg.pick(150, 400), TimeSteps: 2, Seed: 7, CrossProb: 0.4}
	jacParams := jacobi.Params{Rows: 12, Cols: 24, Iterations: cfg.pick(200, 500)}
	farmParams := taskfarm.Params{Tasks: cfg.pick(48, 128), Work: 200}
	workloads := []workload{
		{"mcb", cfg.pick(8, 16), 256, func(rank int, mpi simmpi.MPI) error {
			_, err := mcb.Run(mpi, mcbParams)
			return err
		}},
		{"jacobi", 8, 256, func(rank int, mpi simmpi.MPI) error {
			_, err := jacobi.Run(mpi, jacParams)
			return err
		}},
		{"taskfarm", 8, 8, func(rank int, mpi simmpi.MPI) error {
			_, err := taskfarm.Run(mpi, farmParams)
			return err
		}},
	}

	cfg.printf("Pipeline observability: per-stage byte counts under full instrumentation\n")
	cfg.printf("%-10s %6s %10s %10s %10s %10s %10s %8s\n",
		"workload", "ranks", "raw", "RE", "PE", "LPE", "gzip", "total")
	for _, wl := range workloads {
		reg := obs.NewRegistry()
		if cfg.OnRegistry != nil {
			cfg.OnRegistry(reg)
		}
		w := simmpi.NewWorld(wl.ranks, simmpi.Options{Seed: cfg.Seed, MaxJitter: 8, Obs: reg})
		recDir := filepath.Join(dir, wl.name)
		_, err := cdc.Record(w, wl.app,
			cdc.WithDir(recDir),
			cdc.WithApp(wl.name),
			cdc.WithObs(reg),
			cdc.WithFlushEveryRows(wl.flushRows))
		if err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", wl.name, err)
		}
		pw := workloadFromSnapshot(wl.name, wl.ranks, reg.Snapshot())
		result.Workloads = append(result.Workloads, pw)
		cfg.printf("%-10s %6d %10d %10d %10d %10d %10d %7.1fx\n",
			pw.Name, pw.Ranks, pw.Bytes.Raw, pw.Bytes.RE, pw.Bytes.PE, pw.Bytes.LPE,
			pw.Bytes.Gzip, pw.Ratios.Total)
	}
	cfg.printf("\n%-10s %10s %8s %10s %12s %12s %10s\n",
		"workload", "enqueued", "stalls", "depth max", "flushes", "flush p99", "jitter")
	for _, pw := range result.Workloads {
		cfg.printf("%-10s %10d %8d %10d %12d %10.3fms %9.2ft\n",
			pw.Name, pw.Queue.Enqueued, pw.Queue.Stalls, pw.Queue.DepthMax,
			pw.Flush.Count, float64(pw.Flush.P99Ns)/1e6, pw.Net.JitterMeanTicks)
	}
	if err := result.Validate(); err != nil {
		return result, err
	}
	return result, nil
}
