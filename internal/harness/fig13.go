package harness

import (
	"io"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/mcb"
)

// MethodSize is one bar of paper Fig. 13.
type MethodSize struct {
	Name string
	// Bytes is the total record size across ranks.
	Bytes int64
	// BytesPerEvent is Bytes divided by the matched-event count.
	BytesPerEvent float64
	// RatioVsRaw is raw size / this size (the paper's compression rate).
	RatioVsRaw float64
}

// Fig13Result reproduces paper Fig. 13 (total compressed record sizes on
// MCB) plus the §6.1 headline ratios.
type Fig13Result struct {
	Ranks         int
	MatchedEvents uint64
	Methods       []MethodSize
	// CDCvsGzip is the paper's "5.7x higher than gzip" ratio.
	CDCvsGzip float64
	// CDCvsRaw is the paper's "two orders of magnitude" ratio (44.4x with
	// the 162-bit row accounting).
	CDCvsRaw float64
}

// Find returns the entry with the given method name.
func (r *Fig13Result) Find(name string) *MethodSize {
	for i := range r.Methods {
		if r.Methods[i].Name == name {
			return &r.Methods[i]
		}
	}
	return nil
}

// Fig13 captures one MCB run and encodes the identical event stream with
// every compression method of §6.1.
func Fig13(cfg Config) (*Fig13Result, error) {
	cfg.fill()
	ranks := cfg.pick(32, 96)
	run, err := captureMCB(&cfg, ranks, mcb.Params{
		Particles: cfg.pick(250, 800),
		TimeSteps: cfg.pick(3, 4),
		Seed:      cfg.Seed + 13,
	})
	if err != nil {
		return nil, err
	}
	return fig13FromRun(&cfg, run)
}

func fig13FromRun(cfg *Config, run *MCBRun) (*Fig13Result, error) {
	makeCDC := func(omitMFID, senderColumn bool) func() baseline.Method {
		return func() baseline.Method {
			enc, _ := core.NewEncoder(io.Discard, core.EncoderOptions{
				OmitSenderColumn: !senderColumn,
			})
			if omitMFID {
				return baseline.NewCDCNoMFID(enc)
			}
			return baseline.NewCDC(enc)
		}
	}
	methods := []struct {
		name string
		make func() baseline.Method
	}{
		{"w/o compression", func() baseline.Method { return baseline.NewRaw() }},
		{"gzip", func() baseline.Method { return baseline.NewGzip() }},
		{"CDC (RE)", func() baseline.Method { return baseline.NewRE(0) }},
		{"CDC (RE + PE + LPE)", makeCDC(true, false)},
		{"CDC", makeCDC(false, false)},
		{"CDC (+sender column)", makeCDC(false, true)},
	}

	res := &Fig13Result{Ranks: run.Ranks, MatchedEvents: run.MatchedEvents()}
	for _, m := range methods {
		var total int64
		// One method instance per rank: each rank records independently.
		for _, rows := range run.Rows {
			n, err := feed(m.make(), rows)
			if err != nil {
				return nil, err
			}
			total += n
		}
		ms := MethodSize{Name: m.name, Bytes: total}
		if res.MatchedEvents > 0 {
			ms.BytesPerEvent = float64(total) / float64(res.MatchedEvents)
		}
		res.Methods = append(res.Methods, ms)
	}
	raw := res.Methods[0].Bytes
	for i := range res.Methods {
		if res.Methods[i].Bytes > 0 {
			res.Methods[i].RatioVsRaw = float64(raw) / float64(res.Methods[i].Bytes)
		}
	}
	if g, c := res.Find("gzip"), res.Find("CDC"); g != nil && c != nil && c.Bytes > 0 {
		res.CDCvsGzip = float64(g.Bytes) / float64(c.Bytes)
		res.CDCvsRaw = c.RatioVsRaw
	}

	cfg.printf("Figure 13: total record sizes, MCB at %d processes (%d receive events)\n",
		res.Ranks, res.MatchedEvents)
	for _, m := range res.Methods {
		cfg.printf("  %-22s %12s  (%7.3f B/event, %6.1fx vs raw)\n",
			m.Name, human(m.Bytes), m.BytesPerEvent, m.RatioVsRaw)
	}
	cfg.printf("  CDC compression rate: %.1fx vs raw, %.1fx vs gzip (paper: 44.4x, 5.7x)\n",
		res.CDCvsRaw, res.CDCvsGzip)
	return res, nil
}
