package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"cdcreplay/internal/ingestclient"
	"cdcreplay/internal/ingestd"
	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
	"cdcreplay/internal/workload"
)

// IngestParams shapes one loadgen run against an in-process cdcd daemon.
type IngestParams struct {
	// Sessions is the number of concurrent client streams, each its own
	// single-rank run.
	Sessions int
	// Events is the synthetic stream length per session.
	Events int
	// Kills hard-kills the daemon that many times mid-ingest (no drain,
	// encoder buffers lost) and restarts it over the same root and
	// address, forcing every live client through salvage + resume.
	Kills int
	// Tenants spreads the sessions round-robin over this many tenants.
	Tenants int
	// Seed derives each session's workload stream.
	Seed int64
}

// IngestResult is the machine-readable BENCH_ingest.json payload: daemon
// ingest throughput under concurrent sessions plus the robustness
// counters (throttles, resumes) and the exactly-once verification bit.
type IngestResult struct {
	Sessions int   `json:"sessions"`
	Events   int   `json:"events_per_session"`
	Kills    int   `json:"kills"`
	Tenants  int   `json:"tenants"`
	Seed     int64 `json:"seed"`

	NsTotal        int64   `json:"ns_total"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	EventsPerSec   float64 `json:"events_per_sec"`
	// P99EnqueueNs is the daemon-side p99 of batch admission into the
	// bounded session queues.
	P99EnqueueNs uint64 `json:"p99_enqueue_ns"`

	// Throttles counts THROTTLE(on) transitions; Resumes counts session
	// re-attaches to existing rank state (reconnects after a kill).
	Throttles uint64 `json:"throttles"`
	Resumes   uint64 `json:"resumes"`

	// TotalEvents is the logical events offered; AckedEvents how many the
	// daemon promised durable. Verified reports that after the final
	// drain every session's record decoded to exactly its offered stream.
	TotalEvents uint64 `json:"total_events"`
	AckedEvents uint64 `json:"acked_events"`
	Verified    bool   `json:"verified"`
}

// Validate checks the capture is usable as a regression gate.
func (r *IngestResult) Validate() error {
	if !r.Verified {
		return fmt.Errorf("ingest: record verification failed")
	}
	if r.SessionsPerSec <= 0 || r.EventsPerSec <= 0 {
		return fmt.Errorf("ingest: no measured throughput")
	}
	if r.AckedEvents != r.TotalEvents {
		return fmt.Errorf("ingest: acked %d of %d offered events", r.AckedEvents, r.TotalEvents)
	}
	if r.Kills > 0 && r.Resumes == 0 {
		return fmt.Errorf("ingest: %d kills produced no session resumes", r.Kills)
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *IngestResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ingestRows converts a workload stream into wire rows over two callsites,
// switching only at MF-group boundaries (a WithNext group must stay within
// one callsite's stream).
func ingestRows(events int, seed int64) []ingestwire.Row {
	evs := workload.Stream(workload.StreamParams{
		Events:        events,
		Senders:       1,
		Disorder:      2,
		UnmatchedProb: 0.3,
		GroupProb:     0.15,
		Seed:          seed,
	})
	names := map[uint64]string{1: "recv@solver.c:42", 2: "wait@halo.c:7"}
	named := map[uint64]bool{}
	rows := make([]ingestwire.Row, 0, len(evs))
	cs := uint64(1)
	for _, ev := range evs {
		row := ingestwire.Row{Callsite: cs, Ev: ev}
		if !named[cs] {
			row.Name = names[cs]
			named[cs] = true
		}
		rows = append(rows, row)
		if !ev.Flag || !ev.WithNext {
			cs = 3 - cs
		}
	}
	return rows
}

// Ingest runs the cdcd loadgen scenario: an in-process daemon on a fixed
// address, Sessions concurrent clients streaming synthetic order records,
// optional hard kills with restart over the same root, and a final
// per-session byte-level verification that every acked event is in the
// record exactly once.
func Ingest(root string, p IngestParams) (*IngestResult, error) {
	if p.Sessions <= 0 || p.Events <= 0 {
		return nil, fmt.Errorf("ingest: need positive sessions and events")
	}
	if p.Tenants <= 0 {
		p.Tenants = 1
	}

	// Grab a free port once so every daemon incarnation binds the same
	// address and clients reconnect through their own backoff.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := l.Addr().String()
	l.Close() //cdc:allow(errsink) probe listener; the daemon rebinds the address

	reg := obs.NewRegistry()
	newServer := func() (*ingestd.Server, error) {
		var srv *ingestd.Server
		var err error
		// The just-killed incarnation's listener may take a moment to
		// release the address.
		for attempt := 0; attempt < 100; attempt++ {
			srv, err = ingestd.New(ingestd.Config{
				Addr:          addr,
				Root:          root,
				FlushInterval: 5 * time.Millisecond,
				Obs:           reg,
			})
			if err != nil {
				return nil, err
			}
			if err = srv.Start(); err == nil {
				return srv, nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil, fmt.Errorf("ingest: rebinding %s: %w", addr, err)
	}
	srv, err := newServer()
	if err != nil {
		return nil, err
	}

	sessions := make([]struct {
		tenant, run string
		rows        []ingestwire.Row
		client      *ingestclient.Client
		weight      uint64
	}, p.Sessions)
	var totalWeight uint64
	for i := range sessions {
		s := &sessions[i]
		s.tenant = fmt.Sprintf("t%02d", i%p.Tenants)
		s.run = fmt.Sprintf("run%03d", i)
		s.rows = ingestRows(p.Events, p.Seed+int64(i))
		for _, r := range s.rows {
			s.weight += r.Weight()
		}
		totalWeight += s.weight
	}

	start := time.Now()
	for i := range sessions {
		s := &sessions[i]
		c, err := ingestclient.Dial(ingestclient.Config{
			Addr: addr, Tenant: s.tenant, Run: s.run, Rank: 0, Ranks: 1,
			Backoff: ingestclient.Backoff{
				Base: 5 * time.Millisecond, Cap: 200 * time.Millisecond, MaxAttempts: 500,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: session %d dial: %w", i, err)
		}
		s.client = c
	}
	ackedSum := func() uint64 {
		var n uint64
		for i := range sessions {
			n += sessions[i].client.Acked()
		}
		return n
	}

	// The killer waits for ingest progress before each kill so early kills
	// cannot land before anything is durable.
	killerDone := make(chan error, 1)
	go func() {
		var err error
		for k := 1; k <= p.Kills; k++ {
			target := totalWeight * uint64(k) / uint64(p.Kills+1)
			for ackedSum() < target {
				time.Sleep(2 * time.Millisecond)
			}
			srv.Kill()
			if srv, err = newServer(); err != nil {
				killerDone <- err
				return
			}
		}
		killerDone <- nil
	}()

	errs := make(chan error, p.Sessions)
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := &sessions[i]
			for _, r := range s.rows {
				if err := s.client.Observe(r.Callsite, r.Name, r.Ev, 0); err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					return
				}
			}
			if err := s.client.Close(); err != nil {
				errs <- fmt.Errorf("session %d close: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-killerDone; err != nil {
		return nil, err
	}
	close(errs)
	for err := range errs {
		return nil, err
	}
	elapsed := time.Since(start)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("ingest: drain: %w", err)
	}

	verified := true
	var verifyErr error
	for i := range sessions {
		s := &sessions[i]
		st, err := dirstore.OpenRoot(root).Open(s.tenant + "/" + s.run)
		if err != nil {
			verified, verifyErr = false, fmt.Errorf("session %d: %w", i, err)
			break
		}
		if _, err := store.Open(st, "ingest", 1); err != nil {
			verified, verifyErr = false, fmt.Errorf("session %d: %w", i, err)
			break
		}
		if err := ingestd.VerifyRank(st, 0, s.rows); err != nil {
			verified, verifyErr = false, fmt.Errorf("session %d: %w", i, err)
			break
		}
	}
	_ = verifyErr // reported through Verified + Validate

	snap := reg.Snapshot()
	r := &IngestResult{
		Sessions: p.Sessions,
		Events:   p.Events,
		Kills:    p.Kills,
		Tenants:  p.Tenants,
		Seed:     p.Seed,

		NsTotal:        elapsed.Nanoseconds(),
		SessionsPerSec: float64(p.Sessions) / elapsed.Seconds(),
		EventsPerSec:   float64(totalWeight) / elapsed.Seconds(),
		P99EnqueueNs:   snap.Histogram("ingest.enqueue.ns").Quantile(0.99),

		Throttles: snap.Counter("ingest.throttles"),
		Resumes:   snap.Counter("ingest.resumes"),

		TotalEvents: totalWeight,
		AckedEvents: ackedSum(),
		Verified:    verified,
	}
	return r, nil
}
