package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	livefeed "cdcreplay/internal/feed"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// FeedBenchResult is the machine-readable BENCH_replay.json payload: the
// live-paced feed measured three ways over one recorded run — stream
// identity against a batch decode (the hard invariant), pacing fidelity
// (achieved rate vs requested, release jitter), and epoch-seek control
// latency. Jitter and rate error run on the wall clock, so CI gates them
// advisorily; the digest gate is absolute.
type FeedBenchResult struct {
	Seed   int64 `json:"seed"`
	Full   bool  `json:"full"`
	Events int   `json:"events"`
	Epochs int   `json:"epochs"`
	Bytes  int64 `json:"bytes"`

	// DigestIdentical reports the unpaced feed released exactly the
	// frame stream a batch decode yields.
	DigestIdentical bool   `json:"digest_identical"`
	FeedDigest      string `json:"feed_digest"`
	BatchDigest     string `json:"batch_digest"`

	// Pacing fidelity at the requested sim rate.
	RequestedRate float64 `json:"requested_rate"`
	AchievedRate  float64 `json:"achieved_rate"`
	// RateErrorPct is |achieved-requested|/requested, in percent.
	RateErrorPct float64 `json:"rate_error_pct"`
	IntervalNs   int64   `json:"interval_ns"`
	PlannedNs    int64   `json:"planned_ns"`
	ElapsedNs    int64   `json:"elapsed_ns"`
	Releases     uint64  `json:"releases"`

	// Release jitter (actual release minus deadline) from the feed's own
	// feed.release.jitter.ns histogram.
	JitterP50Ns uint64 `json:"release_jitter_p50_ns"`
	JitterP99Ns uint64 `json:"release_jitter_p99_ns"`
	JitterMaxNs uint64 `json:"release_jitter_max_ns"`

	// Epoch-seek control latency: the synchronous Seek round trip,
	// including the decode-pipeline reopen at the target boundary.
	Seeks      int   `json:"seeks"`
	SeekP50Ns  int64 `json:"seek_p50_ns"`
	SeekP99Ns  int64 `json:"seek_p99_ns"`
	SeekMaxNs  int64 `json:"seek_max_ns"`
	SeekMeanNs int64 `json:"seek_mean_ns"`
}

// Validate checks the capture is usable as a regression gate: digest
// identity is mandatory, every dimension must actually have been
// measured; jitter and rate-error magnitudes are judged CI-side.
func (r *FeedBenchResult) Validate() error {
	if !r.DigestIdentical {
		return fmt.Errorf("feed: released frame stream differs from batch decode (feed %s, batch %s)",
			r.FeedDigest[:12], r.BatchDigest[:12])
	}
	if r.Releases == 0 || r.ElapsedNs <= 0 {
		return fmt.Errorf("feed: paced pass released nothing")
	}
	if r.AchievedRate <= 0 {
		return fmt.Errorf("feed: no achieved rate measured")
	}
	if r.Seeks == 0 || r.SeekMaxNs <= 0 {
		return fmt.Errorf("feed: no seek latency measured")
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *FeedBenchResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// feedBenchDrain consumes a subscription to stream end, folding released
// frames into a digest (same scheme as decodeBenchPass) and returning the
// flush-release count.
func feedBenchDrain(sub *livefeed.Subscription) (digest string, flushes uint64, err error) {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		ev, ok := sub.Recv()
		if !ok {
			return hex.EncodeToString(h.Sum(nil)), flushes, nil
		}
		switch ev.Kind {
		case livefeed.KindFrame, livefeed.KindFlush:
			h.Write([]byte{ev.Frame.Kind})
			h.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(ev.Frame.Payload)))])
			h.Write(ev.Frame.Payload)
			if ev.Kind == livefeed.KindFlush {
				flushes++
			}
		case livefeed.KindEnd:
			if ev.Err != "" {
				return "", flushes, fmt.Errorf("feed ended with error: %s", ev.Err)
			}
		}
	}
}

// Feed measures the live-paced replay feed on one recorded rank:
//
//  1. an unpaced (RateMax) pass pins the released frame stream against a
//     serial batch decode of the same record;
//  2. a paced pass at a fixed sim rate measures achieved rate and release
//     jitter through the feed's own instruments;
//  3. a sweep of epoch seeks on a paused feed measures the synchronous
//     control round trip, pipeline reopen included.
func Feed(cfg Config) (*FeedBenchResult, error) {
	cfg.fill()
	events := cfg.pick(60_000, 400_000)
	const epochs = 32
	result := &FeedBenchResult{Seed: cfg.Seed, Full: cfg.Full, RequestedRate: 2}

	evs := [][]tables.Event{workload.Stream(workload.StreamParams{
		Events: events, Senders: 8, Disorder: 5, UnmatchedProb: 0.05,
		Seed: cfg.Seed,
	})}
	st := memstore.New()
	if _, err := storeBenchRecord(st, evs, epochs); err != nil {
		return nil, fmt.Errorf("feed: recording: %w", err)
	}
	m, err := st.Manifest()
	if err != nil {
		return nil, err
	}
	idx := m.RankIndex(0)
	if len(idx) == 0 {
		return nil, fmt.Errorf("feed: record committed no epoch boundaries")
	}
	result.Events = events
	result.Epochs = len(idx)
	result.Bytes = idx[len(idx)-1].Offset
	lastClock := idx[len(idx)-1].Clock

	// --- 1. identity: unpaced feed vs batch decode ----------------------
	reg := obs.NewRegistry()
	if cfg.OnRegistry != nil {
		cfg.OnRegistry(reg)
	}
	f, err := livefeed.Open(st, livefeed.Options{Rank: 0, Rate: livefeed.RateMax, Obs: reg})
	if err != nil {
		return nil, fmt.Errorf("feed: open: %w", err)
	}
	sub, err := f.Subscribe()
	if err != nil {
		f.Close() //cdc:allow(errsink) best-effort cleanup; the subscribe error is already propagating
		return nil, err
	}
	result.FeedDigest, _, err = feedBenchDrain(sub)
	f.Close() //cdc:allow(errsink) stream already drained to its end marker
	if err != nil {
		return nil, fmt.Errorf("feed: unpaced pass: %w", err)
	}
	batchDigest, _, err := decodeBenchPass(st, 1, 0)
	if err != nil {
		return nil, fmt.Errorf("feed: batch decode: %w", err)
	}
	result.BatchDigest = batchDigest
	result.DigestIdentical = result.FeedDigest == result.BatchDigest

	// --- 2. pacing fidelity at a fixed sim rate --------------------------
	// Size the tick so the paced pass takes a fixed wall budget at the
	// requested rate: long enough for the pacer's timers to dominate
	// scheduling noise, short enough for CI.
	target := time.Duration(cfg.pick(int(400*time.Millisecond), int(2*time.Second)))
	interval := time.Duration(float64(target) * result.RequestedRate / float64(lastClock))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	result.IntervalNs = int64(interval)
	result.PlannedNs = int64(float64(lastClock) * float64(interval) / result.RequestedRate)

	reg2 := obs.NewRegistry()
	if cfg.OnRegistry != nil {
		cfg.OnRegistry(reg2)
	}
	pf, err := livefeed.Open(st, livefeed.Options{
		Rank: 0, Rate: result.RequestedRate, Interval: interval,
		Paused: true, Obs: reg2,
	})
	if err != nil {
		return nil, fmt.Errorf("feed: paced open: %w", err)
	}
	psub, err := pf.Subscribe()
	if err != nil {
		pf.Close() //cdc:allow(errsink) best-effort cleanup; the subscribe error is already propagating
		return nil, err
	}
	start := time.Now()
	if err := pf.Resume(); err != nil {
		pf.Close() //cdc:allow(errsink) best-effort cleanup; the resume error is already propagating
		return nil, err
	}
	if _, _, err := feedBenchDrain(psub); err != nil {
		pf.Close() //cdc:allow(errsink) best-effort cleanup; the drain error is already propagating
		return nil, fmt.Errorf("feed: paced pass: %w", err)
	}
	result.ElapsedNs = time.Since(start).Nanoseconds()
	result.Releases = pf.Stats().Released
	pf.Close() //cdc:allow(errsink) stream already drained to its end marker
	// Achieved rate: recorded span per wall second, in the same units the
	// request uses (recorded seconds per feed second).
	result.AchievedRate = float64(lastClock) * float64(interval) / float64(result.ElapsedNs)
	result.RateErrorPct = 100 * abs(result.AchievedRate-result.RequestedRate) / result.RequestedRate
	jitter := reg2.Snapshot().Histogram("feed.release.jitter.ns")
	result.JitterP50Ns = jitter.Quantile(0.50)
	result.JitterP99Ns = jitter.Quantile(0.99)
	result.JitterMaxNs = jitter.Max

	// --- 3. epoch-seek control latency -----------------------------------
	sf, err := livefeed.Open(st, livefeed.Options{Rank: 0, Rate: livefeed.RateMax, Paused: true})
	if err != nil {
		return nil, fmt.Errorf("feed: seek open: %w", err)
	}
	var seekNs []int64
	var seekSum int64
	for pass := 0; pass < 3; pass++ {
		for e := 0; e <= len(idx); e++ {
			t0 := time.Now()
			if err := sf.Seek(e); err != nil {
				sf.Close() //cdc:allow(errsink) best-effort cleanup; the seek error is already propagating
				return nil, fmt.Errorf("feed: seek %d: %w", e, err)
			}
			ns := time.Since(t0).Nanoseconds()
			seekNs = append(seekNs, ns)
			seekSum += ns
		}
	}
	sf.Close() //cdc:allow(errsink) measurement feed never resumed; nothing in flight
	sort.Slice(seekNs, func(i, j int) bool { return seekNs[i] < seekNs[j] })
	result.Seeks = len(seekNs)
	result.SeekP50Ns = seekNs[len(seekNs)/2]
	result.SeekP99Ns = seekNs[(len(seekNs)*99)/100]
	result.SeekMaxNs = seekNs[len(seekNs)-1]
	result.SeekMeanNs = seekSum / int64(len(seekNs))

	cfg.printf("Live feed: %d events, %d epochs, %s record\n", events, result.Epochs, human(result.Bytes))
	cfg.printf("  identity: feed %s vs batch %s (identical=%v)\n",
		result.FeedDigest[:12], result.BatchDigest[:12], result.DigestIdentical)
	cfg.printf("  pacing:   rate %.2fx requested, %.3fx achieved (%.2f%% error) over %s\n",
		result.RequestedRate, result.AchievedRate, result.RateErrorPct,
		time.Duration(result.ElapsedNs).Round(time.Millisecond))
	cfg.printf("  jitter:   p50 %s  p99 %s  max %s (%d releases)\n",
		time.Duration(result.JitterP50Ns), time.Duration(result.JitterP99Ns),
		time.Duration(result.JitterMaxNs), result.Releases)
	cfg.printf("  seek:     p50 %s  p99 %s  max %s (%d seeks over %d boundaries)\n",
		time.Duration(result.SeekP50Ns), time.Duration(result.SeekP99Ns),
		time.Duration(result.SeekMaxNs), result.Seeks, len(idx))

	if err := result.Validate(); err != nil {
		return result, err
	}
	return result, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
