// Package harness drives the paper's evaluation (§6): one driver per table
// or figure, each regenerating the corresponding rows or series from live
// runs on the simulated substrate. EXPERIMENTS.md records how the shapes
// compare with the paper's Catalyst measurements.
package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// Config selects experiment scale and output.
type Config struct {
	// Out receives the printed tables; defaults to io.Discard if nil.
	Out io.Writer
	// Full selects paper-leaning scales (more ranks, more particles);
	// the default is a laptop-quick configuration with the same shape.
	Full bool
	// Seed perturbs the network noise.
	Seed int64
	// OnRegistry, when non-nil, is handed each live obs.Registry an
	// experiment creates, before the workload runs. cdcbench uses it to
	// point its -http snapshot endpoint at the current workload.
	OnRegistry func(*obs.Registry)
}

func (c *Config) fill() {
	if c.Out == nil {
		c.Out = io.Discard
	}
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// pick returns quick for the default configuration and full under -full.
func (c *Config) pick(quick, full int) int {
	if c.Full {
		return full
	}
	return quick
}

// Row is one captured record-table row with its MF callsite.
type Row struct {
	Callsite uint64
	Name     string
	Ev       tables.Event
}

// capture is a baseline.Method that retains the raw event stream so several
// compression methods can be compared over identical input.
type capture struct {
	rows  []Row
	names map[uint64]string
}

var _ baseline.Method = (*capture)(nil)

func newCapture() *capture { return &capture{names: map[uint64]string{}} }

func (c *capture) Name() string { return "capture" }

func (c *capture) Observe(cs uint64, ev tables.Event) error {
	c.rows = append(c.rows, Row{Callsite: cs, Name: c.names[cs], Ev: ev})
	return nil
}

func (c *capture) RegisterCallsite(id uint64, name string) error {
	c.names[id] = name
	return nil
}

func (c *capture) Close() error { return nil }

func (c *capture) BytesWritten() int64 { return 0 }

// MCBRun holds everything a captured MCB run yields.
type MCBRun struct {
	Ranks   int
	Params  mcb.Params
	Rows    [][]Row // per rank, in observed order
	Results []mcb.Result
	Elapsed time.Duration
}

// MatchedEvents counts matched receive events across all ranks.
func (r *MCBRun) MatchedEvents() uint64 {
	var n uint64
	for _, rows := range r.Rows {
		for _, row := range rows {
			if row.Ev.Flag {
				n++
			}
		}
	}
	return n
}

// captureMCB runs MCB under a capturing recorder on every rank.
func captureMCB(cfg *Config, ranks int, params mcb.Params) (*MCBRun, error) {
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: cfg.Seed, MaxJitter: 8})
	run := &MCBRun{
		Ranks:   ranks,
		Params:  params,
		Rows:    make([][]Row, ranks),
		Results: make([]mcb.Result, ranks),
	}
	var mu sync.Mutex
	start := time.Now()
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		cap := newCapture()
		rec := record.New(lamport.Wrap(mpi), cap, record.Options{})
		res, rerr := mcb.Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		run.Rows[rank] = cap.rows
		run.Results[rank] = res
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	run.Elapsed = time.Since(start)
	return run, nil
}

// feed replays a captured row stream into a method and returns its size.
func feed(m baseline.Method, rows []Row) (int64, error) {
	for _, row := range rows {
		if reg, ok := m.(interface {
			RegisterCallsite(uint64, string) error
		}); ok && row.Name != "" {
			if err := reg.RegisterCallsite(row.Callsite, row.Name); err != nil {
				return 0, err
			}
		}
		if err := m.Observe(row.Callsite, row.Ev); err != nil {
			return 0, err
		}
	}
	if err := m.Close(); err != nil {
		return 0, err
	}
	return m.BytesWritten(), nil
}

// human formats a byte count.
func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
