package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// DecodeWorkerRun is one pool width's measurement: a full decode of every
// rank's blob through store.OpenRankIter at that width.
type DecodeWorkerRun struct {
	// Workers is the decode pool width (0 = the serial FrameReader path).
	Workers int `json:"workers"`
	// Ns is the wall-clock time to decode every rank in full.
	Ns           int64   `json:"ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Digest hashes every delivered frame (kind, payload) in delivery
	// order across all ranks — identical digests mean identical frame
	// streams, whatever the pool width.
	Digest string `json:"digest"`
	// Speedup is serial time over this run's time (1.0 for the serial row).
	Speedup float64 `json:"speedup_vs_serial"`
}

// DecodeBenchResult is the machine-readable BENCH_decode.json payload:
// the same recorded run decoded serially and at several worker-pool
// widths, with a digest-identity check pinning byte-equivalent delivery.
type DecodeBenchResult struct {
	Seed   int64 `json:"seed"`
	Full   bool  `json:"full"`
	Ranks  int   `json:"ranks"`
	Events int   `json:"events"`
	Epochs int   `json:"epochs"`
	// Layout is the backend decoded from; seekable backends give the
	// pipeline per-epoch segments so workers parallelize the gzip inflate
	// itself, not just CRC and table decode.
	Layout   string `json:"layout"`
	Seekable bool   `json:"seekable"`
	Bytes    int64  `json:"bytes"`
	// MaxProcs is runtime.GOMAXPROCS at measurement time. Below 4 the
	// 4-worker width cannot physically speed up, so consumers should gate
	// the speedup number only when MaxProcs allows real parallelism.
	MaxProcs int `json:"maxprocs"`
	// DigestIdentical reports every width delivered the same frame stream.
	DigestIdentical bool `json:"digest_identical"`
	// Speedup4 is the parallel speedup at 4 workers over serial — the
	// ROADMAP O2 headline (CI gates identity hard and this advisorily).
	Speedup4 float64           `json:"speedup_at_4_workers"`
	Runs     []DecodeWorkerRun `json:"runs"`
}

// Validate checks the capture is usable as a regression gate. Digest
// identity is mandatory; the speedup magnitude is judged CI-side (runner
// core counts vary), so here it only has to be measured.
func (r *DecodeBenchResult) Validate() error {
	if len(r.Runs) < 5 {
		return fmt.Errorf("decode: want serial plus four pool widths, have %d runs", len(r.Runs))
	}
	if !r.DigestIdentical {
		return fmt.Errorf("decode: frame-stream digests differ across worker counts")
	}
	for _, run := range r.Runs {
		if run.EventsPerSec <= 0 {
			return fmt.Errorf("decode: width %d measured no throughput", run.Workers)
		}
	}
	if r.Speedup4 <= 0 {
		return fmt.Errorf("decode: no 4-worker speedup measured")
	}
	return nil
}

// WriteJSON writes the result to path (indented, trailing newline).
func (r *DecodeBenchResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// decodeBenchPass decodes every rank in full at one pool width, folding
// each delivered frame into a digest and counting matched events.
func decodeBenchPass(st store.Store, ranks, workers int) (digest string, events uint64, err error) {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for rank := 0; rank < ranks; rank++ {
		it, blob, err := store.OpenRankIter(st, rank, core.DecoderOptions{DecodeWorkers: workers})
		if err != nil {
			return "", 0, err
		}
		for {
			f, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				it.Close()   //cdc:allow(errsink) best-effort cleanup; the decode error is already propagating
				blob.Close() //cdc:allow(errsink) best-effort cleanup; the decode error is already propagating
				return "", 0, err
			}
			h.Write([]byte{f.Kind})
			h.Write(lenBuf[:binary.PutUvarint(lenBuf[:], uint64(len(f.Payload)))])
			h.Write(f.Payload)
			if f.Chunk != nil {
				events += f.Chunk.NumMatched
			}
		}
		if err := it.Close(); err != nil {
			blob.Close() //cdc:allow(errsink) best-effort cleanup; the close error is already propagating
			return "", 0, err
		}
		if err := blob.Close(); err != nil {
			return "", 0, err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), events, nil
}

// DecodeBench records one multi-rank run into a seekable in-memory store
// (per-epoch index commits), then decodes it in full at pool widths
// 0 (serial), 1, 2, 4, and 8 — measuring wall time and pinning the frame
// stream digest identical across widths. The seekable chunk index is what
// lets the pooled widths inflate whole epochs concurrently, so this is the
// paper's decode-side mirror of the encode worker benchmark.
func DecodeBench(cfg Config) (*DecodeBenchResult, error) {
	cfg.fill()
	ranks := 2
	perRank := cfg.pick(150_000, 600_000)
	const epochs = 64
	result := &DecodeBenchResult{
		Seed:     cfg.Seed,
		Full:     cfg.Full,
		Ranks:    ranks,
		Epochs:   epochs,
		MaxProcs: runtime.GOMAXPROCS(0),
	}

	evs := make([][]tables.Event, ranks)
	for rank := range evs {
		evs[rank] = workload.Stream(workload.StreamParams{
			Events: perRank, Senders: 8, Disorder: 5, UnmatchedProb: 0.05,
			Seed: cfg.Seed + int64(rank)*211,
		})
	}
	st := memstore.New()
	if _, err := storeBenchRecord(st, evs, epochs); err != nil {
		return nil, fmt.Errorf("decode: recording: %w", err)
	}
	result.Layout = st.Layout()
	result.Seekable = st.Seekable()
	m, err := st.Manifest()
	if err != nil {
		return nil, err
	}
	for rank := 0; rank < ranks; rank++ {
		if idx := m.RankIndex(rank); len(idx) > 0 {
			result.Bytes += idx[len(idx)-1].Offset
		}
	}

	// Warm pass: fault in the decoded-side pools (gzip readers, jobs) so
	// the serial baseline isn't flattered by their cold-start cost.
	if _, _, err := decodeBenchPass(st, ranks, 2); err != nil {
		return nil, fmt.Errorf("decode: warm pass: %w", err)
	}

	widths := []int{0, 1, 2, 4, 8}
	cfg.printf("Decode pipeline: %d ranks x %d events, %d epochs per rank, %s (GOMAXPROCS=%d)\n",
		ranks, perRank, epochs, human(result.Bytes), result.MaxProcs)
	cfg.printf("%8s %12s %14s %10s  %s\n", "workers", "decode", "events/s", "speedup", "digest")
	result.DigestIdentical = true
	var serialNs int64
	for _, w := range widths {
		start := time.Now()
		digest, events, err := decodeBenchPass(st, ranks, w)
		if err != nil {
			return nil, fmt.Errorf("decode: width %d: %w", w, err)
		}
		ns := time.Since(start).Nanoseconds()
		run := DecodeWorkerRun{
			Workers:      w,
			Ns:           ns,
			EventsPerSec: float64(events) / (float64(ns) / 1e9),
			Digest:       digest,
		}
		if result.Events == 0 {
			result.Events = int(events)
		}
		if w == 0 {
			serialNs = ns
		}
		if serialNs > 0 {
			run.Speedup = float64(serialNs) / float64(ns)
		}
		if w == 4 {
			result.Speedup4 = run.Speedup
		}
		if len(result.Runs) > 0 && digest != result.Runs[0].Digest {
			result.DigestIdentical = false
		}
		result.Runs = append(result.Runs, run)
		cfg.printf("%8d %12s %14.0f %9.2fx  %s\n",
			w, time.Duration(ns).Round(time.Microsecond), run.EventsPerSec, run.Speedup, digest[:12])
	}
	if err := result.Validate(); err != nil {
		return result, err
	}
	return result, nil
}
