package harness

import "cdcreplay/internal/mcb"

// Fig1Result reproduces paper Fig. 1: the Lamport clock values of the
// particle messages rank 0 received, in receive order.
type Fig1Result struct {
	Ranks int
	// Clocks is rank 0's received piggyback clock series.
	Clocks []uint64
	// MonotoneFraction is the fraction of adjacent pairs that are
	// increasing — the paper's observation is that the series "almost
	// always monotonically increases".
	MonotoneFraction float64
}

// Fig1 runs MCB and extracts rank 0's received-clock series.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg.fill()
	ranks := cfg.pick(16, 48)
	run, err := captureMCB(&cfg, ranks, mcb.Params{
		Particles: cfg.pick(100, 400),
		TimeSteps: 2,
		Seed:      cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{Ranks: ranks}
	for _, row := range run.Rows[0] {
		if row.Ev.Flag {
			res.Clocks = append(res.Clocks, row.Ev.Clock)
		}
	}
	up := 0
	for i := 1; i < len(res.Clocks); i++ {
		if res.Clocks[i] >= res.Clocks[i-1] {
			up++
		}
	}
	if len(res.Clocks) > 1 {
		res.MonotoneFraction = float64(up) / float64(len(res.Clocks)-1)
	}

	cfg.printf("Figure 1: Lamport clocks of received messages (MCB rank 0, %d ranks)\n", ranks)
	cfg.printf("  received messages: %d, monotone adjacent pairs: %.1f%%\n",
		len(res.Clocks), 100*res.MonotoneFraction)
	step := len(res.Clocks)/20 + 1
	for i := 0; i < len(res.Clocks); i += step {
		cfg.printf("  msg %4d: clock %6d\n", i, res.Clocks[i])
	}
	return res, nil
}
