package simmpi

import "testing"

func TestMailboxDrainOrdersByArrival(t *testing.T) {
	m := newMailbox(1, 0) // jitter 0: everything arrives next tick
	m.deposit(0, 0, []byte{1})
	m.deposit(1, 0, []byte{2})
	m.deposit(0, 0, []byte{3})
	got := m.drain()
	if len(got) != 3 {
		t.Fatalf("drained %d envelopes", len(got))
	}
	// Same arrival tick: deposit sequence breaks ties.
	for i, want := range []byte{1, 2, 3} {
		if got[i].data[0] != want {
			t.Fatalf("drain order = %v %v %v", got[0].data, got[1].data, got[2].data)
		}
	}
	if m.pending() != 0 {
		t.Fatalf("pending = %d", m.pending())
	}
}

func TestMailboxPerSenderArrivalNeverReorders(t *testing.T) {
	m := newMailbox(7, 32) // large jitter
	const n = 200
	for i := 0; i < n; i++ {
		m.deposit(3, 0, []byte{byte(i)})
	}
	var seen []byte
	for len(seen) < n {
		for _, e := range m.drain() {
			seen = append(seen, e.data[0])
		}
	}
	for i := range seen {
		if seen[i] != byte(i) {
			t.Fatalf("per-sender order violated at %d: %d", i, seen[i])
		}
	}
}

func TestMailboxJitterDelaysDelivery(t *testing.T) {
	m := newMailbox(11, 1000)
	m.deposit(0, 0, nil)
	// With a huge jitter window the message usually needs many ticks.
	immediate := len(m.drain())
	ticks := 1
	for m.pending() > 0 {
		m.drain()
		ticks++
		if ticks > 1_000_000 {
			t.Fatal("message never delivered")
		}
	}
	if immediate == 1 && ticks == 1 {
		t.Log("message arrived on first tick (possible but unlikely)")
	}
}
