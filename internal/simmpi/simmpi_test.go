package simmpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBasicSendRecv(t *testing.T) {
	w := NewWorld(2, Options{Seed: 1})
	err := w.Run(func(mpi MPI) error {
		switch mpi.Rank() {
		case 0:
			return mpi.Send(1, 7, []byte("hello"))
		case 1:
			req, err := mpi.Irecv(0, 7)
			if err != nil {
				return err
			}
			st, err := mpi.Wait(req)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 7 || string(st.Data) != "hello" {
				return fmt.Errorf("bad status: %+v", st)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	w := NewWorld(1, Options{})
	c := w.Comm(0)
	if err := c.Send(5, 0, nil); err == nil {
		t.Error("send to out-of-range rank succeeded")
	}
	if err := c.Send(0, -2, nil); err == nil {
		t.Error("send with negative tag succeeded")
	}
	if _, err := c.Irecv(9, 0); err == nil {
		t.Error("recv from out-of-range rank succeeded")
	}
}

func TestPayloadIsCopied(t *testing.T) {
	w := NewWorld(2, Options{Seed: 1})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := mpi.Send(1, 0, buf); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the delivered message
			return nil
		}
		req, _ := mpi.Irecv(0, 0)
		st, err := mpi.Wait(req)
		if err != nil {
			return err
		}
		if st.Data[0] != 1 {
			return fmt.Errorf("payload aliased sender buffer: %v", st.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Messages from one sender must be received in send order when matched by a
// sequence of compatible receives (MPI non-overtaking).
func TestPerSenderFIFO(t *testing.T) {
	const n = 200
	w := NewWorld(2, Options{Seed: 3, MaxJitter: 16})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := mpi.Send(1, 0, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			req, _ := mpi.Irecv(0, 0)
			st, err := mpi.Wait(req)
			if err != nil {
				return err
			}
			if st.Data[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, st.Data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The Fig. 3 binding property: with two wildcard receives posted in order
// and two messages from the same sender, the first-posted receive gets the
// first-sent message even if the application tests them out of order.
func TestPostedOrderBinding(t *testing.T) {
	w := NewWorld(2, Options{Seed: 5})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			mpi.Send(1, 1, []byte("msg1"))
			mpi.Send(1, 1, []byte("msg2"))
			return nil
		}
		req1, _ := mpi.Irecv(AnySource, AnyTag)
		req2, _ := mpi.Irecv(AnySource, AnyTag)
		// Test req2 first, emulating the out-of-order notification in
		// Fig. 3: whatever completes, req1 must hold msg1.
		st2, err := mpi.Wait(req2)
		if err != nil {
			return err
		}
		st1, err := mpi.Wait(req1)
		if err != nil {
			return err
		}
		if string(st1.Data) != "msg1" || string(st2.Data) != "msg2" {
			return fmt.Errorf("binding violated: req1=%q req2=%q", st1.Data, st2.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	// Message arrives before the receive is posted.
	w := NewWorld(2, Options{Seed: 2, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			if err := mpi.Send(1, 3, []byte("early")); err != nil {
				return err
			}
			return mpi.Barrier()
		}
		if err := mpi.Barrier(); err != nil {
			return err
		}
		// Force delivery into the unexpected queue before posting: drain
		// until the in-flight message lands (MaxJitter 0 means the next
		// poll after the barrier delivers it).
		c := mpi.(*Comm)
		deadline := time.Now().Add(5 * time.Second)
		for len(c.unexpected) == 0 {
			if time.Now().After(deadline) {
				return errors.New("message never arrived in unexpected queue")
			}
			c.poll()
		}
		if len(c.unexpected) != 1 {
			return fmt.Errorf("unexpected queue has %d entries", len(c.unexpected))
		}
		req, _ := mpi.Irecv(AnySource, 3)
		if !req.Matched() {
			return errors.New("posted receive did not match unexpected message")
		}
		st, err := mpi.Wait(req)
		if err != nil {
			return err
		}
		if string(st.Data) != "early" {
			return fmt.Errorf("got %q", st.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagSelectivity(t *testing.T) {
	w := NewWorld(2, Options{Seed: 4, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			mpi.Send(1, 10, []byte("ten"))
			mpi.Send(1, 20, []byte("twenty"))
			return nil
		}
		// Post the tag-20 receive first; it must not take the tag-10
		// message even though that was sent first.
		req20, _ := mpi.Irecv(0, 20)
		req10, _ := mpi.Irecv(0, 10)
		st20, err := mpi.Wait(req20)
		if err != nil {
			return err
		}
		st10, err := mpi.Wait(req10)
		if err != nil {
			return err
		}
		if string(st20.Data) != "twenty" || string(st10.Data) != "ten" {
			return fmt.Errorf("tag matching wrong: %q %q", st20.Data, st10.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceGathersAll(t *testing.T) {
	const senders = 7
	w := NewWorld(senders+1, Options{Seed: 6, MaxJitter: 10})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() > 0 {
			return mpi.Send(0, 0, []byte{byte(mpi.Rank())})
		}
		seen := map[byte]bool{}
		for i := 0; i < senders; i++ {
			req, _ := mpi.Irecv(AnySource, AnyTag)
			st, err := mpi.Wait(req)
			if err != nil {
				return err
			}
			if seen[st.Data[0]] {
				return fmt.Errorf("duplicate message from %d", st.Data[0])
			}
			if int(st.Data[0]) != st.Source {
				return fmt.Errorf("source %d delivered payload %d", st.Source, st.Data[0])
			}
			seen[st.Data[0]] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestUnmatchedThenMatched(t *testing.T) {
	w := NewWorld(2, Options{Seed: 8, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			if err := mpi.Barrier(); err != nil {
				return err
			}
			return mpi.Send(1, 0, []byte("x"))
		}
		req, _ := mpi.Irecv(0, 0)
		ok, _, err := mpi.Test(req)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("Test matched before anything was sent")
		}
		if err := mpi.Barrier(); err != nil {
			return err
		}
		for {
			ok, st, err := mpi.Test(req)
			if err != nil {
				return err
			}
			if ok {
				if string(st.Data) != "x" {
					return fmt.Errorf("got %q", st.Data)
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCompleteIsError(t *testing.T) {
	w := NewWorld(2, Options{Seed: 9})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 0 {
			return mpi.Send(1, 0, nil)
		}
		req, _ := mpi.Irecv(0, 0)
		if _, err := mpi.Wait(req); err != nil {
			return err
		}
		if _, err := mpi.Wait(req); !errors.Is(err, ErrConsumed) {
			return fmt.Errorf("second Wait err = %v, want ErrConsumed", err)
		}
		if _, _, err := mpi.Test(req); !errors.Is(err, ErrConsumed) {
			return fmt.Errorf("Test after Wait err = %v, want ErrConsumed", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestsomeMultipleCompletions(t *testing.T) {
	const senders = 5
	w := NewWorld(senders+1, Options{Seed: 11, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() > 0 {
			return mpi.Send(0, 0, []byte{byte(mpi.Rank())})
		}
		reqs := make([]*Request, senders)
		for i := range reqs {
			reqs[i], _ = mpi.Irecv(i+1, 0)
		}
		got := 0
		for got < senders {
			idxs, sts, err := mpi.Testsome(reqs)
			if err != nil {
				return err
			}
			if len(idxs) != len(sts) {
				return fmt.Errorf("idxs/sts length mismatch")
			}
			for k, i := range idxs {
				if sts[k].Source != i+1 {
					return fmt.Errorf("request %d completed with source %d", i, sts[k].Source)
				}
			}
			got += len(idxs)
		}
		// All consumed: another Testsome must return nothing.
		idxs, _, err := mpi.Testsome(reqs)
		if err != nil {
			return err
		}
		if len(idxs) != 0 {
			return fmt.Errorf("consumed requests completed again: %v", idxs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyAndWaitsome(t *testing.T) {
	w := NewWorld(3, Options{Seed: 12})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() > 0 {
			return mpi.Send(0, 0, []byte{byte(mpi.Rank())})
		}
		reqs := []*Request{}
		for s := 1; s <= 2; s++ {
			r, _ := mpi.Irecv(s, 0)
			reqs = append(reqs, r)
		}
		i, st, err := mpi.Waitany(reqs)
		if err != nil {
			return err
		}
		if st.Source != i+1 {
			return fmt.Errorf("waitany idx %d source %d", i, st.Source)
		}
		idxs, sts, err := mpi.Waitsome(reqs)
		if err != nil {
			return err
		}
		if len(idxs) != 1 || sts[0].Source != idxs[0]+1 {
			return fmt.Errorf("waitsome got %v %v", idxs, sts)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallStatusOrder(t *testing.T) {
	w := NewWorld(4, Options{Seed: 13, MaxJitter: 12})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() > 0 {
			return mpi.Send(0, 0, []byte{byte(mpi.Rank())})
		}
		reqs := make([]*Request, 3)
		for i := range reqs {
			reqs[i], _ = mpi.Irecv(i+1, 0)
		}
		sts, err := mpi.Waitall(reqs)
		if err != nil {
			return err
		}
		for i, st := range sts {
			if st.Source != i+1 {
				return fmt.Errorf("status %d has source %d", i, st.Source)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	w := NewWorld(n, Options{Seed: 14})
	var mu sync.Mutex
	phase1 := 0
	err := w.Run(func(mpi MPI) error {
		mu.Lock()
		phase1++
		mu.Unlock()
		if err := mpi.Barrier(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if phase1 != n {
			return fmt.Errorf("rank %d passed barrier with %d arrivals", mpi.Rank(), phase1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 6
	w := NewWorld(n, Options{Seed: 15})
	err := w.Run(func(mpi MPI) error {
		v := float64(mpi.Rank() + 1)
		sum, err := mpi.Allreduce(v, OpSum)
		if err != nil {
			return err
		}
		if sum != 21 {
			return fmt.Errorf("sum = %v", sum)
		}
		max, err := mpi.Allreduce(v, OpMax)
		if err != nil {
			return err
		}
		if max != 6 {
			return fmt.Errorf("max = %v", max)
		}
		min, err := mpi.Allreduce(v, OpMin)
		if err != nil {
			return err
		}
		if min != 1 {
			return fmt.Errorf("min = %v", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitTimeoutOnDeadlock(t *testing.T) {
	w := NewWorld(1, Options{Seed: 16, WaitTimeout: 50 * time.Millisecond})
	err := w.Run(func(mpi MPI) error {
		req, _ := mpi.Irecv(AnySource, AnyTag) // nobody will ever send
		_, err := mpi.Wait(req)
		return err
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPanicInRankIsReported(t *testing.T) {
	w := NewWorld(2, Options{Seed: 17})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

// TestCrossSenderNondeterminism demonstrates the phenomenon CDC exists for:
// with several senders racing, the ANY_SOURCE receive order differs across
// runs.
func TestCrossSenderNondeterminism(t *testing.T) {
	const senders, trials = 6, 30
	orders := map[string]bool{}
	for trial := 0; trial < trials; trial++ {
		w := NewWorld(senders+1, Options{Seed: int64(trial), MaxJitter: 10})
		var order []byte
		err := w.Run(func(mpi MPI) error {
			if mpi.Rank() > 0 {
				return mpi.Send(0, 0, []byte{byte(mpi.Rank())})
			}
			for i := 0; i < senders; i++ {
				req, _ := mpi.Irecv(AnySource, AnyTag)
				st, err := mpi.Wait(req)
				if err != nil {
					return err
				}
				order = append(order, byte(st.Source))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]byte(nil), order...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if string(sorted) != "\x01\x02\x03\x04\x05\x06" {
			t.Fatalf("lost or duplicated messages: %v", order)
		}
		orders[string(order)] = true
	}
	if len(orders) < 2 {
		t.Fatalf("receive order was identical across %d trials; substrate is not non-deterministic", trials)
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, Options{Seed: 1, MaxJitter: 0})
	b.ResetTimer()
	err := w.Run(func(mpi MPI) error {
		peer := 1 - mpi.Rank()
		for i := 0; i < b.N; i++ {
			if mpi.Rank() == 0 {
				if err := mpi.Send(peer, 0, []byte{1}); err != nil {
					return err
				}
				req, _ := mpi.Irecv(peer, 0)
				if _, err := mpi.Wait(req); err != nil {
					return err
				}
			} else {
				req, _ := mpi.Irecv(peer, 0)
				if _, err := mpi.Wait(req); err != nil {
					return err
				}
				if err := mpi.Send(peer, 0, []byte{1}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func TestTestallAllOrNothing(t *testing.T) {
	w := NewWorld(3, Options{Seed: 21, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 1 {
			// Send immediately; rank 2 sends only after the barrier.
			if err := mpi.Send(0, 0, []byte{1}); err != nil {
				return err
			}
			return mpi.Barrier()
		}
		if mpi.Rank() == 2 {
			if err := mpi.Barrier(); err != nil {
				return err
			}
			return mpi.Send(0, 0, []byte{2})
		}
		reqs := make([]*Request, 2)
		reqs[0], _ = mpi.Irecv(1, 0)
		reqs[1], _ = mpi.Irecv(2, 0)
		// Wait until the first message has certainly arrived, then
		// Testall: it must NOT consume the partial set.
		for !reqs[0].Matched() {
			if _, _, err := mpi.Testsome(nil); err != nil { // drive polling
				return err
			}
		}
		ok, _, err := mpi.Testall(reqs)
		if err != nil {
			return err
		}
		if ok {
			return errors.New("Testall succeeded with only one message arrived")
		}
		if err := mpi.Barrier(); err != nil {
			return err
		}
		for {
			ok, sts, err := mpi.Testall(reqs)
			if err != nil {
				return err
			}
			if ok {
				if sts[0].Source != 1 || sts[1].Source != 2 {
					return fmt.Errorf("statuses out of request order: %+v", sts)
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestallConsumedRequestIsError(t *testing.T) {
	w := NewWorld(2, Options{Seed: 22})
	err := w.Run(func(mpi MPI) error {
		if mpi.Rank() == 1 {
			return mpi.Send(0, 0, nil)
		}
		req, _ := mpi.Irecv(1, 0)
		if _, err := mpi.Wait(req); err != nil {
			return err
		}
		if _, _, err := mpi.Testall([]*Request{req}); !errors.Is(err, ErrConsumed) {
			return fmt.Errorf("err = %v, want ErrConsumed", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(5, Options{Seed: 40})
	err := w.Run(func(mpi MPI) error {
		var data []byte
		if mpi.Rank() == 2 {
			data = []byte("payload-from-root")
		}
		got, err := mpi.Bcast(data, 2)
		if err != nil {
			return err
		}
		if string(got) != "payload-from-root" {
			return fmt.Errorf("rank %d got %q", mpi.Rank(), got)
		}
		// A second, different broadcast must not be corrupted by the
		// first (publish/consume generations are separated).
		if mpi.Rank() == 0 {
			data = []byte("second")
		}
		got, err = mpi.Bcast(data, 0)
		if err != nil {
			return err
		}
		if string(got) != "second" {
			return fmt.Errorf("rank %d second bcast got %q", mpi.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(0).Bcast(nil, 9); err == nil {
		t.Fatal("bcast from invalid root succeeded")
	}
}

func TestReduceOnlyRootSeesResult(t *testing.T) {
	w := NewWorld(4, Options{Seed: 41})
	err := w.Run(func(mpi MPI) error {
		got, err := mpi.Reduce(float64(mpi.Rank()+1), OpSum, 1)
		if err != nil {
			return err
		}
		want := 0.0
		if mpi.Rank() == 1 {
			want = 10
		}
		if got != want {
			return fmt.Errorf("rank %d got %v want %v", mpi.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAndAllgather(t *testing.T) {
	w := NewWorld(4, Options{Seed: 42})
	err := w.Run(func(mpi MPI) error {
		got, err := mpi.Gather(float64(mpi.Rank()*10), 0)
		if err != nil {
			return err
		}
		if mpi.Rank() == 0 {
			for r, v := range got {
				if v != float64(r*10) {
					return fmt.Errorf("gather[%d] = %v", r, v)
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root rank %d got %v", mpi.Rank(), got)
		}
		all, err := mpi.Allgather(float64(mpi.Rank() + 100))
		if err != nil {
			return err
		}
		for r, v := range all {
			if v != float64(r+100) {
				return fmt.Errorf("allgather[%d] = %v at rank %d", r, v, mpi.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	w := NewWorld(2, Options{Seed: 60, MaxJitter: 0})
	err := w.Run(func(mpi MPI) error {
		c := mpi.(*Comm)
		if mpi.Rank() == 0 {
			if err := mpi.Send(1, 0, make([]byte, 10)); err != nil {
				return err
			}
			if err := mpi.Send(1, 0, make([]byte, 5)); err != nil {
				return err
			}
			tr := c.Traffic()
			if tr.SentMessages != 2 || tr.SentBytes != 15 {
				return fmt.Errorf("sender traffic = %+v", tr)
			}
			return nil
		}
		for i := 0; i < 2; i++ {
			req, _ := mpi.Irecv(0, 0)
			if _, err := mpi.Wait(req); err != nil {
				return err
			}
		}
		tr := c.Traffic()
		if tr.ReceivedMessages != 2 || tr.ReceivedBytes != 15 {
			return fmt.Errorf("receiver traffic = %+v", tr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
