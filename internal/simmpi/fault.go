package simmpi

import (
	"errors"
	"io"
	"time"
)

// Fault injection: the noise model's failure dimension. A FaultPlan makes a
// chosen rank die at a chosen point in its own event stream, which is the
// scenario the CDC record exists to debug — a run that crashes
// non-deterministically after hours. Because the trigger counts the rank's
// own receive completions (exactly the events CDC records), the crash point
// is expressed in the same coordinate system the salvage and partial-replay
// machinery operates in, and tests can place it deterministically.

// ErrKilled is returned from every MPI call a fault-killed rank makes at or
// after its kill point. The rank's tool stack should unwind as if the
// process died (e.g. abandon its recorder without a clean close).
var ErrKilled = errors.New("simmpi: rank killed by fault plan")

// ErrAborted is returned from MPI calls on surviving ranks once some rank
// has been killed, so the world unwinds instead of deadlocking on messages
// the dead rank will never send.
var ErrAborted = errors.New("simmpi: world aborted (a rank was killed)")

// ErrInjectedIO is the default error a FaultyWriter reports once its byte
// budget is exhausted, standing in for a dying disk under the recorder.
var ErrInjectedIO = errors.New("simmpi: injected I/O failure")

// FaultPlan schedules a deterministic rank failure.
type FaultPlan struct {
	// KillRank is the rank to kill. Use a negative rank for a plan that
	// kills nobody.
	KillRank int
	// KillAfterReceives is the number of receive completions after which
	// the rank dies: the first MPI call entered once the rank's
	// ReceivedMessages count reaches this value returns ErrKilled.
	KillAfterReceives uint64
}

// checkFault enforces the world's fault plan at an MPI call boundary. It
// returns ErrKilled for the doomed rank once its receive count reaches the
// plan's threshold (aborting the world as a side effect) and ErrAborted for
// every rank once the world is aborted.
func (c *Comm) checkFault() error {
	w := c.world
	if f := w.opts.Faults; f != nil && f.KillRank == c.rank &&
		c.traffic.ReceivedMessages >= f.KillAfterReceives {
		w.abort()
		return ErrKilled
	}
	if w.aborted.Load() {
		return ErrAborted
	}
	return nil
}

// abort marks the world dead and wakes every rank blocked in a collective
// so it can observe the abort instead of waiting for the dead rank.
func (w *World) abort() {
	if w.aborted.CompareAndSwap(false, true) {
		w.coll.mu.Lock()
		w.coll.cond.Broadcast()
		w.coll.mu.Unlock()
		w.wakeAll()
	}
}

// Aborted reports whether a fault plan has killed a rank in this world.
func (w *World) Aborted() bool { return w.aborted.Load() }

// FaultyWriter wraps an io.Writer with injectable I/O faults: an optional
// per-Write delay and a hard failure after a byte budget. The write that
// crosses the budget is partially applied (the bytes that fit are written
// through), mirroring how a real device fails mid-write.
type FaultyWriter struct {
	W io.Writer
	// FailAfterBytes is the number of bytes accepted before writes start
	// failing. Zero or negative means fail immediately.
	FailAfterBytes int64
	// Delay is slept before each underlying write, to widen flush races.
	Delay time.Duration
	// Err is the error reported on failure; ErrInjectedIO when nil.
	Err error

	written int64
}

// Written reports how many bytes reached the underlying writer.
func (f *FaultyWriter) Written() int64 { return f.written }

func (f *FaultyWriter) failure() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjectedIO
}

// Write implements io.Writer with the configured faults.
func (f *FaultyWriter) Write(p []byte) (int, error) {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	room := f.FailAfterBytes - f.written
	if room <= 0 {
		return 0, f.failure()
	}
	if int64(len(p)) <= room {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.W.Write(p[:room])
	f.written += int64(n)
	if err == nil {
		err = f.failure()
	}
	return n, err
}

// CorruptFlip returns a copy of b with one bit flipped at byte offset off
// (clamped into range), simulating media corruption in a written record.
func CorruptFlip(b []byte, off int) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	if off < 0 {
		off = 0
	}
	if off >= len(out) {
		off = len(out) - 1
	}
	out[off] ^= 0x40
	return out
}

// CorruptTruncate returns the first n bytes of b (clamped into range),
// simulating a record whose tail never reached the disk.
func CorruptTruncate(b []byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	if n > len(b) {
		n = len(b)
	}
	return append([]byte(nil), b[:n]...)
}
