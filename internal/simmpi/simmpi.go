// Package simmpi is an in-process message-passing runtime that stands in for
// MPI in this reproduction (DESIGN.md substitution S1).
//
// Each rank runs as a goroutine. The runtime reproduces the MPI semantics
// that CDC depends on:
//
//   - non-blocking receives (Irecv) with MPI_ANY_SOURCE / MPI_ANY_TAG
//     wildcards, matched against posted-receive and unexpected-message
//     queues in MPI's required order;
//   - per-(sender,receiver) FIFO non-overtaking: messages from the same
//     sender are matched in send order;
//   - the Test and Wait matching-function (MF) families, including
//     multi-completion Testsome/Waitsome (the paper's with_next case) and
//     unmatched Test calls (the paper's unmatched-test rows);
//   - genuinely non-deterministic cross-sender arrival order, produced by a
//     per-message delivery jitter drawn from a noise model on top of the
//     already non-deterministic goroutine schedule.
//
// Sends are buffered-eager: Send copies the payload and completes
// immediately, which matches the small-message behaviour MCB relies on and
// means only receive events are non-deterministic — the property the
// paper's order-replay approach assumes (Definition 7).
//
// Tool layers (Lamport clocks, the CDC recorder and replayer) wrap the MPI
// interface the way PMPI/PnMPI modules wrap MPI calls: the application is
// written against MPI and is oblivious to the stack above the raw Comm.
package simmpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cdcreplay/internal/obs"
)

// AnySource matches a receive against messages from any rank
// (MPI_ANY_SOURCE).
const AnySource = -1

// AnyTag matches a receive against messages with any tag (MPI_ANY_TAG).
const AnyTag = -1

// Status describes a completed receive, like MPI_Status plus the received
// payload and the piggybacked Lamport clock (filled in by the lamport
// layer; zero at the raw layer).
type Status struct {
	Source int
	Tag    int
	Clock  uint64
	Data   []byte
}

// Request is a receive request handle created by Irecv. Handles flow through
// tool layers unchanged; layers attach their own per-request state
// externally.
type Request struct {
	owner    *Comm
	src, tag int
	matched  bool
	consumed bool
	env      *envelope
	postSeq  uint64
}

// Matched reports whether the request has been matched to a message at the
// MPI level. Tool layers use it to peek; applications should use Test.
func (r *Request) Matched() bool { return r.matched }

// Spec returns the (source, tag) pattern the receive was posted with.
// Tool layers use it to decide request interchangeability: MPI binds an
// incoming message to whichever matching posted receive came first, so two
// receives with identical specs are indistinguishable to the application.
func (r *Request) Spec() (src, tag int) { return r.src, r.tag }

// Accepts reports whether a message with the given source and tag could
// have matched this request's spec.
func (r *Request) Accepts(source, tag int) bool {
	return (r.src == AnySource || r.src == source) &&
		(r.tag == AnyTag || r.tag == tag)
}

// ErrConsumed is returned when a request that already completed is tested
// or waited on again.
var ErrConsumed = errors.New("simmpi: request already completed")

// ErrTimeout is returned by blocking operations that exceed the world's
// wait timeout — almost always an application deadlock.
var ErrTimeout = errors.New("simmpi: wait timed out (deadlock?)")

// MPI is the interface applications are written against, and the interface
// every tool layer both consumes and implements (the PMPI analog).
//
// All calls for one rank must come from that rank's goroutine, mirroring
// MPI_THREAD_FUNNELED.
type MPI interface {
	// Rank returns the calling process's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int

	// Send transmits data to rank dst with the given tag. It is
	// buffered-eager: the payload is copied and the call returns
	// immediately (matching MPI_Isend of a small message followed
	// eventually by a trivially-successful wait).
	Send(dst, tag int, data []byte) error

	// Irecv posts a non-blocking receive for a message from src (or
	// AnySource) with tag (or AnyTag).
	Irecv(src, tag int) (*Request, error)

	// Test checks a single request (MPI_Test). On success the request is
	// consumed.
	Test(req *Request) (bool, Status, error)
	// Testany checks a set and completes at most one (MPI_Testany),
	// returning its index.
	Testany(reqs []*Request) (int, bool, Status, error)
	// Testsome completes every currently-matched request in the set
	// (MPI_Testsome). An empty result is an unmatched test.
	Testsome(reqs []*Request) ([]int, []Status, error)
	// Testall completes the whole set if every request is matched
	// (MPI_Testall), returning statuses in request order; otherwise it
	// completes none and reports false.
	Testall(reqs []*Request) (bool, []Status, error)

	// Wait blocks until the request completes (MPI_Wait).
	Wait(req *Request) (Status, error)
	// Waitany blocks until one request in the set completes.
	Waitany(reqs []*Request) (int, Status, error)
	// Waitsome blocks until at least one completes, then returns all
	// completed.
	Waitsome(reqs []*Request) ([]int, []Status, error)
	// Waitall blocks until every request in the set completes, returning
	// statuses in request order.
	Waitall(reqs []*Request) ([]Status, error)

	// Barrier blocks until every rank has entered it.
	Barrier() error
	// Allreduce computes the global reduction of v with op and returns
	// the result on every rank.
	Allreduce(v float64, op ReduceOp) (float64, error)
	// Reduce computes the global reduction of v with op; only root
	// receives the result (others get 0), like MPI_Reduce.
	Reduce(v float64, op ReduceOp, root int) (float64, error)
	// Bcast distributes root's data to every rank (MPI_Bcast).
	Bcast(data []byte, root int) ([]byte, error)
	// Gather collects every rank's v at root, indexed by rank; non-root
	// ranks get nil (MPI_Gather).
	Gather(v float64, root int) ([]float64, error)
	// Allgather collects every rank's v at every rank (MPI_Allgather).
	Allgather(v float64) ([]float64, error)
}

// ReduceOp selects the Allreduce reduction operator.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

// Sequencer serializes rank execution for deterministic schedule
// exploration (DST, internal/dst). When a world has one, every rank parks
// in Yield at each MPI call boundary and exactly one rank runs between
// consecutive grants, so the interleaving of MPI-visible actions is a pure
// function of the sequencer's decisions — the goroutine scheduler stops
// being a source of non-determinism.
type Sequencer interface {
	// Yield parks the calling rank until the sequencer grants it the next
	// step. blocked marks the rank unrunnable until Wake/WakeAll (used by
	// blocking waits with nothing left to poll); a non-blocked yield keeps
	// the rank in the runnable set. A non-nil error (schedule deadlock,
	// abort) must unwind the rank's MPI call.
	Yield(rank int, blocked bool) error
	// Wake marks a blocked rank runnable again (message deposit).
	Wake(rank int)
	// WakeAll marks every blocked rank runnable (collective completion,
	// world abort).
	WakeAll()
	// Done retires the calling rank once its function returns.
	Done(rank int)
}

// Options configure a World.
type Options struct {
	// Seed seeds the delivery-jitter noise; two worlds with different
	// seeds see different message orderings, and even a fixed seed leaves
	// genuine non-determinism from the goroutine schedule.
	Seed int64
	// MaxJitter is the maximum delivery delay in receiver poll ticks.
	// 0 delivers every message at the receiver's next poll (still
	// non-deterministic across senders); larger values widen the
	// reordering window. Default 8.
	MaxJitter int
	// WaitTimeout bounds every blocking call; exceeding it returns
	// ErrTimeout instead of hanging a test. Default 30s.
	WaitTimeout time.Duration
	// Faults, when non-nil, schedules a deterministic rank failure (see
	// FaultPlan). Nil worlds never inject faults.
	Faults *FaultPlan
	// Obs, when non-nil, receives the runtime's delivery metrics (net.*
	// names, DESIGN.md §8): per-message jitter ticks, message count, and
	// in-flight depth. Shared across all ranks' mailboxes.
	Obs *obs.Registry
	// Sequencer, when non-nil, hands rank scheduling to a deterministic
	// controller (see the Sequencer interface). Implies VirtualTime.
	Sequencer Sequencer
	// Delivery, when non-nil, replaces the mailbox jitter RNG: it returns
	// the delivery delay in receiver poll ticks for the message identified
	// by (dst, src, tag, seq), where seq is the destination mailbox's
	// 1-based deposit sequence number. A pure function keeps delivery a
	// deterministic function of the deposit order, which a Sequencer in
	// turn makes a deterministic function of its decisions.
	Delivery func(dst, src, tag int, seq uint64) uint64
	// VirtualTime disables wall-clock deadlines in blocking calls: a stuck
	// world is reported by the Sequencer's deadlock detection (or hangs,
	// if there is none) instead of tripping ErrTimeout on slow machines.
	// Forced on when Sequencer is set.
	VirtualTime bool
}

func (o *Options) fill() {
	if o.MaxJitter == 0 {
		o.MaxJitter = 8
	}
	if o.WaitTimeout == 0 {
		o.WaitTimeout = 30 * time.Second
	}
	if o.Sequencer != nil {
		o.VirtualTime = true
	}
}

// World is a set of communicating ranks.
type World struct {
	n       int
	opts    Options
	boxes   []*mailbox
	coll    *collectives
	aborted atomic.Bool
}

// NewWorld creates a world of n ranks.
func NewWorld(n int, opts Options) *World {
	if n <= 0 {
		//cdc:invariant constructor precondition: a zero-rank world is caller misuse, not a runtime condition
		panic("simmpi: world size must be positive")
	}
	opts.fill()
	w := &World{n: n, opts: opts, coll: newCollectives(n)}
	w.coll.aborted = &w.aborted
	ins := mailboxInstruments{
		jitter:   opts.Obs.Histogram("net.jitter.ticks", obs.LinearBounds(0, 1, 16)),
		messages: opts.Obs.Counter("net.messages"),
		inflight: opts.Obs.Gauge("net.inflight"),
	}
	w.boxes = make([]*mailbox, n)
	for i := range w.boxes {
		w.boxes[i] = newMailbox(opts.Seed*1_000_003+int64(i)*7919+1, opts.MaxJitter)
		w.boxes[i].ins = ins
		if opts.Delivery != nil {
			dst := i
			w.boxes[i].deliver = func(src, tag int, seq uint64) uint64 {
				return w.opts.Delivery(dst, src, tag, seq)
			}
		}
	}
	return w
}

// wake marks a rank runnable in sequencer mode (no-op otherwise).
func (w *World) wake(rank int) {
	if s := w.opts.Sequencer; s != nil {
		s.Wake(rank)
	}
}

// wakeAll marks every blocked rank runnable in sequencer mode.
func (w *World) wakeAll() {
	if s := w.opts.Sequencer; s != nil {
		s.WakeAll()
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the raw MPI endpoint for a rank. Most callers should use Run;
// Comm exists for tests that drive ranks manually.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		//cdc:invariant accessor precondition: an out-of-range rank is caller misuse, not a runtime condition
		panic(fmt.Sprintf("simmpi: rank %d out of range", rank))
	}
	return &Comm{world: w, rank: rank, deadline: w.opts.WaitTimeout}
}

// Run starts one goroutine per rank executing fn and waits for all to
// finish. A panic in any rank is recovered and reported; the first non-nil
// error wins.
func (w *World) Run(fn func(mpi MPI) error) error {
	return w.RunRanked(func(rank int, mpi MPI) error { return fn(mpi) })
}

// RunRanked is Run with the rank passed explicitly, for callers that stack
// per-rank tool layers around the raw endpoint.
//
// Under a Sequencer, every rank parks before running fn (so the first
// decision sees the complete rank set) and retires via Done afterwards;
// between those points the rank only runs while holding the sequencer's
// grant.
func (w *World) RunRanked(fn func(rank int, mpi MPI) error) error {
	errs := make([]error, w.n)
	seq := w.opts.Sequencer
	var wg sync.WaitGroup
	for r := 0; r < w.n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if seq != nil {
				defer seq.Done(rank)
			}
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("simmpi: rank %d panicked: %v", rank, p)
				}
			}()
			if seq != nil {
				if err := seq.Yield(rank, false); err != nil {
					errs[rank] = err
					return
				}
			}
			errs[rank] = fn(rank, w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}
