package simmpi

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestKillRankAbortsWorld kills rank 1 after 3 receive completions in a
// ring-exchange workload and asserts (a) the doomed rank sees ErrKilled at
// exactly that event count, (b) every surviving rank unwinds with ErrAborted
// instead of deadlocking, including ranks blocked in collectives.
func TestKillRankAbortsWorld(t *testing.T) {
	const ranks, rounds = 4, 10
	w := NewWorld(ranks, Options{
		Seed:        1,
		WaitTimeout: 5 * time.Second,
		Faults:      &FaultPlan{KillRank: 1, KillAfterReceives: 3},
	})
	killedAt := uint64(0)
	err := w.RunRanked(func(rank int, mpi MPI) error {
		for i := 0; i < rounds; i++ {
			if err := mpi.Send((rank+1)%ranks, 7, []byte{byte(i)}); err != nil {
				return err
			}
			req, err := mpi.Irecv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if _, err := mpi.Wait(req); err != nil {
				return err
			}
			if _, err := mpi.Allreduce(1, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("run error %v, want ErrKilled among causes", err)
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("run error %v, want ErrAborted among causes", err)
	}
	if !w.Aborted() {
		t.Fatal("world not marked aborted after kill")
	}
	_ = killedAt
}

// TestKillPointIsExact drives the doomed rank manually and checks the kill
// triggers on the first call after the configured number of completions.
func TestKillPointIsExact(t *testing.T) {
	w := NewWorld(2, Options{Faults: &FaultPlan{KillRank: 1, KillAfterReceives: 2}})
	c0, c1 := w.Comm(0), w.Comm(1)
	for i := 0; i < 3; i++ {
		if err := c0.Send(1, 1, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		req, err := c1.Irecv(AnySource, AnyTag)
		if err != nil {
			t.Fatalf("irecv %d: %v", i, err)
		}
		if _, err := c1.Wait(req); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	if _, err := c1.Irecv(AnySource, AnyTag); !errors.Is(err, ErrKilled) {
		t.Fatalf("third receive after kill point: err=%v, want ErrKilled", err)
	}
	if got := c1.Traffic().ReceivedMessages; got != 2 {
		t.Fatalf("killed rank completed %d receives, want exactly 2", got)
	}
	// The survivor's next operation must report the abort.
	if err := c0.Send(1, 1, nil); !errors.Is(err, ErrAborted) {
		t.Fatalf("survivor send: err=%v, want ErrAborted", err)
	}
}

func TestFaultyWriter(t *testing.T) {
	var buf bytes.Buffer
	fw := &FaultyWriter{W: &buf, FailAfterBytes: 10}
	if n, err := fw.Write(make([]byte, 8)); n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// Crossing the budget: the 2 bytes that fit are written through.
	if n, err := fw.Write(make([]byte, 8)); n != 2 || !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("boundary write: n=%d err=%v, want 2, ErrInjectedIO", n, err)
	}
	if n, err := fw.Write([]byte{1}); n != 0 || !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("post-failure write: n=%d err=%v", n, err)
	}
	if buf.Len() != 10 || fw.Written() != 10 {
		t.Fatalf("underlying got %d bytes, Written()=%d, want 10", buf.Len(), fw.Written())
	}
	custom := &FaultyWriter{W: io.Discard, Err: io.ErrClosedPipe}
	if _, err := custom.Write([]byte{1}); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("custom error not propagated: %v", err)
	}
}

func TestCorruptHelpers(t *testing.T) {
	orig := []byte{0, 1, 2, 3}
	flipped := CorruptFlip(orig, 2)
	if &flipped[0] == &orig[0] || flipped[2] == orig[2] ||
		flipped[0] != orig[0] || flipped[3] != orig[3] {
		t.Fatalf("CorruptFlip(%v, 2) = %v", orig, flipped)
	}
	if got := CorruptTruncate(orig, 2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("CorruptTruncate = %v", got)
	}
	if got := CorruptTruncate(orig, 99); len(got) != 4 {
		t.Fatalf("clamped truncate len = %d", len(got))
	}
}
