package simmpi

import (
	"fmt"
	"runtime"
	"time"
)

// Traffic is a rank's deterministic message accounting.
type Traffic struct {
	// SentMessages and SentBytes count outgoing point-to-point traffic
	// (payload bytes as passed to Send, including any piggyback prefix a
	// layer above added).
	SentMessages, SentBytes uint64
	// ReceivedMessages and ReceivedBytes count completions returned to
	// the caller.
	ReceivedMessages, ReceivedBytes uint64
}

// Comm is one rank's raw MPI endpoint. It implements the MPI interface.
// All methods must be called from the owning rank's goroutine.
type Comm struct {
	world    *World
	rank     int
	deadline time.Duration

	posted     []*Request  // active receives, in post order
	unexpected []*envelope // arrived but unmatched, in arrival order
	postSeq    uint64
	traffic    Traffic
}

// Traffic returns the rank's accounting so far. It must be called from the
// owning rank's goroutine.
func (c *Comm) Traffic() Traffic { return c.traffic }

var _ MPI = (*Comm)(nil)

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.n }

// enter is the per-MPI-call boundary: a sequencer yield point (each call
// is one schedulable step in DST mode) followed by the fault check.
func (c *Comm) enter() error {
	if seq := c.world.opts.Sequencer; seq != nil {
		if err := seq.Yield(c.rank, false); err != nil {
			return err
		}
	}
	return c.checkFault()
}

// Send copies data and deposits it in dst's mailbox.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if err := c.enter(); err != nil {
		return err
	}
	if dst < 0 || dst >= c.world.n {
		return fmt.Errorf("simmpi: send to invalid rank %d", dst)
	}
	if tag < 0 {
		return fmt.Errorf("simmpi: send with invalid tag %d", tag)
	}
	buf := append([]byte(nil), data...)
	c.traffic.SentMessages++
	c.traffic.SentBytes += uint64(len(buf))
	c.world.boxes[dst].deposit(c.rank, tag, buf)
	c.world.wake(dst)
	return nil
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src, tag int) (*Request, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	if src != AnySource && (src < 0 || src >= c.world.n) {
		return nil, fmt.Errorf("simmpi: receive from invalid rank %d", src)
	}
	c.postSeq++
	req := &Request{owner: c, src: src, tag: tag, postSeq: c.postSeq}
	// MPI semantics: a newly posted receive first searches the unexpected
	// queue in arrival order.
	for i, env := range c.unexpected {
		if req.accepts(env) {
			req.matched = true
			req.env = env
			c.unexpected = append(c.unexpected[:i], c.unexpected[i+1:]...)
			return req, nil
		}
	}
	c.posted = append(c.posted, req)
	return req, nil
}

func (r *Request) accepts(env *envelope) bool {
	return (r.src == AnySource || r.src == env.src) &&
		(r.tag == AnyTag || r.tag == env.tag)
}

// poll drains newly arrived messages and matches them against posted
// receives in post order.
func (c *Comm) poll() {
	for _, env := range c.world.boxes[c.rank].drain() {
		matched := false
		for i, req := range c.posted {
			if req.accepts(env) {
				req.matched = true
				req.env = env
				c.posted = append(c.posted[:i], c.posted[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			c.unexpected = append(c.unexpected, env)
		}
	}
}

func (c *Comm) statusOf(req *Request) Status {
	c.traffic.ReceivedMessages++
	c.traffic.ReceivedBytes += uint64(len(req.env.data))
	return Status{Source: req.env.src, Tag: req.env.tag, Data: req.env.data}
}

// Test checks one request (MPI_Test).
func (c *Comm) Test(req *Request) (bool, Status, error) {
	if err := c.enter(); err != nil {
		return false, Status{}, err
	}
	if req.consumed {
		return false, Status{}, ErrConsumed
	}
	c.poll()
	if !req.matched {
		return false, Status{}, nil
	}
	req.consumed = true
	return true, c.statusOf(req), nil
}

// Testany checks a set of requests, completing at most one (MPI_Testany).
// Among several matched requests it completes the one whose message arrived
// first.
func (c *Comm) Testany(reqs []*Request) (int, bool, Status, error) {
	if err := c.enter(); err != nil {
		return -1, false, Status{}, err
	}
	c.poll()
	best := -1
	for i, req := range reqs {
		if req.consumed || !req.matched {
			continue
		}
		if best == -1 || earlier(req, reqs[best]) {
			best = i
		}
	}
	if best == -1 {
		return -1, false, Status{}, nil
	}
	reqs[best].consumed = true
	return best, true, c.statusOf(reqs[best]), nil
}

// earlier orders two matched requests by message arrival.
func earlier(a, b *Request) bool {
	if a.env.arriveAt != b.env.arriveAt {
		return a.env.arriveAt < b.env.arriveAt
	}
	return a.env.depositSeq < b.env.depositSeq
}

// Testsome completes every matched request in the set (MPI_Testsome),
// in message-arrival order.
func (c *Comm) Testsome(reqs []*Request) ([]int, []Status, error) {
	if err := c.enter(); err != nil {
		return nil, nil, err
	}
	c.poll()
	return c.gatherMatched(reqs)
}

func (c *Comm) gatherMatched(reqs []*Request) ([]int, []Status, error) {
	var idxs []int
	for i, req := range reqs {
		if !req.consumed && req.matched {
			idxs = append(idxs, i)
		}
	}
	// Report completions in arrival order so the observed order the tool
	// stack records matches delivery, not request-slot order.
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && earlier(reqs[idxs[j]], reqs[idxs[j-1]]); j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	sts := make([]Status, len(idxs))
	for k, i := range idxs {
		reqs[i].consumed = true
		sts[k] = c.statusOf(reqs[i])
	}
	return idxs, sts, nil
}

// Testall completes all requests if every one is matched (MPI_Testall).
func (c *Comm) Testall(reqs []*Request) (bool, []Status, error) {
	if err := c.enter(); err != nil {
		return false, nil, err
	}
	c.poll()
	for _, req := range reqs {
		if req.consumed {
			return false, nil, ErrConsumed
		}
		if !req.matched {
			return false, nil, nil
		}
	}
	sts := make([]Status, len(reqs))
	for i, req := range reqs {
		req.consumed = true
		sts[i] = c.statusOf(req)
	}
	return true, sts, nil
}

// spinWait polls until cond holds or the deadline passes. Under a sequencer
// every loop iteration is a yield point: the rank reports itself blocked only
// when its mailbox has no undelivered messages — if messages are in flight it
// must keep getting scheduled so its polls advance the mailbox tick.
func (c *Comm) spinWait(cond func() bool) error {
	seq := c.world.opts.Sequencer
	start := time.Now() //cdc:allow(nodetermflow) spin-wait deadline guards liveness only; match order comes from the sequencer
	spins := 0
	for !cond() {
		if c.world.aborted.Load() {
			return c.checkFault()
		}
		if seq != nil {
			blocked := c.world.boxes[c.rank].pending() == 0
			if err := seq.Yield(c.rank, blocked); err != nil {
				return err
			}
			continue
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
		if !c.world.opts.VirtualTime && spins%4096 == 0 && time.Since(start) > c.deadline { //cdc:allow(nodetermflow) deadline check for liveness, disabled under virtual time; match order is sequenced
			return fmt.Errorf("%w: rank %d, %d message(s) in flight",
				ErrTimeout, c.rank, c.world.boxes[c.rank].pending())
		}
	}
	return nil
}

// Wait blocks until the request completes (MPI_Wait).
func (c *Comm) Wait(req *Request) (Status, error) {
	if err := c.enter(); err != nil {
		return Status{}, err
	}
	if req.consumed {
		return Status{}, ErrConsumed
	}
	if err := c.spinWait(func() bool { c.poll(); return req.matched }); err != nil {
		return Status{}, err
	}
	req.consumed = true
	return c.statusOf(req), nil
}

// Waitany blocks until one request completes (MPI_Waitany).
func (c *Comm) Waitany(reqs []*Request) (int, Status, error) {
	var (
		idx int
		ok  bool
		st  Status
		err error
	)
	werr := c.spinWait(func() bool {
		idx, ok, st, err = c.Testany(reqs)
		return ok || err != nil
	})
	if werr != nil {
		return -1, Status{}, werr
	}
	return idx, st, err
}

// Waitsome blocks until at least one request completes, then returns all
// completed (MPI_Waitsome).
func (c *Comm) Waitsome(reqs []*Request) ([]int, []Status, error) {
	var (
		idxs []int
		sts  []Status
		err  error
	)
	werr := c.spinWait(func() bool {
		idxs, sts, err = c.Testsome(reqs)
		return len(idxs) > 0 || err != nil
	})
	if werr != nil {
		return nil, nil, werr
	}
	return idxs, sts, err
}

// Waitall blocks until every request completes (MPI_Waitall). Statuses are
// returned in request order, as MPI does.
func (c *Comm) Waitall(reqs []*Request) ([]Status, error) {
	sts := make([]Status, len(reqs))
	for i, req := range reqs {
		st, err := c.Wait(req)
		if err != nil {
			return nil, err
		}
		sts[i] = st
	}
	return sts, nil
}

// Barrier blocks until every rank arrives.
func (c *Comm) Barrier() error {
	if err := c.enter(); err != nil {
		return err
	}
	return c.world.coll.barrier(c)
}

// Allreduce reduces v across all ranks with op.
func (c *Comm) Allreduce(v float64, op ReduceOp) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	return c.world.coll.allreduce(c, v, op)
}

// Reduce reduces v across all ranks; only root sees the result.
func (c *Comm) Reduce(v float64, op ReduceOp, root int) (float64, error) {
	if err := c.enter(); err != nil {
		return 0, err
	}
	if root < 0 || root >= c.world.n {
		return 0, fmt.Errorf("simmpi: reduce to invalid root %d", root)
	}
	out, err := c.world.coll.allreduce(c, v, op)
	if err != nil {
		return 0, err
	}
	if c.rank != root {
		return 0, nil
	}
	return out, nil
}

// Bcast distributes root's data to every rank.
func (c *Comm) Bcast(data []byte, root int) ([]byte, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.world.n {
		return nil, fmt.Errorf("simmpi: bcast from invalid root %d", root)
	}
	return c.world.coll.bcast(c, data, root)
}

// Gather collects every rank's v at root.
func (c *Comm) Gather(v float64, root int) ([]float64, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.world.n {
		return nil, fmt.Errorf("simmpi: gather to invalid root %d", root)
	}
	out, err := c.world.coll.gather(c, v)
	if err != nil {
		return nil, err
	}
	if c.rank != root {
		return nil, nil
	}
	return out, nil
}

// Allgather collects every rank's v at every rank.
func (c *Comm) Allgather(v float64) ([]float64, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	return c.world.coll.gather(c, v)
}
