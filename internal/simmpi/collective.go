package simmpi

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// collectives implements Barrier and Allreduce with a reusable
// generation-counting barrier. The reduction folds contributions in rank
// order, so the floating-point result is a deterministic function of the
// contributed values — exactly why tool layers treat collectives as
// deterministic events that need no recording (paper §6.3 discussion).
// Summing in arrival order instead would reintroduce run-to-run numeric
// variation through non-associativity.
type collectives struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	vals    []float64
	op      ReduceOp
	result  float64
	// payload carries Bcast data; gathered carries per-rank values for
	// Gather/Allgather. Both are (re)built by the completing rank.
	payload  []byte
	gathered []float64
	// aborted points at the world's abort flag; ranks blocked in a
	// collective observe it instead of waiting forever for a killed rank.
	aborted *atomic.Bool
}

func newCollectives(n int) *collectives {
	c := &collectives{n: n, vals: make([]float64, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collectives) barrier(deadline time.Duration) error {
	_, err := c.sync(0, 0, OpSum, false, deadline)
	return err
}

func (c *collectives) allreduce(rank int, v float64, op ReduceOp, deadline time.Duration) (float64, error) {
	return c.sync(rank, v, op, true, deadline)
}

// bcast distributes root's data; implemented as a publish + barrier pair
// so the payload cannot be overwritten by a subsequent collective before
// every rank copied it.
func (c *collectives) bcast(rank int, data []byte, root int, deadline time.Duration) ([]byte, error) {
	if rank == root {
		c.mu.Lock()
		c.payload = append([]byte(nil), data...)
		c.mu.Unlock()
	}
	if err := c.barrier(deadline); err != nil {
		return nil, err
	}
	c.mu.Lock()
	out := append([]byte(nil), c.payload...)
	c.mu.Unlock()
	if err := c.barrier(deadline); err != nil {
		return nil, err
	}
	return out, nil
}

// gather collects per-rank values; every rank receives the full slice and
// the caller decides root visibility.
func (c *collectives) gather(rank int, v float64, deadline time.Duration) ([]float64, error) {
	c.mu.Lock()
	if c.gathered == nil {
		c.gathered = make([]float64, c.n)
	}
	c.gathered[rank] = v
	c.mu.Unlock()
	if err := c.barrier(deadline); err != nil {
		return nil, err
	}
	c.mu.Lock()
	out := append([]float64(nil), c.gathered...)
	c.mu.Unlock()
	if err := c.barrier(deadline); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *collectives) sync(rank int, v float64, op ReduceOp, reduce bool, deadline time.Duration) (float64, error) {
	timeout := time.AfterFunc(deadline, func() {
		// Wake sleepers so they can observe the timeout; the generation
		// check below distinguishes a spurious wake from completion.
		c.cond.Broadcast()
	})
	defer timeout.Stop()
	start := time.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted != nil && c.aborted.Load() {
		return 0, ErrAborted
	}
	gen := c.gen
	if c.arrived == 0 {
		c.op = op
	}
	if reduce {
		c.vals[rank] = v
	}
	c.arrived++
	if c.arrived == c.n {
		acc := identity(c.op)
		if reduce {
			for _, x := range c.vals {
				acc = combine(c.op, acc, x)
			}
		}
		c.result = acc
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
		return c.result, nil
	}
	for c.gen == gen {
		if c.aborted != nil && c.aborted.Load() {
			return 0, ErrAborted
		}
		if time.Since(start) > deadline {
			return 0, ErrTimeout
		}
		c.cond.Wait()
	}
	return c.result, nil
}

func identity(op ReduceOp) float64 {
	switch op {
	case OpMax:
		return math.Inf(-1)
	case OpMin:
		return math.Inf(1)
	default:
		return 0
	}
}

func combine(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		return a + b
	}
}
