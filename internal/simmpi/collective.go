package simmpi

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// collectives implements Barrier and Allreduce with a reusable
// generation-counting barrier. The reduction folds contributions in rank
// order, so the floating-point result is a deterministic function of the
// contributed values — exactly why tool layers treat collectives as
// deterministic events that need no recording (paper §6.3 discussion).
// Summing in arrival order instead would reintroduce run-to-run numeric
// variation through non-associativity.
type collectives struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	vals    []float64
	op      ReduceOp
	result  float64
	// payload carries Bcast data; gathered carries per-rank values for
	// Gather/Allgather. Both are (re)built by the completing rank.
	payload  []byte
	gathered []float64
	// aborted points at the world's abort flag; ranks blocked in a
	// collective observe it instead of waiting forever for a killed rank.
	aborted *atomic.Bool
}

func newCollectives(n int) *collectives {
	c := &collectives{n: n, vals: make([]float64, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collectives) barrier(cm *Comm) error {
	_, err := c.sync(cm, 0, OpSum, false)
	return err
}

func (c *collectives) allreduce(cm *Comm, v float64, op ReduceOp) (float64, error) {
	return c.sync(cm, v, op, true)
}

// bcast distributes root's data; implemented as a publish + barrier pair
// so the payload cannot be overwritten by a subsequent collective before
// every rank copied it.
func (c *collectives) bcast(cm *Comm, data []byte, root int) ([]byte, error) {
	if cm.rank == root {
		c.mu.Lock()
		c.payload = append([]byte(nil), data...)
		c.mu.Unlock()
	}
	if err := c.barrier(cm); err != nil {
		return nil, err
	}
	c.mu.Lock()
	out := append([]byte(nil), c.payload...)
	c.mu.Unlock()
	if err := c.barrier(cm); err != nil {
		return nil, err
	}
	return out, nil
}

// gather collects per-rank values; every rank receives the full slice and
// the caller decides root visibility.
func (c *collectives) gather(cm *Comm, v float64) ([]float64, error) {
	c.mu.Lock()
	if c.gathered == nil {
		c.gathered = make([]float64, c.n)
	}
	c.gathered[cm.rank] = v
	c.mu.Unlock()
	if err := c.barrier(cm); err != nil {
		return nil, err
	}
	c.mu.Lock()
	out := append([]float64(nil), c.gathered...)
	c.mu.Unlock()
	if err := c.barrier(cm); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *collectives) sync(cm *Comm, v float64, op ReduceOp, reduce bool) (float64, error) {
	seq := cm.world.opts.Sequencer
	wallClock := seq == nil && !cm.world.opts.VirtualTime
	if wallClock {
		timeout := time.AfterFunc(cm.deadline, func() {
			// Wake sleepers so they can observe the timeout; the generation
			// check below distinguishes a spurious wake from completion.
			c.cond.Broadcast()
		})
		defer timeout.Stop()
	}
	start := time.Now() //cdc:allow(nodetermflow) wall clock bounds the collective wait for liveness; delivery order comes from the mailbox tick

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.aborted != nil && c.aborted.Load() {
		return 0, ErrAborted
	}
	gen := c.gen
	if c.arrived == 0 {
		c.op = op
	}
	if reduce {
		c.vals[cm.rank] = v
	}
	c.arrived++
	if c.arrived == c.n {
		acc := identity(c.op)
		if reduce {
			for _, x := range c.vals {
				acc = combine(c.op, acc, x)
			}
		}
		c.result = acc
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
		if seq != nil {
			seq.WakeAll()
		}
		return c.result, nil
	}
	for c.gen == gen {
		if c.aborted != nil && c.aborted.Load() {
			return 0, ErrAborted
		}
		if seq != nil {
			// A collective waiter cannot poll its mailbox, so it is truly
			// blocked until the last arrival's WakeAll (or an abort). The
			// mutex is released across the yield: the completing rank needs
			// it, and the sequencer must not grant anyone while we hold it.
			c.mu.Unlock()
			err := seq.Yield(cm.rank, true)
			c.mu.Lock()
			if err != nil {
				return 0, err
			}
			continue
		}
		if wallClock && time.Since(start) > cm.deadline { //cdc:allow(nodetermflow) deadline check for liveness; the collective's delivery order is tick-driven
			return 0, ErrTimeout
		}
		c.cond.Wait()
	}
	return c.result, nil
}

func identity(op ReduceOp) float64 {
	switch op {
	case OpMax:
		return math.Inf(-1)
	case OpMin:
		return math.Inf(1)
	default:
		return 0
	}
}

func combine(op ReduceOp, a, b float64) float64 {
	switch op {
	case OpMax:
		return math.Max(a, b)
	case OpMin:
		return math.Min(a, b)
	default:
		return a + b
	}
}
