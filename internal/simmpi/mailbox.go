package simmpi

import (
	"math/rand"
	"sort"
	"sync"

	"cdcreplay/internal/obs"
)

// mailboxInstruments are the runtime's optional obs hooks, shared across all
// ranks' mailboxes. Nil instruments (from a nil obs.Registry) are no-ops.
type mailboxInstruments struct {
	// jitter observes each message's drawn delivery delay in poll ticks
	// (before the FIFO clamp) — the noise model the replay must undo.
	jitter *obs.Histogram
	// messages counts deposited messages world-wide.
	messages *obs.Counter
	// inflight samples one mailbox's undelivered backlog at each deposit;
	// its high-water mark is the peak per-rank reordering window.
	inflight *obs.Gauge
}

// envelope is a message in flight or awaiting matching.
type envelope struct {
	src, tag int
	data     []byte
	// arriveAt is the receiver poll tick at which the message becomes
	// visible to matching. Per-sender monotonicity of arriveAt (enforced
	// at deposit) preserves MPI's non-overtaking guarantee.
	arriveAt uint64
	// depositSeq breaks arrival ties deterministically-within-a-run.
	depositSeq uint64
}

// mailbox is one rank's incoming-message buffer. Senders deposit under the
// lock; the owning rank drains during its polls. Delivery jitter reorders
// messages across senders (never within one sender), modelling network and
// system noise (paper §1, [12]).
type mailbox struct {
	mu         sync.Mutex
	rng        *rand.Rand
	maxJitter  int
	tick       uint64
	depositSeq uint64
	inflight   []*envelope
	// lastArrive tracks per-sender arrival frontiers to keep FIFO order.
	lastArrive map[int]uint64
	// deliver, when non-nil, replaces the jitter RNG (Options.Delivery
	// with this mailbox's rank bound as dst).
	deliver func(src, tag int, seq uint64) uint64

	ins mailboxInstruments
}

func newMailbox(seed int64, maxJitter int) *mailbox {
	return &mailbox{
		rng:        rand.New(rand.NewSource(seed)),
		maxJitter:  maxJitter,
		lastArrive: make(map[int]uint64),
	}
}

// deposit is called from the sender's goroutine.
func (m *mailbox) deposit(src, tag int, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var jitter uint64
	if m.deliver != nil {
		jitter = m.deliver(src, tag, m.depositSeq+1)
	} else {
		jitter = uint64(m.rng.Intn(m.maxJitter + 1))
	}
	at := m.tick + jitter + 1
	if last := m.lastArrive[src]; at < last {
		at = last // never overtake an earlier message from the same sender
	}
	m.lastArrive[src] = at
	m.depositSeq++
	m.inflight = append(m.inflight, &envelope{
		src: src, tag: tag, data: data,
		arriveAt: at, depositSeq: m.depositSeq,
	})
	m.ins.jitter.Observe(jitter)
	m.ins.messages.Inc()
	m.ins.inflight.Set(int64(len(m.inflight)))
}

// drain advances the receiver's poll tick and returns every message whose
// arrival time has passed, in arrival order. Called only by the owner rank.
func (m *mailbox) drain() []*envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	if len(m.inflight) == 0 {
		return nil
	}
	var ready, rest []*envelope
	for _, e := range m.inflight {
		if e.arriveAt <= m.tick {
			ready = append(ready, e)
		} else {
			rest = append(rest, e)
		}
	}
	m.inflight = rest
	sort.Slice(ready, func(i, j int) bool {
		if ready[i].arriveAt != ready[j].arriveAt {
			return ready[i].arriveAt < ready[j].arriveAt
		}
		return ready[i].depositSeq < ready[j].depositSeq
	})
	return ready
}

// pending reports whether undelivered messages remain (for diagnostics).
func (m *mailbox) pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}
