package varint

import (
	"bytes"
	"math"
	"testing"
)

// FuzzUintRoundtrip checks the decode-side total-function contract on
// arbitrary bytes (no panic, sane consumed counts) and the re-encode
// identity on every value that decodes: varints have exactly one canonical
// minimal encoding, so decode→encode must reproduce the consumed prefix.
// This is the dynamic twin of the cdclint static pass over the varint
// package: the decoder is on the replay path and must be deterministic and
// total.
func FuzzUintRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x80})
	f.Add(AppendUint(nil, 0))
	f.Add(AppendUint(nil, 127))
	f.Add(AppendUint(nil, 128))
	f.Add(AppendUint(nil, math.MaxUint64))
	f.Add(bytes.Repeat([]byte{0xff}, 11))

	f.Fuzz(func(t *testing.T, data []byte) {
		u, n, err := Uint(data)
		if err != nil {
			if n != 0 {
				t.Fatalf("Uint error %v consumed %d bytes, want 0", err, n)
			}
			return
		}
		if n <= 0 || n > len(data) || n > 10 {
			t.Fatalf("Uint consumed %d of %d bytes", n, len(data))
		}
		if enc := AppendUint(nil, u); !canonicalPrefix(data[:n], enc) {
			t.Fatalf("decode(% x) = %d, re-encodes as % x", data[:n], u, enc)
		}

		v, ni, err := Int(data)
		if err != nil {
			t.Fatalf("Int failed where Uint succeeded: %v", err)
		}
		if ni != n {
			t.Fatalf("Int consumed %d bytes, Uint %d", ni, n)
		}
		if got := Zigzag(v); got != u {
			t.Fatalf("Int/Uint disagree: zigzag(%d) = %d, want %d", v, got, u)
		}
	})
}

// canonicalPrefix reports whether consumed re-encodes to enc, tolerating
// the one legal non-canonical case: trailing 0x80-continuation bytes that
// contribute zero bits (e.g. 0x80 0x00 decodes as 0 but re-encodes as
// 0x00).
func canonicalPrefix(consumed, enc []byte) bool {
	if bytes.Equal(consumed, enc) {
		return true
	}
	u1, _, err1 := Uint(consumed)
	u2, _, err2 := Uint(enc)
	return err1 == nil && err2 == nil && u1 == u2
}

// FuzzReader drains a Reader over arbitrary bytes: every decode either
// advances the offset or fails, the offset never runs past the buffer, and
// a Bytes() slice always lies within it.
func FuzzReader(f *testing.F) {
	w := &Writer{}
	w.Uint(7)
	w.Int(-40)
	w.Bytes([]byte("payload"))
	f.Add(w.Result())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for step := 0; ; step++ {
			before := r.Offset()
			var err error
			switch step % 3 {
			case 0:
				_, err = r.Uint()
			case 1:
				_, err = r.Int()
			default:
				var b []byte
				b, err = r.Bytes()
				if err == nil && len(b) > len(data) {
					t.Fatalf("Bytes returned %d bytes from a %d-byte buffer", len(b), len(data))
				}
			}
			if err != nil {
				break
			}
			if r.Offset() <= before {
				t.Fatalf("decode step %d did not advance: offset %d -> %d", step, before, r.Offset())
			}
			if r.Offset() > len(data) {
				t.Fatalf("offset %d ran past buffer length %d", r.Offset(), len(data))
			}
			if r.Len() != len(data)-r.Offset() {
				t.Fatalf("Len() = %d, want %d", r.Len(), len(data)-r.Offset())
			}
		}
	})
}
