package varint

import (
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestZigzagKnownValues(t *testing.T) {
	cases := []struct {
		v int64
		u uint64
	}{
		{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4},
		{math.MaxInt64, math.MaxUint64 - 1},
		{math.MinInt64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := Zigzag(c.v); got != c.u {
			t.Errorf("Zigzag(%d) = %d, want %d", c.v, got, c.u)
		}
		if got := Unzigzag(c.u); got != c.v {
			t.Errorf("Unzigzag(%d) = %d, want %d", c.u, got, c.v)
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return Unzigzag(Zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintRoundTrip(t *testing.T) {
	f := func(u uint64) bool {
		b := AppendUint(nil, u)
		got, n, err := Uint(b)
		return err == nil && n == len(b) && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := AppendInt(nil, v)
		got, n, err := Int(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSmallValuesAreOneByte(t *testing.T) {
	for v := int64(-64); v < 64; v++ {
		if n := len(AppendInt(nil, v)); n != 1 {
			t.Errorf("AppendInt(%d) used %d bytes, want 1", v, n)
		}
	}
}

func TestUintTruncated(t *testing.T) {
	b := AppendUint(nil, 1<<40)
	if _, _, err := Uint(b[:2]); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated decode err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestUintOverflow(t *testing.T) {
	b := make([]byte, 11)
	for i := range b {
		b[i] = 0x80
	}
	if _, _, err := Uint(b); err != ErrOverflow {
		t.Errorf("overflow decode err = %v, want ErrOverflow", err)
	}
}

func TestReaderWriterSequence(t *testing.T) {
	var w Writer
	w.Uint(300)
	w.Int(-5)
	w.Bytes([]byte("epoch"))
	w.Uint(0)

	r := NewReader(w.Result())
	if u, err := r.Uint(); err != nil || u != 300 {
		t.Fatalf("Uint = %d, %v", u, err)
	}
	if v, err := r.Int(); err != nil || v != -5 {
		t.Fatalf("Int = %d, %v", v, err)
	}
	if b, err := r.Bytes(); err != nil || string(b) != "epoch" {
		t.Fatalf("Bytes = %q, %v", b, err)
	}
	if u, err := r.Uint(); err != nil || u != 0 {
		t.Fatalf("Uint = %d, %v", u, err)
	}
	if r.Len() != 0 {
		t.Fatalf("trailing bytes: %d", r.Len())
	}
}

func TestReaderBytesTruncated(t *testing.T) {
	var w Writer
	w.Uint(10) // claims 10 bytes follow, but none do
	r := NewReader(w.Result())
	if _, err := r.Bytes(); err != io.ErrUnexpectedEOF {
		t.Errorf("Bytes err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReaderEmpty(t *testing.T) {
	r := NewReader(nil)
	if _, err := r.Uint(); err != io.ErrUnexpectedEOF {
		t.Errorf("empty Uint err = %v", err)
	}
}

func BenchmarkAppendInt(b *testing.B) {
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendInt(buf[:0], int64(i%7-3))
	}
}

func BenchmarkDecodeInt(b *testing.B) {
	buf := AppendInt(nil, -3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Int(buf); err != nil {
			b.Fatal(err)
		}
	}
}
