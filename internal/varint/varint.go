// Package varint provides compact variable-length integer encoding used by
// the CDC record format.
//
// All multi-byte quantities in CDC chunks are serialized as LEB128-style
// unsigned varints (as in encoding/binary); signed quantities are first
// zigzag-mapped so that values near zero — the common case after linear
// predictive encoding — occupy a single byte.
package varint

import (
	"errors"
	"io"
)

// ErrOverflow is returned when a varint does not terminate within the
// 10 bytes needed to represent a 64-bit value.
var ErrOverflow = errors.New("varint: 64-bit overflow")

// Zigzag maps a signed integer to an unsigned one such that small-magnitude
// values (positive or negative) map to small unsigned values:
// 0→0, −1→1, 1→2, −2→3, ...
func Zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendUint appends the unsigned varint encoding of u to dst.
func AppendUint(dst []byte, u uint64) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// AppendInt appends the zigzag varint encoding of v to dst.
func AppendInt(dst []byte, v int64) []byte {
	return AppendUint(dst, Zigzag(v))
}

// UintSize returns the encoded length of u in bytes without encoding it,
// for size accounting (the obs pipeline-stage byte counters).
func UintSize(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// IntSize returns the encoded length of the zigzag varint for v.
func IntSize(v int64) int { return UintSize(Zigzag(v)) }

// Uint decodes an unsigned varint from b, returning the value and the number
// of bytes consumed.
func Uint(b []byte) (uint64, int, error) {
	var u uint64
	var shift uint
	for i, c := range b {
		if i == 10 {
			return 0, 0, ErrOverflow
		}
		u |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return u, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, io.ErrUnexpectedEOF
}

// Int decodes a zigzag varint from b.
func Int(b []byte) (int64, int, error) {
	u, n, err := Uint(b)
	return Unzigzag(u), n, err
}

// Reader consumes varints from a byte slice, tracking its offset.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Uint reads the next unsigned varint.
func (r *Reader) Uint() (uint64, error) {
	u, n, err := Uint(r.buf[r.off:])
	if err != nil {
		return 0, err
	}
	r.off += n
	return u, nil
}

// Int reads the next zigzag varint.
func (r *Reader) Int() (int64, error) {
	v, n, err := Int(r.buf[r.off:])
	if err != nil {
		return 0, err
	}
	r.off += n
	return v, nil
}

// Bytes reads a length-prefixed byte slice (shares backing storage).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, io.ErrUnexpectedEOF
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// Len reports the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset reports the number of consumed bytes.
func (r *Reader) Offset() int { return r.off }

// Writer accumulates varints into a buffer.
type Writer struct {
	buf []byte
}

// Uint appends an unsigned varint.
func (w *Writer) Uint(u uint64) { w.buf = AppendUint(w.buf, u) }

// Int appends a zigzag varint.
func (w *Writer) Int(v int64) { w.buf = AppendInt(w.buf, v) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Result returns the accumulated buffer.
func (w *Writer) Result() []byte { return w.buf }

// Len reports the accumulated size in bytes.
func (w *Writer) Len() int { return len(w.buf) }
