package varint_test

import (
	"fmt"
	"strings"

	"cdcreplay/internal/varint"
)

// Zigzag mapping keeps small-magnitude deltas — the common case after LP
// encoding — in a single byte.
func ExampleZigzag() {
	var parts []string
	for _, v := range []int64{0, -1, 1, -2, 2} {
		parts = append(parts, fmt.Sprintf("%d→%d", v, varint.Zigzag(v)))
	}
	fmt.Println(strings.Join(parts, " "))
	fmt.Println("bytes for -3:", len(varint.AppendInt(nil, -3)))
	// Output:
	// 0→0 -1→1 1→2 -2→3 2→4
	// bytes for -3: 1
}
