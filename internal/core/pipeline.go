// Parallel chunk-encoding pipeline (DESIGN.md §9).
//
// The paper keeps record-time overhead flat by moving CDC encoding off the
// application's critical path onto a dedicated thread; this file goes one
// step further and fans the CPU-bound part of that thread's work — building
// and serializing chunks — across a bounded worker pool, while an
// ordered-commit stage funnels the results through the single FrameWriter
// in submission order. Because gzip runs over the committed byte stream and
// the committer preserves submission order, the record file is byte-for-byte
// identical to the single-threaded encoder's output (pinned by
// TestParallelEncodeByteIdentical).
//
// Stage boundaries:
//
//	CDC goroutine            workers (EncodeWorkers)        committer
//	─────────────            ───────────────────────        ─────────
//	exception scan   ──jobs──▶ Builder.Build          ──▶   <-j.ready
//	frontier update            Builder.AppendMarshal        fw.WriteFrame
//	submit (FIFO)              close(j.ready)               (submission order)
//
// The CDC goroutine submits every job to the commit queue first and the
// worker queue second, so the committer's channel order IS submission
// order; it simply waits for each job's ready latch before writing.
// Workers never block on the committer, so the commit queue always drains
// and the pipeline cannot deadlock. Write errors latch into the pipeline
// (first error wins); later commits become no-ops and every entry point
// surfaces the latched error.
package core

import (
	"compress/gzip"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/tables"
)

// gzipPools pools *gzip.Writer per compression level: a deflate writer
// carries ~1.4 MiB of window and hash state that Reset reuses in full, so
// encoders (and benchmarks churning through per-run FrameWriters) skip the
// dominant FrameWriter setup allocation.
var gzipPools sync.Map // int → *sync.Pool

func getGzipWriter(w io.Writer, level int) (*gzip.Writer, error) {
	if p, ok := gzipPools.Load(level); ok {
		if zw, ok := p.(*sync.Pool).Get().(*gzip.Writer); ok {
			zw.Reset(w)
			return zw, nil
		}
	}
	return gzip.NewWriterLevel(w, level)
}

func putGzipWriter(level int, zw *gzip.Writer) {
	p, ok := gzipPools.Load(level)
	if !ok {
		p, _ = gzipPools.LoadOrStore(level, &sync.Pool{})
	}
	p.(*sync.Pool).Put(zw)
}

// Job kinds. jobChunk is the only kind workers touch; the rest are
// committer-side control operations that ride the commit queue to stay
// ordered relative to chunk frames.
const (
	jobChunk      = iota // encode events into a chunk frame
	jobFrame             // pre-marshaled frame (callsite names)
	jobFlushPoint        // FrameWriter.FlushPoint(clock)
	jobFlushOnly         // FrameWriter.Flush (FlushAll round that skipped a stream)
	jobClose             // FrameWriter.Close(clock)
)

// encodeJob is one unit of pipeline work. Jobs are pooled and own their
// events, exceptions, and payload backing arrays; ownership passes CDC
// goroutine → worker → committer through channel sends, so no lock guards
// the fields. ready is closed by the worker once payload is final;
// done (when non-nil) receives the commit result.
type encodeJob struct {
	kind       int
	callsite   uint64
	clock      uint64
	frameKind  byte
	events     []tables.Event
	exceptions []tables.MatchedEntry
	payload    []byte
	ready      chan struct{}
	done       chan error
}

// encodePipeline is the worker pool plus ordered committer attached to an
// Encoder when EncoderOptions.EncodeWorkers > 1.
type encodePipeline struct {
	e      *Encoder
	jobs   chan *encodeJob // worker stage input, FIFO
	commit chan *encodeJob // committer input, submission order
	wg     sync.WaitGroup  // workers
	closed chan struct{}   // committer exited

	// err is the first write error; once set the committer stops writing
	// and every pipeline entry point returns it.
	err atomic.Pointer[error]

	// waitCh is reused for blocking operations; the Encoder is driven by a
	// single goroutine, so at most one waiter exists at a time.
	waitCh chan error

	jobPool  sync.Pool // *encodeJob
	builders sync.Pool // *cdcformat.Builder

	// Worker-side stat deltas, folded into Encoder.stats at Close (the
	// serial path updates them synchronously; workers must not touch the
	// unsynchronized Stats struct).
	permuted  atomic.Uint64
	valuesCDC atomic.Uint64

	// Instruments (nil-safe): worker occupancy with high-water mark, chunk
	// encode-stage latency, and builder-pool effectiveness.
	mBusy     *obs.Gauge
	mStageNs  *obs.Histogram
	mPoolHit  *obs.Counter
	mPoolMiss *obs.Counter
}

func newEncodePipeline(e *Encoder, workers int) *encodePipeline {
	p := &encodePipeline{
		e:      e,
		jobs:   make(chan *encodeJob, workers),
		commit: make(chan *encodeJob, 2*workers+4),
		closed: make(chan struct{}),
		waitCh: make(chan error, 1),
	}
	p.jobPool.New = func() any { return new(encodeJob) }
	p.builders.New = func() any {
		p.mPoolMiss.Inc()
		return new(cdcformat.Builder)
	}
	if reg := e.obsReg; reg != nil {
		p.mBusy = reg.Gauge("encode.workers.busy")
		p.mStageNs = reg.Histogram("encode.stage.ns", obs.LatencyBounds())
		p.mPoolHit = reg.Counter("encode.pool.hit")
		p.mPoolMiss = reg.Counter("encode.pool.miss")
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	go p.committer()
	return p
}

func (p *encodePipeline) getJob() *encodeJob {
	return p.jobPool.Get().(*encodeJob)
}

// submit hands a job to the pipeline. The commit send precedes the worker
// send so the committer's queue order is exactly submission order. The
// needsWorker flag is captured before the commit send: a control job may be
// committed and recycled the moment it is enqueued, so j must not be read
// afterwards.
func (p *encodePipeline) submit(j *encodeJob) {
	needsWorker := j.ready != nil
	p.commit <- j
	if needsWorker {
		p.jobs <- j
	}
}

// run submits a control job and blocks until the committer has executed it
// — and therefore everything submitted before it.
func (p *encodePipeline) run(j *encodeJob) error {
	j.done = p.waitCh
	p.submit(j)
	return <-p.waitCh
}

func (p *encodePipeline) firstErr() error {
	if pe := p.err.Load(); pe != nil {
		return *pe
	}
	return nil
}

// worker turns chunk jobs into marshaled frame payloads. It owns a pooled
// Builder for the duration of each job, touches no Encoder state other than
// atomic counters, and never blocks on the committer.
func (p *encodePipeline) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.mBusy.Add(1)
		start := time.Now() //cdc:allow(nodeterm) telemetry only: feeds the encode.stage.ns histogram, never the record bytes
		b := p.builders.Get().(*cdcformat.Builder)
		p.mPoolHit.Inc()
		chunk := b.Build(j.callsite, j.events, !p.e.opts.OmitSenderColumn)
		chunk.Exceptions = j.exceptions
		if p.e.mLPE != nil {
			span := p.e.obsReg.StartSpan("encode.chunk")
			re, pe, lp := cdcformat.StageSizes(j.events, chunk)
			p.e.mChunks.Inc()
			p.e.mRaw.Add(uint64(len(j.events)) * rawBitsPerRow / 8)
			p.e.mRE.Add(uint64(re))
			p.e.mPE.Add(uint64(pe))
			p.e.mLPE.Add(uint64(lp))
			span.End()
		}
		p.permuted.Add(uint64(len(chunk.Moves)))
		p.valuesCDC.Add(uint64(chunk.ValueCount()))
		j.payload = b.AppendMarshal(j.payload[:0], chunk)
		p.builders.Put(b)
		p.mStageNs.Observe(uint64(time.Since(start))) //cdc:allow(nodeterm) telemetry only: stage latency, never the record bytes
		p.mBusy.Add(-1)
		close(j.ready)
	}
}

// committer is the single goroutine allowed to touch the FrameWriter after
// the pipeline starts. It drains the commit queue in submission order,
// waiting for each chunk job's worker to finish before writing its frame.
func (p *encodePipeline) committer() {
	defer close(p.closed)
	for j := range p.commit {
		if j.ready != nil {
			<-j.ready
		}
		var err error
		if latched := p.err.Load(); latched != nil {
			err = *latched
		} else {
			switch j.kind {
			case jobChunk:
				err = p.e.fw.WriteFrame(frameChunk, j.payload)
			case jobFrame:
				err = p.e.fw.WriteFrame(j.frameKind, j.payload)
			case jobFlushPoint:
				err = p.e.fw.FlushPoint(j.clock)
				p.e.reportGzipBytes()
			case jobFlushOnly:
				err = p.e.fw.Flush()
				p.e.reportGzipBytes()
			case jobClose:
				err = p.e.fw.Close(j.clock)
				p.e.reportGzipBytes()
			}
			if err != nil {
				p.err.CompareAndSwap(nil, &err)
			}
		}
		done := j.done
		p.recycle(j)
		if done != nil {
			done <- err
		}
	}
}

// recycle returns a job to the pool, keeping its backing arrays.
func (p *encodePipeline) recycle(j *encodeJob) {
	j.ready, j.done = nil, nil
	j.events = j.events[:0]
	j.exceptions = j.exceptions[:0]
	j.payload = j.payload[:0]
	p.jobPool.Put(j)
}

// shutdown tears the pipeline down after the close job has committed.
func (p *encodePipeline) shutdown() {
	close(p.jobs)
	p.wg.Wait()
	close(p.commit)
	<-p.closed
}

// flushAsync is the pipeline counterpart of Encoder.flush: it performs the
// order-sensitive bookkeeping inline — the boundary-exception scan against
// the pre-chunk frontier and the frontier advance, both of which depend on
// prior chunks of the same callsite — then hands the event batch to the
// worker stage and returns without waiting. The pending buffer is swapped
// with the job's recycled one, so steady-state flushing allocates nothing.
func (e *Encoder) flushAsync(callsite uint64, ps *pendingStream) error {
	if len(ps.events) == 0 {
		return e.pipe.firstErr()
	}
	if ps.frontier == nil {
		ps.frontier = make(map[int32]uint64)
	}
	j := e.pipe.getJob()
	j.kind = jobChunk
	j.callsite = callsite
	// Two passes, exceptions before frontier advance: an exception tests
	// against the frontier as of the previous chunk, and a same-rank event
	// earlier in this chunk must not hide a later inversion.
	for _, ev := range ps.events {
		if ev.Flag && ev.Clock <= ps.frontier[ev.Rank] {
			j.exceptions = append(j.exceptions,
				tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock})
		}
	}
	for _, ev := range ps.events {
		if ev.Flag && ev.Clock > ps.frontier[ev.Rank] {
			ps.frontier[ev.Rank] = ev.Clock
		}
	}
	j.events, ps.events = ps.events, j.events[:0]
	ps.matched = 0
	e.stats.Chunks++
	j.ready = make(chan struct{})
	e.pipe.submit(j)
	return e.pipe.firstErr()
}

// closeParallel is Encoder.Close's pipeline path: flush every stream
// through the workers, commit the final flush-point/close frame, then tear
// the pool down and fold the workers' stat deltas into the encoder's.
func (e *Encoder) closeParallel() error {
	var flushErr error
	for _, cs := range e.order {
		if err := e.flushAsync(cs, e.pending[cs]); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	e.stats.FlushPoints++
	j := e.pipe.getJob()
	j.kind = jobClose
	j.clock = e.clock
	err := e.pipe.run(j)
	e.pipe.shutdown()
	e.stats.PermutedMessages += e.pipe.permuted.Load()
	e.stats.ValuesCDC += e.pipe.valuesCDC.Load()
	if flushErr != nil {
		return flushErr
	}
	if err != nil {
		return err
	}
	return e.notifyFlushPoint()
}
