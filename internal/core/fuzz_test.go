package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// readAll drains a FrameReader, returning the frames it yielded and the
// terminal error (io.EOF for a clean stream).
func readAll(data []byte) (frames []*Frame, err error) {
	fr, err := NewFrameReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	for {
		f, err := fr.Next()
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}

// FuzzFrameReader feeds arbitrary bytes to the frame decoder. Whatever the
// input — truncated, bit-flipped, or pure noise — the decoder must never
// panic, and any mid-stream failure must be a *TruncatedRecordError whose
// prefix counters match the frames actually handed out.
func FuzzFrameReader(f *testing.F) {
	valid := buildRecordBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(Magic)+3])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Add([]byte("CDCRECv1 old format"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			var trunc *TruncatedRecordError
			if errors.As(err, &trunc) && (trunc.Frames != 0 || trunc.Events != 0) {
				t.Fatalf("open-time truncation reports a non-empty prefix: %v", err)
			}
			return
		}
		defer fr.Close()
		var frames, events, marks uint64
		for {
			fm, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				var trunc *TruncatedRecordError
				if !errors.As(err, &trunc) {
					t.Fatalf("mid-stream failure is not a TruncatedRecordError: %v", err)
				}
				if trunc.Frames != frames || trunc.Events != events || trunc.FlushPoints != marks {
					t.Fatalf("truncation prefix %d/%d/%d disagrees with %d frames/%d events/%d marks handed out",
						trunc.Frames, trunc.Events, trunc.FlushPoints, frames, events, marks)
				}
				break
			}
			frames++
			if fm.Chunk != nil {
				events += fm.Chunk.NumMatched
			}
			if fm.Flush {
				marks++
			}
		}
	})
}

// TestFrameReaderTruncatedAtEveryOffset cuts a valid record at every single
// byte offset: each cut must decode to a verified prefix and then report
// truncation (never succeed, never panic), and the prefix never exceeds the
// intact record.
func TestFrameReaderTruncatedAtEveryOffset(t *testing.T) {
	data := buildRecordBytes(t)
	whole, err := readAll(data)
	if err != io.EOF {
		t.Fatalf("intact record: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		frames, err := readAll(data[:cut])
		if err == io.EOF {
			t.Fatalf("cut at %d/%d decoded as a clean stream", cut, len(data))
		}
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("cut at %d: error does not match ErrTruncatedRecord: %v", cut, err)
		}
		if len(frames) > len(whole) {
			t.Fatalf("cut at %d yielded %d frames, more than the %d in the whole record",
				cut, len(frames), len(whole))
		}
	}
}

// TestFrameReaderBitFlipAtEveryOffset flips one bit at every byte offset of
// a valid record. The CRC trailers (and gzip's own checks) must confine the
// damage: decoding either fails as a truncated record or — when the flip
// lands in slack the format ignores — yields at most the original frames.
func TestFrameReaderBitFlipAtEveryOffset(t *testing.T) {
	data := buildRecordBytes(t)
	whole, err := readAll(data)
	if err != io.EOF {
		t.Fatalf("intact record: %v", err)
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		frames, err := readAll(mut)
		if off < len(Magic) {
			if err == io.EOF || errors.Is(err, ErrTruncatedRecord) {
				t.Fatalf("flip inside magic at %d not rejected as a format error: %v", off, err)
			}
		} else if err != io.EOF && !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("flip at %d: unexpected error kind: %v", off, err)
		}
		if len(frames) > len(whole) {
			t.Fatalf("flip at %d yielded %d frames, more than the %d in the whole record",
				off, len(frames), len(whole))
		}
	}
}

// TestFlushPointClockRoundTrip checks flush-point frames carry their clocks
// through a write/read cycle, at both the FrameWriter and Encoder levels.
func TestFlushPointClockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.FlushPoint(42); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(99); err != nil {
		t.Fatal(err)
	}
	frames, err := readAll(buf.Bytes())
	if err != io.EOF {
		t.Fatal(err)
	}
	if len(frames) != 2 || !frames[0].Flush || !frames[1].Flush {
		t.Fatalf("want two flush frames, got %+v", frames)
	}
	if frames[0].FlushClock != 42 || frames[1].FlushClock != 99 {
		t.Fatalf("clocks %d, %d; want 42, 99", frames[0].FlushClock, frames[1].FlushClock)
	}
}
