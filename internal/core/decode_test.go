package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// buildSeekableRecord encodes a multi-epoch record with seekable cuts and
// returns the bytes plus the flush-point offsets (segment boundaries).
func buildSeekableRecord(t testing.TB, seed int64, events, epochs int) ([]byte, []int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	var cuts []int64
	enc, err := NewEncoder(&buf, EncoderOptions{
		ChunkEvents:  32,
		SeekableCuts: true,
		OnFlushPoint: func(clock, events uint64, offset int64) error {
			cuts = append(cuts, offset)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cs := uint64(1); cs <= 3; cs++ {
		if err := enc.RegisterCallsite(cs, fmt.Sprintf("site%d.go:%d", cs, cs)); err != nil {
			t.Fatal(err)
		}
	}
	evs := synthEvents(rng, events, 4, 3)
	per := len(evs) / epochs
	var maxClock uint64
	for i, ev := range evs {
		if err := enc.Observe(uint64(1+rng.Intn(3)), ev); err != nil {
			t.Fatal(err)
		}
		if ev.Clock > maxClock {
			maxClock = ev.Clock
		}
		if per > 0 && (i+1)%per == 0 {
			if err := enc.FlushAll(maxClock); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), cuts
}

// frameFlat is a decoded frame reduced to comparable parts.
type frameFlat struct {
	kind    byte
	payload string
}

// drainFlat consumes an iterator to EOF, returning the flattened frame
// sequence, final counters, and callsite names.
func drainFlat(t testing.TB, it *RecordIter) (frames []frameFlat, counters [3]uint64, names map[uint64]string) {
	t.Helper()
	for {
		f, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		frames = append(frames, frameFlat{f.Kind, string(f.Payload)})
	}
	counters = [3]uint64{it.Frames(), it.Events(), it.FlushPoints()}
	names = it.Names()
	if err := it.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return frames, counters, names
}

// TestParallelDecodeIdentity checks every pool width delivers the exact
// serial frame sequence, in both stream mode (sequential reader) and
// segment mode (ReaderAt + cuts).
func TestParallelDecodeIdentity(t *testing.T) {
	data, cuts := buildSeekableRecord(t, 101, 2000, 8)
	serialIt, err := OpenRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want, wantCounters, wantNames := drainFlat(t, serialIt)
	if len(want) == 0 || wantCounters[2] == 0 {
		t.Fatalf("degenerate record: %d frames, %d flush points", len(want), wantCounters[2])
	}

	for _, workers := range []int{0, 1, 2, 4, 8} {
		o := DecoderOptions{DecodeWorkers: workers}
		t.Run(fmt.Sprintf("stream/workers=%d", workers), func(t *testing.T) {
			it, err := OpenRecordOptions(bytes.NewReader(data), o)
			if err != nil {
				t.Fatal(err)
			}
			got, gotCounters, gotNames := drainFlat(t, it)
			compareFlat(t, got, want)
			if gotCounters != wantCounters {
				t.Fatalf("counters %v, serial %v", gotCounters, wantCounters)
			}
			if len(gotNames) != len(wantNames) {
				t.Fatalf("names %v, serial %v", gotNames, wantNames)
			}
		})
		t.Run(fmt.Sprintf("segments/workers=%d", workers), func(t *testing.T) {
			ra := bytes.NewReader(data)
			it, err := OpenRecordSegments(ra, int64(len(data)), cuts, o)
			if err != nil {
				t.Fatal(err)
			}
			got, gotCounters, _ := drainFlat(t, it)
			compareFlat(t, got, want)
			if gotCounters != wantCounters {
				t.Fatalf("counters %v, serial %v", gotCounters, wantCounters)
			}
		})
	}
}

func compareFlat(t *testing.T, got, want []frameFlat) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d frames, serial delivered %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("frame %d: kind %d payload %d bytes, serial kind %d payload %d bytes",
				i, got[i].kind, len(got[i].payload), want[i].kind, len(want[i].payload))
		}
	}
}

// drainToError consumes an iterator until it fails, returning the error and
// how many frames were delivered first.
func drainToError(it *RecordIter) (int, error) {
	n := 0
	for {
		_, err := it.Next()
		if err != nil {
			it.Close() //cdc:allow(errsink) test teardown after the error under test
			return n, err
		}
		n++
	}
}

// TestParallelDecodeTruncationParity truncates the record mid-stream and
// checks every pool width surfaces the same first error as the serial
// reader: a TruncatedRecordError with identical delivered-prefix counters.
func TestParallelDecodeTruncationParity(t *testing.T) {
	data, _ := buildSeekableRecord(t, 102, 1200, 6)
	for _, cutAt := range []int{len(data) / 3, len(data) / 2, len(data) - 3} {
		mut := data[:cutAt]
		serialIt, err := OpenRecord(bytes.NewReader(mut))
		if err != nil {
			continue // truncated inside the header: nothing to compare
		}
		wantN, wantErr := drainToError(serialIt)
		for _, workers := range []int{1, 2, 4, 8} {
			it, err := OpenRecordOptions(bytes.NewReader(mut), DecoderOptions{DecodeWorkers: workers})
			if err != nil {
				t.Fatalf("cut %d workers %d: open: %v", cutAt, workers, err)
			}
			gotN, gotErr := drainToError(it)
			if gotN != wantN {
				t.Fatalf("cut %d workers %d: delivered %d frames before failing, serial %d", cutAt, workers, gotN, wantN)
			}
			if (gotErr == io.EOF) != (wantErr == io.EOF) {
				t.Fatalf("cut %d workers %d: got %v, serial %v", cutAt, workers, gotErr, wantErr)
			}
			var gotTr, wantTr *TruncatedRecordError
			if errors.As(gotErr, &gotTr) != errors.As(wantErr, &wantTr) {
				t.Fatalf("cut %d workers %d: got %v, serial %v", cutAt, workers, gotErr, wantErr)
			}
			if gotTr != nil && (gotTr.Frames != wantTr.Frames || gotTr.Events != wantTr.Events || gotTr.FlushPoints != wantTr.FlushPoints) {
				t.Fatalf("cut %d workers %d: truncation counters %+v, serial %+v", cutAt, workers, gotTr, wantTr)
			}
		}
	}
}

// TestParallelDecodeCorruptionFirstErrorWins flips a byte mid-record: the
// pooled decoder must fail on the same frame ordinal as the serial one
// (frames past the damage may have decoded fine on other workers, but the
// consumer sees errors in stream order).
func TestParallelDecodeCorruptionFirstErrorWins(t *testing.T) {
	data, _ := buildSeekableRecord(t, 103, 1200, 6)
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 40; trial++ {
		mut := append([]byte(nil), data...)
		i := len(Magic) + rng.Intn(len(mut)-len(Magic))
		mut[i] ^= byte(1 + rng.Intn(255))
		serialIt, err := OpenRecord(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		wantN, wantErr := drainToError(serialIt)
		for _, workers := range []int{2, 8} {
			it, err := OpenRecordOptions(bytes.NewReader(mut), DecoderOptions{DecodeWorkers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: open: %v", trial, workers, err)
			}
			gotN, gotErr := drainToError(it)
			if gotN != wantN || (gotErr == io.EOF) != (wantErr == io.EOF) {
				t.Fatalf("trial %d (flip at %d) workers %d: %d frames then %v; serial %d frames then %v",
					trial, i, workers, gotN, gotErr, wantN, wantErr)
			}
		}
	}
}

// TestParallelDecodeEarlyClose abandons iterators at every prefix length:
// Close must not deadlock against in-flight workers, and a closed iterator
// must refuse further reads.
func TestParallelDecodeEarlyClose(t *testing.T) {
	data, cuts := buildSeekableRecord(t, 105, 800, 6)
	for _, workers := range []int{1, 4, 8} {
		for stop := 0; stop < 20; stop++ {
			it, err := OpenRecordOptions(bytes.NewReader(data), DecoderOptions{DecodeWorkers: workers, Prefetch: 2})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < stop; i++ {
				if _, err := it.Next(); err != nil {
					break
				}
			}
			if err := it.Close(); err != nil {
				t.Fatalf("workers %d stop %d: Close: %v", workers, stop, err)
			}
			if _, err := it.Next(); err == nil || err == io.EOF {
				t.Fatalf("workers %d: Next after Close gave %v", workers, err)
			}
		}
		it, err := OpenRecordSegments(bytes.NewReader(data), int64(len(data)), cuts, DecoderOptions{DecodeWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Next(); err != nil {
			t.Fatal(err)
		}
		if err := it.Close(); err != nil {
			t.Fatalf("segment early close: %v", err)
		}
	}
}

// TestParallelDecodeStress hammers the pipeline with many concurrent
// iterations; run under -race this exercises the job recycling, the gzip
// reader pool, and the ordered hand-off.
func TestParallelDecodeStress(t *testing.T) {
	data, cuts := buildSeekableRecord(t, 106, 1500, 10)
	iters := 30
	if testing.Short() {
		iters = 8
	}
	done := make(chan error, 2*iters)
	for i := 0; i < iters; i++ {
		go func(i int) {
			it, err := OpenRecordOptions(bytes.NewReader(data), DecoderOptions{DecodeWorkers: 1 + i%8})
			if err != nil {
				done <- err
				return
			}
			if _, err := DrainRecord(it); err != nil {
				done <- err
				return
			}
			done <- nil
		}(i)
		go func(i int) {
			it, err := OpenRecordSegments(bytes.NewReader(data), int64(len(data)), cuts, DecoderOptions{DecodeWorkers: 1 + i%8})
			if err != nil {
				done <- err
				return
			}
			if _, err := DrainRecord(it); err != nil {
				done <- err
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 2*iters; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestReadRecordOptionsMatchesReadRecord pins the convenience wrapper to
// the eager reader's result.
func TestReadRecordOptionsMatchesReadRecord(t *testing.T) {
	data, _ := buildSeekableRecord(t, 107, 600, 4)
	want, err := ReadRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordOptions(bytes.NewReader(data), DecoderOptions{DecodeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Names) != len(want.Names) || len(got.Chunks) != len(want.Chunks) {
		t.Fatalf("pooled read: %d names/%d callsites, serial %d/%d",
			len(got.Names), len(got.Chunks), len(want.Names), len(want.Chunks))
	}
	for cs, chunks := range want.Chunks {
		if len(got.Chunks[cs]) != len(chunks) {
			t.Fatalf("callsite %d: %d chunks, serial %d", cs, len(got.Chunks[cs]), len(chunks))
		}
	}
}

// chunkDecodeCorpus loads the cdcformat chunk-decoder fuzz corpus (raw
// marshalled-chunk payloads, many of them hostile) so the parallel decoder
// fuzzes over the same inputs that hardened the serial chunk parser.
func chunkDecodeCorpus(f *testing.F) [][]byte {
	f.Helper()
	dir := filepath.Join("..", "cdcformat", "testdata", "fuzz", "FuzzChunkDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Logf("no shared corpus at %s: %v", dir, err)
		return nil
	}
	var payloads [][]byte
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "[]byte(") || !strings.HasSuffix(line, ")") {
				continue
			}
			if s, err := strconv.Unquote(line[len("[]byte(") : len(line)-1]); err == nil {
				payloads = append(payloads, []byte(s))
			}
		}
	}
	return payloads
}

// frameAsRecord wraps an arbitrary payload in one well-formed chunk frame
// (correct varint length and CRC trailer) so the payload itself, not the
// framing, is what the chunk decoder chews on.
func frameAsRecord(f *testing.F, payload []byte) []byte {
	f.Helper()
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, 0, false)
	if err != nil {
		f.Fatal(err)
	}
	if err := fw.WriteFrame(frameChunk, payload); err != nil {
		f.Fatal(err)
	}
	if err := fw.Close(1); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParallelDecode is the differential oracle for the decode pipeline:
// whatever the input, the pooled decoder must deliver exactly the serial
// reader's frame sequence and fail (or finish) exactly where it does. Seeds
// include valid multi-epoch records, truncations, bit flips, and the
// cdcformat chunk-decoder corpus framed into records.
func FuzzParallelDecode(f *testing.F) {
	valid, _ := buildSeekableRecord(f, 109, 300, 3)
	f.Add(valid, uint8(2))
	f.Add(valid[:len(valid)/2], uint8(4))
	f.Add(valid[:len(Magic)+5], uint8(1))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped, uint8(8))
	f.Add([]byte(Magic), uint8(3))
	for i, payload := range chunkDecodeCorpus(f) {
		f.Add(frameAsRecord(f, payload), uint8(1+i%8))
	}

	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		w := 1 + int(workers%8)
		serialIt, serialErr := OpenRecord(bytes.NewReader(data))
		pooledIt, pooledErr := OpenRecordOptions(bytes.NewReader(data), DecoderOptions{DecodeWorkers: w})
		if (serialErr == nil) != (pooledErr == nil) {
			t.Fatalf("open: serial %v, %d workers %v", serialErr, w, pooledErr)
		}
		if serialErr != nil {
			return
		}
		defer serialIt.Close()
		var n int
		for {
			sf, serr := serialIt.Next()
			pf, perr := pooledIt.Next()
			if (serr == nil) != (perr == nil) {
				t.Fatalf("frame %d: serial err %v, %d workers err %v", n, serr, w, perr)
			}
			if serr != nil {
				if (serr == io.EOF) != (perr == io.EOF) {
					t.Fatalf("terminal: serial %v, %d workers %v", serr, w, perr)
				}
				var st, pt *TruncatedRecordError
				if errors.As(serr, &st) != errors.As(perr, &pt) {
					t.Fatalf("terminal kind: serial %v, %d workers %v", serr, w, perr)
				}
				if st != nil && (st.Frames != pt.Frames || st.Events != pt.Events || st.FlushPoints != pt.FlushPoints) {
					t.Fatalf("truncation counters: serial %+v, %d workers %+v", st, w, pt)
				}
				break
			}
			if sf.Kind != pf.Kind || !bytes.Equal(sf.Payload, pf.Payload) {
				t.Fatalf("frame %d diverges: serial kind %d/%dB, %d workers kind %d/%dB",
					n, sf.Kind, len(sf.Payload), w, pf.Kind, len(pf.Payload))
			}
			n++
		}
		if err := pooledIt.Close(); err != nil {
			t.Fatalf("pooled Close: %v", err)
		}
	})
}

// TestOpenRecordSegmentsBadCuts feeds hostile cut lists: out-of-range,
// unsorted, and duplicate offsets must be survivable (sanitized or failed),
// never a panic or a wrong stream.
func TestOpenRecordSegmentsBadCuts(t *testing.T) {
	data, _ := buildSeekableRecord(t, 108, 400, 4)
	serial, err := ReadRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, cuts := range [][]int64{
		nil,
		{},
		{-5, 0, 3},
		{int64(len(data)), int64(len(data) + 100)},
		{7, 7, 7},
		{int64(len(data) / 2), int64(len(data) / 4)},
	} {
		it, err := OpenRecordSegments(bytes.NewReader(data), int64(len(data)), cuts, DecoderOptions{DecodeWorkers: 2})
		if err != nil {
			continue
		}
		rec, err := DrainRecord(it)
		if err != nil {
			// Bogus interior cuts can legitimately fail decode; what they
			// cannot do is silently deliver a different record.
			continue
		}
		if len(rec.Names) != len(serial.Names) {
			t.Fatalf("cuts %v: decoded %d names, serial %d", cuts, len(rec.Names), len(serial.Names))
		}
	}
}

// TestOpenRecordSegmentsAtSeek pins the seek contract: starting a segment
// decode at the k-th committed cut must deliver exactly the frames a serial
// full decode yields after its k-th flush mark, at every pool width.
func TestOpenRecordSegmentsAtSeek(t *testing.T) {
	data, cuts := buildSeekableRecord(t, 117, 1200, 6)
	serialIt, err := OpenRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	all, _, _ := drainFlat(t, serialIt)

	// tailAfterFlush returns the serial frame sequence past k flush marks.
	tailAfterFlush := func(k int) []frameFlat {
		seen := 0
		for i, f := range all {
			if f.kind == frameFlush {
				seen++
				if seen == k {
					return all[i+1:]
				}
			}
		}
		t.Fatalf("record has fewer than %d flush marks", k)
		return nil
	}

	for k := 1; k <= len(cuts); k++ {
		want := tailAfterFlush(k)
		for _, workers := range []int{0, 1, 2, 4} {
			it, err := OpenRecordSegmentsAt(bytes.NewReader(data), int64(len(data)), cuts[k-1], cuts,
				DecoderOptions{DecodeWorkers: workers})
			if err != nil {
				t.Fatalf("seek to cut %d workers=%d: %v", k, workers, err)
			}
			got, _, _ := drainFlat(t, it)
			if len(got) != len(want) {
				t.Fatalf("cut %d workers=%d: got %d frames, want %d", k, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cut %d workers=%d: frame %d differs", k, workers, i)
				}
			}
		}
	}

	// start == 0 is exactly OpenRecordSegments.
	it, err := OpenRecordSegmentsAt(bytes.NewReader(data), int64(len(data)), 0, cuts, DecoderOptions{DecodeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := drainFlat(t, it)
	if len(got) != len(all) {
		t.Fatalf("start=0: got %d frames, want %d", len(got), len(all))
	}

	// A seek landing exactly at the end of the blob is a valid empty tail.
	it, err = OpenRecordSegmentsAt(bytes.NewReader(data), int64(len(data)), int64(len(data)), cuts, DecoderOptions{DecodeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := drainFlat(t, it); len(got) != 0 {
		t.Fatalf("seek to end: got %d frames, want 0", len(got))
	}

	// Out-of-range starts fail up front rather than decoding garbage.
	for _, start := range []int64{-1, int64(len(data)) + 9} {
		if _, err := OpenRecordSegmentsAt(bytes.NewReader(data), int64(len(data)), start, cuts, DecoderOptions{DecodeWorkers: 2}); err == nil {
			t.Fatalf("start=%d: want error, got nil", start)
		}
	}
}
