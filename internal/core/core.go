// Package core implements the complete Clock Delta Compression pipeline —
// the paper's primary contribution (§3): redundancy elimination,
// permutation encoding against the Lamport-clock reference order, linear
// predictive encoding of index columns, epoch enforcement for chunked
// flushing, and a final gzip pass over the serialized stream.
//
// The Encoder consumes the per-callsite event stream a recorder produces
// and writes a compact record file; the Decoder reads it back into chunks
// for the replay engine. Between them they realize Fig. 2's "CDC encoding"
// and "CDC decoding" boxes.
//
// # Record file layout
//
//	magic "CDCRECv2"
//	gzip stream of frames:
//	  frame := kind byte, varint payload length, payload, CRC32 trailer
//	  kind 1: chunk           (cdcformat.Chunk)
//	  kind 2: callsite name   (varint id, UTF-8 name)
//	  kind 3: flush point     (varint writer clock)
//
// The trailer is the IEEE CRC32 of kind+length+payload, little-endian, so a
// reader can stop cleanly at the last intact frame of a crashed run's
// record. A flush-point frame marks a consistent cut: the encoder writes one
// only when every callsite stream was flushed through it, which is what
// makes a salvaged prefix replayable (see recorddir.Salvage). The frame
// carries the rank's own Lamport clock at the cut (a lower bound sampled on
// the application thread): every send the rank made with a smaller or equal
// clock provably precedes the cut, which is what lets salvage compute a
// tight cross-rank consistency frontier instead of cascading to nothing.
//
// Chunks for one callsite appear in record order; chunks of different
// callsites interleave in flush order.
package core

import (
	"compress/gzip"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// Magic is the record file signature. v2 added per-frame CRC32 trailers and
// flush-point frames; v1 files are not readable (the reproduction has no
// compatibility window to honour).
const Magic = "CDCRECv2"

// Frame kinds.
const (
	frameChunk    = 1
	frameCallsite = 2
	frameFlush    = 3
)

// maxFrameLen bounds a frame payload during decode (corruption guard).
const maxFrameLen = 1 << 30

// EncoderOptions tune the Encoder.
type EncoderOptions struct {
	// ChunkEvents is the number of matched events per chunk before a
	// flush (§3.5 epoch enforcement). Default 4096.
	ChunkEvents int
	// GzipLevel is the compression level for the final gzip pass.
	// Default gzip.DefaultCompression.
	GzipLevel int
	// OmitSenderColumn drops the reference-order sender column robustness
	// extension, producing the paper's exact format. Records without the
	// column replay correctly for polling-style applications (the
	// patterns the paper evaluates) but can stall or abort on
	// tightly-coupled blocking exchanges; see cdcformat.Chunk.Senders.
	OmitSenderColumn bool
	// Durable fsyncs the underlying writer (when it implements Syncer) at
	// every flush point and on close, so a machine crash loses at most the
	// events since the last FlushAll.
	Durable bool
	// EncodeWorkers > 1 fans chunk building and serialization across that
	// many workers, with an ordered-commit stage keeping the record file
	// byte-identical to single-threaded output (DESIGN.md §9). 0 or 1 keeps
	// everything on the calling goroutine. With workers, Stats and
	// BytesWritten are exact only after Close.
	EncodeWorkers int
	// Obs, when non-nil, receives per-stage pipeline metrics (encode.*
	// names, DESIGN.md §8): byte counts after redundancy elimination,
	// permutation encoding, LP encoding, and gzip. Stage sizing does a
	// little extra work per chunk flush; a nil registry skips it entirely.
	Obs *obs.Registry
	// Resume appends to an existing record file instead of starting one:
	// the magic header is assumed present and a fresh gzip member is
	// opened after the cleanly closed previous stream (see
	// NewFrameWriterResume). The writer must be positioned at the end of
	// the file (O_APPEND). ResumeClock seeds the encoder's clock bound so
	// flush-point marks stay monotone across the resume boundary.
	Resume      bool
	ResumeClock uint64
	// SeekableCuts closes the gzip member at every flush-point mark and
	// opens a fresh one, so the byte offset after each mark is a gzip
	// member boundary — a random-access decode point (gzip readers
	// concatenate members transparently, so sequential decode is
	// unchanged). Costs a member trailer+header (~30 bytes) and a
	// compression-dictionary reset per cut; seekable storage backends
	// turn it on, the byte-compatible dir layout leaves it off.
	SeekableCuts bool
	// OnFlushPoint, when non-nil, is invoked after each flush-point mark
	// reaches the underlying writer (FlushAll rounds that wrote a mark,
	// and Close's final mark) with the writer-relative cut: the mark's
	// clock, cumulative matched events, and compressed bytes emitted.
	// Storage backends hang their epoch-index commit on it. It runs on
	// the encoder's goroutine; an error fails the flush.
	OnFlushPoint func(clock, events uint64, offset int64) error
}

func (o *EncoderOptions) fill() {
	if o.ChunkEvents == 0 {
		o.ChunkEvents = 4096
	}
	if o.GzipLevel == 0 {
		o.GzipLevel = gzip.DefaultCompression
	}
}

// Stats aggregates what the encoder has seen, for the paper's evaluation
// metrics.
type Stats struct {
	// Rows is the number of record-table rows observed (Fig. 4 rows).
	Rows uint64
	// MatchedEvents is the number of matched receive events.
	MatchedEvents uint64
	// UnmatchedTests is the total count of failed test calls.
	UnmatchedTests uint64
	// PermutedMessages is the number of permutation-difference rows
	// (paper's Np for the Fig. 14 percentage).
	PermutedMessages uint64
	// ValuesOriginal is the stored-value count of the uncompressed format
	// (five per row).
	ValuesOriginal uint64
	// ValuesCDC is the stored-value count after full CDC encoding.
	ValuesCDC uint64
	// Chunks is the number of chunks flushed.
	Chunks uint64
	// FlushPoints is the number of consistent-cut marks written (FlushAll
	// rounds that flushed every stream, plus the final one at Close).
	FlushPoints uint64
}

// PermutationPercent returns 100·Np/N, the Fig. 14 metric.
func (s Stats) PermutationPercent() float64 {
	if s.MatchedEvents == 0 {
		return 0
	}
	return 100 * float64(s.PermutedMessages) / float64(s.MatchedEvents)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Syncer is the subset of *os.File a durable writer needs: forcing buffered
// bytes to stable storage.
type Syncer interface{ Sync() error }

// FrameWriter emits the physical record-file layer: magic, gzip stream, and
// CRC32-trailed frames. The Encoder drives it for CDC records; salvage
// tooling drives it directly to rewrite verified frames.
type FrameWriter struct {
	cw      *countingWriter
	zw      *gzip.Writer
	level   int    // gzip level, for returning zw to its pool
	sync    Syncer // non-nil when durable and the writer can fsync
	scratch []byte
	closed  bool
	// seekable ends the gzip member at every FlushPoint (see
	// EncoderOptions.SeekableCuts).
	seekable bool
}

// NewFrameWriter writes the magic and opens the gzip stream. With durable
// set, every FlushPoint and the final Close fsync the underlying writer if
// it implements Syncer.
func NewFrameWriter(w io.Writer, gzipLevel int, durable bool) (*FrameWriter, error) {
	return newFrameWriter(w, gzipLevel, durable, true)
}

// NewFrameWriterResume continues an existing record file: the magic header
// is already on disk, so only a fresh gzip member is opened, appended after
// the cleanly closed previous one. Decoders need no resume awareness —
// gzip readers concatenate members transparently, so the appended frames
// read as a straight continuation of the original stream. The ingest
// daemon uses this to extend a salvaged (or gracefully finalized) rank
// record across a daemon restart.
func NewFrameWriterResume(w io.Writer, gzipLevel int, durable bool) (*FrameWriter, error) {
	return newFrameWriter(w, gzipLevel, durable, false)
}

func newFrameWriter(w io.Writer, gzipLevel int, durable bool, writeMagic bool) (*FrameWriter, error) {
	if gzipLevel == 0 {
		gzipLevel = gzip.DefaultCompression
	}
	cw := &countingWriter{w: w}
	if writeMagic {
		if _, err := io.WriteString(cw, Magic); err != nil {
			return nil, err
		}
	}
	zw, err := getGzipWriter(cw, gzipLevel)
	if err != nil {
		return nil, err
	}
	fw := &FrameWriter{cw: cw, zw: zw, level: gzipLevel}
	if durable {
		fw.sync, _ = w.(Syncer)
	}
	return fw, nil
}

// WriteFrame emits one frame: kind, varint length, payload, and the CRC32
// trailer over the three.
func (fw *FrameWriter) WriteFrame(kind byte, payload []byte) error {
	if fw.closed {
		return errors.New("core: WriteFrame after Close")
	}
	buf := append(fw.scratch[:0], kind)
	buf = varint.AppendUint(buf, uint64(len(payload)))
	crc := crc32.ChecksumIEEE(buf)
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if _, err := fw.zw.Write(buf); err != nil {
		return err
	}
	if _, err := fw.zw.Write(payload); err != nil {
		return err
	}
	buf = binary.LittleEndian.AppendUint32(buf[:0], crc)
	_, err := fw.zw.Write(buf)
	fw.scratch = buf
	return err
}

// Flush pushes buffered frames through the compressor to the underlying
// writer (gzip sync flush) and fsyncs when durable. It does not write a
// flush-point frame; callers that have reached a consistent cut use
// FlushPoint.
func (fw *FrameWriter) Flush() error {
	if err := fw.zw.Flush(); err != nil {
		return err
	}
	if fw.sync != nil {
		return fw.sync.Sync()
	}
	return nil
}

// FlushPoint marks a consistent cut — a flush-point frame carrying the
// writer's clock, followed by a Flush — after which everything written so
// far is salvageable as a unit. With SetSeekableCuts the member is closed
// instead of sync-flushed, leaving BytesWritten on a member boundary.
func (fw *FrameWriter) FlushPoint(clock uint64) error {
	if err := fw.WriteFrame(frameFlush, varint.AppendUint(nil, clock)); err != nil {
		return err
	}
	if fw.seekable {
		return fw.endMember()
	}
	return fw.Flush()
}

// SetSeekableCuts makes every subsequent FlushPoint end the gzip member
// (see EncoderOptions.SeekableCuts). Call before the first FlushPoint.
func (fw *FrameWriter) SetSeekableCuts(on bool) { fw.seekable = on }

// endMember finalizes the current gzip member and opens a fresh one, so
// the bytes emitted so far end on a member boundary — a decode point a
// reader can seek straight to. The fsync (when durable) happens after the
// member trailer is out, like Flush's.
func (fw *FrameWriter) endMember() error {
	if err := fw.zw.Close(); err != nil {
		return err
	}
	putGzipWriter(fw.level, fw.zw)
	zw, err := getGzipWriter(fw.cw, fw.level)
	if err != nil {
		// No writer to continue on; latch closed so a later WriteFrame
		// fails loudly instead of dereferencing nil.
		fw.zw = nil
		fw.closed = true
		return err
	}
	fw.zw = zw
	if fw.sync != nil {
		return fw.sync.Sync()
	}
	return nil
}

// Close writes a final flush-point frame carrying clock, finalizes the gzip
// stream, and fsyncs when durable. The FrameWriter cannot be used afterwards.
func (fw *FrameWriter) Close(clock uint64) error {
	if fw.closed {
		return nil
	}
	if err := fw.WriteFrame(frameFlush, varint.AppendUint(nil, clock)); err != nil {
		return err
	}
	fw.closed = true
	if err := fw.zw.Close(); err != nil {
		return err
	}
	// A cleanly closed gzip writer is safe to reuse via Reset; error paths
	// above abandon it to the GC instead.
	putGzipWriter(fw.level, fw.zw)
	fw.zw = nil
	if fw.sync != nil {
		return fw.sync.Sync()
	}
	return nil
}

// BytesWritten reports the compressed bytes emitted so far (exact after
// Close).
func (fw *FrameWriter) BytesWritten() int64 { return fw.cw.n }

// Encoder applies CDC to an event stream and writes the record file.
// It is not safe for concurrent use; the recorder drives it from its
// dedicated CDC goroutine.
type Encoder struct {
	opts    EncoderOptions
	fw      *FrameWriter
	pending map[uint64]*pendingStream
	order   []uint64 // callsites in first-seen order, for deterministic flush
	named   map[uint64]bool
	// clock is the best lower bound on the writing rank's Lamport clock:
	// the max of FlushAll-supplied samples and observed receive clocks. It
	// stamps flush-point frames.
	clock   uint64
	stats   Stats
	scratch []byte
	closed  bool
	// pipe is the parallel encode pipeline, non-nil when
	// EncoderOptions.EncodeWorkers > 1 (pipeline.go).
	pipe *encodePipeline

	// obs instruments, nil when Options.Obs is nil. mLPE doubles as the
	// "stage sizing enabled" flag: computing RE/PE sizes costs a pass over
	// the chunk, which a disabled registry must not pay.
	mChunks *obs.Counter
	mRaw    *obs.Counter
	mRE     *obs.Counter
	mPE     *obs.Counter
	mLPE    *obs.Counter
	mGzip   *obs.Counter
	obsReg  *obs.Registry
	// gzipReported is how much of fw.BytesWritten() has been added to
	// mGzip, so the shared-registry counter sums correctly across the
	// world's per-rank encoders.
	gzipReported int64
}

// rawBitsPerRow is the paper's uncompressed record-row accounting
// (baseline.BitsPerEvent; duplicated here because baseline imports core).
const rawBitsPerRow = 162

type pendingStream struct {
	events  []tables.Event
	matched int
	// frontier is the cumulative per-sender epoch frontier across all
	// flushed chunks, used to pin boundary-inversion exceptions.
	frontier map[int32]uint64
}

// NewEncoder creates an Encoder writing to w.
func NewEncoder(w io.Writer, opts EncoderOptions) (*Encoder, error) {
	opts.fill()
	var fw *FrameWriter
	var err error
	if opts.Resume {
		fw, err = NewFrameWriterResume(w, opts.GzipLevel, opts.Durable)
	} else {
		fw, err = NewFrameWriter(w, opts.GzipLevel, opts.Durable)
	}
	if err != nil {
		return nil, err
	}
	fw.SetSeekableCuts(opts.SeekableCuts)
	e := &Encoder{
		opts:    opts,
		fw:      fw,
		pending: make(map[uint64]*pendingStream),
		named:   make(map[uint64]bool),
		clock:   opts.ResumeClock,
	}
	if reg := opts.Obs; reg != nil {
		e.obsReg = reg
		e.mChunks = reg.Counter("encode.chunks")
		e.mRaw = reg.Counter("encode.bytes.raw")
		e.mRE = reg.Counter("encode.bytes.re")
		e.mPE = reg.Counter("encode.bytes.pe")
		e.mLPE = reg.Counter("encode.bytes.lpe")
		e.mGzip = reg.Counter("encode.bytes.gzip")
	}
	if opts.EncodeWorkers > 1 {
		e.pipe = newEncodePipeline(e, opts.EncodeWorkers)
	}
	return e, nil
}

// RegisterCallsite records a human-readable name for a callsite ID
// (file:line of the MF call), written once into the stream.
func (e *Encoder) RegisterCallsite(id uint64, name string) error {
	if e.named[id] {
		return nil
	}
	e.named[id] = true
	var w varint.Writer
	w.Uint(id)
	w.Bytes([]byte(name))
	if e.pipe != nil {
		j := e.pipe.getJob()
		j.kind = jobFrame
		j.frameKind = frameCallsite
		j.payload = append(j.payload[:0], w.Result()...)
		e.pipe.submit(j)
		return e.pipe.firstErr()
	}
	return e.fw.WriteFrame(frameCallsite, w.Result())
}

// Observe feeds one event row for a callsite. Matched rows are flushed in
// chunks of ChunkEvents.
func (e *Encoder) Observe(callsite uint64, ev tables.Event) error {
	if e.closed {
		return errors.New("core: Observe after Close")
	}
	ps := e.pending[callsite]
	if ps == nil {
		ps = &pendingStream{}
		e.pending[callsite] = ps
		e.order = append(e.order, callsite)
	}
	e.stats.Rows++
	if ev.Flag {
		e.stats.MatchedEvents++
		ps.matched++
		if ev.Clock > e.clock {
			e.clock = ev.Clock
		}
	} else {
		e.stats.UnmatchedTests += ev.Count
	}
	e.stats.ValuesOriginal += 5
	ps.events = append(ps.events, ev)
	// Flush only at a group boundary: a with_next event is received
	// together with its successor, and the replay engine releases such
	// groups in a single MF call, so a group must never straddle chunks.
	if ps.matched >= e.opts.ChunkEvents && ev.Flag && !ev.WithNext {
		return e.flush(callsite, ps)
	}
	return nil
}

func (e *Encoder) flush(callsite uint64, ps *pendingStream) error {
	if e.pipe != nil {
		return e.flushAsync(callsite, ps)
	}
	if len(ps.events) == 0 {
		return nil
	}
	var chunk *cdcformat.Chunk
	if e.opts.OmitSenderColumn {
		chunk = cdcformat.BuildChunk(callsite, ps.events)
	} else {
		chunk = cdcformat.BuildChunkWithSenders(callsite, ps.events)
	}
	// Pin messages that an application-level same-sender inversion pushed
	// past a flush boundary: their clocks do not exceed a previously
	// flushed frontier, so window-based membership needs the explicit
	// exception entry.
	if ps.frontier == nil {
		ps.frontier = make(map[int32]uint64)
	}
	for _, ev := range ps.events {
		if ev.Flag && ev.Clock <= ps.frontier[ev.Rank] {
			chunk.Exceptions = append(chunk.Exceptions,
				tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock})
		}
	}
	for _, ep := range chunk.EpochLine {
		if ep.Clock > ps.frontier[ep.Rank] {
			ps.frontier[ep.Rank] = ep.Clock
		}
	}
	if e.mLPE != nil {
		span := e.obsReg.StartSpan("encode.chunk")
		re, pe, lp := cdcformat.StageSizes(ps.events, chunk)
		e.mChunks.Inc()
		e.mRaw.Add(uint64(len(ps.events)) * rawBitsPerRow / 8)
		e.mRE.Add(uint64(re))
		e.mPE.Add(uint64(pe))
		e.mLPE.Add(uint64(lp))
		span.End()
	}
	ps.events = ps.events[:0]
	ps.matched = 0
	e.stats.Chunks++
	e.stats.PermutedMessages += uint64(len(chunk.Moves))
	e.stats.ValuesCDC += uint64(chunk.ValueCount())
	e.scratch = chunk.Marshal(e.scratch[:0])
	return e.fw.WriteFrame(frameChunk, e.scratch)
}

// FlushAll flushes every pending stream to storage as chunks, regardless
// of how full they are — the periodic memory-bound flush §3.5 motivates
// ("debugging tools need to minimize memory usage"). A stream whose
// buffered events end inside a with_next group is skipped this round:
// groups must never straddle chunks.
//
// When no stream was skipped, the flushed frames form a consistent cut of
// the rank's event history and a flush-point frame marks it; a crashed
// record is salvageable back to its last such mark. A round that had to
// skip a stream still pushes bytes to storage but writes no mark.
//
// clock is the writing rank's Lamport clock sampled when the newest flushed
// row's MF call returned (zero if the caller has no clock source); it — or
// any larger bound already observed — is stamped into the flush-point frame.
func (e *Encoder) FlushAll(clock uint64) error {
	if e.closed {
		return errors.New("core: FlushAll after Close")
	}
	if clock > e.clock {
		e.clock = clock
	}
	skipped := false
	for _, cs := range e.order {
		ps := e.pending[cs]
		if n := len(ps.events); n > 0 {
			if last := ps.events[n-1]; last.Flag && last.WithNext {
				skipped = true
				continue
			}
		}
		if err := e.flush(cs, ps); err != nil {
			return err
		}
	}
	if e.pipe != nil {
		j := e.pipe.getJob()
		if skipped {
			j.kind = jobFlushOnly
		} else {
			e.stats.FlushPoints++
			j.kind = jobFlushPoint
			j.clock = e.clock
		}
		if err := e.pipe.run(j); err != nil || skipped {
			return err
		}
		return e.notifyFlushPoint()
	}
	if skipped {
		err := e.fw.Flush()
		e.reportGzipBytes()
		return err
	}
	e.stats.FlushPoints++
	err := e.fw.FlushPoint(e.clock)
	e.reportGzipBytes()
	if err != nil {
		return err
	}
	return e.notifyFlushPoint()
}

// notifyFlushPoint invokes the OnFlushPoint commit hook after a mark
// reached the underlying writer. Safe in parallel mode too: run(j) only
// returns after the committer executed the mark, so the FrameWriter is
// quiescent and BytesWritten is exact.
func (e *Encoder) notifyFlushPoint() error {
	if e.opts.OnFlushPoint == nil {
		return nil
	}
	return e.opts.OnFlushPoint(e.clock, e.stats.MatchedEvents, e.fw.BytesWritten())
}

// Close flushes every pending stream and finalizes the gzip stream (whose
// final frame is a flush-point mark). The Encoder cannot be used afterwards.
func (e *Encoder) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.pipe != nil {
		return e.closeParallel()
	}
	for _, cs := range e.order {
		if err := e.flush(cs, e.pending[cs]); err != nil {
			return err
		}
	}
	e.stats.FlushPoints++
	err := e.fw.Close(e.clock)
	e.reportGzipBytes()
	if err != nil {
		return err
	}
	return e.notifyFlushPoint()
}

// reportGzipBytes adds the not-yet-reported compressed output to the
// encode.bytes.gzip counter. Deltas (rather than a gauge of the total) let
// every rank's encoder share one registry and still sum to the world's
// total record size.
func (e *Encoder) reportGzipBytes() {
	if e.mGzip == nil {
		return
	}
	if n := e.fw.BytesWritten(); n > e.gzipReported {
		e.mGzip.Add(uint64(n - e.gzipReported))
		e.gzipReported = n
	}
}

// BytesWritten reports the compressed bytes emitted so far (exact after
// Close).
func (e *Encoder) BytesWritten() int64 { return e.fw.BytesWritten() }

// Stats returns the accumulated statistics. With EncodeWorkers > 1,
// PermutedMessages and ValuesCDC are computed by the workers and folded in
// at Close; the remaining fields are always current.
func (e *Encoder) Stats() Stats { return e.stats }

// Record is a fully decoded record file.
type Record struct {
	// Chunks holds each callsite's chunks in record order.
	Chunks map[uint64][]*cdcformat.Chunk
	// Names maps callsite IDs to their registered names.
	Names map[uint64]string
	// order lists chunk callsites in stream order (with repeats).
	order []uint64
}

// Callsites returns the callsite IDs present, in first-chunk order.
func (r *Record) Callsites() []uint64 {
	seen := make(map[uint64]bool, len(r.Chunks))
	var out []uint64
	for _, cs := range r.order {
		if !seen[cs] {
			seen[cs] = true
			out = append(out, cs)
		}
	}
	return out
}

// ReadRecord decodes a complete record file into memory. It is a thin
// drain-everything wrapper over OpenRecord + DrainRecord.
//
// Deprecated: open a streaming RecordIter (OpenRecord or, for a pooled
// decode, OpenRecordOptions) and iterate it — or DrainRecord it when a
// materialized *Record is genuinely needed. RecordIter is the canonical
// decode path; this wrapper exists for callers that predate it.
func ReadRecord(rd io.Reader) (*Record, error) {
	rec, err := ReadRecordPrefix(rd)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadRecordPrefix decodes like ReadRecord but keeps what it verified: on
// a damaged or truncated stream the CRC-valid prefix record is returned
// alongside the error (a *TruncatedRecordError for truncation), instead of
// being discarded. Storage backends use it to read a live run's blob
// pinned at a committed cut, where running out of bytes mid-frame is the
// pin boundary, not damage.
//
// Deprecated: open a streaming RecordIter and DrainRecord it; the prefix
// semantics live there now. This wrapper exists for callers that predate
// the unified reader.
func ReadRecordPrefix(rd io.Reader) (*Record, error) {
	it, err := OpenRecord(rd)
	if err != nil {
		return &Record{Chunks: make(map[uint64][]*cdcformat.Chunk)}, err
	}
	return DrainRecord(it)
}

// DrainRecord consumes the iterator's remaining frames into a materialized
// *Record, closing the iterator. On a damaged or truncated stream the
// CRC-valid prefix record is returned alongside the error (a
// *TruncatedRecordError for truncation) — ReadRecordPrefix semantics for
// any RecordIter, however its frames are decoded (serial, pooled, or
// segment-parallel).
func DrainRecord(it *RecordIter) (*Record, error) {
	rec := &Record{
		Chunks: make(map[uint64][]*cdcformat.Chunk),
	}
	defer it.Close() //cdc:allow(errsink) read-side close; decode and checksum errors surface from Next
	for {
		f, err := it.Next()
		rec.Names = it.Names()
		if err == io.EOF {
			return rec, nil
		}
		if err != nil {
			return rec, err
		}
		if f.Chunk != nil {
			rec.Chunks[f.Chunk.Callsite] = append(rec.Chunks[f.Chunk.Callsite], f.Chunk)
			rec.order = append(rec.order, f.Chunk.Callsite)
		}
	}
}
