package core_test

import (
	"bytes"
	"fmt"

	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
)

// A recorder feeds observed events into the Encoder; ReadRecord recovers
// the chunked tables. Here four in-reference-order receives compress to a
// chunk with no permutation moves at all (§3.3).
func ExampleEncoder() {
	var buf bytes.Buffer
	enc, _ := core.NewEncoder(&buf, core.EncoderOptions{})
	enc.RegisterCallsite(1, "app.go:42")
	for i, src := range []int32{0, 1, 0, 2} {
		enc.Observe(1, tables.Matched(src, uint64(i+1), false))
	}
	enc.Close()

	rec, _ := core.ReadRecord(bytes.NewReader(buf.Bytes()))
	chunk := rec.Chunks[1][0]
	fmt.Println("callsite:", rec.Names[1])
	fmt.Println("events:", chunk.NumMatched, "moves:", len(chunk.Moves))
	// Output:
	// callsite: app.go:42
	// events: 4 moves: 0
}
