package core

import (
	"bytes"
	"io"
	"testing"

	"cdcreplay/internal/tables"
)

// TestEncoderResumeAppends pins the resume contract the ingest daemon
// relies on: a second Encoder opened with Resume on a cleanly closed
// record appends a fresh gzip member, and the existing readers decode the
// concatenation as one continuous frame stream — names, chunks, and
// flush-point marks from both members, with monotone mark clocks across
// the boundary.
func TestEncoderResumeAppends(t *testing.T) {
	var buf bytes.Buffer

	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(7, "first"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := enc.Observe(7, tables.Matched(0, uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	firstLen := buf.Len()

	enc2, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 4, Resume: true, ResumeClock: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc2.RegisterCallsite(9, "second"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := enc2.Observe(9, tables.Matched(1, uint64(10+i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc2.Observe(9, tables.Unmatched(2)); err != nil {
		t.Fatal(err)
	}
	if err := enc2.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= firstLen {
		t.Fatalf("resume appended nothing: %d <= %d bytes", buf.Len(), firstLen)
	}

	it, err := OpenRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var matched, unmatched uint64
	var lastMark uint64
	for {
		f, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("decoding resumed record: %v", err)
		}
		if f.Chunk != nil {
			matched += f.Chunk.NumMatched
			for _, run := range f.Chunk.Unmatched {
				unmatched += run.Count
			}
		}
		if f.Flush {
			if f.FlushClock < lastMark {
				t.Fatalf("flush mark clock went backwards across resume: %d after %d",
					f.FlushClock, lastMark)
			}
			lastMark = f.FlushClock
		}
	}
	if matched != 9 {
		t.Fatalf("matched events across members = %d, want 9", matched)
	}
	if unmatched != 2 {
		t.Fatalf("unmatched tests across members = %d, want 2", unmatched)
	}
	names := it.Names()
	if names[7] != "first" || names[9] != "second" {
		t.Fatalf("names across members = %v, want both registered", names)
	}
	if it.FlushPoints() < 2 {
		t.Fatalf("flush points = %d, want one per member at least", it.FlushPoints())
	}
}
