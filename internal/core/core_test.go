package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"cdcreplay/internal/tables"
)

// synthEvents builds an event stream with per-sender increasing clocks and
// a controllable disorder level.
func synthEvents(rng *rand.Rand, n, senders, window int) []tables.Event {
	// Generate in reference order, then displace within a window to
	// emulate network reordering.
	type msg struct {
		rank  int32
		clock uint64
	}
	clocks := make([]uint64, senders)
	msgs := make([]msg, n)
	for i := range msgs {
		r := rng.Intn(senders)
		clocks[r] += uint64(1 + rng.Intn(3))
		msgs[i] = msg{rank: int32(r), clock: clocks[r]}
	}
	if window > 0 {
		for i := 0; i+1 < len(msgs); i++ {
			j := i + rng.Intn(window)
			if j >= len(msgs) {
				j = len(msgs) - 1
			}
			// Swap only across different senders to preserve per-sender
			// FIFO clock order.
			if msgs[i].rank != msgs[j].rank {
				msgs[i], msgs[j] = msgs[j], msgs[i]
			}
		}
	}
	events := make([]tables.Event, 0, n)
	for _, m := range msgs {
		if rng.Intn(8) == 0 {
			events = append(events, tables.Unmatched(uint64(1+rng.Intn(3))))
		}
		events = append(events, tables.Matched(m.rank, m.clock, rng.Intn(10) == 0))
	}
	return events
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(1, "mcb.go:42"); err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(2, "mcb.go:99"); err != nil {
		t.Fatal(err)
	}

	streams := map[uint64][]tables.Event{
		1: synthEvents(rng, 500, 5, 4),
		2: synthEvents(rng, 300, 3, 2),
	}
	// Interleave the two callsites' rows.
	i1, i2 := 0, 0
	for i1 < len(streams[1]) || i2 < len(streams[2]) {
		if i1 < len(streams[1]) && (i2 >= len(streams[2]) || rng.Intn(2) == 0) {
			if err := enc.Observe(1, streams[1][i1]); err != nil {
				t.Fatal(err)
			}
			i1++
		} else if i2 < len(streams[2]) {
			if err := enc.Observe(2, streams[2][i2]); err != nil {
				t.Fatal(err)
			}
			i2++
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if enc.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten %d != buffer %d", enc.BytesWritten(), buf.Len())
	}

	rec, err := ReadRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Names[1] != "mcb.go:42" || rec.Names[2] != "mcb.go:99" {
		t.Fatalf("names = %v", rec.Names)
	}
	for cs, want := range streams {
		var got []tables.Event
		for _, chunk := range rec.Chunks[cs] {
			var msgs []tables.MatchedEntry
			// In tests we reconstruct from the original message multiset
			// (shuffled) — at replay these come from live messages.
			msgs = matchedOf(want, len(got), int(chunk.NumMatched))
			rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
			evs, err := chunk.ReconstructEvents(msgs)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, evs...)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("callsite %d: reconstructed stream differs", cs)
		}
	}
}

// matchedOf extracts the matched entries for a chunk, given how many events
// of the stream were already consumed by earlier chunks.
func matchedOf(events []tables.Event, alreadyReconstructed, n int) []tables.MatchedEntry {
	var all []tables.MatchedEntry
	// Count matched events consumed so far by scanning the reconstructed
	// prefix length in rows: easier to just collect all matched entries and
	// slice by chunk boundaries tracked in matched counts.
	consumedMatched := 0
	rows := 0
	for _, ev := range events {
		if rows >= alreadyReconstructed {
			break
		}
		rows++
		if ev.Flag {
			consumedMatched++
		}
	}
	for _, ev := range events {
		if ev.Flag {
			all = append(all, tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock})
		}
	}
	return append([]tables.MatchedEntry(nil), all[consumedMatched:consumedMatched+n]...)
}

// normalize merges adjacent unmatched rows so chunk-boundary splits of a
// run (recorded as two rows) compare equal to the original single row.
func normalize(events []tables.Event) []tables.Event {
	var out []tables.Event
	for _, ev := range events {
		if !ev.Flag && len(out) > 0 && !out[len(out)-1].Flag {
			out[len(out)-1].Count += ev.Count
			continue
		}
		out = append(out, ev)
	}
	return out
}

func TestStatsAccounting(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	events := []tables.Event{
		tables.Matched(0, 1, false),
		tables.Unmatched(3),
		tables.Matched(1, 2, false),
	}
	for _, ev := range events {
		if err := enc.Observe(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	s := enc.Stats()
	if s.Rows != 3 || s.MatchedEvents != 2 || s.UnmatchedTests != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ValuesOriginal != 15 {
		t.Fatalf("ValuesOriginal = %d", s.ValuesOriginal)
	}
	if s.Chunks != 1 {
		t.Fatalf("Chunks = %d", s.Chunks)
	}
	if s.PermutedMessages != 0 {
		t.Fatalf("in-order stream shows %d permuted", s.PermutedMessages)
	}
	if s.PermutationPercent() != 0 {
		t.Fatalf("PermutationPercent = %v", s.PermutationPercent())
	}
}

func TestPermutationPercentWorkedExample(t *testing.T) {
	var buf bytes.Buffer
	enc, _ := NewEncoder(&buf, EncoderOptions{})
	// Paper Fig. 7: 8 receives, 3 permuted → 37.5%.
	clocks := []struct {
		rank  int32
		clock uint64
	}{{0, 2}, {0, 13}, {2, 8}, {1, 8}, {0, 15}, {1, 19}, {0, 17}, {0, 18}}
	for _, m := range clocks {
		if err := enc.Observe(0, tables.Matched(m.rank, m.clock, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if got := enc.Stats().PermutationPercent(); got != 37.5 {
		t.Fatalf("permutation%% = %v, want 37.5 (paper §6.1)", got)
	}
}

func TestObserveAfterCloseFails(t *testing.T) {
	enc, _ := NewEncoder(&bytes.Buffer{}, EncoderOptions{})
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Observe(0, tables.Matched(0, 1, false)); err == nil {
		t.Fatal("Observe after Close succeeded")
	}
}

func TestDoubleCloseIsIdempotent(t *testing.T) {
	enc, _ := NewEncoder(&bytes.Buffer{}, EncoderOptions{})
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRecordRejectsGarbage(t *testing.T) {
	if _, err := ReadRecord(bytes.NewReader([]byte("not a record"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadRecord(bytes.NewReader([]byte("CDCRECv1 garbage follows"))); err == nil {
		t.Fatal("accepted corrupt gzip stream")
	}
	if _, err := ReadRecord(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
}

// The headline claim: for near-ordered event streams CDC output is much
// smaller than raw, and smaller than what gzip alone achieves.
func TestCompressionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	events := synthEvents(rng, 20000, 8, 3)

	var cdcBuf bytes.Buffer
	enc, _ := NewEncoder(&cdcBuf, EncoderOptions{})
	for _, ev := range events {
		if err := enc.Observe(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}

	rawBits := int64(len(events)) * 162
	rawBytes := rawBits / 8
	cdcBytes := enc.BytesWritten()
	if cdcBytes*10 > rawBytes {
		t.Fatalf("CDC %d bytes vs raw %d bytes: less than 10x gain on near-ordered stream", cdcBytes, rawBytes)
	}
	t.Logf("raw=%dB cdc=%dB ratio=%.1fx bytes/event=%.3f",
		rawBytes, cdcBytes, float64(rawBytes)/float64(cdcBytes),
		float64(cdcBytes)/float64(enc.Stats().MatchedEvents))
}
