package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"cdcreplay/internal/obs"
	"cdcreplay/internal/tables"
)

// driveEncoder feeds a deterministic multi-callsite workload through an
// encoder: interleaved streams, periodic FlushAll calls (some landing
// mid-group to exercise the skipped-stream path), and callsite
// registration mid-stream. The exact same drive against serial and
// parallel encoders must produce the exact same bytes.
func driveEncoder(t *testing.T, enc *Encoder, seed int64, events, flushEvery int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	streams := map[uint64][]tables.Event{
		1: synthEvents(rng, events, 6, 4),
		2: synthEvents(rng, events/2, 3, 2),
		3: synthEvents(rng, events/4, 8, 8),
	}
	if err := enc.RegisterCallsite(1, "a.go:1"); err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(2, "b.go:2"); err != nil {
		t.Fatal(err)
	}
	idx := map[uint64]int{}
	order := []uint64{1, 2, 3, 1, 1, 2, 3, 3, 1, 2}
	var clock uint64
	for n := 0; ; n++ {
		cs := order[n%len(order)]
		evs := streams[cs]
		if idx[1] >= len(streams[1]) && idx[2] >= len(streams[2]) && idx[3] >= len(streams[3]) {
			break
		}
		if idx[cs] >= len(evs) {
			continue
		}
		ev := evs[idx[cs]]
		idx[cs]++
		if ev.Flag && ev.Clock > clock {
			clock = ev.Clock
		}
		if cs == 3 && idx[cs] == 1 {
			// Late registration, after chunks of other callsites may have
			// committed: ordering must still hold.
			if err := enc.RegisterCallsite(3, "c.go:3"); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Observe(cs, ev); err != nil {
			t.Fatal(err)
		}
		if flushEvery > 0 && n%flushEvery == flushEvery-1 {
			if err := enc.FlushAll(clock); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEncodeByteIdentical is the golden test for the ordered-commit
// invariant: for every worker count, every chunk size, and both sender
// modes, the parallel pipeline must produce a record byte-for-byte
// identical to the serial encoder's.
func TestParallelEncodeByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		chunkEvents int
		flushEvery  int
		omitSenders bool
	}{
		{chunkEvents: 64, flushEvery: 0},
		{chunkEvents: 64, flushEvery: 97},
		{chunkEvents: 16, flushEvery: 33, omitSenders: true},
		{chunkEvents: 4096, flushEvery: 250},
	} {
		opts := EncoderOptions{ChunkEvents: tc.chunkEvents, OmitSenderColumn: tc.omitSenders}
		var serial bytes.Buffer
		enc, err := NewEncoder(&serial, opts)
		if err != nil {
			t.Fatal(err)
		}
		driveEncoder(t, enc, 42, 3000, tc.flushEvery)
		serialStats := enc.Stats()

		for _, workers := range []int{2, 4, 8} {
			popts := opts
			popts.EncodeWorkers = workers
			var parallel bytes.Buffer
			penc, err := NewEncoder(&parallel, popts)
			if err != nil {
				t.Fatal(err)
			}
			driveEncoder(t, penc, 42, 3000, tc.flushEvery)
			if !bytes.Equal(parallel.Bytes(), serial.Bytes()) {
				t.Fatalf("chunk=%d flush=%d omit=%v workers=%d: output differs from serial (%d vs %d bytes)",
					tc.chunkEvents, tc.flushEvery, tc.omitSenders, workers, parallel.Len(), serial.Len())
			}
			if got := penc.Stats(); !reflect.DeepEqual(got, serialStats) {
				t.Fatalf("chunk=%d flush=%d workers=%d: stats diverge\nparallel: %+v\nserial:   %+v",
					tc.chunkEvents, tc.flushEvery, workers, got, serialStats)
			}
		}
	}
}

// TestParallelEncodeObs checks that the pipeline path feeds the same
// per-stage byte counters as the serial one, plus its own worker/pool
// instruments.
func TestParallelEncodeObs(t *testing.T) {
	run := func(workers int) obs.Snapshot {
		reg := obs.NewRegistry()
		var buf bytes.Buffer
		enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 64, EncodeWorkers: workers, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		driveEncoder(t, enc, 13, 1500, 120)
		return reg.Snapshot()
	}
	serial, parallel := run(1), run(4)
	for _, name := range []string{"encode.chunks", "encode.bytes.raw", "encode.bytes.re",
		"encode.bytes.pe", "encode.bytes.lpe", "encode.bytes.gzip"} {
		if s, p := serial.Counter(name), parallel.Counter(name); s != p {
			t.Errorf("%s: serial %d, parallel %d", name, s, p)
		}
	}
	if parallel.Counter("encode.pool.hit") == 0 {
		t.Error("no builder pool hits recorded")
	}
	if parallel.Gauge("encode.workers.busy").Max < 1 {
		t.Error("worker busy gauge never rose")
	}
	if h := parallel.Histogram("encode.stage.ns"); h.Count == 0 {
		t.Error("no encode-stage latency observations")
	}
}

// failAfterWriter fails every write after the first n bytes, simulating a
// full disk mid-record.
type failAfterWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errDiskFull
	}
	w.written += len(p)
	return len(p), nil
}

// TestParallelEncodeWriteError checks that a committer-side write error
// latches, surfaces from the driving goroutine, and does not hang Close —
// the pipeline's no-deadlock property under failure.
func TestParallelEncodeWriteError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	events := synthEvents(rng, 5000, 4, 4)
	enc, err := NewEncoder(&failAfterWriter{n: 256}, EncoderOptions{
		ChunkEvents: 32, EncodeWorkers: 4, GzipLevel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for i, ev := range events {
		if err := enc.Observe(0, ev); err != nil {
			sawErr = errors.Is(err, errDiskFull)
			break
		}
		if i%100 == 99 {
			if err := enc.FlushAll(0); err != nil {
				sawErr = errors.Is(err, errDiskFull)
				break
			}
		}
	}
	closeErr := enc.Close()
	if !sawErr && !errors.Is(closeErr, errDiskFull) {
		t.Fatalf("disk-full error never surfaced (close err: %v)", closeErr)
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestParallelEncodeStress hammers the pipeline with randomized chunk
// sizes, worker counts, and flush cadences. Run under -race it is the
// worker-pool stress test: the Builder pool, job recycling, the stats
// atomics, and the ordered committer all operate concurrently here.
func TestParallelEncodeStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		workers := 2 + rng.Intn(7)
		chunk := 1 + rng.Intn(200)
		flushEvery := rng.Intn(60)
		seed := rng.Int63()
		n := 500 + rng.Intn(2500)

		var serial, parallel bytes.Buffer
		enc, err := NewEncoder(&serial, EncoderOptions{ChunkEvents: chunk, GzipLevel: 1})
		if err != nil {
			t.Fatal(err)
		}
		driveEncoder(t, enc, seed, n, flushEvery)
		penc, err := NewEncoder(&parallel, EncoderOptions{
			ChunkEvents: chunk, GzipLevel: 1, EncodeWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		driveEncoder(t, penc, seed, n, flushEvery)
		if !bytes.Equal(parallel.Bytes(), serial.Bytes()) {
			t.Fatalf("trial %d (workers=%d chunk=%d flush=%d): output differs",
				trial, workers, chunk, flushEvery)
		}
		// The parallel record must decode like any other.
		rec, err := ReadRecord(bytes.NewReader(parallel.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: decoding parallel record: %v", trial, err)
		}
		if len(rec.Chunks) == 0 {
			t.Fatalf("trial %d: parallel record decoded empty", trial)
		}
	}
}

// TestOpenRecordStreams checks the streaming iterator against ReadRecord on
// the same bytes: same chunks in the same order, same names, same totals.
func TestOpenRecordStreams(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 64})
	if err != nil {
		t.Fatal(err)
	}
	driveEncoder(t, enc, 7, 1000, 90)

	want, err := ReadRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	it, err := OpenRecord(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	gotChunks := map[uint64]int{}
	var frames int
	for {
		f, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		if f.Chunk != nil {
			gotChunks[f.Chunk.Callsite]++
		}
	}
	for cs, chunks := range want.Chunks {
		if gotChunks[cs] != len(chunks) {
			t.Errorf("callsite %d: iterator saw %d chunks, ReadRecord %d", cs, gotChunks[cs], len(chunks))
		}
	}
	if !reflect.DeepEqual(it.Names(), want.Names) {
		t.Errorf("names diverge: iterator %v, ReadRecord %v", it.Names(), want.Names)
	}
	if uint64(frames) != it.Frames() {
		t.Errorf("frame count: %d yielded, %d reported", frames, it.Frames())
	}
	if it.Events() == 0 || it.FlushPoints() == 0 {
		t.Errorf("totals not accumulated: events=%d flushPoints=%d", it.Events(), it.FlushPoints())
	}
}

// TestOpenRecordTruncated checks the iterator surfaces truncation with the
// intact-prefix description, like FrameReader does.
func TestOpenRecordTruncated(t *testing.T) {
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 32})
	if err != nil {
		t.Fatal(err)
	}
	driveEncoder(t, enc, 11, 400, 50)
	it, err := OpenRecord(bytes.NewReader(buf.Bytes()[:buf.Len()-20]))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for {
		_, err := it.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrTruncatedRecord) {
			t.Fatalf("want ErrTruncatedRecord, got %v", err)
		}
		return
	}
}

func BenchmarkEncodeWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	events := synthEvents(rng, 100_000, 8, 4)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(events)))
			for i := 0; i < b.N; i++ {
				enc, err := NewEncoder(io.Discard, EncoderOptions{EncodeWorkers: workers})
				if err != nil {
					b.Fatal(err)
				}
				for _, ev := range events {
					if err := enc.Observe(0, ev); err != nil {
						b.Fatal(err)
					}
				}
				if err := enc.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
