package core

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/varint"
)

// Frame is one decoded record-stream frame.
type Frame struct {
	// Chunk is non-nil for chunk frames.
	Chunk *cdcformat.Chunk
	// CallsiteID and CallsiteName are set for callsite-name frames.
	CallsiteID   uint64
	CallsiteName string
}

// FrameReader decodes a record file incrementally, one frame at a time,
// without materializing the whole stream — the memory-bounded path a
// replay-side CDC thread would use (paper Fig. 11's decode box). ReadRecord
// is a convenience built on top of it.
type FrameReader struct {
	zr  *gzip.Reader
	br  *bufio.Reader
	err error
}

// NewFrameReader validates the magic and opens the gzip stream.
func NewFrameReader(rd io.Reader) (*FrameReader, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	zr, err := gzip.NewReader(rd)
	if err != nil {
		return nil, fmt.Errorf("core: opening gzip stream: %w", err)
	}
	return &FrameReader{zr: zr, br: bufio.NewReader(zr)}, nil
}

// readUvarint decodes one unsigned varint from the buffered stream.
func (fr *FrameReader) readUvarint() (uint64, error) {
	var u uint64
	var shift uint
	for i := 0; ; i++ {
		if i == 10 {
			return 0, varint.ErrOverflow
		}
		b, err := fr.br.ReadByte()
		if err != nil {
			return 0, err
		}
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, nil
		}
		shift += 7
	}
}

// Next returns the next frame, or io.EOF at a clean end of stream.
func (fr *FrameReader) Next() (*Frame, error) {
	if fr.err != nil {
		return nil, fr.err
	}
	kind, err := fr.br.ReadByte()
	if err == io.EOF {
		fr.err = io.EOF
		return nil, io.EOF
	}
	if err != nil {
		return nil, fr.fail(fmt.Errorf("core: frame kind: %w", err))
	}
	n, err := fr.readUvarint()
	if err != nil {
		return nil, fr.fail(fmt.Errorf("core: frame length: %w", noEOF(err)))
	}
	if n > maxFrameLen {
		return nil, fr.fail(fmt.Errorf("core: frame too large: %d", n))
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, fr.fail(fmt.Errorf("core: frame payload: %w", noEOF(err)))
	}
	pr := varint.NewReader(payload)
	switch kind {
	case frameChunk:
		chunk, err := cdcformat.Unmarshal(pr)
		if err != nil {
			return nil, fr.fail(err)
		}
		if pr.Len() != 0 {
			return nil, fr.fail(fmt.Errorf("core: %d trailing bytes in chunk frame", pr.Len()))
		}
		return &Frame{Chunk: chunk}, nil
	case frameCallsite:
		id, err := pr.Uint()
		if err != nil {
			return nil, fr.fail(fmt.Errorf("core: callsite id: %w", err))
		}
		name, err := pr.Bytes()
		if err != nil {
			return nil, fr.fail(fmt.Errorf("core: callsite name: %w", err))
		}
		return &Frame{CallsiteID: id, CallsiteName: string(name)}, nil
	default:
		return nil, fr.fail(fmt.Errorf("core: unknown frame kind %d", kind))
	}
}

// Close releases the gzip reader. It does not close the underlying reader.
func (fr *FrameReader) Close() error { return fr.zr.Close() }

func (fr *FrameReader) fail(err error) error {
	fr.err = err
	return err
}

// noEOF upgrades a bare EOF inside a frame to ErrUnexpectedEOF: the stream
// ended mid-frame, which is corruption, not a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
