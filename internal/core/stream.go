package core

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/varint"
)

// ErrTruncatedRecord marks a record whose tail is missing or damaged — the
// expected state of a record whose writer crashed. Errors carrying it are
// *TruncatedRecordError values describing the intact prefix, so callers can
// salvage rather than give up; match with errors.Is(err, ErrTruncatedRecord).
var ErrTruncatedRecord = errors.New("core: record truncated")

// TruncatedRecordError reports damage past a CRC-valid prefix. Every frame
// counted was verified intact; the damage begins strictly after them.
type TruncatedRecordError struct {
	// Frames is the number of intact frames before the damage.
	Frames uint64
	// Events is the number of matched receive events those frames hold —
	// the salvageable event count.
	Events uint64
	// FlushPoints is the number of intact flush-point marks; salvage cuts
	// the record at the last one.
	FlushPoints uint64
	// Cause is the underlying decode failure.
	Cause error
}

func (e *TruncatedRecordError) Error() string {
	return fmt.Sprintf("core: record truncated after %d intact frame(s), %d event(s), %d flush point(s): %v",
		e.Frames, e.Events, e.FlushPoints, e.Cause)
}

// Is makes errors.Is(err, ErrTruncatedRecord) match.
func (e *TruncatedRecordError) Is(target error) bool { return target == ErrTruncatedRecord }

// Unwrap exposes the underlying decode failure.
func (e *TruncatedRecordError) Unwrap() error { return e.Cause }

// Frame is one decoded record-stream frame.
type Frame struct {
	// Kind and Payload are the raw frame content, for tooling (salvage)
	// that re-emits frames verbatim.
	Kind    byte
	Payload []byte
	// Chunk is non-nil for chunk frames.
	Chunk *cdcformat.Chunk
	// CallsiteID and CallsiteName are set for callsite-name frames.
	CallsiteID   uint64
	CallsiteName string
	// Flush marks a flush-point frame (a consistent cut); FlushClock is the
	// writing rank's Lamport clock lower bound at that cut.
	Flush      bool
	FlushClock uint64
}

// FrameReader decodes a record file incrementally, one frame at a time,
// without materializing the whole stream — the memory-bounded path a
// replay-side CDC thread would use (paper Fig. 11's decode box). ReadRecord
// is a convenience built on top of it.
//
// Every frame's CRC32 trailer is verified before the frame is returned. On
// a damaged or truncated stream, Next returns a *TruncatedRecordError
// (matching ErrTruncatedRecord) describing the intact prefix; it never
// panics, whatever the input bytes.
type FrameReader struct {
	zr  *gzip.Reader
	br  *bufio.Reader
	err error

	frames      uint64
	events      uint64
	flushPoints uint64
}

// NewFrameReader validates the magic and opens the gzip stream. A file too
// short to hold them yields a *TruncatedRecordError with an empty prefix; a
// present-but-wrong magic is a format error, not truncation.
func NewFrameReader(rd io.Reader) (*FrameReader, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(rd, magic); err != nil {
		return nil, &TruncatedRecordError{Cause: fmt.Errorf("core: reading magic: %w", noEOF(err))}
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	zr, err := gzip.NewReader(rd)
	if err != nil {
		return nil, &TruncatedRecordError{Cause: fmt.Errorf("core: opening gzip stream: %w", noEOF(err))}
	}
	return &FrameReader{zr: zr, br: bufio.NewReader(zr)}, nil
}

// NewFrameReaderAt opens a frame stream positioned mid-blob, at a gzip
// member boundary — the committed index offsets of a record written with
// EncoderOptions.SeekableCuts. No magic is expected: rd must start exactly
// on the boundary (offset zero of a record file has the magic in the way;
// use NewFrameReader there). Callsite-name frames before the seek point
// are not replayed, so names resolve only for callsites registered at or
// after it.
func NewFrameReaderAt(rd io.Reader) (*FrameReader, error) {
	zr, err := gzip.NewReader(rd)
	if err != nil {
		return nil, &TruncatedRecordError{Cause: fmt.Errorf("core: opening gzip member: %w", noEOF(err))}
	}
	return &FrameReader{zr: zr, br: bufio.NewReader(zr)}, nil
}

// OpenRecordAt is NewFrameReaderAt's RecordIter form: a streaming iterator
// over the frames from a mid-blob gzip member boundary onward.
func OpenRecordAt(rd io.Reader) (*RecordIter, error) {
	fr, err := NewFrameReaderAt(rd)
	if err != nil {
		return nil, err
	}
	return &RecordIter{src: fr, names: make(map[uint64]string)}, nil
}

// Frames reports the number of CRC-verified frames returned so far.
func (fr *FrameReader) Frames() uint64 { return fr.frames }

// Events reports the matched receive events in the verified frames so far.
func (fr *FrameReader) Events() uint64 { return fr.events }

// FlushPoints reports the flush-point marks seen so far.
func (fr *FrameReader) FlushPoints() uint64 { return fr.flushPoints }

// readUvarint decodes one unsigned varint from the buffered stream.
func (fr *FrameReader) readUvarint() (uint64, []byte, error) {
	var u uint64
	var shift uint
	var raw []byte
	for i := 0; ; i++ {
		if i == 10 {
			return 0, nil, varint.ErrOverflow
		}
		b, err := fr.br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		raw = append(raw, b)
		u |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return u, raw, nil
		}
		shift += 7
	}
}

// rawFrame is one frame's undecoded wire form: the framing fields a serial
// scan must read in stream order, with CRC verification and payload parsing
// deferred — possibly to a decode worker (decode.go).
type rawFrame struct {
	kind     byte
	lenBytes []byte
	payload  []byte
	trailer  [4]byte
}

// readRaw scans one frame's wire fields off the stream without verifying or
// parsing them. It returns io.EOF at a clean end of stream; any other error
// is the undecorated truncation cause (the caller wraps it into a
// *TruncatedRecordError with its own prefix counts).
func (fr *FrameReader) readRaw() (rawFrame, error) {
	var raw rawFrame
	kind, err := fr.br.ReadByte()
	if err == io.EOF {
		return raw, io.EOF
	}
	if err != nil {
		return raw, fmt.Errorf("core: frame kind: %w", err)
	}
	raw.kind = kind
	n, lenBytes, err := fr.readUvarint()
	if err != nil {
		return raw, fmt.Errorf("core: frame length: %w", noEOF(err))
	}
	raw.lenBytes = lenBytes
	if n > maxFrameLen {
		return raw, fmt.Errorf("core: frame too large: %d", n)
	}
	// Stream the payload instead of trusting n with one up-front allocation:
	// a corrupt length field on a short stream then costs only the bytes
	// actually present, not a maxFrameLen-sized zeroed buffer.
	var pbuf bytes.Buffer
	if _, err := io.CopyN(&pbuf, fr.br, int64(n)); err != nil {
		return raw, fmt.Errorf("core: frame payload: %w", noEOF(err))
	}
	raw.payload = pbuf.Bytes()
	if _, err := io.ReadFull(fr.br, raw.trailer[:]); err != nil {
		return raw, fmt.Errorf("core: frame CRC trailer: %w", noEOF(err))
	}
	return raw, nil
}

// parseFrame verifies raw's CRC trailer and decodes its payload into a
// Frame. It reads no shared state, so decode workers call it concurrently
// on raw frames the serial scan produced.
func parseFrame(raw rawFrame) (*Frame, error) {
	crc := crc32.ChecksumIEEE([]byte{raw.kind})
	crc = crc32.Update(crc, crc32.IEEETable, raw.lenBytes)
	crc = crc32.Update(crc, crc32.IEEETable, raw.payload)
	if want := binary.LittleEndian.Uint32(raw.trailer[:]); crc != want {
		return nil, fmt.Errorf("core: frame CRC mismatch: computed %08x, stored %08x", crc, want)
	}
	f := &Frame{Kind: raw.kind, Payload: raw.payload}
	pr := varint.NewReader(raw.payload)
	switch raw.kind {
	case frameChunk:
		chunk, err := cdcformat.Unmarshal(pr)
		if err != nil {
			return nil, err
		}
		if pr.Len() != 0 {
			return nil, fmt.Errorf("core: %d trailing bytes in chunk frame", pr.Len())
		}
		f.Chunk = chunk
	case frameCallsite:
		id, err := pr.Uint()
		if err != nil {
			return nil, fmt.Errorf("core: callsite id: %w", err)
		}
		name, err := pr.Bytes()
		if err != nil {
			return nil, fmt.Errorf("core: callsite name: %w", err)
		}
		f.CallsiteID, f.CallsiteName = id, string(name)
	case frameFlush:
		clock, err := pr.Uint()
		if err != nil {
			return nil, fmt.Errorf("core: flush frame clock: %w", err)
		}
		if pr.Len() != 0 {
			return nil, fmt.Errorf("core: %d trailing bytes in flush frame", pr.Len())
		}
		f.Flush = true
		f.FlushClock = clock
	default:
		return nil, fmt.Errorf("core: unknown frame kind %d", raw.kind)
	}
	return f, nil
}

// Next returns the next verified frame, io.EOF at a clean end of stream, or
// a *TruncatedRecordError where the intact prefix ends.
func (fr *FrameReader) Next() (*Frame, error) {
	if fr.err != nil {
		return nil, fr.err
	}
	raw, err := fr.readRaw()
	if err == io.EOF {
		fr.err = io.EOF
		return nil, io.EOF
	}
	if err != nil {
		return nil, fr.fail(err)
	}
	f, err := parseFrame(raw)
	if err != nil {
		return nil, fr.fail(err)
	}
	fr.count(f)
	return f, nil
}

// count folds one delivered frame into the intact-prefix counters.
func (fr *FrameReader) count(f *Frame) {
	fr.frames++
	if f.Chunk != nil {
		fr.events += f.Chunk.NumMatched
	}
	if f.Flush {
		fr.flushPoints++
	}
}

// Close releases the gzip reader. It does not close the underlying reader.
func (fr *FrameReader) Close() error { return fr.zr.Close() }

// frameSource is the decode engine behind a RecordIter: the serial
// FrameReader, or one of the parallel pipelines in decode.go. Whatever the
// engine, frames arrive in stream order and the counters report the
// delivered frontier, so a *TruncatedRecordError carries the same
// intact-prefix counts however many workers ran.
type frameSource interface {
	Next() (*Frame, error)
	Frames() uint64
	Events() uint64
	FlushPoints() uint64
	Close() error
}

var _ frameSource = (*FrameReader)(nil)

// RecordIter is the one streaming record-access API: Next yields one
// verified frame at a time, accumulating callsite names as they stream
// past, so tooling and replay walk records of any size in bounded memory
// instead of materializing a *Record. Every other reader in the repo —
// ReadRecord, ReadRecordPrefix, store.LoadRank, the cdc facade's
// RecordReader — is a thin wrapper over it, and DecoderOptions decides
// whether the frames behind it are decoded serially or by a worker pool
// (see OpenRecordOptions).
//
// A RecordIter is not safe for concurrent use. Close releases the
// decompressor but, like FrameReader, does not close the underlying reader.
type RecordIter struct {
	src   frameSource
	names map[uint64]string
}

// OpenRecord validates the record magic and returns a streaming iterator
// over its frames, decoded serially. For a pooled decode, pass
// DecoderOptions to OpenRecordOptions instead.
func OpenRecord(rd io.Reader) (*RecordIter, error) {
	fr, err := NewFrameReader(rd)
	if err != nil {
		return nil, err
	}
	return &RecordIter{src: fr, names: make(map[uint64]string)}, nil
}

// Next returns the next verified frame, io.EOF at a clean end of stream, or
// a *TruncatedRecordError where the intact prefix ends. Callsite-name
// frames are returned like any other, after registering in Names.
func (it *RecordIter) Next() (*Frame, error) {
	f, err := it.src.Next()
	if err != nil {
		return nil, err
	}
	if f.Kind == frameCallsite {
		it.names[f.CallsiteID] = f.CallsiteName
	}
	return f, nil
}

// Names maps callsite IDs to registered names, for the frames seen so far.
// The map is live: later Next calls may add entries.
func (it *RecordIter) Names() map[uint64]string { return it.names }

// Frames reports the number of CRC-verified frames returned so far.
func (it *RecordIter) Frames() uint64 { return it.src.Frames() }

// Events reports the matched receive events in the verified frames so far.
func (it *RecordIter) Events() uint64 { return it.src.Events() }

// FlushPoints reports the flush-point marks seen so far.
func (it *RecordIter) FlushPoints() uint64 { return it.src.FlushPoints() }

// Close releases the decode engine (for a pooled decode: stops its
// workers). It does not close the underlying reader.
func (it *RecordIter) Close() error { return it.src.Close() }

// fail latches the stream as damaged past the current intact prefix.
func (fr *FrameReader) fail(cause error) error {
	fr.err = &TruncatedRecordError{
		Frames:      fr.frames,
		Events:      fr.events,
		FlushPoints: fr.flushPoints,
		Cause:       cause,
	}
	return fr.err
}

// noEOF upgrades a bare EOF inside a frame to ErrUnexpectedEOF: the stream
// ended mid-frame, which is corruption, not a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
