package core

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"cdcreplay/internal/tables"
)

// buildRecordBytes encodes a small two-callsite record for reader tests.
func buildRecordBytes(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{ChunkEvents: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(1, "a.go:1"); err != nil {
		t.Fatal(err)
	}
	if err := enc.RegisterCallsite(2, "b.go:2"); err != nil {
		t.Fatal(err)
	}
	for _, ev := range synthEvents(rng, 300, 4, 3) {
		if err := enc.Observe(uint64(1+rng.Intn(2)), ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameReaderMatchesReadRecord(t *testing.T) {
	data := buildRecordBytes(t)
	rec, err := ReadRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	fr, err := NewFrameReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	chunks := 0
	names := map[uint64]string{}
	var events uint64
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Chunk != nil {
			chunks++
			events += f.Chunk.NumMatched
			continue
		}
		names[f.CallsiteID] = f.CallsiteName
	}
	wantChunks := 0
	var wantEvents uint64
	for _, cs := range rec.Chunks {
		wantChunks += len(cs)
		for _, c := range cs {
			wantEvents += c.NumMatched
		}
	}
	if chunks != wantChunks || events != wantEvents {
		t.Fatalf("streamed %d chunks/%d events, ReadRecord has %d/%d", chunks, events, wantChunks, wantEvents)
	}
	if names[1] != rec.Names[1] || names[2] != rec.Names[2] {
		t.Fatalf("names %v vs %v", names, rec.Names)
	}
}

func TestFrameReaderAfterEOF(t *testing.T) {
	fr, err := NewFrameReader(bytes.NewReader(buildRecordBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := fr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("second EOF read gave %v", err)
	}
}

// TestCorruptRecordNeverPanics mutates valid records every which way: the
// decoder must fail cleanly (or, for mutations gzip absorbs, succeed) but
// never panic or hang.
func TestCorruptRecordNeverPanics(t *testing.T) {
	data := buildRecordBytes(t)
	rng := rand.New(rand.NewSource(77))

	decode := func(b []byte) {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("decoder panicked on corrupt input: %v", p)
			}
		}()
		rec, err := ReadRecord(bytes.NewReader(b))
		_ = rec
		_ = err // either outcome is acceptable; panics are not
	}

	// Truncations.
	for cut := 0; cut < len(data); cut += 7 {
		decode(data[:cut])
	}
	// Single-byte flips.
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), data...)
		i := rng.Intn(len(mut))
		mut[i] ^= byte(1 + rng.Intn(255))
		decode(mut)
	}
	// Random garbage with a valid magic.
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(Magic), make([]byte, rng.Intn(200))...)
		rng.Read(mut[len(Magic):])
		decode(mut)
	}
}

// TestCorruptChunkPayloadDetected flips bytes inside the *decompressed*
// frame stream (past gzip's CRC) by re-compressing tampered content, and
// requires the frame decoder itself to reject structural corruption.
func TestCorruptChunkPayloadDetected(t *testing.T) {
	// A frame claiming a giant length must be rejected without allocating.
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, EncoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Observe(0, tables.Matched(0, 1, false)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
}

func BenchmarkFrameReader(b *testing.B) {
	data := buildRecordBytes(b)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		fr, err := NewFrameReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := fr.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		fr.Close()
	}
}
