// Parallel chunk-decode pipeline (DESIGN.md §14) — the mirror image of
// pipeline.go's encode pool, feeding the replayer instead of the record
// file.
//
// Chunks are independently decodable (DST property P3), so the CPU-bound
// part of reading a record — CRC verification and chunk-table decoding —
// fans across a bounded worker pool while an ordered delivery stage hands
// frames to the consumer in exact stream order. The consumer is typically
// a replayer; the delivery queue doubles as its prefetch window, holding
// decoded frames a bounded distance ahead of the consumption frontier so
// replay becomes I/O-bound. Back-pressure is the queue itself: when the
// replayer stalls, the dispatcher blocks on a full ring (visible through
// the decode.prefetch.depth gauge) and decoding pauses.
//
// Two dispatch shapes share the worker/delivery machinery:
//
//	stream (any io.Reader)            segments (seekable blobs)
//	──────────────────────            ─────────────────────────
//	serial gzip inflate + raw scan    per-epoch byte ranges from the
//	workers verify CRC + parse        store chunk index; workers inflate
//	one frame per job                 and decode whole members in parallel
//
// The stream shape parallelizes only what sits above the (inherently
// serial) gzip inflate; the segment shape — available when the record was
// written with SeekableCuts and the store committed a chunk index — also
// parallelizes the inflate, which dominates decode time, and is what the
// BENCH_decode speedup gate measures.
//
// Error semantics match the serial FrameReader exactly: frames are
// delivered in stream order, the first damaged frame latches the source
// (first error wins, like the encode pipeline's error latch), and the
// *TruncatedRecordError carries the consumer-frontier frame/event/
// flush-point counts — identical to what a serial decode of the same bytes
// reports, whichever worker hit the damage first.
package core

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sync"

	"cdcreplay/internal/obs"
	"cdcreplay/internal/spsc"
)

// DecoderOptions configure how a RecordIter decodes frames.
type DecoderOptions struct {
	// DecodeWorkers fans CRC verification and chunk-table decoding across
	// a worker pool with ordered delivery. 0 (the default) decodes
	// serially in-line; n ≥ 1 runs n workers.
	DecodeWorkers int
	// Prefetch bounds the ordered delivery window: how many decoded units
	// (frames on the stream path, epoch segments on the seekable path) may
	// sit verified ahead of the consumer's frontier. The spsc ring rounds
	// it up to a power of two. Default 2*DecodeWorkers+4.
	Prefetch int
	// Obs, when non-nil, receives the pipeline's instruments
	// (DESIGN.md §8): decode.workers.busy, decode.prefetch.depth,
	// decode.stage.ns.
	Obs *obs.Registry
}

// fill substitutes defaults for zero fields.
func (o *DecoderOptions) fill() {
	if o.DecodeWorkers < 0 {
		o.DecodeWorkers = 0
	}
	if o.Prefetch <= 0 {
		o.Prefetch = 2*o.DecodeWorkers + 4
	}
}

// gzipReaderPool pools *gzip.Reader across decodes: a reader carries the
// 32 KiB inflate window plus dictionary state that Reset reuses in full —
// the decode-side counterpart of pipeline.go's gzipPools, and the "same
// discipline as cdcformat.Builder" scratch reuse for segment workers (the
// decoded chunks themselves escape to the consumer, so only the transient
// inflate state is poolable).
var gzipReaderPool sync.Pool // *gzip.Reader

func getGzipReader(r io.Reader) (*gzip.Reader, error) {
	if zr, ok := gzipReaderPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			gzipReaderPool.Put(zr)
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

func putGzipReader(zr *gzip.Reader) { gzipReaderPool.Put(zr) }

// emptySource is an always-exhausted frameSource: what a seek landing
// exactly at the end of a blob iterates over.
type emptySource struct{}

func (emptySource) Next() (*Frame, error) { return nil, io.EOF }
func (emptySource) Frames() uint64        { return 0 }
func (emptySource) Events() uint64        { return 0 }
func (emptySource) FlushPoints() uint64   { return 0 }
func (emptySource) Close() error          { return nil }

// decodeJob kinds.
const (
	djRaw = iota // verify + parse one raw frame (stream path)
	djSeg        // inflate + decode one blob segment (seekable path)
	djEnd        // terminal marker: err is io.EOF or the raw-scan failure
)

// decodeJob is one unit of decode work. Jobs are pooled; ownership passes
// dispatcher → worker → consumer through the channel sends, so no lock
// guards the fields. ready is a one-token latch the worker fills once the
// outputs are final (buffered so an abandoned job never blocks a worker).
type decodeJob struct {
	kind   int
	raw    rawFrame     // djRaw input
	seg    segmentRange // djSeg input
	frames []*Frame     // decoded output, in stream order
	err    error        // decode failure cause after frames, or io.EOF
	trunc  bool         // err is a truncation cause: wrap with prefix counts
	ready  chan struct{}
}

// segmentRange is one independently decodable byte range of a seekable
// record blob: a whole number of gzip members between committed cuts.
type segmentRange struct {
	ra  io.ReaderAt
	off int64
	n   int64
	seg int // segment ordinal, for error text
}

// parallelSource is the pooled frameSource behind a RecordIter when
// DecodeWorkers ≥ 1. One dispatcher goroutine scans input in stream order
// and commits each job to the delivery ring before handing it to the
// worker stage (commit-before-worker, exactly the encode pipeline's
// ordering trick), so ring order IS stream order; the consumer waits on
// each job's ready latch and walks its frames.
type parallelSource struct {
	q    *spsc.Queue[*decodeJob]
	jobs chan *decodeJob
	wg   sync.WaitGroup // dispatcher + workers

	jobPool   sync.Pool // *decodeJob
	closeOnce sync.Once

	// Consumer-side state: the job being delivered, the latched terminal
	// error, and the delivered-frontier counters (what a serial reader
	// would have counted at the same position).
	cur         *decodeJob
	curIdx      int
	err         error
	frames      uint64
	events      uint64
	flushPoints uint64

	// Instruments (nil-safe).
	mBusy    *obs.Gauge
	mStageNs *obs.Histogram
}

var _ frameSource = (*parallelSource)(nil)

// errIterClosed reports Next after Close on a healthy (non-exhausted)
// iterator.
var errIterClosed = errors.New("core: record iterator closed")

func newParallelSource(o DecoderOptions) *parallelSource {
	d := &parallelSource{
		q:    spsc.New[*decodeJob](o.Prefetch),
		jobs: make(chan *decodeJob, o.DecodeWorkers),
	}
	d.jobPool.New = func() any { return new(decodeJob) }
	if reg := o.Obs; reg != nil {
		d.mBusy = reg.Gauge("decode.workers.busy")
		d.mStageNs = reg.Histogram("decode.stage.ns", obs.LatencyBounds())
		d.q.Instrument(spsc.Instruments{Depth: reg.Gauge("decode.prefetch.depth")})
	}
	for i := 0; i < o.DecodeWorkers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

func (d *parallelSource) getJob(kind int) *decodeJob {
	j := d.jobPool.Get().(*decodeJob)
	j.kind = kind
	if j.ready == nil {
		j.ready = make(chan struct{}, 1)
	}
	return j
}

// recycle returns a delivered job to the pool, keeping its backing arrays
// and ready latch (the latch is drained: the consumer received its token).
func (d *parallelSource) recycle(j *decodeJob) {
	j.raw = rawFrame{}
	j.seg = segmentRange{}
	j.frames = j.frames[:0]
	j.err = nil
	j.trunc = false
	d.jobPool.Put(j)
}

// dispatchFrames is the stream-path dispatcher: it owns the serial gzip
// inflate and raw frame scan, committing one job per frame. fr's reader
// must not be touched by anyone else until the pipeline winds down.
func (d *parallelSource) dispatchFrames(fr *FrameReader) {
	defer d.wg.Done()
	defer close(d.jobs)
	defer fr.Close() //cdc:allow(errsink) read-side close; decode errors ride the terminal job
	for {
		raw, err := fr.readRaw()
		if err != nil {
			t := d.getJob(djEnd)
			t.err = err
			t.trunc = err != io.EOF
			d.q.Enqueue(t)
			return
		}
		j := d.getJob(djRaw)
		j.raw = raw
		if !d.q.Enqueue(j) {
			return // consumer closed the iterator early
		}
		d.jobs <- j
	}
}

// dispatchSegments is the seekable-path dispatcher: segments are known up
// front, so the dispatcher only paces admission against the prefetch
// window while workers inflate and decode concurrently.
func (d *parallelSource) dispatchSegments(segs []segmentRange) {
	defer d.wg.Done()
	defer close(d.jobs)
	for _, sg := range segs {
		j := d.getJob(djSeg)
		j.seg = sg
		if !d.q.Enqueue(j) {
			return // consumer closed the iterator early
		}
		d.jobs <- j
	}
	t := d.getJob(djEnd)
	t.err = io.EOF
	d.q.Enqueue(t)
}

func (d *parallelSource) worker() {
	defer d.wg.Done()
	for j := range d.jobs {
		d.mBusy.Add(1)
		stop := d.mStageNs.StartTimer()
		switch j.kind {
		case djRaw:
			f, err := parseFrame(j.raw)
			if err != nil {
				j.err, j.trunc = err, true
			} else {
				j.frames = append(j.frames, f)
			}
		case djSeg:
			d.decodeSegment(j)
		}
		stop()
		d.mBusy.Add(-1)
		j.ready <- struct{}{}
	}
}

// decodeSegment inflates and decodes one whole segment into j.frames. A
// failure mid-segment keeps the frames decoded before it and records the
// cause; the consumer surfaces it at the exact frame position a serial
// decode would have.
func (d *parallelSource) decodeSegment(j *decodeJob) {
	sr := io.NewSectionReader(j.seg.ra, j.seg.off, j.seg.n)
	zr, err := getGzipReader(sr)
	if err != nil {
		j.err, j.trunc = fmt.Errorf("core: segment %d: opening gzip member: %w", j.seg.seg, noEOF(err)), true
		return
	}
	fr := &FrameReader{zr: zr, br: bufio.NewReader(zr)}
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var te *TruncatedRecordError
			if errors.As(err, &te) {
				j.err, j.trunc = te.Cause, true
			} else {
				j.err = err
			}
			return // reader state is suspect; do not recycle zr
		}
		j.frames = append(j.frames, f)
	}
	putGzipReader(zr)
}

// Next returns the next verified frame in stream order, io.EOF at a clean
// end, or a *TruncatedRecordError carrying the delivered-prefix counts.
func (d *parallelSource) Next() (*Frame, error) {
	for {
		if d.err != nil {
			return nil, d.err
		}
		if d.cur != nil {
			if d.curIdx < len(d.cur.frames) {
				f := d.cur.frames[d.curIdx]
				d.curIdx++
				d.count(f)
				return f, nil
			}
			err, trunc := d.cur.err, d.cur.trunc
			d.recycle(d.cur)
			d.cur, d.curIdx = nil, 0
			if err != nil {
				return nil, d.fail(err, trunc)
			}
			continue
		}
		j, ok := d.q.Dequeue()
		if !ok {
			d.err = errIterClosed
			return nil, d.err
		}
		if j.kind != djEnd {
			<-j.ready
		}
		d.cur, d.curIdx = j, 0
	}
}

// fail latches the terminal state, wrapping truncation causes with the
// consumer-frontier counts so the error is position-identical to a serial
// decode's.
func (d *parallelSource) fail(cause error, trunc bool) error {
	switch {
	case cause == io.EOF:
		d.err = io.EOF
	case trunc:
		d.err = &TruncatedRecordError{
			Frames:      d.frames,
			Events:      d.events,
			FlushPoints: d.flushPoints,
			Cause:       cause,
		}
	default:
		d.err = cause
	}
	return d.err
}

// count folds one delivered frame into the frontier counters.
func (d *parallelSource) count(f *Frame) {
	d.frames++
	if f.Chunk != nil {
		d.events += f.Chunk.NumMatched
	}
	if f.Flush {
		d.flushPoints++
	}
}

// Frames reports the number of frames delivered to the consumer so far.
func (d *parallelSource) Frames() uint64 { return d.frames }

// Events reports the matched receive events delivered so far.
func (d *parallelSource) Events() uint64 { return d.events }

// FlushPoints reports the flush-point marks delivered so far.
func (d *parallelSource) FlushPoints() uint64 { return d.flushPoints }

// Close stops the pipeline: the delivery ring is closed (unblocking a
// dispatcher waiting on a full window), the dispatcher closes the worker
// stage, and Close returns once every goroutine has exited — after which
// the underlying reader is the caller's again.
func (d *parallelSource) Close() error {
	d.closeOnce.Do(func() {
		d.q.Close()
		d.wg.Wait()
	})
	if d.err == nil {
		d.err = errIterClosed
	}
	return nil
}

// OpenRecordOptions is OpenRecord with a decode policy: DecodeWorkers ≥ 1
// verifies and parses frames on a worker pool with ordered delivery and a
// bounded prefetch window; 0 decodes serially, exactly OpenRecord. The
// frames arrive byte-identical in either mode (pinned by golden tests).
//
// With workers, a pipeline goroutine reads rd until the stream ends or the
// iterator is closed; the caller must not touch rd again until Close
// returns. For seekable blobs with a chunk index, OpenRecordSegments also
// parallelizes the gzip inflate.
func OpenRecordOptions(rd io.Reader, o DecoderOptions) (*RecordIter, error) {
	o.fill()
	if o.DecodeWorkers <= 0 {
		return OpenRecord(rd)
	}
	fr, err := NewFrameReader(rd)
	if err != nil {
		return nil, err
	}
	d := newParallelSource(o)
	d.wg.Add(1)
	go d.dispatchFrames(fr)
	return &RecordIter{src: d, names: make(map[uint64]string)}, nil
}

// OpenRecordSegments opens a whole seekable record blob for
// segment-parallel decode. cuts are the committed chunk-index offsets of a
// record written with EncoderOptions.SeekableCuts — each one a gzip member
// boundary — and size is the blob length; the byte ranges between
// consecutive cuts decode independently, so workers inflate and parse whole
// epochs concurrently while ordered delivery preserves exact stream order
// from byte zero (magic included). Out-of-range or unsorted cut offsets
// are ignored rather than trusted.
//
// With DecodeWorkers == 0 this is a serial full decode of the blob. Unlike
// OpenRecordAt, the iterator always starts at the beginning: it is a
// faster full read, not a seek.
func OpenRecordSegments(ra io.ReaderAt, size int64, cuts []int64, o DecoderOptions) (*RecordIter, error) {
	return OpenRecordSegmentsAt(ra, size, 0, cuts, o)
}

// OpenRecordSegmentsAt is OpenRecordSegments with a seek: decoding starts
// at blob offset start — either 0 (the record head, magic expected) or a
// committed cut offset (a gzip member boundary, no magic) — and covers the
// bytes from there to size. The paced replay feed uses it to jump the
// decode pipeline to an epoch boundary instead of re-scanning the record.
// Cut offsets at or before start are ignored, so passing the full cut list
// is fine. As with OpenRecordAt, callsite-name frames before the seek
// point are not replayed.
//
// With DecodeWorkers == 0 the tail is decoded serially from start.
func OpenRecordSegmentsAt(ra io.ReaderAt, size, start int64, cuts []int64, o DecoderOptions) (*RecordIter, error) {
	o.fill()
	if start < 0 || start > size {
		return nil, fmt.Errorf("core: seek offset %d outside blob of %d bytes", start, size)
	}
	if start == size {
		// A cut at the very end of the blob (final flush at close) has an
		// empty tail: a valid seek target with nothing left to decode.
		return &RecordIter{src: emptySource{}, names: make(map[uint64]string)}, nil
	}
	if o.DecodeWorkers <= 0 {
		if start == 0 {
			return OpenRecord(io.NewSectionReader(ra, 0, size))
		}
		return OpenRecordAt(io.NewSectionReader(ra, start, size-start))
	}
	prev := start
	if start == 0 {
		magic := make([]byte, len(Magic))
		if _, err := io.ReadFull(io.NewSectionReader(ra, 0, size), magic); err != nil {
			return nil, &TruncatedRecordError{Cause: fmt.Errorf("core: reading magic: %w", noEOF(err))}
		}
		if string(magic) != Magic {
			return nil, fmt.Errorf("core: bad magic %q", magic)
		}
		prev = int64(len(Magic))
	}
	// Sanitize the cut list into strictly increasing member boundaries
	// inside (start, size); the tail past the last cut is the final
	// segment.
	var segs []segmentRange
	for _, c := range cuts {
		if c <= prev || c >= size {
			continue
		}
		segs = append(segs, segmentRange{ra: ra, off: prev, n: c - prev, seg: len(segs)})
		prev = c
	}
	if prev < size {
		segs = append(segs, segmentRange{ra: ra, off: prev, n: size - prev, seg: len(segs)})
	}
	d := newParallelSource(o)
	d.wg.Add(1)
	go d.dispatchSegments(segs)
	return &RecordIter{src: d, names: make(map[uint64]string)}, nil
}

// ReadRecordOptions decodes a complete record into memory through a decode
// policy — ReadRecord behind DecoderOptions. Like ReadRecord it fails on
// damage; use OpenRecordOptions + DrainRecord for prefix semantics.
func ReadRecordOptions(rd io.Reader, o DecoderOptions) (*Record, error) {
	it, err := OpenRecordOptions(rd, o)
	if err != nil {
		return nil, err
	}
	rec, err := DrainRecord(it)
	if err != nil {
		return nil, err
	}
	return rec, nil
}
