package record

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// collector is a Method capturing the raw event stream.
type collector struct {
	mu     sync.Mutex
	events []struct {
		cs uint64
		ev tables.Event
	}
	names  map[uint64]string
	closed bool
}

func newCollector() *collector { return &collector{names: map[uint64]string{}} }

func (c *collector) Name() string { return "collector" }

func (c *collector) Observe(cs uint64, ev tables.Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, struct {
		cs uint64
		ev tables.Event
	}{cs, ev})
	return nil
}

func (c *collector) RegisterCallsite(id uint64, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.names[id] = name
	return nil
}

func (c *collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *collector) BytesWritten() int64 { return 0 }

func TestRecorderCapturesQuintuple(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 1, MaxJitter: 0})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 0 {
			l := lamport.Wrap(mpi)
			if err := l.Barrier(); err != nil {
				return err
			}
			return l.Send(1, 5, []byte("x"))
		}
		rec := New(lamport.Wrap(mpi), col, Options{})
		req, err := rec.Irecv(simmpi.AnySource, 5)
		if err != nil {
			return err
		}
		// One polling loop (one MF callsite). The first three polls run
		// before the sender is released by the barrier, so they must be
		// unmatched and aggregate into one count row.
		for i := 0; ; i++ {
			ok, st, err := rec.Test(req)
			if err != nil {
				return err
			}
			if ok {
				if st.Source != 0 || string(st.Data) != "x" {
					return fmt.Errorf("bad status %+v", st)
				}
				break
			}
			if i == 2 {
				if err := rec.Barrier(); err != nil {
					return err
				}
			}
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !col.closed {
		t.Fatal("backend not closed")
	}
	if len(col.events) != 2 {
		t.Fatalf("got %d rows, want 2 (one unmatched run, one match): %+v", len(col.events), col.events)
	}
	un := col.events[0].ev
	if un.Flag || un.Count < 3 {
		t.Fatalf("first row should aggregate >=3 unmatched tests: %+v", un)
	}
	m := col.events[1].ev
	if !m.Flag || m.Rank != 0 || m.Count != 1 {
		t.Fatalf("matched row wrong: %+v", m)
	}
	if len(col.names) != 1 {
		t.Fatalf("callsite names = %v", col.names)
	}
	for _, name := range col.names {
		if name == "" {
			t.Fatal("empty callsite name")
		}
	}
}

func TestRecorderGroupsTestsomeCompletions(t *testing.T) {
	w := simmpi.NewWorld(3, simmpi.Options{Seed: 2, MaxJitter: 0})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() > 0 {
			l := lamport.Wrap(mpi)
			if err := l.Send(0, 1, nil); err != nil {
				return err
			}
			return l.Barrier()
		}
		rec := New(lamport.Wrap(mpi), col, Options{})
		reqs := make([]*simmpi.Request, 2)
		var err error
		for i := range reqs {
			if reqs[i], err = rec.Irecv(i+1, 1); err != nil {
				return err
			}
		}
		if err := rec.Barrier(); err != nil {
			return err
		}
		got := 0
		for got < 2 {
			idxs, _, err := rec.Testsome(reqs)
			if err != nil {
				return err
			}
			got += len(idxs)
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	var matched []tables.Event
	for _, e := range col.events {
		if e.ev.Flag {
			matched = append(matched, e.ev)
		}
	}
	if len(matched) != 2 {
		t.Fatalf("matched rows = %d", len(matched))
	}
	// If both completed in one call, the first row must chain via
	// with_next; if they completed separately, neither may.
	if matched[0].WithNext && matched[1].WithNext {
		t.Fatalf("final row of a group has with_next set: %+v", matched)
	}
}

func TestRecorderDistinguishesCallsites(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 3, MaxJitter: 0})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			l := lamport.Wrap(mpi)
			if err := l.Send(0, 1, nil); err != nil {
				return err
			}
			return l.Send(0, 2, nil)
		}
		rec := New(lamport.Wrap(mpi), col, Options{})
		r1, _ := rec.Irecv(1, 1)
		r2, _ := rec.Irecv(1, 2)
		if _, err := rec.Wait(r1); err != nil { // callsite A
			return err
		}
		if _, err := rec.Wait(r2); err != nil { // callsite B
			return err
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := map[uint64]bool{}
	for _, e := range col.events {
		cs[e.cs] = true
	}
	if len(cs) != 2 {
		t.Fatalf("expected 2 callsites, got %d", len(cs))
	}
}

func TestRecorderDisableMFIDMergesStreams(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 4, MaxJitter: 0})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			l := lamport.Wrap(mpi)
			if err := l.Send(0, 1, nil); err != nil {
				return err
			}
			return l.Send(0, 2, nil)
		}
		rec := New(lamport.Wrap(mpi), col, Options{DisableMFID: true})
		r1, _ := rec.Irecv(1, 1)
		r2, _ := rec.Irecv(1, 2)
		if _, err := rec.Wait(r1); err != nil {
			return err
		}
		if _, err := rec.Wait(r2); err != nil {
			return err
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range col.events {
		if e.cs != 0 {
			t.Fatalf("MFID disabled but callsite %#x recorded", e.cs)
		}
	}
}

func TestRecorderFlushesTrailingUnmatchedOnClose(t *testing.T) {
	w := simmpi.NewWorld(1, simmpi.Options{Seed: 5})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		rec := New(lamport.Wrap(mpi), col, Options{})
		req, _ := rec.Irecv(simmpi.AnySource, 1)
		for i := 0; i < 4; i++ {
			if _, _, err := rec.Test(req); err != nil {
				return err
			}
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.events) != 1 {
		t.Fatalf("rows = %d, want 1 trailing unmatched run", len(col.events))
	}
	if ev := col.events[0].ev; ev.Flag || ev.Count != 4 {
		t.Fatalf("trailing run = %+v", ev)
	}
}

func TestDoubleCloseErrors(t *testing.T) {
	w := simmpi.NewWorld(1, simmpi.Options{Seed: 6})
	rec := New(lamport.Wrap(w.Comm(0)), newCollector(), Options{})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err == nil {
		t.Fatal("second Close succeeded")
	}
}

func TestRecorderStats(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 7, MaxJitter: 0})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			return lamport.Wrap(mpi).Send(0, 1, nil)
		}
		var buf bytes.Buffer
		enc, err := core.NewEncoder(&buf, core.EncoderOptions{})
		if err != nil {
			return err
		}
		rec := New(lamport.Wrap(mpi), baseline.NewCDC(enc), Options{})
		req, _ := rec.Irecv(1, 1)
		if _, err := rec.Wait(req); err != nil {
			return err
		}
		if err := rec.Close(); err != nil {
			return err
		}
		if rec.Stats().Enqueued != 1 {
			return fmt.Errorf("enqueued = %d", rec.Stats().Enqueued)
		}
		if buf.Len() == 0 {
			return errors.New("no record bytes written")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecorderAllMFWrappers drives every MF family and collective through
// the recorder, checking the event stream stays consistent.
func TestRecorderAllMFWrappers(t *testing.T) {
	w := simmpi.NewWorld(3, simmpi.Options{Seed: 8, MaxJitter: 0})
	col := newCollector()
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() > 0 {
			l := lamport.Wrap(mpi)
			for i := 0; i < 5; i++ {
				if err := l.Send(0, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			if err := l.Barrier(); err != nil {
				return err
			}
			if _, err := l.Allreduce(1, simmpi.OpSum); err != nil {
				return err
			}
			if _, err := l.Reduce(1, simmpi.OpSum, 0); err != nil {
				return err
			}
			if _, err := l.Bcast(nil, 0); err != nil {
				return err
			}
			if _, err := l.Gather(1, 0); err != nil {
				return err
			}
			_, err := l.Allgather(1)
			return err
		}
		rec := New(lamport.Wrap(mpi), col, Options{})
		post := func() *simmpi.Request {
			req, err := rec.Irecv(simmpi.AnySource, 1)
			if err != nil {
				t.Error(err)
			}
			return req
		}
		got := 0
		reqs := []*simmpi.Request{post(), post()}
		for got < 2 {
			i, ok, _, err := rec.Testany(reqs)
			if err != nil {
				return err
			}
			if ok {
				got++
				reqs[i] = post()
			}
		}
		for got < 4 {
			ok, sts, err := rec.Testall(reqs)
			if err != nil {
				return err
			}
			if ok {
				got += len(sts)
				reqs = []*simmpi.Request{post(), post()}
			}
		}
		i, _, err := rec.Waitany(reqs)
		if err != nil {
			return err
		}
		got++
		reqs = append(reqs[:i], reqs[i+1:]...)
		idxs, _, err := rec.Waitsome(reqs)
		if err != nil {
			return err
		}
		got += len(idxs)
		remaining := 10 - got
		var tail []*simmpi.Request
		for k := 0; k < remaining; k++ {
			tail = append(tail, post())
		}
		if _, err := rec.Waitall(tail); err != nil {
			return err
		}
		if err := rec.Barrier(); err != nil {
			return err
		}
		if _, err := rec.Allreduce(1, simmpi.OpSum); err != nil {
			return err
		}
		if _, err := rec.Reduce(1, simmpi.OpSum, 0); err != nil {
			return err
		}
		if _, err := rec.Bcast([]byte("b"), 0); err != nil {
			return err
		}
		if _, err := rec.Gather(1, 0); err != nil {
			return err
		}
		if _, err := rec.Allgather(1); err != nil {
			return err
		}
		if rec.Size() != 3 || rec.Rank() != 0 {
			return errors.New("rank/size wrong")
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, e := range col.events {
		if e.ev.Flag {
			matched++
			if e.ev.Clock == 0 {
				t.Fatalf("matched row without clock: %+v", e.ev)
			}
		}
	}
	if matched != 10 {
		t.Fatalf("recorded %d matched events, want 10", matched)
	}
}

// TestPeriodicFlush: with a flush interval, chunks reach storage while the
// recorder is idle, well before Close.
func TestPeriodicFlush(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 9, MaxJitter: 0})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			return lamport.Wrap(mpi).Send(0, 1, nil)
		}
		var buf bytes.Buffer
		var mu sync.Mutex
		lockedWriter := writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		})
		enc, err := core.NewEncoder(lockedWriter, core.EncoderOptions{})
		if err != nil {
			return err
		}
		rec := New(lamport.Wrap(mpi), baseline.NewCDC(enc), Options{
			FlushInterval: 5 * time.Millisecond,
		})
		req, _ := rec.Irecv(1, 1)
		if _, err := rec.Wait(req); err != nil {
			return err
		}
		// Idle-wait: the CDC goroutine must flush the pending chunk.
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			n := buf.Len()
			mu.Unlock()
			if n > len(core.Magic)+10 { // magic + gzip header alone is ~30B; wait for growth
				break
			}
			if time.Now().After(deadline) {
				return errors.New("no periodic flush happened")
			}
			time.Sleep(time.Millisecond)
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
