package record

import (
	"errors"
	"testing"
	"time"

	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// failingBackend errors on the Nth Observe call, standing in for a dying
// disk under the encoder.
type failingBackend struct {
	failAt int
	seen   int
	err    error
}

func (b *failingBackend) Name() string { return "failing" }
func (b *failingBackend) Observe(cs uint64, ev tables.Event) error {
	b.seen++
	if b.seen >= b.failAt {
		return b.err
	}
	return nil
}
func (b *failingBackend) Close() error        { return nil }
func (b *failingBackend) BytesWritten() int64 { return 0 }

// TestBackendErrorSurfacesWithinOneMFCall drives a recorder whose backend
// fails on the first row and asserts the application thread sees the error
// from its next MF call — not only at Close.
func TestBackendErrorSurfacesWithinOneMFCall(t *testing.T) {
	boom := errors.New("disk on fire")
	w := simmpi.NewWorld(2, simmpi.Options{})
	c0, c1 := w.Comm(0), w.Comm(1)
	rec := New(c1, &failingBackend{failAt: 1, err: boom}, Options{})

	if err := c0.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	req, err := rec.Irecv(simmpi.AnySource, simmpi.AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	// This Wait records the row whose encoding fails on the CDC goroutine.
	if _, err := rec.Wait(req); err != nil {
		t.Fatalf("the recording MF call itself should not fail: %v", err)
	}
	// The very next MF call must observe the latched error. The CDC
	// goroutine is asynchronous, so allow it a bounded drain window —
	// but each poll is one MF call on an already-drained queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := rec.Testsome(nil)
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("MF call returned %v, want the backend error", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend error never surfaced from MF calls")
		}
	}
	if err := rec.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the backend error", err)
	}
	// Close still reports the same first error.
	if err := rec.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close() = %v, want the backend error", err)
	}
}

// TestErrNilOnHealthyBackend pins down that Err stays nil through a clean
// record-and-close cycle.
func TestErrNilOnHealthyBackend(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{})
	c0, c1 := w.Comm(0), w.Comm(1)
	rec := New(c1, &failingBackend{failAt: 1 << 30}, Options{})
	if err := c0.Send(1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	req, _ := rec.Irecv(simmpi.AnySource, simmpi.AnyTag)
	if _, err := rec.Wait(req); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("Err() = %v on healthy backend", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("Close() = %v", err)
	}
}
