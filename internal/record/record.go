// Package record implements the record-mode tool layer (paper §4.2,
// Fig. 11): the application's MF calls are intercepted, each observed
// receive event is pushed onto an SPSC observe queue, and a dedicated CDC
// goroutine (the paper's "CDC thread") drains the queue, encodes events and
// writes the record — all off the application's critical path.
//
// The layer stacks above the lamport clock layer:
//
//	app → record.Recorder → lamport.Layer → simmpi.Comm
//
// Events are keyed by matching-function callsite (§4.4 MF identification)
// unless disabled. Consecutive failed tests aggregate into one
// unmatched-test row with a recurrence count, exactly as the paper's count
// column does.
package record

import (
	"errors"
	"sync/atomic"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/callsite"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/spsc"
	"cdcreplay/internal/tables"
)

// registrar is implemented by backends that want callsite names
// (core.Encoder via baseline.CDCMethod).
type registrar interface {
	RegisterCallsite(id uint64, name string) error
}

// Options configure a Recorder.
type Options struct {
	// QueueCapacity bounds the observe queue (default 65536 events).
	QueueCapacity int
	// DisableMFID merges all callsites into one record stream,
	// reproducing the paper's "CDC (RE+PE+LPE)" ablation.
	DisableMFID bool
	// FlushInterval, when positive, makes the CDC goroutine flush all
	// pending chunks to storage at least this often while the queue is
	// idle — the periodic memory-bound flush of §3.5. Zero disables
	// time-based flushing (chunks still flush by event count).
	FlushInterval time.Duration
	// FlushEveryRows, when positive, flushes all pending chunks after
	// every N observed rows. Unlike FlushInterval the cadence is a pure
	// function of the event stream, so crash tests can place flush points
	// deterministically.
	FlushEveryRows int
	// Backoff tunes the observe queue's idle backoff; zero fields take
	// spsc.DefaultBackoff values.
	Backoff spsc.Backoff
	// Obs, when non-nil, receives the recorder's metrics (record.* names,
	// DESIGN.md §8). Nil disables instrumentation at the cost of one
	// pointer check per instrument site.
	Obs *obs.Registry
}

func (o *Options) fill() {
	if o.QueueCapacity == 0 {
		o.QueueCapacity = 65536
	}
}

type queueItem struct {
	callsite uint64
	name     string // non-empty on first occurrence of the callsite
	ev       tables.Event
	// clock is the rank's Lamport clock sampled when the MF call producing
	// this row returned. The CDC goroutine stamps the newest row's clock
	// into flush-point marks so salvage can bound which of this rank's
	// sends each cut covers.
	clock uint64
}

// RateStats capture the §6.2 queue-throughput measurement.
type RateStats struct {
	// Enqueued is the number of rows the main thread produced.
	Enqueued uint64
	// EnqueueBlocked counts Enqueue calls that found the queue full at
	// least once (expected to stay zero: the CDC thread drains faster).
	EnqueueBlocked uint64
	// DrainDuration is the CDC goroutine's busy time.
	DrainDuration time.Duration
}

// Recorder is the record-mode layer for one rank.
type Recorder struct {
	next    simmpi.MPI
	backend baseline.Method
	opts    Options

	q    *spsc.Queue[queueItem]
	done chan error

	seenCallsite map[uint64]bool

	// clockNow samples the layer below's Lamport clock (nil when the next
	// layer has none).
	clockNow func() uint64

	// firstErr latches the first backend/IO failure the CDC goroutine
	// hits, so the application thread observes it from its next MF call
	// instead of discovering garbage at Close.
	firstErr  atomic.Pointer[error]
	abandoned atomic.Bool

	stats  RateStats
	closed bool

	// obs instruments, nil when Options.Obs is nil (no-op calls).
	mRows      *obs.Counter
	mBatchRows *obs.Histogram
	mFlushNs   *obs.Histogram
	mFlushes   *obs.Counter
	obsReg     *obs.Registry
}

var _ simmpi.MPI = (*Recorder)(nil)

// New creates a Recorder for one rank writing through backend, and starts
// its CDC goroutine. Close must be called to flush and stop it.
func New(next simmpi.MPI, backend baseline.Method, opts Options) *Recorder {
	opts.fill()
	r := &Recorder{
		next:         next,
		backend:      backend,
		opts:         opts,
		q:            spsc.NewWithBackoff[queueItem](opts.QueueCapacity, opts.Backoff),
		done:         make(chan error, 1),
		seenCallsite: make(map[uint64]bool),
	}
	if c, ok := next.(interface{ Clock() uint64 }); ok {
		r.clockNow = c.Clock
	}
	reg := opts.Obs
	r.obsReg = reg
	r.q.Instrument(spsc.Instruments{
		Enqueued: reg.Counter("record.queue.enqueued"),
		Stalls:   reg.Counter("record.queue.stalls"),
		Depth:    reg.Gauge("record.queue.depth"),
	})
	r.mRows = reg.Counter("record.rows")
	r.mBatchRows = reg.Histogram("record.batch.rows", obs.ExpBounds(1, 2, 20))
	r.mFlushNs = reg.Histogram("record.flush.ns", obs.LatencyBounds())
	r.mFlushes = reg.Counter("record.flushes")
	go r.cdcThread()
	return r
}

// flusher is implemented by backends supporting periodic flushing; the
// argument is the producing rank's Lamport clock at the newest flushed row.
type flusher interface {
	FlushAll(clock uint64) error
}

// cdcThread is the dedicated encoder goroutine (paper Fig. 11). It owns the
// consecutive-failed-test aggregation (the count column of §3.1): producers
// enqueue one row per failed test, and the aggregate row is materialized
// here just before the event that ends the run — which keeps every flushed
// cut complete, with no unmatched tail stranded on the application thread.
func (r *Recorder) cdcThread() {
	var busy time.Duration
	var err error
	fl, canFlush := r.backend.(flusher)
	timedFlush := canFlush && r.opts.FlushInterval > 0
	lastFlush := time.Now() //cdc:allow(nodetermflow) wall clock only paces background flushes; row order is fixed before rows reach the flusher
	rowsSinceFlush := 0
	var lastClock uint64
	// A flush that comes due mid-group (the producer enqueues one row per
	// matched message, so a multi-message MF call spans several items) is
	// deferred until the group's last row: flushing only at group boundaries
	// guarantees no stream's buffer ends inside a with_next group, so every
	// FlushAll seals a flush-point mark. It also keeps lastClock sound as the
	// mark's clock — every row processed before the mark is in the flushed
	// cut, so a prefix replay regenerates all sends up to that clock.
	pendingFlush := false
	midGroup := false

	// pendingUnmatched aggregates consecutive failed tests per callsite;
	// order lists callsites with a pending run, in first-pending order.
	pendingUnmatched := make(map[uint64]uint64)
	var pendingOrder []uint64

	latch := func(e error) {
		if err == nil && e != nil {
			err = e
			r.firstErr.CompareAndSwap(nil, &e)
		}
	}
	observe := func(cs uint64, ev tables.Event) {
		if err != nil {
			return
		}
		latch(r.backend.Observe(cs, ev))
	}
	flushPendingUnmatched := func(only uint64, all bool) {
		if all {
			for _, cs := range pendingOrder {
				if n := pendingUnmatched[cs]; n > 0 {
					pendingUnmatched[cs] = 0
					observe(cs, tables.Unmatched(n))
				}
			}
			pendingOrder = pendingOrder[:0]
			return
		}
		if n := pendingUnmatched[only]; n > 0 {
			pendingUnmatched[only] = 0
			observe(only, tables.Unmatched(n))
		}
	}
	flushAll := func() {
		if err != nil || !canFlush {
			return
		}
		start := time.Now() //cdc:allow(nodetermflow) flush span timing is observability metadata only
		span := r.obsReg.StartSpan("record.flush")
		flushPendingUnmatched(0, true)
		if err == nil {
			latch(fl.FlushAll(lastClock))
		}
		span.End()
		elapsed := time.Since(start) //cdc:allow(nodetermflow) flush duration feeds the busy metric only
		busy += elapsed
		r.mFlushNs.ObserveDuration(elapsed)
		r.mBatchRows.Observe(uint64(rowsSinceFlush))
		r.mFlushes.Inc()
		lastFlush = time.Now() //cdc:allow(nodetermflow) wall clock only paces background flushes
		rowsSinceFlush = 0
		pendingFlush = false
	}

	for {
		var item queueItem
		if timedFlush {
			var ok, done bool
			item, ok, done = r.q.DequeueTimeout(r.opts.FlushInterval)
			if done {
				break
			}
			if !ok || time.Since(lastFlush) >= r.opts.FlushInterval { //cdc:allow(nodetermflow) wall clock only paces background flushes
				if midGroup {
					pendingFlush = true
				} else {
					flushAll()
				}
				if !ok {
					continue
				}
			}
		} else {
			var alive bool
			item, alive = r.q.Dequeue()
			if !alive {
				break
			}
		}
		start := time.Now() //cdc:allow(nodetermflow) flush duration feeds the busy metric only
		if item.clock > lastClock {
			lastClock = item.clock
		}
		if err == nil && item.name != "" {
			if reg, ok := r.backend.(registrar); ok {
				latch(reg.RegisterCallsite(item.callsite, item.name))
			}
		}
		if !item.ev.Flag {
			// A failed test: fold into the callsite's pending run.
			if pendingUnmatched[item.callsite] == 0 {
				pendingOrder = append(pendingOrder, item.callsite)
			}
			pendingUnmatched[item.callsite] += item.ev.Count
		} else {
			flushPendingUnmatched(item.callsite, false)
			observe(item.callsite, item.ev)
		}
		busy += time.Since(start) //cdc:allow(nodetermflow) flush duration feeds the busy metric only
		r.mRows.Inc()
		midGroup = item.ev.Flag && item.ev.WithNext
		rowsSinceFlush++
		if r.opts.FlushEveryRows > 0 && rowsSinceFlush >= r.opts.FlushEveryRows {
			pendingFlush = true
		}
		if pendingFlush && !midGroup {
			flushAll()
		}
	}
	if r.abandoned.Load() {
		// Simulated crash: whatever the last storage flush persisted is
		// the record; no trailing rows, no clean close.
		r.stats.DrainDuration = busy
		r.done <- err
		return
	}
	flushPendingUnmatched(0, true)
	if cerr := r.backend.Close(); cerr != nil {
		latch(cerr)
	}
	r.stats.DrainDuration = busy
	r.done <- err
}

// Close stops the CDC goroutine, flushes any pending unmatched run and
// finalizes the record. It must be called from the rank's own goroutine
// after the application finishes.
func (r *Recorder) Close() error {
	if r.closed {
		return errors.New("record: already closed")
	}
	r.closed = true
	r.q.Close()
	return <-r.done
}

// Abandon simulates the rank dying mid-run: the CDC goroutine drains what
// was already enqueued but the backend is never flushed or closed, so the
// record ends at its last storage flush — exactly the state a real crash
// leaves behind for salvage. Safe to call from any goroutine; returns after
// the CDC goroutine has exited.
func (r *Recorder) Abandon() {
	if r.closed {
		return
	}
	r.closed = true
	r.abandoned.Store(true)
	r.q.Close()
	<-r.done
}

// Err returns the first backend/IO error the CDC goroutine hit, or nil.
// After a failure every subsequent MF call also returns it.
func (r *Recorder) Err() error {
	if p := r.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns queue-rate statistics (valid after Close).
func (r *Recorder) Stats() RateStats { return r.stats }

// ObserveForBenchmark injects a pre-built event row directly into the
// observe queue, bypassing the MPI layer. It exists for the §6.2
// queue-rate benchmarks, which drive the SPSC queue and the CDC goroutine
// at full speed without a live message stream.
func (r *Recorder) ObserveForBenchmark(ev tables.Event) {
	r.enqueue(0, "benchmark", ev)
}

func (r *Recorder) enqueue(cs uint64, name string, ev tables.Event) {
	if r.Err() != nil {
		// The backend already failed; producing more rows would only be
		// encoded into garbage, so stop at the latched prefix.
		return
	}
	// Attach the callsite name to the first row actually enqueued for it.
	if !r.seenCallsite[cs] {
		r.seenCallsite[cs] = true
	} else {
		name = ""
	}
	var clock uint64
	if r.clockNow != nil {
		clock = r.clockNow()
	}
	item := queueItem{callsite: cs, name: name, ev: ev, clock: clock}
	// Full-at-entry is sampled from the producer's own view rather than via
	// TryEnqueue, whose failure path now bumps the shared Stalls instrument;
	// Enqueue below counts the same episode once, keeping one blocking
	// episode = one stall.
	if r.q.Len() == r.q.Cap() {
		r.stats.EnqueueBlocked++
	}
	if !r.q.Enqueue(item) {
		return
	}
	r.stats.Enqueued++
}

// observe records an MF call outcome: sts holds the matched completions in
// application-observed order (empty means an unmatched test). It must be
// called directly by the exported MF wrapper so the callsite skip count
// stays fixed; noinline keeps the frame chain intact.
//
//go:noinline
func (r *Recorder) observe(matched bool, sts []simmpi.Status) {
	cs, name := uint64(0), "merged"
	if !r.opts.DisableMFID {
		// Caller chain: app → Recorder method → observe → callsite.ID.
		cs, name = callsite.ID(3)
	}
	if !matched {
		// One row per failed test; the CDC goroutine folds consecutive
		// runs into a single counted row (§3.1's count column) so the
		// aggregate never sits on this thread across a flush cut.
		r.enqueue(cs, name, tables.Unmatched(1))
		return
	}
	for i, st := range sts {
		withNext := i+1 < len(sts)
		r.enqueue(cs, name, tables.MatchedTagged(int32(st.Source), int32(st.Tag), st.Clock, withNext))
	}
}

// Rank returns the wrapped endpoint's rank.
func (r *Recorder) Rank() int { return r.next.Rank() }

// Size returns the world size.
func (r *Recorder) Size() int { return r.next.Size() }

// Send passes through; sends are deterministic (Definition 7).
func (r *Recorder) Send(dst, tag int, data []byte) error {
	if err := r.Err(); err != nil {
		return err
	}
	return r.next.Send(dst, tag, data)
}

// Irecv passes through; recording happens at match time.
func (r *Recorder) Irecv(src, tag int) (*simmpi.Request, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	return r.next.Irecv(src, tag)
}

// Test records the matching status of a single test.
func (r *Recorder) Test(req *simmpi.Request) (bool, simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return false, simmpi.Status{}, err
	}
	ok, st, err := r.next.Test(req)
	if err != nil {
		return ok, st, err
	}
	if ok {
		r.observe(true, []simmpi.Status{st})
	} else {
		r.observe(false, nil)
	}
	return ok, st, err
}

// Testany records like Test over a request set.
func (r *Recorder) Testany(reqs []*simmpi.Request) (int, bool, simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return -1, false, simmpi.Status{}, err
	}
	i, ok, st, err := r.next.Testany(reqs)
	if err != nil {
		return i, ok, st, err
	}
	if ok {
		r.observe(true, []simmpi.Status{st})
	} else {
		r.observe(false, nil)
	}
	return i, ok, st, err
}

// Testsome records the matched message set, chaining rows via with_next.
func (r *Recorder) Testsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	idxs, sts, err := r.next.Testsome(reqs)
	if err != nil {
		return idxs, sts, err
	}
	r.observe(len(sts) > 0, sts)
	return idxs, sts, err
}

// Testall records either one failed test or the full with_next-chained
// matched set in request order.
func (r *Recorder) Testall(reqs []*simmpi.Request) (bool, []simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return false, nil, err
	}
	ok, sts, err := r.next.Testall(reqs)
	if err != nil {
		return ok, sts, err
	}
	if ok && len(sts) > 0 {
		r.observe(true, sts)
	} else if !ok {
		r.observe(false, nil)
	}
	return ok, sts, err
}

// Wait records a single matched event.
func (r *Recorder) Wait(req *simmpi.Request) (simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return simmpi.Status{}, err
	}
	st, err := r.next.Wait(req)
	if err != nil {
		return st, err
	}
	r.observe(true, []simmpi.Status{st})
	return st, err
}

// Waitany records a single matched event.
func (r *Recorder) Waitany(reqs []*simmpi.Request) (int, simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return -1, simmpi.Status{}, err
	}
	i, st, err := r.next.Waitany(reqs)
	if err != nil {
		return i, st, err
	}
	r.observe(true, []simmpi.Status{st})
	return i, st, err
}

// Waitsome records the matched message set with with_next chaining.
func (r *Recorder) Waitsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	idxs, sts, err := r.next.Waitsome(reqs)
	if err != nil {
		return idxs, sts, err
	}
	r.observe(true, sts)
	return idxs, sts, err
}

// Waitall records every completion as one with_next-chained matched set, in
// the order the layer below reports statuses (request order).
func (r *Recorder) Waitall(reqs []*simmpi.Request) ([]simmpi.Status, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	sts, err := r.next.Waitall(reqs)
	if err != nil {
		return sts, err
	}
	if len(sts) > 0 {
		r.observe(true, sts)
	}
	return sts, err
}

// Barrier passes through; collectives are deterministic.
func (r *Recorder) Barrier() error { return r.next.Barrier() }

// Allreduce passes through; collectives are deterministic.
func (r *Recorder) Allreduce(v float64, op simmpi.ReduceOp) (float64, error) {
	return r.next.Allreduce(v, op)
}

// Reduce passes through; collectives are deterministic.
func (r *Recorder) Reduce(v float64, op simmpi.ReduceOp, root int) (float64, error) {
	return r.next.Reduce(v, op, root)
}

// Bcast passes through; collectives are deterministic.
func (r *Recorder) Bcast(data []byte, root int) ([]byte, error) {
	return r.next.Bcast(data, root)
}

// Gather passes through; collectives are deterministic.
func (r *Recorder) Gather(v float64, root int) ([]float64, error) {
	return r.next.Gather(v, root)
}

// Allgather passes through; collectives are deterministic.
func (r *Recorder) Allgather(v float64) ([]float64, error) {
	return r.next.Allgather(v)
}
