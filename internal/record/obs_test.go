package record

import (
	"bytes"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/simmpi"
)

// TestRecorderObsMetrics checks the DESIGN.md §8 record-layer metrics
// against ground truth from RateStats on a run with a known event count.
func TestRecorderObsMetrics(t *testing.T) {
	const msgs = 40
	reg := obs.NewRegistry()
	var spans []obs.Span
	reg.OnSpan(func(s obs.Span) { spans = append(spans, s) })

	w := simmpi.NewWorld(2, simmpi.Options{Seed: 5, MaxJitter: 3, Obs: reg})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			l := lamport.Wrap(mpi)
			for i := 0; i < msgs; i++ {
				if err := l.Send(0, 1, nil); err != nil {
					return err
				}
			}
			return nil
		}
		var buf bytes.Buffer
		enc, err := core.NewEncoder(&buf, core.EncoderOptions{Obs: reg})
		if err != nil {
			return err
		}
		rec := New(lamport.Wrap(mpi), baseline.NewCDC(enc), Options{Obs: reg, FlushEveryRows: 8})
		for i := 0; i < msgs; i++ {
			req, _ := rec.Irecv(1, 1)
			if _, err := rec.Wait(req); err != nil {
				return err
			}
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if got := s.Counter("record.rows"); got != msgs {
		t.Errorf("record.rows = %d, want %d", got, msgs)
	}
	if got := s.Counter("record.queue.enqueued"); got != msgs {
		t.Errorf("record.queue.enqueued = %d, want %d", got, msgs)
	}
	// 40 rows at FlushEveryRows: 8 → 5 mid-run flush passes.
	if got := s.Counter("record.flushes"); got != 5 {
		t.Errorf("record.flushes = %d, want 5", got)
	}
	if h := s.Histogram("record.flush.ns"); h.Count != 5 {
		t.Errorf("record.flush.ns count = %d, want 5", h.Count)
	}
	if got := s.Gauge("record.queue.depth").Max; got < 1 {
		t.Errorf("record.queue.depth max = %d, want ≥ 1", got)
	}
	// The encoder fed the same rows through the stage counters.
	for _, name := range []string{"encode.bytes.raw", "encode.bytes.re", "encode.bytes.pe", "encode.bytes.lpe", "encode.bytes.gzip"} {
		if s.Counter(name) == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	// The net layer saw the 40 sends (plus clock piggyback traffic counts as
	// the same messages).
	if got := s.Counter("net.messages"); got < msgs {
		t.Errorf("net.messages = %d, want ≥ %d", got, msgs)
	}
	// Every flush pass emitted a record.flush span.
	flushSpans := 0
	for _, sp := range spans {
		if sp.Name == "record.flush" {
			flushSpans++
		}
	}
	if flushSpans != 5 {
		t.Errorf("record.flush spans = %d, want 5", flushSpans)
	}
}

// TestRecorderNilObsIsNoop runs the same shape with no registry: nothing to
// assert beyond "does not crash", which is the point of nil-safe
// instruments.
func TestRecorderNilObsIsNoop(t *testing.T) {
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 6, MaxJitter: 3})
	err := w.Run(func(mpi simmpi.MPI) error {
		if mpi.Rank() == 1 {
			return lamport.Wrap(mpi).Send(0, 1, nil)
		}
		var buf bytes.Buffer
		enc, err := core.NewEncoder(&buf, core.EncoderOptions{})
		if err != nil {
			return err
		}
		rec := New(lamport.Wrap(mpi), baseline.NewCDC(enc), Options{FlushEveryRows: 1})
		req, _ := rec.Irecv(1, 1)
		if _, err := rec.Wait(req); err != nil {
			return err
		}
		return rec.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
