package taskfarm

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

func runPlain(t *testing.T, n int, seed int64, params Params) (Result, []int) {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{Seed: seed, MaxJitter: 8})
	var master Result
	done := make([]int, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		r, err := Run(mpi, params)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
		mu.Lock()
		if rank == 0 {
			master = r
		}
		done[rank] = r.TasksDone
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return master, done
}

func TestAllTasksComputedExactlyOnce(t *testing.T) {
	const n, tasks = 5, 40
	master, done := runPlain(t, n, 3, Params{Tasks: tasks})
	total := 0
	for rank, d := range done {
		if rank == 0 && d != 0 {
			t.Fatalf("master computed %d tasks", d)
		}
		total += d
	}
	if total != tasks {
		t.Fatalf("workers computed %d tasks, want %d", total, tasks)
	}
	for task, w := range master.Assignment {
		if w < 1 || w >= n {
			t.Fatalf("task %d assigned to invalid worker %d", task, w)
		}
	}
	if master.Reduction == 0 {
		t.Fatal("reduction not computed")
	}
}

func TestMoreWorkersThanTasks(t *testing.T) {
	master, done := runPlain(t, 8, 4, Params{Tasks: 3})
	total := 0
	for _, d := range done {
		total += d
	}
	if total != 3 {
		t.Fatalf("computed %d tasks, want 3", total)
	}
	if len(master.Assignment) != 3 {
		t.Fatalf("assignment = %v", master.Assignment)
	}
}

func TestNeedsTwoRanks(t *testing.T) {
	w := simmpi.NewWorld(1, simmpi.Options{})
	err := w.Run(func(mpi simmpi.MPI) error {
		_, err := Run(mpi, Params{})
		if err == nil {
			return fmt.Errorf("single-rank run succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAssignmentNondeterminism: the task→worker assignment depends on who
// answers first, so it varies across runs.
func TestAssignmentNondeterminism(t *testing.T) {
	assignments := map[string]bool{}
	for trial := 0; trial < 8; trial++ {
		master, _ := runPlain(t, 5, int64(trial+10), Params{Tasks: 30})
		assignments[fmt.Sprint(master.Assignment)] = true
	}
	if len(assignments) < 2 {
		t.Fatal("assignment identical across 8 runs; farm is not racing")
	}
}

// TestRecordReplayReproducesAssignment: replaying the record reproduces
// both the order-sensitive reduction and the full task→worker assignment.
func TestRecordReplayReproducesAssignment(t *testing.T) {
	const n = 5
	params := Params{Tasks: 40}
	w := simmpi.NewWorld(n, simmpi.Options{Seed: 77, MaxJitter: 8})
	files := make([][]byte, n)
	var recorded Result
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 16})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		r, rerr := Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		mu.Lock()
		files[rank] = buf.Bytes()
		if rank == 0 {
			recorded = r
		}
		mu.Unlock()
		return rerr
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	w2 := simmpi.NewWorld(n, simmpi.Options{Seed: 999, MaxJitter: 8})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{})
		r, rerr := Run(rp, params)
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		if rank == 0 {
			if r.Reduction != recorded.Reduction {
				return fmt.Errorf("reduction %v != recorded %v", r.Reduction, recorded.Reduction)
			}
			if !reflect.DeepEqual(r.Assignment, recorded.Assignment) {
				return fmt.Errorf("assignment diverged:\n got %v\nwant %v", r.Assignment, recorded.Assignment)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
}
