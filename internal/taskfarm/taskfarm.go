// Package taskfarm implements a master/worker task farm — after particle
// exchange, the most common source of MPI_ANY_SOURCE non-determinism in
// production codes (the paper's §2 motivates exactly this class). The
// master hands out work units; each worker computes and returns a result;
// the master assigns the next unit to whichever worker answered first, so
// the task→worker assignment — and any order-sensitive reduction of the
// results — differs run to run. Under order-replay the full assignment
// sequence is reproduced exactly.
package taskfarm

import (
	"encoding/binary"
	"fmt"
	"math"

	"cdcreplay/internal/simmpi"
)

// Message tags.
const (
	// TagTask carries a work unit (master → worker).
	TagTask = 41
	// TagResult carries a result (worker → master).
	TagResult = 42
	// TagStop tells a worker to exit.
	TagStop = 43
)

// Params configure a run.
type Params struct {
	// Tasks is the number of work units. Default 64.
	Tasks int
	// Work scales the per-task computation. Default 200.
	Work int
}

func (p *Params) fill() {
	if p.Tasks == 0 {
		p.Tasks = 64
	}
	if p.Work == 0 {
		p.Work = 200
	}
}

// Result summarizes the run on the master (rank 0); workers get zero
// values plus their own TasksDone count.
type Result struct {
	// Reduction is the master's order-sensitive combination of results,
	// folded in arrival order: the §2.1 symptom.
	Reduction float64
	// Assignment[i] is the worker that computed task i (master only).
	Assignment []int
	// TasksDone counts tasks this rank computed (workers).
	TasksDone int
}

// compute is the deterministic per-task kernel.
func compute(task int, work int) float64 {
	x := float64(task) + 1
	for i := 0; i < work; i++ {
		x = math.Sqrt(x*x+1) * 1.0000001
	}
	return x
}

func encodeU32(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v)
	return buf
}

func encodeResult(task uint32, value float64) []byte {
	buf := make([]byte, 12)
	binary.LittleEndian.PutUint32(buf, task)
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(value))
	return buf
}

// Run executes the farm. Rank 0 is the master; it requires at least two
// ranks.
func Run(mpi simmpi.MPI, p Params) (Result, error) {
	p.fill()
	if mpi.Size() < 2 {
		return Result{}, fmt.Errorf("taskfarm: needs at least 2 ranks, have %d", mpi.Size())
	}
	if mpi.Rank() == 0 {
		return master(mpi, p)
	}
	return worker(mpi, p)
}

func master(mpi simmpi.MPI, p Params) (Result, error) {
	res := Result{Assignment: make([]int, p.Tasks)}
	workers := mpi.Size() - 1
	next := 0

	// Seed every worker with one task (or stop it immediately if there is
	// less work than workers).
	for w := 1; w <= workers; w++ {
		if next < p.Tasks {
			if err := mpi.Send(w, TagTask, encodeU32(uint32(next))); err != nil {
				return res, err
			}
			next++
		} else {
			if err := mpi.Send(w, TagStop, nil); err != nil {
				return res, err
			}
		}
	}

	// Collect results in arrival order; hand the next task to the worker
	// that just answered.
	req, err := mpi.Irecv(simmpi.AnySource, TagResult)
	if err != nil {
		return res, err
	}
	for done := 0; done < p.Tasks; done++ {
		st, err := mpi.Wait(req)
		if err != nil {
			return res, err
		}
		if done+1 < p.Tasks || next < p.Tasks {
			if req, err = mpi.Irecv(simmpi.AnySource, TagResult); err != nil {
				return res, err
			}
		}
		task := binary.LittleEndian.Uint32(st.Data)
		value := math.Float64frombits(binary.LittleEndian.Uint64(st.Data[4:]))
		res.Assignment[task] = st.Source
		// Order-sensitive fold (non-associative, like §2.1's tallies).
		res.Reduction = res.Reduction*1.0000000001 + value
		if next < p.Tasks {
			if err := mpi.Send(st.Source, TagTask, encodeU32(uint32(next))); err != nil {
				return res, err
			}
			next++
		} else {
			if err := mpi.Send(st.Source, TagStop, nil); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

func worker(mpi simmpi.MPI, p Params) (Result, error) {
	res := Result{}
	for {
		// One wildcard-tag receive: task or stop, whichever the master
		// sent (FIFO per sender keeps them ordered).
		req, err := mpi.Irecv(0, simmpi.AnyTag)
		if err != nil {
			return res, err
		}
		st, err := mpi.Wait(req)
		if err != nil {
			return res, err
		}
		if st.Tag == TagStop {
			return res, nil
		}
		task := binary.LittleEndian.Uint32(st.Data)
		value := compute(int(task), p.Work)
		if err := mpi.Send(0, TagResult, encodeResult(task, value)); err != nil {
			return res, err
		}
		res.TasksDone++
	}
}
