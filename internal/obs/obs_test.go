package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestNilRegistryIsFullyDisabled exercises every instrument path through a
// nil registry: the package's core contract is that disabled code needs no
// enable branch.
func TestNilRegistryIsFullyDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatalf("nil registry handed out a counter")
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 0 || g.Max() != 0 {
		t.Errorf("nil gauge = %d/%d", g.Value(), g.Max())
	}
	h := r.Histogram("x", LatencyBounds())
	h.Observe(9)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil histogram = %d/%d", h.Count(), h.Sum())
	}
	r.OnSpan(func(Span) { t.Error("hook on nil registry fired") })
	r.StartSpan("x").End()
	s := r.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Fatalf("nil registry snapshot has nil maps: %+v", s)
	}
	if buf, err := json.Marshal(s); err != nil || string(buf) != "{}" {
		t.Errorf("nil registry snapshot JSON = %s, %v", buf, err)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rows")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("rows") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Set(4)
	g.Add(2)
	if g.Value() != 6 {
		t.Errorf("gauge value = %d, want 6", g.Value())
	}
	if g.Max() != 10 {
		t.Errorf("gauge max = %d, want 10", g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ns", []uint64{10, 100, 1000})
	for _, v := range []uint64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	// v <= bounds[i] lands in bucket i; 5000 overflows.
	want := []uint64{2, 2, 0, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Min != 5 || s.Max != 5000 {
		t.Errorf("min/max = %d/%d, want 5/5000", s.Min, s.Max)
	}
	if s.Count != 5 || s.Sum != 5+10+11+99+5000 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != float64(s.Sum)/5 {
		t.Errorf("mean = %v", m)
	}
	// The 0.5-quantile's cumulative target (3) is reached in bucket 1.
	if q := s.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %d, want 100", q)
	}
	// The max quantile lands in the overflow bucket → reported as Max.
	if q := s.Quantile(1); q != 5000 {
		t.Errorf("p100 = %d, want 5000", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}

func TestBoundsHelpers(t *testing.T) {
	if got := ExpBounds(1, 2, 4); !reflect.DeepEqual(got, []uint64{1, 2, 4, 8}) {
		t.Errorf("ExpBounds = %v", got)
	}
	if got := LinearBounds(0, 5, 3); !reflect.DeepEqual(got, []uint64{0, 5, 10}) {
		t.Errorf("LinearBounds = %v", got)
	}
	// Overflow-safe: stops doubling rather than wrapping.
	big := ExpBounds(1<<62, 4, 10)
	if len(big) != 1 || big[0] != 1<<62 {
		t.Errorf("ExpBounds near overflow = %v", big)
	}
}

func TestSpanHooks(t *testing.T) {
	r := NewRegistry()
	// Without hooks StartSpan must return the zero SpanEnd (no clock read).
	if e := r.StartSpan("quiet"); e != (SpanEnd{}) {
		t.Error("hook-less StartSpan allocated a live span")
	}
	var got []Span
	r.OnSpan(func(s Span) { got = append(got, s) })
	e := r.StartSpan("flush")
	time.Sleep(time.Millisecond)
	e.End()
	if len(got) != 1 || got[0].Name != "flush" || got[0].Duration <= 0 {
		t.Fatalf("spans = %+v", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("record.rows").Add(42)
	r.Gauge("record.queue.depth").Set(17)
	h := r.Histogram("record.flush.ns", []uint64{10, 100})
	h.Observe(7)
	h.Observe(5000)

	s := r.Snapshot()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", back, s)
	}
	if back.Counter("record.rows") != 42 {
		t.Errorf("counter = %d", back.Counter("record.rows"))
	}
	if back.Gauge("record.queue.depth").Max != 17 {
		t.Errorf("gauge = %+v", back.Gauge("record.queue.depth"))
	}
	if hs := back.Histogram("record.flush.ns"); hs.Count != 2 || hs.Max != 5000 {
		t.Errorf("histogram = %+v", hs)
	}
	// Absent names read as zero values, not panics.
	if back.Counter("nope") != 0 || back.Gauge("nope").Max != 0 || back.Histogram("nope").Count != 0 {
		t.Error("absent instruments not zero")
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines; run
// under -race this is the package's thread-safety proof.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(int64(w*perWorker + i))
				r.Histogram("h", LatencyBounds()).Observe(uint64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if max := r.Gauge("g").Max(); max != workers*perWorker-1 {
		t.Errorf("gauge max = %d, want %d", max, workers*perWorker-1)
	}
}
