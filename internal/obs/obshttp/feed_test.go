package obshttp

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdcreplay/internal/core"
	"cdcreplay/internal/feed"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/workload"
)

// feedFixture records a small single-rank run and opens an unpaced feed
// over it, its instruments registered into reg.
func feedFixture(t *testing.T, reg *obs.Registry) *feed.Feed {
	t.Helper()
	st := memstore.New()
	if err := st.Create(store.Manifest{Ranks: 1, App: "obshttp-test"}); err != nil {
		t.Fatal(err)
	}
	w, err := st.CreateRank(0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewEncoder(w, core.EncoderOptions{
		ChunkEvents:  32,
		SeekableCuts: true,
		OnFlushPoint: func(clock, events uint64, offset int64) error {
			return w.Commit(store.Cut{Clock: clock, Events: events, Offset: offset})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := workload.Stream(workload.StreamParams{Events: 120, Senders: 3, Disorder: 2, Seed: 5})
	for i, ev := range evs {
		if err := enc.Observe(1, ev); err != nil {
			t.Fatal(err)
		}
		if (i+1)%40 == 0 {
			if err := enc.FlushAll(uint64(1000 * (i + 1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Finalize(); err != nil {
		t.Fatal(err)
	}

	f, err := feed.Open(st, feed.Options{
		Rate:   feed.RateMax,
		Clock:  feed.NewVirtualClock(time.Unix(0, 0)),
		Paused: true,
		Obs:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFeedEndpointStreamsNDJSON pins the /feed contract: one JSON object
// per release, flush marks and the end marker present, and the feed's
// gauges visible on /metrics from the same handler.
func TestFeedEndpointStreamsNDJSON(t *testing.T) {
	reg := obs.NewRegistry()
	f := feedFixture(t, reg)
	srv := httptest.NewServer(HandlerWithFeed(reg.Snapshot, f))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/feed")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("content type = %q, want application/x-ndjson", ct)
	}
	if err := f.Resume(); err != nil {
		t.Fatal(err)
	}

	var lines []feedLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l feedLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no feed lines streamed")
	}
	var flushes, frames int
	for _, l := range lines {
		switch l.Kind {
		case "flush":
			flushes++
			if l.Clock == 0 {
				t.Errorf("flush line without clock: %+v", l)
			}
		case "frame":
			frames++
		}
	}
	if flushes == 0 || frames == 0 {
		t.Fatalf("stream had %d flush and %d frame lines; want both > 0", flushes, frames)
	}
	if last := lines[len(lines)-1]; last.Kind != "end" || last.Err != "" {
		t.Fatalf("last line = %+v, want clean end marker", last)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].Seq <= lines[i-1].Seq {
			t.Fatalf("seq regressed at line %d: %d after %d", i, lines[i].Seq, lines[i-1].Seq)
		}
	}

	// The same handler serves the feed's instruments.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Counter("feed.released") == 0 {
		t.Error("feed.released = 0 on /metrics after a full stream")
	}
	if snap.Gauge("feed.lead").Value == 0 {
		t.Error("feed.lead gauge missing from /metrics")
	}

	// After the stream ended, a new subscriber is refused cleanly.
	resp2, err := http.Get(srv.URL + "/feed")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-end /feed status = %d, want %d", resp2.StatusCode, http.StatusServiceUnavailable)
	}
}
