// Package obshttp exposes an obs snapshot over HTTP, expvar-style, with
// net/http/pprof wired alongside. It lives in a subpackage so binaries
// that never serve metrics do not link net/http.
//
// Routes:
//
//	/metrics      current snapshot as JSON (pretty-printed with ?pretty)
//	/debug/vars   same payload under the conventional expvar path
//	/debug/pprof  the standard pprof index, profile, trace, …
package obshttp

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"

	"cdcreplay/internal/obs"
)

// Source yields the snapshot to serve; typically a bound
// (*obs.Registry).Snapshot, or a closure switching between registries.
type Source func() obs.Snapshot

// Handler returns an http.Handler serving src plus pprof.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if req.URL.Query().Has("pretty") {
			enc.SetIndent("", "  ")
		}
		_ = enc.Encode(src())
	}
	mux.HandleFunc("/metrics", serve)
	mux.HandleFunc("/debug/vars", serve)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for src on addr (e.g. ":6060") in a
// background goroutine and returns the bound address plus a shutdown
// function. Binding errors are returned synchronously so a typo'd -http
// flag fails fast instead of silently serving nothing.
func Serve(addr string, src Source) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
