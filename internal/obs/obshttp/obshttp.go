// Package obshttp exposes an obs snapshot over HTTP, expvar-style, with
// net/http/pprof wired alongside. It lives in a subpackage so binaries
// that never serve metrics do not link net/http.
//
// Routes:
//
//	/metrics      current snapshot as JSON (pretty-printed with ?pretty)
//	/debug/vars   same payload under the conventional expvar path
//	/debug/pprof  the standard pprof index, profile, trace, …
//	/feed         live replay releases as NDJSON (HandlerWithFeed only)
package obshttp

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"cdcreplay/internal/feed"
	"cdcreplay/internal/obs"
)

// Source yields the snapshot to serve; typically a bound
// (*obs.Registry).Snapshot, or a closure switching between registries.
type Source func() obs.Snapshot

// Handler returns an http.Handler serving src plus pprof.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		if req.URL.Query().Has("pretty") {
			enc.SetIndent("", "  ")
		}
		_ = enc.Encode(src())
	}
	mux.HandleFunc("/metrics", serve)
	mux.HandleFunc("/debug/vars", serve)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// FeedSource hands out subscriptions to a live replay feed — satisfied by
// *feed.Feed (and by cdc.Feed, its public alias).
type FeedSource interface {
	Subscribe() (*feed.Subscription, error)
}

// feedLine is one /feed NDJSON record: the release metadata plus a frame
// summary. Payload bytes stay out of the stream — a dashboard follows the
// pacing and discontinuities, a decoder opens the record itself.
type feedLine struct {
	Seq        uint64 `json:"seq"`
	Kind       string `json:"kind"`
	Epoch      int    `json:"epoch"`
	Clock      uint64 `json:"clock,omitempty"`
	DueNs      int64  `json:"due_unix_ns,omitempty"`
	AtNs       int64  `json:"at_unix_ns"`
	FrameKind  uint8  `json:"frame_kind,omitempty"`
	FrameBytes int    `json:"frame_bytes,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Err        string `json:"err,omitempty"`
}

func toFeedLine(ev feed.Event) feedLine {
	l := feedLine{
		Seq:     ev.Seq,
		Kind:    ev.Kind.String(),
		Epoch:   ev.Epoch,
		Clock:   ev.Clock,
		AtNs:    ev.At.UnixNano(),
		Dropped: ev.Dropped,
		Err:     ev.Err,
	}
	if !ev.Due.IsZero() {
		l.DueNs = ev.Due.UnixNano()
	}
	if ev.Frame != nil {
		l.FrameKind = ev.Frame.Kind
		l.FrameBytes = len(ev.Frame.Payload)
	}
	return l
}

// HandlerWithFeed is Handler plus a /feed route: each request subscribes
// to fs and streams every release as one JSON line, flushed per event so a
// dashboard sees releases as they happen. The stream ends when the feed
// ends or the client disconnects; a disconnected subscriber is closed, so
// it never throttles a Block-policy feed from the grave.
func HandlerWithFeed(src Source, fs FeedSource) http.Handler {
	mux := Handler(src).(*http.ServeMux)
	mux.HandleFunc("/feed", func(w http.ResponseWriter, req *http.Request) {
		sub, err := fs.Subscribe()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		// Recv blocks with no ctx; detach the subscription on disconnect so
		// it unblocks and the hub stops delivering to it.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-req.Context().Done():
			case <-done:
			}
			sub.Close()
		}()
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		// Commit the headers before the first release: a client tailing a
		// paused feed should see the stream open immediately, not block
		// until the first event arrives.
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		if flusher != nil {
			flusher.Flush()
		}
		enc := json.NewEncoder(w)
		for {
			ev, ok := sub.Recv()
			if !ok {
				return
			}
			if err := enc.Encode(toFeedLine(ev)); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	return mux
}

// ServeFeed is Serve with the /feed route wired to fs.
func ServeFeed(addr string, src Source, fs FeedSource) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: HandlerWithFeed(src, fs), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}

// Serve starts an HTTP server for src on addr (e.g. ":6060") in a
// background goroutine and returns the bound address plus a shutdown
// function. Binding errors are returned synchronously so a typo'd -http
// flag fails fast instead of silently serving nothing.
func Serve(addr string, src Source) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
