package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cdcreplay/internal/obs"
)

func TestHandlerServesSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("record.rows").Add(9)
	srv := httptest.NewServer(Handler(reg.Snapshot))
	defer srv.Close()

	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s content type = %q", path, ct)
		}
		var s obs.Snapshot
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatalf("%s: %v in %s", path, err, body)
		}
		if s.Counter("record.rows") != 9 {
			t.Errorf("%s counter = %d, want 9", path, s.Counter("record.rows"))
		}
	}

	// ?pretty indents.
	resp, err := http.Get(srv.URL + "/metrics?pretty")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "\n  ") {
		t.Errorf("?pretty output not indented: %s", body)
	}

	// pprof index answers.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}

func TestServeBindErrorIsSynchronous(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:0", func() obs.Snapshot { return obs.Snapshot{} }); err == nil {
		t.Fatal("bad address did not error")
	}
	addr, stop, err := Serve("127.0.0.1:0", (*obs.Registry)(nil).Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "{}" {
		t.Errorf("nil-registry snapshot = %s, want {}", body)
	}
}
