// Package obs is the pipeline's zero-dependency observability layer:
// atomic counters, gauges with high-water tracking, fixed-bound histograms,
// and span hooks, collected under a named Registry whose Snapshot marshals
// to JSON.
//
// The design constraint is that instrumentation must be free when disabled.
// Every instrument method is nil-safe: a nil *Registry hands out nil
// instruments, and calling Add/Set/Observe on a nil instrument is a single
// pointer check — no branch on a config struct, no interface dispatch, no
// allocation. Pipeline layers therefore resolve their instruments once at
// construction time and call them unconditionally on the hot path; wiring
// a real Registry (or not) is the only switch.
//
// Metric names form a dotted hierarchy documented in DESIGN.md §8
// (layer.subsystem.metric, e.g. "record.queue.stalls", "encode.bytes.lpe",
// "replay.wait.ns"). Units are encoded in the final name segment: .ns for
// nanoseconds, .bytes/.rows/.ticks for counts of that quantity.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. No-op on a nil Counter.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil Counter.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (zero for a nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value that also tracks its high-water
// mark. A nil Gauge is a no-op.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Set stores v and raises the high-water mark. No-op on a nil Gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the gauge by d and raises the high-water mark. No-op on a
// nil Gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	g.bumpMax(v)
}

// Value returns the current value (zero for a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark: the largest value ever Set or reached
// via Add (at least zero).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i]; one overflow bucket counts the rest.
// Bounds are fixed at creation so concurrent Observe needs no locking.
// A nil Histogram is a no-op.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64 // MaxUint64 until the first observation
	max    atomic.Uint64
}

func newHistogram(bounds []uint64) *Histogram {
	h := &Histogram{
		bounds: append([]uint64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxUint64)
	return h
}

// Observe records one value. No-op on a nil Histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. No-op on a nil
// Histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// StartTimer samples the clock and returns a function that records the
// elapsed nanoseconds when called. On a nil Histogram the clock is never
// sampled and the returned function is a no-op — which is what lets
// lint-clean deterministic packages (cdclint nodeterm) time their stages:
// the wall-clock read lives here, behind the instrument, instead of in the
// encode/decode path itself.
func (h *Histogram) StartTimer() func() {
	if h == nil {
		return func() {}
	}
	start := time.Now() //cdc:allow(nodetermflow) timer hook measures handler latency for metrics only
	return func() { h.ObserveDuration(time.Since(start)) }
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (zero for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.max.Load(),
		Bounds: append([]uint64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	if min := h.min.Load(); min != math.MaxUint64 {
		s.Min = min
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// ExpBounds returns n exponentially spaced bucket bounds starting at start
// and multiplying by factor (≥2 recommended).
func ExpBounds(start, factor uint64, n int) []uint64 {
	bounds := make([]uint64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		bounds = append(bounds, v)
		if v > math.MaxUint64/factor {
			break
		}
		v *= factor
	}
	return bounds
}

// LinearBounds returns n linearly spaced bucket bounds start, start+step, …
func LinearBounds(start, step uint64, n int) []uint64 {
	bounds := make([]uint64, n)
	for i := range bounds {
		bounds[i] = start + uint64(i)*step
	}
	return bounds
}

// LatencyBounds is the default nanosecond bucketing for latency
// histograms: 1µs to ~17s, ×2 per bucket.
func LatencyBounds() []uint64 { return ExpBounds(1000, 2, 25) }

// SizeBounds is the default byte bucketing for size histograms: 64 B to
// 2 GiB, ×4 per bucket.
func SizeBounds() []uint64 { return ExpBounds(64, 4, 13) }

// Span is one completed traced operation, delivered to span hooks.
type Span struct {
	// Name identifies the operation (same hierarchy as metric names).
	Name string
	// Start is when the operation began.
	Start time.Time
	// Duration is how long it took.
	Duration time.Duration
}

// SpanHook receives completed spans. Hooks run synchronously on the
// instrumented goroutine; keep them fast.
type SpanHook func(Span)

// SpanEnd finishes a span started with StartSpan. The zero value (from a
// nil or hook-less Registry) is a no-op.
type SpanEnd struct {
	r     *Registry
	name  string
	start time.Time
}

// End completes the span and delivers it to the registry's hooks.
func (e SpanEnd) End() {
	if e.r == nil {
		return
	}
	sp := Span{Name: e.name, Start: e.start, Duration: time.Since(e.start)} //cdc:allow(nodetermflow) span duration is observability metadata; it never reaches encoded bytes
	for _, h := range e.r.hooks.Load().([]SpanHook) {
		h(sp)
	}
}

// Registry is a named collection of instruments. A nil *Registry is the
// disabled state: every accessor returns a nil instrument and StartSpan
// returns a no-op SpanEnd, so instrumented code needs no enable branch.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	hasHooks atomic.Bool
	hooks    atomic.Value // []SpanHook
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.hooks.Store([]SpanHook(nil))
	return r
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls reuse the first bounds). Returns nil on a nil Registry.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// OnSpan registers a hook receiving every completed span.
func (r *Registry) OnSpan(h SpanHook) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	hooks := append(append([]SpanHook(nil), r.hooks.Load().([]SpanHook)...), h)
	r.hooks.Store(hooks)
	r.hasHooks.Store(true)
}

// StartSpan begins a traced operation; call End on the result. When the
// registry is nil or has no hooks this costs two loads and samples no
// clock.
func (r *Registry) StartSpan(name string) SpanEnd {
	if r == nil || !r.hasHooks.Load() {
		return SpanEnd{}
	}
	return SpanEnd{r: r, name: name, start: time.Now()} //cdc:allow(nodetermflow) span start stamp is observability metadata; it never reaches encoded bytes
}

// GaugeSnapshot is a gauge's captured state.
type GaugeSnapshot struct {
	// Value is the instantaneous value at capture.
	Value int64 `json:"value"`
	// Max is the high-water mark.
	Max int64 `json:"max"`
}

// HistogramSnapshot is a histogram's captured state.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// Sum is the total of observed values.
	Sum uint64 `json:"sum"`
	// Min and Max bound the observed values (both zero when Count is 0).
	Min uint64 `json:"min"`
	Max uint64 `json:"max"`
	// Bounds are the upper bucket bounds; Counts has one extra overflow
	// bucket.
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
}

// Mean returns the average observed value (zero when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) from the
// bucket counts: the bound of the first bucket at which the cumulative
// count reaches q·Count. Returns Max for the overflow bucket.
func (h HistogramSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of every instrument in a registry. It
// marshals to stable JSON (map keys sort) and unmarshals back losslessly.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's value from the snapshot (zero if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge's state from the snapshot (zero if absent).
func (s Snapshot) Gauge(name string) GaugeSnapshot { return s.Gauges[name] }

// Histogram returns a histogram's state from the snapshot (zero if
// absent).
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	return s.Histograms[name]
}

// Snapshot captures every instrument. A nil Registry yields an empty
// (but non-nil-map) Snapshot so callers can marshal it unconditionally.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}
