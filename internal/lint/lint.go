// Package lint is cdcreplay's repo-specific static analyzer. It enforces
// the invariants CDC's replayable-clock proof rests on but the compiler
// cannot see: the encode/decode/replay paths must produce byte-identical
// reference order between record and replay, which means they must be free
// of wall-clock reads, unseeded randomness, map-iteration-order leakage,
// swallowed durable-path errors, unguarded instrument access, copied locks,
// and stray panics. Each invariant is one Analyzer; cmd/cdclint runs them
// over the module and exits non-zero on findings.
//
// The framework is deliberately zero-dependency: packages are loaded with
// go/parser and typechecked with go/types, resolving module-local imports
// from source and standard-library imports through go/importer. go.mod
// stays require-free.
//
// Intentional violations are suppressed in source with a directive that
// demands a reason:
//
//	//cdc:allow(<check>) <reason>
//
// placed on the offending line or the line directly above it. panic calls
// that assert internal invariants are tagged //cdc:invariant instead (see
// directive.go). DESIGN.md §10 documents every check and the directive
// grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. File is relative to
// the module root so output is stable across checkouts.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one invariant check. Scope lists the module-relative package
// paths it applies to ("internal/core", "internal/..." for a subtree, "..."
// for every package); a nil Scope means every package.
type Analyzer struct {
	Name  string
	Doc   string
	Scope []string
	Run   func(*Pass)
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package path relative to the module root ("." for the
	// root package).
	RelPath string

	run      *run
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Check:   p.Analyzer.Name,
		File:    p.run.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Config adjusts a Run. The zero value uses each analyzer's default scope.
type Config struct {
	// Scopes overrides the package scope per check name. Patterns are
	// module-relative package paths; "..." matches everything and a
	// trailing "/..." matches a subtree.
	Scopes map[string][]string
}

// Analyzers returns the full analyzer set in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NodetermAnalyzer,
		MaporderAnalyzer,
		ErrsinkAnalyzer,
		ObsguardAnalyzer,
		LocksafeAnalyzer,
		PanicfreeAnalyzer,
	}
}

// CheckNames returns the names of every analyzer plus the directive
// pseudo-check, the vocabulary valid inside //cdc:allow(...).
func CheckNames() []string {
	names := []string{DirectiveCheck}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// run carries state shared by every pass of one Run call.
type run struct {
	root string
}

func (r *run) relFile(filename string) string {
	if rel, ok := strings.CutPrefix(filename, r.root+"/"); ok {
		return rel
	}
	return filename
}

// Run loads the packages matched by patterns under the module rooted at
// root, applies analyzers, filters suppressed findings, and returns the
// survivors sorted by position. Load or typecheck failures abort with an
// error rather than findings: the analyzers need well-typed input.
func Run(root string, patterns []string, analyzers []*Analyzer, cfg Config) ([]Finding, error) {
	root, _, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := Load(root, patterns)
	if err != nil {
		return nil, err
	}
	r := &run{root: root}

	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	var directives []Directive
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds, bad := ParseDirectives(pkg.Fset, file, known)
			directives = append(directives, ds...)
			for _, f := range bad {
				f.File = r.relFile(f.File)
				findings = append(findings, f)
			}
		}
		for _, a := range analyzers {
			scope := a.Scope
			if s, ok := cfg.Scopes[a.Name]; ok {
				scope = s
			}
			if !inScope(pkg.RelPath, scope) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				run:      r,
			}
			a.Run(pass)
			findings = append(findings, pass.findings...)
		}
	}

	findings = applySuppressions(findings, directives, r)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings, nil
}

// inScope reports whether a module-relative package path matches any scope
// pattern. A nil scope matches everything.
func inScope(relPath string, scope []string) bool {
	if scope == nil {
		return true
	}
	for _, pat := range scope {
		if pat == "..." || pat == relPath {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if relPath == sub || strings.HasPrefix(relPath, sub+"/") {
				return true
			}
		}
	}
	return false
}

// typeIsNamed reports whether t (after pointer indirection) is the named
// type pkgName.typeName. Matching by package *name* rather than full path
// keeps the analyzers honest on the fixture corpus, which re-declares
// skeleton packages under its own module path.
func typeIsNamed(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}
