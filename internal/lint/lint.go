// Package lint is cdcreplay's repo-specific static analyzer. It enforces
// the invariants CDC's replayable-clock proof rests on but the compiler
// cannot see: the encode/decode/replay paths must produce byte-identical
// reference order between record and replay, which means they must be free
// of wall-clock reads, unseeded randomness, map-iteration-order leakage,
// swallowed durable-path errors, unguarded instrument access, copied locks,
// and stray panics. Each invariant is one Analyzer; cmd/cdclint runs them
// over the module and exits non-zero on findings.
//
// The framework is deliberately zero-dependency: packages are loaded with
// go/parser and typechecked with go/types, resolving module-local imports
// from source and standard-library imports through go/importer. go.mod
// stays require-free.
//
// Intentional violations are suppressed in source with a directive that
// demands a reason:
//
//	//cdc:allow(<check>) <reason>
//
// placed on the offending line or the line directly above it. panic calls
// that assert internal invariants are tagged //cdc:invariant instead (see
// directive.go). DESIGN.md §10 documents every check and the directive
// grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cdcreplay/internal/lint/callgraph"
)

// Finding is one rule violation at a source position. File is relative to
// the module root so output is stable across checkouts.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Analyzer is one invariant check. Scope lists the module-relative package
// paths it applies to ("internal/core", "internal/..." for a subtree, "..."
// for every package); a nil Scope means every package.
//
// Exactly one of Run and RunModule is set. Run is the intra-procedural
// mode: called once per in-scope package. RunModule is the whole-program
// mode: called once with every loaded package and the module call graph;
// for these analyzers Scope restricts where findings are *reported* (the
// sink side), while the analysis universe is the whole module.
type Analyzer struct {
	Name      string
	Doc       string
	Scope     []string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass hands one package to one analyzer and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// RelPath is the package path relative to the module root ("." for the
	// root package).
	RelPath string

	run      *run
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Check:   p.Analyzer.Name,
		File:    p.run.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass hands the whole loaded module to one interprocedural
// analyzer: every package, the CHA call graph, and the suppression
// directives (so an analyzer can treat a reasoned //cdc:allow as a
// sanctioned source rather than taint).
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *callgraph.Graph

	scope    []string
	run      *run
	allowed  map[allowKey]bool
	findings []Finding
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.findings = append(p.findings, Finding{
		Check:   p.Analyzer.Name,
		File:    p.run.relFile(position.Filename),
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// InScope reports whether a module-relative package path is inside the
// analyzer's effective (possibly Config-overridden) scope.
func (p *ModulePass) InScope(relPath string) bool { return inScope(relPath, p.scope) }

// ScopedPkgs returns the loaded packages inside the effective scope.
func (p *ModulePass) ScopedPkgs() []*Package {
	var out []*Package
	for _, pkg := range p.Pkgs {
		if p.InScope(pkg.RelPath) {
			out = append(out, pkg)
		}
	}
	return out
}

// AllowedAt reports whether an //cdc:allow(check) directive covers pos
// (its own line or the line below, the same rule applySuppressions uses).
// Interprocedural analyzers use this to treat inventoried violations as
// sanctioned: a wall-clock read that carries a reasoned allow(nodeterm)
// must not re-surface as a taint source three call frames later.
func (p *ModulePass) AllowedAt(pos token.Pos, check string) bool {
	position := p.Fset.Position(pos)
	return p.allowed[allowKey{p.run.relFile(position.Filename), position.Line, check}]
}

// Rel converts a position to its module-relative file path.
func (p *ModulePass) Rel(pos token.Pos) string {
	return p.run.relFile(p.Fset.Position(pos).Filename)
}

// RelPosition renders pos as "file:line" relative to the module root, the
// form findings embed when citing a second location (e.g. the source end
// of a taint path).
func (p *ModulePass) RelPosition(pos token.Pos) string {
	position := p.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", p.run.relFile(position.Filename), position.Line)
}

// ShortName renders a function's qualified name with the module-path
// prefix stripped: "(*internal/record.Recorder).flush" instead of the
// full import path, keeping taint paths readable.
func (p *ModulePass) ShortName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), p.run.modPath+"/", "")
}

// PkgOf returns the loaded package a position belongs to, or nil.
func (p *ModulePass) PkgOf(pos token.Pos) *Package {
	file := p.Fset.Position(pos).Filename
	for _, pkg := range p.Pkgs {
		if strings.HasPrefix(file, pkg.Dir+"/") {
			return pkg
		}
	}
	return nil
}

// Config adjusts a Run. The zero value uses each analyzer's default scope.
type Config struct {
	// Scopes overrides the package scope per check name. Patterns are
	// module-relative package paths; "..." matches everything and a
	// trailing "/..." matches a subtree.
	Scopes map[string][]string
}

// Analyzers returns the full analyzer set in a fixed order: the six
// intra-procedural checks from the original framework, then the three
// interprocedural checks built on the call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NodetermAnalyzer,
		MaporderAnalyzer,
		ErrsinkAnalyzer,
		ObsguardAnalyzer,
		LocksafeAnalyzer,
		PanicfreeAnalyzer,
		NodetermflowAnalyzer,
		LockorderAnalyzer,
		LeakcheckAnalyzer,
	}
}

// SelectAnalyzers resolves a comma-separated -check list against the full
// set; an empty list selects everything. Unknown names are an error, so a
// typo cannot silently disable enforcement.
func SelectAnalyzers(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if strings.TrimSpace(list) == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (run -list for the set)", name)
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -check selected no analyzers")
	}
	return out, nil
}

// CheckNames returns the names of every analyzer plus the directive
// pseudo-check, the vocabulary valid inside //cdc:allow(...).
func CheckNames() []string {
	names := []string{DirectiveCheck}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// run carries state shared by every pass of one Run call.
type run struct {
	root    string
	modPath string
}

func (r *run) relFile(filename string) string {
	if rel, ok := strings.CutPrefix(filename, r.root+"/"); ok {
		return rel
	}
	return filename
}

// SortFindings orders findings by (file, line, col, check, message).
// The message tiebreak matters in multi-package runs: two findings from
// different analyzers (or CHA paths) can land on the same position, and
// without it the order would depend on package-load order — -json output
// and the self-check gate must be byte-stable instead.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Run loads the packages matched by patterns under the module rooted at
// root, applies analyzers, filters suppressed findings, and returns the
// survivors sorted by position. Packages that fail to parse or typecheck
// surface as LoadErrorCheck findings (and are excluded from analysis);
// only infrastructure failures — no go.mod, nothing matched — abort with
// an error.
func Run(root string, patterns []string, analyzers []*Analyzer, cfg Config) ([]Finding, error) {
	root, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	pkgs, findings, err := Load(root, patterns)
	if err != nil {
		return nil, err
	}
	r := &run{root: root, modPath: modPath}

	// Directive validation is against the full registry, not the selected
	// subset: running `cdclint -check leakcheck` must not flag every
	// //cdc:allow(errsink) in the tree as naming an unknown check.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}

	// Directives first: the interprocedural passes consult them while
	// analyzing (a sanctioned source must not taint), so they cannot be
	// folded into the per-package analyzer loop.
	var directives []Directive
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds, bad := ParseDirectives(pkg.Fset, file, known)
			directives = append(directives, ds...)
			for _, f := range bad {
				f.File = r.relFile(f.File)
				findings = append(findings, f)
			}
		}
	}
	allowed := buildAllowed(directives, r)

	effectiveScope := func(a *Analyzer) []string {
		if s, ok := cfg.Scopes[a.Name]; ok {
			return s
		}
		return a.Scope
	}

	var moduleAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
			continue
		}
		for _, pkg := range pkgs {
			if !inScope(pkg.RelPath, effectiveScope(a)) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				RelPath:  pkg.RelPath,
				run:      r,
			}
			a.Run(pass)
			findings = append(findings, pass.findings...)
		}
	}

	if len(moduleAnalyzers) > 0 && len(pkgs) > 0 {
		fset := pkgs[0].Fset
		cgPkgs := make([]*callgraph.Pkg, len(pkgs))
		for i, p := range pkgs {
			cgPkgs[i] = &callgraph.Pkg{
				Path: p.Path, RelPath: p.RelPath, Files: p.Files, Types: p.Types, Info: p.Info,
			}
		}
		graph := callgraph.Build(fset, cgPkgs)
		for _, a := range moduleAnalyzers {
			mp := &ModulePass{
				Analyzer: a,
				Fset:     fset,
				Pkgs:     pkgs,
				Graph:    graph,
				scope:    effectiveScope(a),
				run:      r,
				allowed:  allowed,
			}
			a.RunModule(mp)
			findings = append(findings, mp.findings...)
		}
	}

	findings = applySuppressions(findings, allowed)
	SortFindings(findings)
	return findings, nil
}

// inScope reports whether a module-relative package path matches any scope
// pattern. A nil scope matches everything.
func inScope(relPath string, scope []string) bool {
	if scope == nil {
		return true
	}
	for _, pat := range scope {
		if pat == "..." || pat == relPath {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if relPath == sub || strings.HasPrefix(relPath, sub+"/") {
				return true
			}
		}
	}
	return false
}

// typeIsNamed reports whether t (after pointer indirection) is the named
// type pkgName.typeName. Matching by package *name* rather than full path
// keeps the analyzers honest on the fixture corpus, which re-declares
// skeleton packages under its own module path.
func typeIsNamed(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}
