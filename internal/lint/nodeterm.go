package lint

import (
	"go/ast"
)

// NodetermAnalyzer forbids wall-clock reads and unseeded randomness in the
// deterministic packages. The CDC record's bytes are replayed bit-for-bit
// (PAPER.md §4: the reference order reconstructed at replay must equal the
// recorded one), so nothing on the encode/decode path may depend on
// time.Now, time.Since/Until, or math/rand's global state — any such
// dependence would make record and replay disagree silently.
var NodetermAnalyzer = &Analyzer{
	Name: "nodeterm",
	Doc: "forbid time.Now/time.Since/time.Until and math/rand in the " +
		"deterministic encode/decode packages",
	Scope: []string{
		"internal/cdcformat",
		"internal/lpe",
		"internal/permdiff",
		"internal/varint",
		"internal/tables",
		"internal/lamport",
		"internal/core",
		"internal/feed",
	},
	Run: runNodeterm,
}

// nodetermClockFuncs are the wall-clock entry points in package time.
// time.Duration arithmetic and constants are fine — only sampling the
// clock is a hazard.
var nodetermClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runNodeterm(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if nodetermClockFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in deterministic package %s: record/replay bytes must not depend on the wall clock",
						obj.Name(), pass.RelPath)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"%s.%s in deterministic package %s: encode/decode must not consume nondeterministic randomness",
					obj.Pkg().Name(), obj.Name(), pass.RelPath)
			}
			return true
		})
	}
}
