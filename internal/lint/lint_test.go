package lint_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cdcreplay/internal/lint"
)

// fixtureConfig scopes each analyzer to its fixture package so the corpus
// packages don't trip one another's checks.
func fixtureConfig() lint.Config {
	return lint.Config{Scopes: map[string][]string{
		"nodeterm":  {"nodeterm"},
		"maporder":  {"maporder"},
		"errsink":   {"errsink"},
		"obsguard":  {"obsguard", "obs"},
		"locksafe":  {"locksafe"},
		"panicfree": {"panicfree"},
		// Interprocedural analyzers: scoped to their own fixture package;
		// helper packages (e.g. nodetermflow/ndhelp) stay outside every
		// scope so only call-graph reasoning can see into them.
		"nodetermflow": {"nodetermflow"},
		"lockorder":    {"lockorder"},
		"leakcheck":    {"leakcheck"},
	}}
}

func runFixtures(t *testing.T) []lint.Finding {
	t.Helper()
	findings, err := lint.Run(filepath.Join("testdata", "src", "fixture"), []string{"./..."}, lint.Analyzers(), fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return findings
}

// wantRe matches expectation markers in fixture files: `// want "substr"`,
// optionally with several quoted substrings.
var wantRe = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

var quoteRe = regexp.MustCompile(`"([^"]*)"`)

type wantKey struct {
	file string
	line int
}

// loadWants scans the fixture tree for want markers keyed by file:line.
func loadWants(t *testing.T, root string) map[wantKey][]string {
	t.Helper()
	wants := make(map[wantKey][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			key := wantKey{filepath.ToSlash(rel), i + 1}
			for _, q := range quoteRe.FindAllStringSubmatch(m[1], -1) {
				wants[key] = append(wants[key], q[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("loadWants: %v", err)
	}
	return wants
}

// TestFixtureCorpus runs every analyzer over the golden fixture module and
// checks findings against the `// want` markers: every marker must be hit
// and no unmarked finding may appear (suppressed and negative cases carry
// no marker).
func TestFixtureCorpus(t *testing.T) {
	findings := runFixtures(t)
	if len(findings) == 0 {
		t.Fatal("fixture corpus produced no findings; cdclint must exit non-zero on it")
	}
	wants := loadWants(t, filepath.Join("testdata", "src", "fixture"))
	if len(wants) == 0 {
		t.Fatal("no want markers found in fixtures")
	}

	for _, f := range findings {
		if f.File == "" || f.Line == 0 {
			t.Errorf("finding without file:line position: %+v", f)
			continue
		}
		key := wantKey{f.File, f.Line}
		matched := -1
		for i, substr := range wants[key] {
			if strings.Contains(f.Message, substr) || strings.Contains(f.Check, substr) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
		if len(wants[key]) == 0 {
			delete(wants, key)
		}
	}
	for key, substrs := range wants {
		for _, s := range substrs {
			t.Errorf("expected finding at %s:%d matching %q, got none", key.file, key.line, s)
		}
	}
}

// TestFindingsDeterministicOrder pins satellite invariant: Run's output is
// byte-stable regardless of package-load order, because findings are
// sorted by (file, line, col, check, message) — repeated runs must agree
// exactly.
func TestFindingsDeterministicOrder(t *testing.T) {
	first := runFixtures(t)
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message <= b.Message
	}) {
		t.Error("findings are not in (file, line, col, check, message) order")
	}
	for run := 0; run < 3; run++ {
		again := runFixtures(t)
		if len(again) != len(first) {
			t.Fatalf("run %d produced %d findings, first run %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d finding %d differs: %v != %v", run, i, again[i], first[i])
			}
		}
	}
}

// TestFixtureFindingsFormat pins the human-readable rendering: file:line:col
// prefix plus the check tag, which is what CI logs and editors parse.
func TestFixtureFindingsFormat(t *testing.T) {
	findings := runFixtures(t)
	lineRe := regexp.MustCompile(`^[^:]+\.go:\d+:\d+: \[[a-z]+\] .+`)
	for _, f := range findings {
		if !lineRe.MatchString(f.String()) {
			t.Errorf("finding does not render as file:line:col: [check] message: %q", f.String())
		}
	}
}

// TestReportJSON pins the -json envelope: {count, findings}, findings
// always an array.
func TestReportJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatalf("WriteJSON(nil): %v", err)
	}
	var empty struct {
		Count    int            `json:"count"`
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatalf("unmarshal empty report: %v", err)
	}
	if empty.Count != 0 || empty.Findings == nil || len(empty.Findings) != 0 {
		t.Fatalf("empty report = %+v, want count 0 and empty (non-null) findings", empty)
	}

	findings := runFixtures(t)
	buf.Reset()
	if err := lint.WriteJSON(&buf, findings); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got struct {
		Count    int            `json:"count"`
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if got.Count != len(findings) || len(got.Findings) != len(findings) {
		t.Fatalf("report count %d/%d, want %d", got.Count, len(got.Findings), len(findings))
	}
	if got.Findings[0] != findings[0] {
		t.Fatalf("JSON round-trip changed finding: %+v != %+v", got.Findings[0], findings[0])
	}
}

// TestScopeRestriction checks that an analyzer scoped away from a package
// reports nothing there even when violations exist.
func TestScopeRestriction(t *testing.T) {
	cfg := fixtureConfig()
	cfg.Scopes["nodeterm"] = []string{"maporder"} // nodeterm fixture now out of scope
	findings, err := lint.Run(filepath.Join("testdata", "src", "fixture"), []string{"./..."}, lint.Analyzers(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		if f.Check == "nodeterm" {
			t.Errorf("nodeterm finding outside its scope: %s", f)
		}
	}
}
