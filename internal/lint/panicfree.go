package lint

import (
	"go/ast"
	"go/types"
)

// PanicfreeAnalyzer forbids panic in library packages. A panic in the
// recorder or replayer tears down the application being traced — the
// opposite of the facade's contract that every failure surfaces as an
// error (Recorder.Err, typed OptionError). Deliberate internal-invariant
// assertions ("this cannot happen unless the encoder itself is broken")
// are tagged //cdc:invariant, which both suppresses the finding and marks
// the site for auditors. Package main binaries may panic freely.
var PanicfreeAnalyzer = &Analyzer{
	Name: "panicfree",
	Doc: "forbid panic in library packages unless tagged //cdc:invariant " +
		"(library failures must surface as errors)",
	Run: runPanicfree,
}

func runPanicfree(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(),
					"panic in library package %s: return an error, or tag an internal-invariant assertion with //cdc:invariant",
					pass.RelPath)
			}
			return true
		})
	}
}
