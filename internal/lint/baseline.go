package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Baseline is the ratchet: a committed inventory of grandfathered
// findings. A finding that matches a baseline entry does not fail the
// run; a finding that doesn't is "fresh" and fails; a baseline entry no
// longer produced by the analyzers is "stale" and should be removed.
// The ratchet only turns one way — WriteShrunkBaseline never adds
// entries, it only drops stale ones — so the finding count can fall but
// not silently rise. New grandfathered entries require a hand edit,
// which code review sees.
//
// Matching is by (check, file, message) with multiplicity, not by line:
// an unrelated edit that shifts a grandfathered finding ten lines down
// must not break the build, while a second identical finding in the same
// file must.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding. Line is recorded for the
// human reading the file but ignored when matching.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// baselineVersion guards the file format.
const baselineVersion = 1

// BaselineName is the conventional baseline filename at the module root,
// used by the CLI when no -baseline flag is given.
const BaselineName = "lint.baseline.json"

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error: the ratchet starts at zero.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

type baselineKey struct {
	check, file, message string
}

// Apply splits findings into fresh ones (not covered by the baseline,
// these fail the run) and returns the stale baseline entries (no longer
// produced, the baseline should shrink). Grandfathered findings are
// dropped. Multiplicity counts: a baseline entry absorbs exactly one
// matching finding.
func (b *Baseline) Apply(findings []Finding) (fresh []Finding, stale []BaselineEntry) {
	budget := make(map[baselineKey]int)
	for _, e := range b.Entries {
		budget[baselineKey{e.Check, e.File, e.Message}]++
	}
	for _, f := range findings {
		k := baselineKey{f.Check, f.File, f.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		fresh = append(fresh, f)
	}
	for _, e := range b.Entries {
		k := baselineKey{e.Check, e.File, e.Message}
		if budget[k] > 0 {
			budget[k]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}

// Shrink returns the baseline minus its stale entries: the only
// mutation the ratchet permits. Adding entries is a hand edit by design.
func (b *Baseline) Shrink(findings []Finding) *Baseline {
	_, stale := b.Apply(findings)
	staleCount := make(map[baselineKey]int)
	for _, e := range stale {
		staleCount[baselineKey{e.Check, e.File, e.Message}]++
	}
	out := &Baseline{Version: baselineVersion}
	for _, e := range b.Entries {
		k := baselineKey{e.Check, e.File, e.Message}
		if staleCount[k] > 0 {
			staleCount[k]--
			continue
		}
		out.Entries = append(out.Entries, e)
	}
	if out.Entries == nil {
		out.Entries = []BaselineEntry{}
	}
	return out
}

// WriteBaseline serializes a baseline deterministically (two-space
// indent, entries in the order given — callers pass sorted findings).
func WriteBaseline(w io.Writer, b *Baseline) error {
	if b.Entries == nil {
		b.Entries = []BaselineEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// NewBaseline builds a baseline that grandfathers exactly the given
// findings. Used to seed the ratchet; after that, only Shrink.
func NewBaseline(findings []Finding) *Baseline {
	b := &Baseline{Version: baselineVersion, Entries: []BaselineEntry{}}
	for _, f := range findings {
		b.Entries = append(b.Entries, BaselineEntry{
			Check: f.Check, File: f.File, Line: f.Line, Message: f.Message,
		})
	}
	return b
}
