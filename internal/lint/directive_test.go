package lint_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"cdcreplay/internal/lint"
)

func parseDirectives(t *testing.T, src string) ([]lint.Directive, []lint.Finding) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	known := map[string]bool{"nodeterm": true, "errsink": true}
	return lint.ParseDirectives(fset, file, known)
}

func TestParseDirectivesValid(t *testing.T) {
	src := `package p

//cdc:allow(nodeterm) telemetry only, never serialized
var a int

func f() {
	_ = a //cdc:allow(errsink) best-effort cleanup
	//cdc:invariant encoder guarantees this
	//cdc:invariant
}
`
	ds, bad := parseDirectives(t, src)
	if len(bad) != 0 {
		t.Fatalf("valid directives produced findings: %v", bad)
	}
	if len(ds) != 4 {
		t.Fatalf("got %d directives, want 4: %+v", len(ds), ds)
	}
	if ds[0].Kind != "allow" || ds[0].Check != "nodeterm" || ds[0].Reason != "telemetry only, never serialized" || ds[0].Line != 3 {
		t.Errorf("directive 0 = %+v", ds[0])
	}
	if ds[1].Kind != "allow" || ds[1].Check != "errsink" || ds[1].Reason != "best-effort cleanup" || ds[1].Line != 7 {
		t.Errorf("directive 1 = %+v", ds[1])
	}
	if ds[2].Kind != "invariant" || ds[2].Reason != "encoder guarantees this" {
		t.Errorf("directive 2 = %+v", ds[2])
	}
	if ds[3].Kind != "invariant" || ds[3].Reason != "" {
		t.Errorf("directive 3 = %+v", ds[3])
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantMsg string
	}{
		{"missing parens", "//cdc:allow nodeterm because", "malformed //cdc:allow"},
		{"no close paren", "//cdc:allow(nodeterm because", "malformed //cdc:allow"},
		{"missing reason", "//cdc:allow(nodeterm)", "missing its reason"},
		{"blank reason", "//cdc:allow(errsink)   ", "missing its reason"},
		{"unknown check", "//cdc:allow(bogus) some reason", `unknown check "bogus"`},
		{"empty check", "//cdc:allow() some reason", `unknown check ""`},
		{"unknown verb", "//cdc:frobnicate", "unknown cdc directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\n" + tc.comment + "\nvar x int\n"
			ds, bad := parseDirectives(t, src)
			if len(ds) != 0 {
				t.Errorf("malformed directive parsed as valid: %+v", ds)
			}
			if len(bad) != 1 {
				t.Fatalf("got %d findings, want 1: %v", len(bad), bad)
			}
			if bad[0].Check != lint.DirectiveCheck {
				t.Errorf("finding check = %q, want %q", bad[0].Check, lint.DirectiveCheck)
			}
			if !strings.Contains(bad[0].Message, tc.wantMsg) {
				t.Errorf("finding %q does not mention %q", bad[0].Message, tc.wantMsg)
			}
			if bad[0].Line != 3 {
				t.Errorf("finding line = %d, want 3", bad[0].Line)
			}
		})
	}
}

// TestParseDirectivesIgnoresOrdinaryComments checks that non-cdc comments
// never parse as directives or findings.
func TestParseDirectivesIgnoresOrdinaryComments(t *testing.T) {
	src := `package p

// cdc:allow(nodeterm) leading space means plain prose, not a directive
// just a comment mentioning time.Now
var x int
`
	ds, bad := parseDirectives(t, src)
	if len(ds) != 0 || len(bad) != 0 {
		t.Fatalf("ordinary comments parsed as directives: %+v %+v", ds, bad)
	}
}
