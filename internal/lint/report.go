package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in file:line:col form, followed
// by a count. Writes nothing for an empty slice.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	if len(findings) > 0 {
		if _, err := fmt.Fprintf(w, "cdclint: %d finding(s)\n", len(findings)); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the stable -json envelope: the finding list plus a count,
// so `jq .count` works even when findings is empty.
type jsonReport struct {
	Count    int       `json:"count"`
	Findings []Finding `json:"findings"`
}

// WriteJSON renders findings as a JSON object {count, findings}. The
// findings array is always present (empty, not null) so consumers can
// iterate unconditionally.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Count: len(findings), Findings: findings})
}
