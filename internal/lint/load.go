package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	// Path is the full import path; RelPath is relative to the module root
	// ("." for the root package).
	Path    string
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// FindModuleRoot walks up from dir to the directory containing go.mod and
// returns that directory plus the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadErrorCheck is the pseudo-check name under which packages that fail
// to parse or typecheck are reported. A broken package must be a finding
// (and a distinct exit status in the CLI), never a silent skip: an
// analyzer that did not see a package enforces nothing there.
const LoadErrorCheck = "loaderror"

// Load parses and typechecks the packages under the module rooted at root
// that match patterns ("./..." for all, "./dir/..." for a subtree, "./dir"
// or "dir" for one package). Test files and testdata/vendor/hidden
// directories are skipped: the invariants police shipping code, and
// external test packages would need a second typecheck universe.
//
// Packages that fail to parse or typecheck are excluded from the result
// and surfaced as LoadErrorCheck findings (positions relative to root)
// rather than aborting the whole run; packages that import a broken
// package cascade into their own load findings. The error return is
// reserved for infrastructure failures: no go.mod, unreadable
// directories, patterns matching nothing.
func Load(root string, patterns []string) ([]*Package, []Finding, error) {
	root, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, nil, err
	}
	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		broken:  make(map[string]bool),
	}
	ld.std = &stdImporter{fset: ld.fset, cache: make(map[string]*types.Package)}

	dirs, err := matchPatterns(root, patterns)
	if err != nil {
		return nil, nil, err
	}
	var out []*Package
	for _, rel := range dirs {
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + rel
		}
		pkg, err := ld.loadLocal(importPath)
		if err != nil {
			// loadLocal records the detailed findings itself; the error
			// only signals "do not analyze this package".
			continue
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	SortFindings(ld.findings)
	return out, ld.findings, nil
}

// matchPatterns expands CLI-style package patterns into sorted
// module-relative directories that contain non-test Go files.
func matchPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	set := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if sub, ok := strings.CutSuffix(pat, "..."); ok {
			sub = strings.TrimSuffix(sub, "/")
			if sub == "" {
				sub = "."
			}
			base := filepath.Join(root, sub)
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					rel, err := filepath.Rel(root, path)
					if err != nil {
						return err
					}
					set[filepath.ToSlash(rel)] = true
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(root, pat)
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		set[filepath.ToSlash(rel)] = true
	}
	dirs := make([]string, 0, len(set))
	for d := range set { //cdc:allow(maporder) dirs are sorted immediately below
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loader typechecks module-local packages from source, memoized by import
// path, resolving their imports recursively through itself (module-local)
// or the stdlib importer (everything else — go.mod is require-free, so
// everything else is the standard library).
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	// broken marks packages that failed to parse or typecheck; their
	// findings live in findings and importers of a broken package fail
	// in turn (cascading into their own load findings).
	broken   map[string]bool
	findings []Finding
}

// reportLoadError records one load failure as a finding. err may be a
// types.Error or scanner.ErrorList carrying positions; anything else is
// anchored at the package directory.
func (l *loader) reportLoadError(importPath string, pos token.Position, msg string) {
	file := pos.Filename
	if rel, err := filepath.Rel(l.root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	l.findings = append(l.findings, Finding{
		Check:   LoadErrorCheck,
		File:    file,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf("package %s failed to load: %s", importPath, msg),
	})
}

// Import implements types.Importer for the typechecker.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadLocal parses and typechecks one module-local package. Returns
// (nil, nil) for directories with no non-test Go files; a package that
// fails to parse or typecheck is memoized as broken, its errors recorded
// as LoadErrorCheck findings, and a plain error returned so importers
// cascade instead of analyzing half-typed code.
func (l *loader) loadLocal(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.broken[importPath] {
		return nil, fmt.Errorf("lint: package %s failed to load", importPath)
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := "."
	if importPath != l.modPath {
		rel = strings.TrimPrefix(importPath, l.modPath+"/")
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.broken[importPath] = true
			l.reportLoadError(importPath, parseErrorPosition(err, dir, name), err.Error())
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[importPath] = nil
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// Collect every type error with its position instead of stopping at
	// the first: a broken package should read like a compiler run, capped
	// so one rotten file does not flood the report.
	var typeErrs []types.Error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				typeErrs = append(typeErrs, te)
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil || len(typeErrs) > 0 {
		l.broken[importPath] = true
		const maxErrs = 3
		for i, te := range typeErrs {
			if i == maxErrs {
				l.reportLoadError(importPath, l.fset.Position(te.Pos),
					fmt.Sprintf("... and %d more errors", len(typeErrs)-maxErrs))
				break
			}
			l.reportLoadError(importPath, l.fset.Position(te.Pos), te.Msg)
		}
		if len(typeErrs) == 0 {
			l.reportLoadError(importPath, token.Position{Filename: dir}, err.Error())
		}
		return nil, fmt.Errorf("lint: typecheck %s failed", importPath)
	}
	pkg := &Package{
		Path:    importPath,
		RelPath: rel,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseErrorPosition extracts the first position from a parser error
// (scanner.ErrorList), falling back to the file itself.
func parseErrorPosition(err error, dir, name string) token.Position {
	if list, ok := err.(scanner.ErrorList); ok && len(list) > 0 {
		return list[0].Pos
	}
	return token.Position{Filename: filepath.Join(dir, name), Line: 1, Column: 1}
}

// stdImporter resolves standard-library packages: compiled export data
// first (fast), falling back to typechecking the stdlib from GOROOT source
// for toolchains that ship without installed .a files.
type stdImporter struct {
	fset  *token.FileSet
	gc    types.Importer
	src   types.Importer
	cache map[string]*types.Package
}

func (s *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := s.cache[path]; ok {
		return pkg, nil
	}
	if s.gc == nil {
		s.gc = importer.ForCompiler(s.fset, "gc", nil)
	}
	pkg, err := s.gc.Import(path)
	if err != nil {
		if s.src == nil {
			s.src = importer.ForCompiler(s.fset, "source", nil)
		}
		pkg, err = s.src.Import(path)
		if err != nil {
			return nil, fmt.Errorf("lint: import %q: %w", path, err)
		}
	}
	s.cache[path] = pkg
	return pkg, nil
}
