package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"cdcreplay/internal/lint/callgraph"
)

// LeakcheckAnalyzer reports two goroutine-hygiene hazards the race
// detector cannot see (a leaked goroutine races with nothing; it just
// never dies):
//
//  1. A `go` statement whose spawned computation — the literal body plus
//     everything reachable from it through the call graph — runs an
//     unconditional `for {}` loop containing no visible stop signal: no
//     select, channel receive, channel range, context.Done/Err, and no
//     loop exit (return/break), neither directly in the loop body nor
//     inside a module function the loop calls. Such a goroutine can
//     never be shut down; under cdcd's multi-tenant churn each leaked
//     worker is memory pinned until process exit.
//
//  2. A channel (package-level var, struct field, or local) that is sent
//     on somewhere in the module but never received from anywhere in it:
//     every sender eventually blocks forever. Channels that escape the
//     analysis (passed to a function, returned, aliased, stored into a
//     container) are skipped rather than guessed about.
//
// Intentional cases — a daemon loop stopped by process exit, a channel
// drained only by test code — carry //cdc:allow(leakcheck) <reason>.
var LeakcheckAnalyzer = &Analyzer{
	Name: "leakcheck",
	Doc: "flag goroutines spawned with no reachable stop signal and " +
		"channels sent on but never drained anywhere in the module",
	Scope: []string{
		"internal/...",
		"cmd/...",
		"cdc",
	},
	RunModule: runLeakcheck,
}

func runLeakcheck(p *ModulePass) {
	lc := &leakChecker{p: p, signal: make(map[*callgraph.Node]int)}
	for _, pkg := range p.ScopedPkgs() {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lc.checkGoStmt(pkg, gs)
				return true
			})
		}
	}
	lc.checkChannels()
}

type leakChecker struct {
	p *ModulePass
	// signal memoizes funcHasBlockingSignal: 0 unknown, 1 in-progress or
	// false, 2 true.
	signal map[*callgraph.Node]int
}

// checkGoStmt inspects one goroutine launch for an unstoppable loop.
func (lc *leakChecker) checkGoStmt(pkg *Package, gs *ast.GoStmt) {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		if pos := lc.unstoppedLoop(pkg.Info, lit.Body); pos != token.NoPos {
			lc.reportLoop(gs, pos, "in the spawned literal")
		}
		// Named functions called from the literal are roots too: the
		// loop may live one frame down.
		lc.checkCalledFrom(gs, pkg.Info, lit.Body)
		return
	}
	// go f(...) / go recv.m(...): resolve and scan the target.
	if fn := goTargetFunc(pkg.Info, gs.Call); fn != nil {
		if node := lc.p.Graph.Node(fn); node != nil {
			lc.checkSpawnedNode(gs, node, make(map[*callgraph.Node]bool))
		}
	}
}

// checkCalledFrom scans the top-level module calls of a spawned literal
// and treats each as a spawned root.
func (lc *leakChecker) checkCalledFrom(gs *ast.GoStmt, info *types.Info, body *ast.BlockStmt) {
	visited := make(map[*callgraph.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := goTargetFunc(info, call); fn != nil {
			if node := lc.p.Graph.Node(fn); node != nil {
				lc.checkSpawnedNode(gs, node, visited)
			}
		}
		return true
	})
}

// checkSpawnedNode looks for an unstopped loop in node's body and then in
// everything it statically calls.
func (lc *leakChecker) checkSpawnedNode(gs *ast.GoStmt, node *callgraph.Node, visited map[*callgraph.Node]bool) {
	if visited[node] || !node.Local() || node.Pkg == nil {
		return
	}
	visited[node] = true
	if pos := lc.unstoppedLoop(node.Pkg.Info, node.Decl.Body); pos != token.NoPos {
		lc.reportLoop(gs, pos, "in "+lc.p.ShortName(node.Func))
		return
	}
	for _, e := range node.Out {
		if e.Kind == callgraph.KindRef || e.Go || !e.Callee.Local() {
			continue
		}
		lc.checkSpawnedNode(gs, e.Callee, visited)
	}
}

func (lc *leakChecker) reportLoop(gs *ast.GoStmt, loopPos token.Pos, where string) {
	lc.p.Reportf(gs.Pos(),
		"goroutine runs an unconditional for-loop with no stop signal (%s, loop at %s): no select, channel receive/range, context, or loop exit is reachable, so it can never be shut down",
		where, lc.p.RelPosition(loopPos))
}

// goTargetFunc resolves `go f()` / `go x.m()` to the target function.
func goTargetFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// unstoppedLoop finds the first `for {}` (or `for ;; {}`) loop in body
// whose body contains no stop signal and no loop exit, directly or
// through a module call. Nested function literals are separate
// computations and are not entered.
func (lc *leakChecker) unstoppedLoop(info *types.Info, body *ast.BlockStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !lc.loopHasStop(info, n.Body) {
				found = n.Pos()
				return false
			}
		}
		return true
	})
	return found
}

// loopHasStop reports whether a loop body contains a stop signal or exit:
// select, receive, channel range, break/return/goto, panic, a context or
// WaitGroup call, or a call into a module function that itself blocks on
// a channel or context (transitively).
func (lc *leakChecker) loopHasStop(info *types.Info, body *ast.BlockStmt) bool {
	stop := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			stop = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				stop = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					stop = true
				}
			}
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				stop = true
			}
		case *ast.ReturnStmt:
			stop = true
		case *ast.CallExpr:
			if callIsStopSignal(info, n) {
				stop = true
				return false
			}
			if fn := goTargetFunc(info, n); fn != nil {
				if node := lc.p.Graph.Node(fn); node != nil && node.Local() {
					if lc.funcHasBlockingSignal(node) {
						stop = true
						return false
					}
				}
			}
		}
		return !stop
	})
	return stop
}

// callIsStopSignal recognizes direct stop/terminate calls: context
// methods, WaitGroup waits, panic, runtime.Goexit, os.Exit, log.Fatal*.
func callIsStopSignal(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok && obj.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "context":
			return true
		case "runtime":
			return obj.Name() == "Goexit"
		case "os":
			return obj.Name() == "Exit"
		case "log":
			return obj.Name() == "Fatal" || obj.Name() == "Fatalf" || obj.Name() == "Fatalln"
		case "sync":
			// WaitGroup.Wait blocks until peers finish; Cond.Wait blocks
			// until signaled — both are coordination, not spin.
			return obj.Name() == "Wait"
		}
	}
	return false
}

// funcHasBlockingSignal reports whether a module function's body (or a
// static callee's, transitively) contains a channel receive, channel
// range, select, or context call — the signals that make a caller's
// `for { f() }` loop stoppable-by-peer rather than a pure spin.
func (lc *leakChecker) funcHasBlockingSignal(node *callgraph.Node) bool {
	switch lc.signal[node] {
	case 1:
		return false // in progress (cycle) or known false
	case 2:
		return true
	}
	lc.signal[node] = 1
	if !node.Local() || node.Pkg == nil {
		return false
	}
	has := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if has {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			has = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				has = true
			}
		case *ast.RangeStmt:
			if tv, ok := node.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					has = true
				}
			}
		case *ast.CallExpr:
			if callIsStopSignal(node.Pkg.Info, n) {
				has = true
			}
		}
		return !has
	})
	if !has {
		for _, e := range node.Out {
			if e.Kind == callgraph.KindRef || e.Go || !e.Callee.Local() {
				continue
			}
			if lc.funcHasBlockingSignal(e.Callee) {
				has = true
				break
			}
		}
	}
	if has {
		lc.signal[node] = 2
	}
	return has
}

// chanUse accumulates module-wide evidence about one channel object.
type chanUse struct {
	v     *types.Var
	sends int
	recvs int
	// fresh is set when the variable is seen bound to make(chan ...):
	// only then does its send/receive census describe one channel object.
	// Params, fields, and vars assigned from other expressions alias
	// channels counted elsewhere and are never reported.
	fresh     bool
	escapes   bool
	firstSend token.Pos
}

// checkChannels finds channels with senders but no receiver anywhere in
// the module. The universe is every loaded package (a channel owned by a
// scoped package may be drained elsewhere); findings are reported only
// inside the scope.
func (lc *leakChecker) checkChannels() {
	p := lc.p
	uses := make(map[*types.Var]*chanUse)
	consumed := make(map[*ast.Ident]bool)

	chanVar := func(info *types.Info, expr ast.Expr) (*types.Var, *ast.Ident) {
		for {
			if pe, ok := expr.(*ast.ParenExpr); ok {
				expr = pe.X
				continue
			}
			break
		}
		var id *ast.Ident
		switch e := expr.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return nil, nil
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			if v, ok = info.Defs[id].(*types.Var); !ok {
				return nil, nil
			}
		}
		if v.Pkg() == nil {
			return nil, nil
		}
		if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
			return nil, nil
		}
		return v, id
	}
	record := func(v *types.Var) *chanUse {
		cu := uses[v]
		if cu == nil {
			cu = &chanUse{v: v}
			uses[v] = cu
		}
		return cu
	}
	// isMakeChan reports whether expr allocates a fresh channel.
	isMakeChan := func(info *types.Info, expr ast.Expr) bool {
		call, ok := expr.(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[fun].(*types.Builtin)
		return ok && b.Name() == "make"
	}
	// markAlias flags a channel variable bound to a value that is not a
	// fresh make(chan): it aliases a channel counted under another
	// variable, so its own send/receive census proves nothing.
	markAlias := func(info *types.Info, lhs []ast.Expr, rhs []ast.Expr) {
		for i, l := range lhs {
			v, id := chanVar(info, l)
			if v == nil {
				continue
			}
			consumed[id] = true
			if len(rhs) == len(lhs) && isMakeChan(info, rhs[i]) {
				record(v).fresh = true
			} else {
				record(v).escapes = true
			}
		}
	}

	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if v, id := chanVar(info, n.Chan); v != nil {
						cu := record(v)
						cu.sends++
						if cu.firstSend == token.NoPos {
							cu.firstSend = n.Pos()
						}
						consumed[id] = true
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if v, id := chanVar(info, n.X); v != nil {
							record(v).recvs++
							consumed[id] = true
						}
					}
				case *ast.RangeStmt:
					if v, id := chanVar(info, n.X); v != nil {
						record(v).recvs++
						consumed[id] = true
					}
				case *ast.CallExpr:
					if fun, ok := n.Fun.(*ast.Ident); ok {
						if obj, isB := info.Uses[fun].(*types.Builtin); isB {
							switch obj.Name() {
							case "close", "len", "cap":
								if len(n.Args) == 1 {
									if _, id := chanVar(info, n.Args[0]); id != nil {
										consumed[id] = true
									}
								}
							}
						}
					}
				case *ast.AssignStmt:
					// Writing the channel variable consumes the LHS
					// mention; binding it to anything but make(chan ...)
					// marks it as an alias. The RHS stays subject to
					// escape analysis.
					markAlias(info, n.Lhs, n.Rhs)
				case *ast.ValueSpec:
					lhs := make([]ast.Expr, len(n.Names))
					for i, name := range n.Names {
						lhs[i] = name
					}
					if len(n.Values) > 0 {
						markAlias(info, lhs, n.Values)
					} else {
						// var ch chan T with no initializer: the nil
						// declaration itself is a consumed mention.
						for _, l := range lhs {
							if _, id := chanVar(info, l); id != nil {
								consumed[id] = true
							}
						}
					}
				case *ast.BinaryExpr:
					// Nil checks don't leak the value.
					if n.Op == token.EQL || n.Op == token.NEQ {
						if isNilExprIdent(info, n.Y) {
							if _, id := chanVar(info, n.X); id != nil {
								consumed[id] = true
							}
						}
						if isNilExprIdent(info, n.X) {
							if _, id := chanVar(info, n.Y); id != nil {
								consumed[id] = true
							}
						}
					}
				}
				return true
			})
		}
	}

	// Escape pass: any mention of a tracked channel outside the consumed
	// contexts (argument, return, alias, container element, field init)
	// makes its use-set unknowable — skip it.
	for _, pkg := range p.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || consumed[id] {
					return true
				}
				v, isVar := info.Uses[id].(*types.Var)
				if !isVar {
					return true
				}
				if cu, tracked := uses[v]; tracked {
					cu.escapes = true
				}
				return true
			})
		}
	}

	var vars []*chanUse
	for _, cu := range uses { //cdc:allow(maporder) sorted by position below
		vars = append(vars, cu)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].firstSend < vars[j].firstSend })
	for _, cu := range vars {
		if !cu.fresh || cu.sends == 0 || cu.recvs > 0 || cu.escapes {
			continue
		}
		pkg := p.PkgOf(cu.firstSend)
		if pkg == nil || !p.InScope(pkg.RelPath) {
			continue
		}
		p.Reportf(cu.firstSend,
			"channel %s is sent on here but never received from anywhere in the module: senders block forever once the buffer fills",
			cu.v.Name())
	}
}

func isNilExprIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
