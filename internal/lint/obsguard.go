package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsguardAnalyzer enforces the two obs contracts from DESIGN.md §8.
//
// First, inside the obs package itself: every exported pointer-receiver
// method on an exported instrument type must check its receiver against
// nil before touching any field. The entire "instrumentation is free when
// disabled" design hands nil instruments to every pipeline layer and
// relies on each method being a one-pointer-check no-op; one unguarded
// method turns the disabled state into a crash on the hot path.
//
// Second, everywhere: registering the same instrument name twice in one
// function (two Registry.Counter/Gauge/Histogram calls with the same
// literal) silently aliases two conceptually distinct instruments into
// one, double-counting whichever is touched — almost always a copy-paste
// slip in a constructor.
var ObsguardAnalyzer = &Analyzer{
	Name: "obsguard",
	Doc: "require nil-receiver guards on obs instrument methods and flag " +
		"duplicate instrument-name registration",
	Run: runObsguard,
}

// obsRegistryMethods are the Registry accessors that create-or-fetch a
// named instrument.
var obsRegistryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runObsguard(pass *Pass) {
	inObs := pass.Pkg.Name() == "obs"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inObs {
				checkNilGuard(pass, fn)
			}
			checkDuplicateNames(pass, fn)
		}
	}
}

// checkNilGuard flags an exported pointer-receiver method on an exported
// type whose body dereferences the receiver before (or without) comparing
// it to nil.
func checkNilGuard(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Recv == nil || len(fn.Recv.List) != 1 {
		return
	}
	recv := fn.Recv.List[0]
	star, ok := recv.Type.(*ast.StarExpr)
	if !ok {
		return
	}
	typeName, ok := star.X.(*ast.Ident)
	if !ok || !typeName.IsExported() {
		return
	}
	if len(recv.Names) != 1 {
		return
	}
	recvObj := pass.Info.Defs[recv.Names[0]]
	if recvObj == nil {
		return
	}

	guardPos := token.NoPos
	derefPos := token.NoPos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if (isRecvIdent(pass, n.X, recvObj) && isNilIdent(pass, n.Y)) ||
				(isRecvIdent(pass, n.Y, recvObj) && isNilIdent(pass, n.X)) {
				if !guardPos.IsValid() {
					guardPos = n.Pos()
				}
				return false
			}
		case *ast.SelectorExpr:
			if isRecvIdent(pass, n.X, recvObj) && !derefPos.IsValid() {
				derefPos = n.Pos()
			}
		}
		return true
	})
	if derefPos.IsValid() && (!guardPos.IsValid() || guardPos > derefPos) {
		pass.Reportf(fn.Name.Pos(),
			"exported method (*%s).%s touches its receiver without a nil guard: obs instruments must be no-ops when nil (DESIGN.md §8)",
			typeName.Name, fn.Name.Name)
	}
}

func isRecvIdent(pass *Pass, e ast.Expr, recvObj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.Info.Uses[id] == recvObj
}

func isNilIdent(pass *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkDuplicateNames flags two registrations of the same literal
// instrument name through the same Registry accessor within one function.
func checkDuplicateNames(pass *Pass, fn *ast.FuncDecl) {
	seen := make(map[string]token.Pos)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !obsRegistryMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		selection, ok := pass.Info.Selections[sel]
		if !ok || !typeIsNamed(selection.Recv(), "obs", "Registry") {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		key := sel.Sel.Name + "/" + lit.Value
		if prev, dup := seen[key]; dup {
			pass.Reportf(call.Pos(),
				"duplicate registration of instrument %s via %s (first registered at %s): two call sites now share one instrument",
				lit.Value, sel.Sel.Name, pass.Fset.Position(prev))
		} else {
			seen[key] = call.Pos()
		}
		return true
	})
}
