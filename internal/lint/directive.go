package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveCheck is the pseudo-check name under which malformed
// suppression directives are reported. A broken //cdc:allow must be a
// finding, not a silent no-op, or a typo would disable enforcement.
const DirectiveCheck = "directive"

// Directive grammar:
//
//	//cdc:allow(<check>) <reason>   — suppress <check> findings on this
//	                                  line or the line below; the reason is
//	                                  mandatory and becomes the inventory
//	                                  of intentional violations.
//	//cdc:invariant <reason>        — tag a panic as an internal-invariant
//	                                  assertion; suppresses panicfree. The
//	                                  reason is optional but encouraged.
//
// Directives follow the //go: convention: no space after the slashes.
type Directive struct {
	File string
	Line int
	// Kind is "allow" or "invariant".
	Kind string
	// Check is the suppressed check name (allow only).
	Check string
	// Reason is the justification text.
	Reason string
}

// ParseDirectives extracts cdc directives from one file. known is the set
// of valid check names for //cdc:allow; anything starting with "cdc:" that
// does not parse, names an unknown check, or omits the reason is returned
// as a DirectiveCheck finding.
func ParseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool) ([]Directive, []Finding) {
	var ds []Directive
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		bad = append(bad, Finding{
			Check:   DirectiveCheck,
			File:    p.Filename,
			Line:    p.Line,
			Col:     p.Column,
			Message: msg,
		})
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//cdc:")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			switch {
			case strings.HasPrefix(text, "allow"):
				rest := strings.TrimPrefix(text, "allow")
				open := strings.IndexByte(rest, '(')
				close := strings.IndexByte(rest, ')')
				if open != 0 || close < 0 {
					report(c.Pos(), "malformed //cdc:allow directive: want //cdc:allow(<check>) <reason>")
					continue
				}
				check := rest[open+1 : close]
				reason := strings.TrimSpace(rest[close+1:])
				if !known[check] {
					report(c.Pos(), "//cdc:allow names unknown check \""+check+"\"")
					continue
				}
				if reason == "" {
					report(c.Pos(), "//cdc:allow("+check+") is missing its reason: every suppression must say why")
					continue
				}
				ds = append(ds, Directive{
					File:   pos.Filename,
					Line:   pos.Line,
					Kind:   "allow",
					Check:  check,
					Reason: reason,
				})
			case text == "invariant" || strings.HasPrefix(text, "invariant "):
				ds = append(ds, Directive{
					File:   pos.Filename,
					Line:   pos.Line,
					Kind:   "invariant",
					Reason: strings.TrimSpace(strings.TrimPrefix(text, "invariant")),
				})
			default:
				report(c.Pos(), "unknown cdc directive //cdc:"+text+": want //cdc:allow(<check>) <reason> or //cdc:invariant")
			}
		}
	}
	return ds, bad
}

// allowKey addresses one (file, line, check) suppression cell. The same
// map serves applySuppressions and ModulePass.AllowedAt, so the rule "a
// directive covers its own line and the line below" has one definition.
type allowKey struct {
	file  string
	line  int
	check string
}

// buildAllowed expands directives into the suppression map.
func buildAllowed(directives []Directive, r *run) map[allowKey]bool {
	allowed := make(map[allowKey]bool)
	for _, d := range directives {
		file := r.relFile(d.File)
		check := d.Check
		if d.Kind == "invariant" {
			check = PanicfreeAnalyzer.Name
		}
		// A directive covers its own line (trailing comment) and the next
		// line (comment above the offending statement).
		allowed[allowKey{file, d.Line, check}] = true
		allowed[allowKey{file, d.Line + 1, check}] = true
	}
	return allowed
}

// applySuppressions drops findings covered by an allow directive for their
// check (or an invariant tag, for panicfree) on the same line or the line
// directly above.
func applySuppressions(findings []Finding, allowed map[allowKey]bool) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		if allowed[allowKey{f.File, f.Line, f.Check}] {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}
