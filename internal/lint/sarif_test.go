package lint_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"cdcreplay/internal/lint"
)

// sarifDoc mirrors the subset of SARIF 2.1.0 cdclint emits, for
// round-trip validation.
type sarifDoc struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine int `json:"startLine"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func decodeSARIF(t *testing.T, findings []lint.Finding) sarifDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var doc sarifDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	return doc
}

// TestSARIFRoundTrip renders the fixture findings as SARIF and checks the
// document structure: schema/version header, one run, a complete sorted
// rule table, and one result per finding with a resolvable ruleIndex and a
// 1-based region.
func TestSARIFRoundTrip(t *testing.T) {
	findings := runFixtures(t)
	doc := decodeSARIF(t, findings)

	if doc.Schema != lint.SARIFSchemaURI {
		t.Errorf("$schema = %q, want %q", doc.Schema, lint.SARIFSchemaURI)
	}
	if doc.Version != lint.SARIFVersion {
		t.Errorf("version = %q, want %q", doc.Version, lint.SARIFVersion)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "cdclint" {
		t.Errorf("driver name = %q, want cdclint", run.Tool.Driver.Name)
	}

	// The rule table covers every analyzer plus the two pseudo-checks,
	// sorted by id, each with a non-empty description.
	wantRules := []string{lint.DirectiveCheck, lint.LoadErrorCheck}
	for _, a := range lint.Analyzers() {
		wantRules = append(wantRules, a.Name)
	}
	sort.Strings(wantRules)
	var gotRules []string
	for _, r := range run.Tool.Driver.Rules {
		gotRules = append(gotRules, r.ID)
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
	}
	if !sort.StringsAreSorted(gotRules) {
		t.Errorf("rule table is not sorted: %v", gotRules)
	}
	if len(gotRules) != len(wantRules) {
		t.Errorf("rule table = %v, want %v", gotRules, wantRules)
	} else {
		for i := range wantRules {
			if gotRules[i] != wantRules[i] {
				t.Errorf("rule[%d] = %s, want %s", i, gotRules[i], wantRules[i])
			}
		}
	}

	if len(run.Results) != len(findings) {
		t.Fatalf("got %d results, want %d findings", len(run.Results), len(findings))
	}
	for i, res := range run.Results {
		f := findings[i]
		if res.RuleID != f.Check {
			t.Errorf("result %d ruleId = %q, want %q", i, res.RuleID, f.Check)
		}
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[res.RuleIndex].ID != f.Check {
			t.Errorf("result %d ruleIndex %d does not resolve to %q", i, res.RuleIndex, f.Check)
		}
		if res.Level != "error" {
			t.Errorf("result %d level = %q, want error", i, res.Level)
		}
		if res.Message.Text != f.Message {
			t.Errorf("result %d message = %q, want %q", i, res.Message.Text, f.Message)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result %d has %d locations, want 1", i, len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != f.File {
			t.Errorf("result %d uri = %q, want %q", i, loc.ArtifactLocation.URI, f.File)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("result %d startLine = %d, want >= 1", i, loc.Region.StartLine)
		}
	}
}

// TestSARIFEmpty checks a clean run still yields a valid document with an
// empty (non-null) results array — what CI uploads on green runs.
func TestSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, nil); err != nil {
		t.Fatalf("WriteSARIF(nil): %v", err)
	}
	var raw struct {
		Runs []struct {
			Results json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(raw.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(raw.Runs))
	}
	if string(raw.Runs[0].Results) != "[]" {
		t.Errorf("empty results render as %s, want []", raw.Runs[0].Results)
	}
}
