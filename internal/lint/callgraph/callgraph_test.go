package callgraph_test

import (
	"path/filepath"
	"testing"

	"cdcreplay/internal/lint"
	"cdcreplay/internal/lint/callgraph"
)

// buildFixture loads the cgfix module through the lint loader and builds
// its call graph, the same construction path Run uses.
func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkgs, loadFindings, err := lint.Load(filepath.Join("testdata", "src", "cgfix"), []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loadFindings) > 0 {
		t.Fatalf("fixture does not typecheck: %v", loadFindings)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	var cps []*callgraph.Pkg
	for _, p := range pkgs {
		cps = append(cps, &callgraph.Pkg{
			Path: p.Path, RelPath: p.RelPath, Files: p.Files, Types: p.Types, Info: p.Info,
		})
	}
	return callgraph.Build(pkgs[0].Fset, cps)
}

func mustNode(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	n := g.Lookup(name)
	if n == nil {
		var names []string
		for _, fn := range g.Funcs() {
			names = append(names, fn.Name())
		}
		t.Fatalf("node %q not in graph; have %v", name, names)
	}
	return n
}

// edgesTo collects the out-edges of n that land on a callee named name.
func edgesTo(n *callgraph.Node, name string) []callgraph.Edge {
	var out []callgraph.Edge
	for _, e := range n.Out {
		if e.Callee.Name() == name {
			out = append(out, e)
		}
	}
	return out
}

// TestMutualRecursion pins the Even → Odd → Even cycle and that PathTo
// finds it as a two-edge shortest path.
func TestMutualRecursion(t *testing.T) {
	g := buildFixture(t)
	even := mustNode(t, g, "cgfix.Even")
	odd := mustNode(t, g, "cgfix.Odd")
	if len(edgesTo(even, "cgfix.Odd")) == 0 {
		t.Error("missing edge Even → Odd")
	}
	if len(edgesTo(odd, "cgfix.Even")) == 0 {
		t.Error("missing edge Odd → Even")
	}
	path := g.PathTo(even, func(n *callgraph.Node) bool { return n == even })
	if len(path) != 2 {
		t.Fatalf("PathTo(Even → Even) = %d edges, want 2 (through Odd)", len(path))
	}
	if path[0].Callee.Name() != "cgfix.Odd" || path[1].Callee.Name() != "cgfix.Even" {
		t.Errorf("cycle witness = %v → %v, want Odd → Even", path[0].Callee, path[1].Callee)
	}
}

// TestInterfaceDispatch pins CHA fan-out: the interface call in CallSpeak
// resolves to both concrete Speak methods, as KindInterface edges, in
// deterministic implementer order.
func TestInterfaceDispatch(t *testing.T) {
	g := buildFixture(t)
	call := mustNode(t, g, "cgfix.CallSpeak")
	var targets []string
	for _, e := range call.Out {
		if e.Kind != callgraph.KindInterface {
			continue
		}
		targets = append(targets, e.Callee.Name())
	}
	want := []string{"(*cgfix.Cat).Speak", "(cgfix.Dog).Speak"}
	if len(targets) != len(want) {
		t.Fatalf("interface edges = %v, want %v", targets, want)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("interface edges = %v, want %v (sorted)", targets, want)
		}
	}
}

// TestMethodValue pins that taking a method value records a Ref edge to
// the concrete method even though no call happens at the site.
func TestMethodValue(t *testing.T) {
	g := buildFixture(t)
	mv := mustNode(t, g, "cgfix.MethodValue")
	edges := edgesTo(mv, "(cgfix.Dog).Speak")
	if len(edges) == 0 {
		t.Fatal("missing Ref edge MethodValue → Dog.Speak")
	}
	if edges[0].Kind != callgraph.KindRef {
		t.Errorf("edge kind = %v, want ref", edges[0].Kind)
	}
}

// TestGoAndLiteralAttribution pins that `go loop()` is marked as a
// goroutine launch and that calls inside a spawned literal are attributed
// to the spawning function.
func TestGoAndLiteralAttribution(t *testing.T) {
	g := buildFixture(t)
	spawn := mustNode(t, g, "cgfix.Spawn")
	loopEdges := edgesTo(spawn, "cgfix.loop")
	if len(loopEdges) == 0 {
		t.Fatal("missing edge Spawn → loop")
	}
	if !loopEdges[0].Go {
		t.Error("Spawn → loop edge not marked as a go launch")
	}
	if len(edgesTo(spawn, "time.Now")) == 0 {
		t.Error("time.Now inside the spawned literal not attributed to Spawn")
	}
}

// TestExternalNode pins that stdlib callees appear as non-Local nodes and
// that reachability crosses into them.
func TestExternalNode(t *testing.T) {
	g := buildFixture(t)
	clock := mustNode(t, g, "cgfix.Clock")
	now := mustNode(t, g, "time.Now")
	if now.Local() {
		t.Error("time.Now claims to be module-local")
	}
	reach := g.ReachableFrom(clock)
	if !reach[now] {
		t.Error("time.Now not reachable from Clock")
	}
	callers := g.Callers(map[*callgraph.Node]bool{now: true})
	if !callers[clock] {
		t.Error("Clock not in Callers(time.Now)")
	}
	if spawn := g.Lookup("cgfix.Spawn"); spawn == nil || !callers[spawn] {
		t.Error("Spawn (literal body) not in Callers(time.Now)")
	}
}
