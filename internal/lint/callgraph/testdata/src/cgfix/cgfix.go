// Package cgfix exercises the call-graph builder: mutual recursion,
// interface dispatch, method values, go statements, and external calls.
package cgfix

import "time"

// Even and Odd are mutually recursive: the graph must contain the
// two-edge cycle Even → Odd → Even.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

// Speaker is dispatched through CHA: a call through the interface fans
// out to every concrete implementation in the module.
type Speaker interface {
	Speak() string
}

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

// CallSpeak calls through the interface; CHA resolves to Dog.Speak and
// (*Cat).Speak.
func CallSpeak(s Speaker) string { return s.Speak() }

// MethodValue takes a method value without calling it here; the graph
// records a Ref edge because the value may be called anywhere.
func MethodValue(d Dog) func() string {
	f := d.Speak
	return f
}

// Spawn launches a goroutine calling a named function and one calling a
// literal; the named call edge must carry the Go mark, and the literal's
// body (the external time.Now call) is attributed to Spawn.
func Spawn() {
	go loop()
	go func() {
		_ = time.Now()
	}()
}

func loop() {
	for i := 0; i < 3; i++ {
		_ = Even(i)
	}
}

// Clock calls an external function: the callee node exists but is not
// Local.
func Clock() time.Time { return time.Now() }
