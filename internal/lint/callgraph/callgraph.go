// Package callgraph builds a module-wide class-hierarchy-analysis (CHA)
// call graph from typechecked go/ast packages, using only the standard
// library (go/ast + go/types — the module's zero-dependency rule).
//
// The graph over-approximates the dynamic call relation, which is the
// right direction for the interprocedural lint analyzers built on it
// (nodetermflow, lockorder, leakcheck): a spurious edge can at worst
// demand a reasoned //cdc:allow, while a missing edge would let a
// nondeterminism source or a lock cycle hide behind one helper call.
//
// Resolution rules:
//
//   - Direct calls (pkg.F(), recv.M() with a concrete receiver) produce
//     one static edge to the called *types.Func.
//   - Interface method calls produce one edge per module-local concrete
//     type whose method set satisfies the interface (CHA), resolved
//     through types.Implements over every named type declared in the
//     module. When no module type implements the interface the edge
//     falls back to the abstract interface method so the call is still
//     visible.
//   - A function or method referenced as a value (method value, function
//     passed as a callback, `go f`, `defer f`) produces a Ref edge: the
//     reference is treated as a potential call from the enclosing
//     function, because the graph cannot see where the value flows.
//   - Statements inside function literals are attributed to the
//     enclosing declared function; calls launched with `go` are marked
//     so concurrency-aware analyzers can treat them differently.
//
// Everything about the graph is deterministic: nodes enumerate in
// qualified-name order, out-edges in source order, and CHA fan-out in
// implementer-name order, so findings derived from it are byte-stable.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Pkg is one typechecked package handed to Build. It mirrors the loader's
// package shape without importing it, keeping this package dependency-free
// in both directions.
type Pkg struct {
	// Path is the import path; RelPath the module-relative directory
	// ("." for the module root package).
	Path    string
	RelPath string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// EdgeKind classifies how a call site resolves to its callee.
type EdgeKind int

const (
	// KindStatic is a direct call to a known function or concrete method.
	KindStatic EdgeKind = iota
	// KindInterface is a CHA-resolved edge from an interface method call
	// to one concrete implementation (or to the abstract method when the
	// module declares no implementer).
	KindInterface
	// KindRef marks a function referenced as a value rather than called:
	// a method value, a callback argument, `go f` or `defer f`.
	KindRef
)

func (k EdgeKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindRef:
		return "ref"
	}
	return "unknown"
}

// Edge is one resolved (caller, site, callee) triple.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the position of the call or reference expression inside
	// Caller (or inside a function literal attributed to Caller).
	Site token.Pos
	Kind EdgeKind
	// Go marks a call launched in its own goroutine (`go f()` or a
	// `go func() {...}()` body calling f at top level of the spawn).
	Go bool
}

// Node is one function in the graph. Functions declared in the analyzed
// module carry their declaration and body; imported functions (time.Now,
// io.Writer.Write, ...) appear as external nodes with no out-edges.
type Node struct {
	Func *types.Func
	// Decl is the declaration for module-local functions, nil for
	// external or interface-abstract nodes.
	Decl *ast.FuncDecl
	// Pkg is the containing module package, nil for external nodes.
	Pkg *Pkg
	Out []Edge
	In  []Edge
}

// Name returns the fully qualified name, e.g. "(*pkg.T).M" or "pkg.F".
func (n *Node) Name() string { return n.Func.FullName() }

// Local reports whether the function is declared (with a body) in the
// analyzed module.
func (n *Node) Local() bool { return n.Decl != nil }

func (n *Node) String() string { return n.Name() }

// Graph is the module call graph.
type Graph struct {
	Fset  *token.FileSet
	nodes map[*types.Func]*Node
	// funcs is the deterministic enumeration order: declaration order
	// within the sorted package list, externals appended as discovered.
	funcs []*Node
}

// Node returns the graph node for fn, or nil if fn is unknown.
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// Funcs returns every node sorted by qualified name (ties broken by
// package path, which disambiguates unexported names).
func (g *Graph) Funcs() []*Node {
	out := make([]*Node, len(g.funcs))
	copy(out, g.funcs)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Name() != b.Name() {
			return a.Name() < b.Name()
		}
		return pkgPath(a.Func) < pkgPath(b.Func)
	})
	return out
}

// Lookup finds a node by its qualified name (Node.Name). Intended for
// tests; returns nil when absent or ambiguous only by insertion order.
func (g *Graph) Lookup(name string) *Node {
	for _, n := range g.Funcs() {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

func pkgPath(fn *types.Func) string {
	if p := fn.Pkg(); p != nil {
		return p.Path()
	}
	return ""
}

// PathTo runs a breadth-first search from `from` and returns the edges of
// a shortest path to the first node satisfying target, or nil when none is
// reachable. Out-edges are explored in source order, so the witness path
// is deterministic.
func (g *Graph) PathTo(from *Node, target func(*Node) bool) []Edge {
	if from == nil {
		return nil
	}
	type item struct {
		node *Node
		via  []Edge
	}
	seen := map[*Node]bool{from: true}
	queue := []item{{node: from}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, e := range it.node.Out {
			// Test the target before the visited check so that a path
			// looping back to an already-seen node (e.g. from itself,
			// when searching for a cycle) is still found.
			if target(e.Callee) {
				return append(append([]Edge(nil), it.via...), e)
			}
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			queue = append(queue, item{node: e.Callee, via: append(append([]Edge(nil), it.via...), e)})
		}
	}
	return nil
}

// ReachableFrom returns the set of nodes reachable from any start node by
// following out-edges (the starts themselves included).
func (g *Graph) ReachableFrom(starts ...*Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var stack []*Node
	for _, s := range starts {
		if s != nil && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// Callers returns the set of nodes that reach any node in targets by
// following in-edges (targets themselves included). This is the taint
// direction: everything that can observe a target's effect.
func (g *Graph) Callers(targets map[*Node]bool) map[*Node]bool {
	seen := make(map[*Node]bool, len(targets))
	var stack []*Node
	// Deterministic seeding is unnecessary for a set result, but keep the
	// iteration bounded to known nodes.
	for n := range targets { //cdc:allow(maporder) result is a set; iteration order does not affect it
		if n != nil && !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.In {
			if !seen[e.Caller] {
				seen[e.Caller] = true
				stack = append(stack, e.Caller)
			}
		}
	}
	return seen
}

// Build constructs the call graph for pkgs. The package slice should be
// sorted by path (the lint loader guarantees this) so node enumeration is
// stable.
func Build(fset *token.FileSet, pkgs []*Pkg) *Graph {
	b := &builder{
		g:     &Graph{Fset: fset, nodes: make(map[*types.Func]*Node)},
		pkgs:  pkgs,
		impls: make(map[*types.Func][]*types.Func),
	}
	b.indexDecls()
	b.indexImplementations()
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				b.collectEdges(pkg, b.g.nodes[fn], fd.Body)
			}
		}
	}
	return b.g
}

type builder struct {
	g    *Graph
	pkgs []*Pkg
	// concrete lists every named non-interface type declared in the
	// module, in package-then-declaration order.
	concrete []*types.Named
	// impls maps an interface method to the concrete module methods that
	// implement it, sorted by qualified name.
	impls map[*types.Func][]*types.Func
}

// node interns a *types.Func, creating an external node on first sight.
func (b *builder) node(fn *types.Func) *Node {
	if n, ok := b.g.nodes[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	b.g.nodes[fn] = n
	b.g.funcs = append(b.g.funcs, n)
	return n
}

// indexDecls creates a node per declared function/method with a body.
func (b *builder) indexDecls() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := b.node(fn)
				n.Decl = fd
				n.Pkg = pkg
			}
		}
	}
}

// indexImplementations computes, for every interface method referenced
// anywhere in the module, the concrete module methods that can stand
// behind it — the class-hierarchy-analysis table.
func (b *builder) indexImplementations() {
	// Collect every named (non-interface) type declared in the module;
	// interface→implementer resolution then happens lazily per call site
	// in implementersOf against this inventory.
	for _, pkg := range b.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
}

func (b *builder) implementersOf(iface *types.Interface, method *types.Func) []*types.Func {
	if fns, ok := b.impls[method]; ok {
		return fns
	}
	var fns []*types.Func
	for _, named := range b.concrete {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		sel := types.NewMethodSet(recv).Lookup(method.Pkg(), method.Name())
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		a, c := fns[i], fns[j]
		if a.FullName() != c.FullName() {
			return a.FullName() < c.FullName()
		}
		return pkgPath(a) < pkgPath(c)
	})
	b.impls[method] = fns
	return fns
}

// collectEdges walks one function body (nested literals included) and adds
// edges from caller. Call expressions resolve statically or through CHA;
// bare function references become Ref edges.
func (b *builder) collectEdges(pkg *Pkg, caller *Node, body *ast.BlockStmt) {
	info := pkg.Info
	// callFuns marks expressions that are the Fun of a call, so the
	// identifier walk below does not double-count them as references.
	callFuns := make(map[ast.Expr]bool)
	// goCalls marks call expressions launched by a go statement.
	goCalls := make(map[*ast.CallExpr]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.CallExpr:
			callFuns[n.Fun] = true
			b.addCallEdges(pkg, caller, n, goCalls[n])
		case *ast.Ident:
			if callFuns[n] {
				return true
			}
			if fn := usedFunc(info, n); fn != nil {
				b.addEdge(caller, b.node(fn), n.Pos(), KindRef, false)
			}
		case *ast.SelectorExpr:
			if callFuns[n] {
				// Mark the Sel so the child Ident visit skips it.
				callFuns[n.Sel] = true
				return true
			}
			if fn := usedFunc(info, n.Sel); fn != nil {
				callFuns[n.Sel] = true
				b.addEdge(caller, b.node(fn), n.Pos(), KindRef, false)
			}
		}
		return true
	})
}

// addCallEdges resolves one call expression.
func (b *builder) addCallEdges(pkg *Pkg, caller *Node, call *ast.CallExpr, isGo bool) {
	info := pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn := usedFunc(info, fun); fn != nil {
			b.addEdge(caller, b.node(fn), call.Pos(), KindStatic, isGo)
		}
	case *ast.SelectorExpr:
		fn := usedFunc(info, fun.Sel)
		if fn == nil {
			return
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				impls := b.implementersOf(iface, fn)
				if len(impls) == 0 {
					// No module implementer: keep the abstract method so
					// the call is at least visible in the graph.
					b.addEdge(caller, b.node(fn), call.Pos(), KindInterface, isGo)
					return
				}
				for _, impl := range impls {
					b.addEdge(caller, b.node(impl), call.Pos(), KindInterface, isGo)
				}
				return
			}
		}
		b.addEdge(caller, b.node(fn), call.Pos(), KindStatic, isGo)
	case *ast.FuncLit:
		// Literal body is walked by the enclosing Inspect; no edge.
	default:
		// Indirect call through a variable or parenthesized expression:
		// targets were already over-approximated by Ref edges wherever
		// the function value was taken.
	}
}

func (b *builder) addEdge(caller *Node, callee *Node, site token.Pos, kind EdgeKind, isGo bool) {
	if caller == nil || callee == nil || caller == callee && kind == KindRef {
		// A function referencing itself (recursion via value) adds
		// nothing the static self-edge doesn't already say.
		return
	}
	e := Edge{Caller: caller, Callee: callee, Site: site, Kind: kind, Go: isGo}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// usedFunc resolves an identifier to the *types.Func it uses, or nil.
func usedFunc(info *types.Info, id *ast.Ident) *types.Func {
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}
