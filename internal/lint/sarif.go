package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 output, the format CI code-scanning upload endpoints
// consume to annotate PRs inline. The structs model exactly the subset
// cdclint emits; field names follow the OASIS schema.

// SARIFSchemaURI and SARIFVersion identify the document format.
const (
	SARIFSchemaURI = "https://json.schemastore.org/sarif-2.1.0.json"
	SARIFVersion   = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	// URI is the module-relative file path (forward slashes), resolved
	// by consumers against the checkout root.
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as one SARIF 2.1.0 run. The rule table
// covers every analyzer plus the directive and loaderror pseudo-checks,
// in sorted order, so ruleIndex is stable across runs regardless of
// which rules fired.
func WriteSARIF(w io.Writer, findings []Finding) error {
	rules, index := sarifRules()
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		ri, ok := index[f.Check]
		if !ok {
			// A check outside the registry (should not happen) still
			// must produce a valid document: extend the table.
			ri = len(rules)
			index[f.Check] = ri
			rules = append(rules, sarifRule{ID: f.Check, ShortDescription: sarifMessage{Text: f.Check}})
		}
		line := f.Line
		if line < 1 {
			// SARIF regions are 1-based; a position-less finding (e.g. a
			// directory-level load error) anchors at line 1.
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:    f.Check,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: SARIFVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cdclint", InformationURI: "https://example.invalid/cdcreplay/DESIGN.md", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifRules builds the stable rule table: every analyzer, the directive
// pseudo-check, and the loaderror pseudo-check, sorted by id.
func sarifRules() ([]sarifRule, map[string]int) {
	descs := map[string]string{
		DirectiveCheck: "malformed or unjustified cdc suppression directive",
		LoadErrorCheck: "package failed to parse or typecheck and was not analyzed",
	}
	names := []string{DirectiveCheck, LoadErrorCheck}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
		descs[a.Name] = a.Doc
	}
	sort.Strings(names)
	rules := make([]sarifRule, 0, len(names))
	index := make(map[string]int, len(names))
	for i, name := range names {
		index[name] = i
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: descs[name]}})
	}
	return rules, index
}
