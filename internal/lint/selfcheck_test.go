package lint_test

import (
	"testing"

	"cdcreplay/internal/lint"
)

// TestRepoSelfCheck runs the full analyzer set over this repository with
// the production scopes and demands zero findings — the same gate CI's
// cdclint job enforces. Every intentional violation in the tree must carry
// a //cdc:allow(<check>) <reason> (or //cdc:invariant for panics), so this
// test doubles as the guarantee that the suppression inventory is current.
func TestRepoSelfCheck(t *testing.T) {
	findings, err := lint.Run(".", []string{"./..."}, lint.Analyzers(), lint.Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("cdclint reports %d finding(s) on the repo; fix them or annotate with //cdc:allow(<check>) <reason>", len(findings))
	}
}
