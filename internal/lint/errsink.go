package lint

import (
	"go/ast"
	"go/types"
)

// ErrsinkAnalyzer flags implicitly discarded errors from the write/flush/
// close family in the storage-facing packages. PR 1's crash-consistency
// guarantee (a salvageable prefix up to the last durable flush point) only
// holds if every error on the durable path is observed: a swallowed
// fsync or Close error silently converts "durable" into "probably
// durable". Flagged are bare call statements, defers, and go statements
// whose callee returns an error that nobody receives; an explicit `_ =`
// assignment is treated as a considered decision and not flagged.
var ErrsinkAnalyzer = &Analyzer{
	Name: "errsink",
	Doc: "flag discarded error returns from Write/Flush/Sync/Close in the " +
		"storage packages",
	Scope: []string{
		"internal/core",
		"internal/record",
		"internal/store/...",
	},
	Run: runErrsink,
}

// errsinkMethods is the write/flush/close family whose errors carry
// durability or data-loss information.
var errsinkMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteFrame":  true,
	"WriteTo":     true,
	"ReadFrom":    true,
}

func runErrsink(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		obj := pass.Info.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok || !errsinkMethods[fn.Name()] {
			return
		}
		// Only method calls: package-level helpers that drop errors are
		// visible at their own return sites.
		if _, isSel := pass.Info.Selections[sel]; !isSel {
			return
		}
		sig := fn.Type().(*types.Signature)
		res := sig.Results()
		if res.Len() == 0 {
			return
		}
		last := res.At(res.Len() - 1).Type()
		if !types.Identical(last, types.Universe.Lookup("error").Type()) {
			return
		}
		pass.Reportf(call.Pos(),
			"error from %s%s() discarded: on the storage path every Write/Flush/Sync/Close error must be propagated (or annotated //cdc:allow(errsink) with a reason)",
			how, fn.Name())
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.DeferStmt:
				check(n.Call, "deferred ")
			case *ast.GoStmt:
				check(n.Call, "go ")
			}
			return true
		})
	}
}
