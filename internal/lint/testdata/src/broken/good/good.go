// Package good typechecks fine and carries one nodeterm violation,
// proving analysis proceeds for healthy packages even when siblings are
// broken.
package good

import "time"

// Now samples the clock.
func Now() time.Time {
	return time.Now() // the loaderror test expects this nodeterm finding
}
