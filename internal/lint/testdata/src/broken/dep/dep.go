// Package dep imports a broken package: the import cascade is reported
// against this package too, so "not analyzed" is visible at every level.
package dep

import "broken/bad"

// Uses keeps the import live.
func Uses() int { return bad.Mismatch }
