module broken

go 1.22
