// Package bad fails to typecheck: the loader must surface this as a
// loaderror finding instead of silently skipping the package.
package bad

// Mismatch is a deliberate type error.
var Mismatch int = "not an int"
