// Package synbad fails to parse: a syntax error is a loaderror finding
// with the scanner's position.
package synbad

func Broken() {
	if {
}
