// Package panicfree exercises the panic ban for library packages.
package panicfree

import "errors"

// Bad panics on a runtime condition.
func Bad(n int) int {
	if n < 0 {
		panic("negative") // want "panic in library package"
	}
	return n
}

// Tagged asserts an internal invariant: no finding.
func Tagged(n int) int {
	if n < 0 {
		//cdc:invariant fixture: encoder guarantees non-negative counts
		panic("impossible")
	}
	return n
}

// Good returns an error: no finding.
func Good(n int) (int, error) {
	if n < 0 {
		return 0, errors.New("negative")
	}
	return n, nil
}
