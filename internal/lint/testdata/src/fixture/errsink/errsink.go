// Package errsink exercises the errsink analyzer: implicitly discarded
// errors from the write/flush/close family are findings.
package errsink

import "os"

// FrameWriter mimics the storage-layer writer surface.
type FrameWriter struct{}

// WriteFrame pretends to write a frame.
func (w *FrameWriter) WriteFrame(kind byte, payload []byte) error { return nil }

// Flush pretends to flush.
func (w *FrameWriter) Flush() error { return nil }

// Close pretends to close.
func (w *FrameWriter) Close() error { return nil }

// Quiet closes without an error result.
type Quiet struct{}

// Close returns nothing, so discarding it is fine.
func (q Quiet) Close() {}

// Swallowed drops every error implicitly.
func Swallowed(w *FrameWriter, f *os.File) {
	w.Flush()               // want "Flush"
	w.Close()               // want "Close"
	go w.WriteFrame(0, nil) // want "WriteFrame"
	defer f.Sync()          // want "deferred Sync"
}

// Checked propagates, and discards one error explicitly.
func Checked(w *FrameWriter) error {
	if err := w.Flush(); err != nil {
		return err
	}
	_ = w.Close() // explicit discard is a considered decision: no finding
	return nil
}

// NoError discards a result-less Close: no finding.
func NoError(q Quiet) {
	q.Close()
}

// Allowed documents an intentional discard.
func Allowed(w *FrameWriter) {
	w.Close() //cdc:allow(errsink) fixture: error intentionally dropped
}
