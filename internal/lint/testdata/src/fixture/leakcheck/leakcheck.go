// Package leakcheck exercises the goroutine/channel hygiene analyzer:
// goroutines spawned with no reachable stop signal and channels sent on
// but never drained.
package leakcheck

import (
	"context"
	"sync"
)

// Spin leaks: the spawned literal loops unconditionally with no select,
// receive, context, or exit in reach.
func Spin() {
	go func() { // want "no stop signal"
		n := 0
		for {
			n++
		}
	}()
}

// SpawnWorker leaks one frame down: the unstopped loop lives in the named
// worker function the go statement targets.
func SpawnWorker() {
	go worker() // want "no stop signal"
}

func worker() {
	for {
		step()
	}
}

func step() {}

// WatchContext is stoppable: the select on ctx.Done gives the loop an
// exit.
func WatchContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				step()
			}
		}
	}()
}

// Drain is stoppable: ranging over a channel ends when the sender closes
// it.
func Drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Pump is stoppable: the loop blocks on a receive.
func Pump(ch chan int) {
	go func() {
		for {
			v, ok := <-ch
			if !ok {
				return
			}
			_ = v
		}
	}()
}

// Bounded is stoppable: the loop can break.
func Bounded() {
	go func() {
		n := 0
		for {
			n++
			if n > 10 {
				break
			}
		}
	}()
}

// Waiter is stoppable: sync.WaitGroup.Wait blocks until peers finish.
func Waiter(wg *sync.WaitGroup) {
	go func() {
		for {
			wg.Wait()
			return
		}
	}()
}

// Undrained sends on a channel no function in the module ever receives
// from: the send blocks forever once the buffer is full.
func Undrained() {
	ch := make(chan int, 1)
	ch <- 1 // want "never received"
}

// DrainedLocally pairs its send with a receive: not a finding.
func DrainedLocally() int {
	ch := make(chan int, 1)
	ch <- 1
	return <-ch
}

// Escaping hands its channel to another function: the use-set is
// unknowable, so the analyzer stays silent rather than guessing.
func Escaping() {
	ch := make(chan int)
	go consume(ch)
	ch <- 1
}

func consume(ch chan int) {
	<-ch
}

// SuppressedDaemon documents an intentional run-forever goroutine.
func SuppressedDaemon() {
	go func() { //cdc:allow(leakcheck) fixture: daemon loop, stopped only by process exit
		for {
			step()
		}
	}()
}
