// Package nodeterm exercises the nodeterm analyzer: wall-clock reads and
// math/rand uses are findings inside deterministic packages.
package nodeterm

import (
	"math/rand"
	"time"
)

// Bad samples the clock and global randomness.
func Bad() (time.Time, int) {
	now := time.Now() // want "time.Now"
	n := rand.Intn(4) // want "rand.Intn"
	return now, n
}

// Elapsed samples the clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since"
}

// Allowed documents an intentional wall-clock read.
func Allowed() time.Time {
	return time.Now() //cdc:allow(nodeterm) fixture: telemetry only, never serialized
}

// Fine does time arithmetic without sampling the clock.
func Fine(d time.Duration) time.Duration { return 2 * d }
