// Package nodetermflow exercises the interprocedural taint analyzer: a
// nondeterminism source reached through a helper chain (here, via the
// ndhelp package, which no intra-procedural check watches) taints every
// in-scope caller. Direct source calls are nodeterm's job and are not
// re-reported here.
package nodetermflow

import (
	"fixture/nodetermflow/ndhelp"
	"math/rand"
)

// Encode reaches time.Now two frames down: the chain
// Encode → ndhelp.Stamp → time.Now is a finding even though no single
// function both samples the clock and lives in scope.
func Encode(buf []byte) []byte {
	return append(buf, byte(ndhelp.Stamp())) // want "nondeterminism source time.Now"
}

// EncodeDeep reaches the same source through one more hop.
func EncodeDeep(buf []byte) []byte {
	return append(buf, byte(ndhelp.Wrapped())) // want "nondeterminism source time.Now"
}

// Shuffled reaches the global math/rand source through a helper.
func Shuffled() int {
	return ndhelp.Draw() // want "nondeterminism source rand.Intn"
}

// Ordered serializes a map through a helper that ranges over it without a
// sanctioning directive: iteration order taints the result.
func Ordered(m map[string]int) []string {
	return ndhelp.Keys(m) // want "map iteration"
}

// Sanctioned calls a helper whose clock read carries a reasoned
// //cdc:allow(nodeterm): vouched sources do not taint, so no finding.
func Sanctioned(buf []byte) []byte {
	return append(buf, byte(ndhelp.SanctionedStamp()))
}

// Seeded draws from an explicitly constructed generator: a pure function
// of the seed, not a nondeterminism source.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

// Suppressed documents a known tainted call at the call site.
func Suppressed(buf []byte) []byte {
	return append(buf, byte(ndhelp.Stamp())) //cdc:allow(nodetermflow) fixture: stamp is diagnostic metadata, not record content
}

// Pure goes through a helper chain that touches no source.
func Pure(buf []byte) []byte {
	return append(buf, byte(ndhelp.Pure()))
}
