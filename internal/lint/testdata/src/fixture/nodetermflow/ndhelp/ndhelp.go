// Package ndhelp holds the helper chain the nodetermflow fixture calls
// through. It is deliberately outside every analyzer scope: only the
// interprocedural pass sees through it.
package ndhelp

import (
	"math/rand"
	"time"
)

// Stamp samples the wall clock for its caller.
func Stamp() int64 { return time.Now().UnixNano() }

// Wrapped adds one more frame between the caller and the clock.
func Wrapped() int64 { return Stamp() }

// Draw samples the process-global rand source.
func Draw() int { return rand.Intn(10) }

// Keys serializes map iteration order into a slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SanctionedStamp's clock read is vouched for, so it does not taint.
func SanctionedStamp() int64 {
	return time.Now().UnixNano() //cdc:allow(nodeterm) fixture: diagnostic timestamp, never serialized
}

// Pure is a source-free helper.
func Pure() int64 { return 42 }
