// Package maporder exercises the maporder analyzer: map iteration feeding
// an ordered sink is a finding; aggregation and sorted collection are not.
package maporder

import (
	"sort"
	"strings"
)

// LeakSlice appends in map order.
func LeakSlice(m map[int]int) []int {
	var out []int
	for k := range m { // want "appends to a slice"
		out = append(out, k)
	}
	return out
}

// LeakWriter serializes in map order.
func LeakWriter(m map[string]string) string {
	var b strings.Builder
	for _, v := range m { // want "ordered sink"
		b.WriteString(v)
	}
	return b.String()
}

// LeakStore stores into slice elements in map order.
func LeakStore(m map[int]string, out []string) {
	i := 0
	for _, v := range m { // want "slice elements"
		out[i] = v
		i++
	}
}

// SortedAfter is the sanctioned pattern: collect, then sort.
func SortedAfter(m map[int]int) []int {
	var keys []int
	for k := range m { //cdc:allow(maporder) fixture: keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Aggregate folds into a scalar and another map: order-insensitive.
func Aggregate(m map[int]int) int {
	total := 0
	inv := make(map[int]int, len(m))
	for k, v := range m {
		total += v
		inv[v] = k
	}
	return total + len(inv)
}

// SliceRange writes from a slice range: not a map, no finding.
func SliceRange(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
