// Package locksafe exercises lock-copy and atomic-alignment detection.
package locksafe

import (
	"sync"
	"sync/atomic"
)

// Guarded bundles a lock with its data.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// Lock copies the receiver: the mutex state forks on every call.
func (g Guarded) Lock() { // want "value receiver"
	g.mu.Lock()
}

// LockP uses a pointer receiver: no finding.
func (g *Guarded) LockP() { g.mu.Lock() }

// Copy duplicates an existing lock-bearing value.
func Copy(a *Guarded) int {
	b := *a // want "copies a value containing"
	return b.n
}

// Iterate copies each element into the range variable.
func Iterate(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range copies"
		total += g.n
	}
	return total
}

// Fresh constructs a new value: composite literals are no finding.
func Fresh() *Guarded {
	g := Guarded{}
	return &g
}

// Misaligned puts a uint64 after a uint32: 32-bit offset 4.
type Misaligned struct {
	flag uint32
	n    uint64
}

// Bump hits the unaligned field.
func Bump(m *Misaligned) uint64 {
	return atomic.AddUint64(&m.n, 1) // want "not 8-aligned"
}

// AllowedBump documents a field kept where it is.
func AllowedBump(m *Misaligned) uint64 {
	return atomic.LoadUint64(&m.n) //cdc:allow(locksafe) fixture: layout frozen by on-disk compat
}

// Aligned leads with the 64-bit field: offset 0, no finding.
type Aligned struct {
	n    uint64
	flag uint32
}

// BumpAligned is fine.
func BumpAligned(a *Aligned) uint64 {
	return atomic.AddUint64(&a.n, 1)
}

// Typed uses the always-aligned atomic types; method calls are exempt.
type Typed struct {
	flag uint32
	n    atomic.Uint64
}

// BumpTyped is fine.
func BumpTyped(t *Typed) uint64 {
	return t.n.Add(1)
}
