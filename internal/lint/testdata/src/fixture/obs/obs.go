// Package obs is a skeleton of the real instrument layer so the obsguard
// fixtures typecheck without importing cdcreplay itself. The analyzer
// matches instrument packages and the Registry type by name, so the guard
// rules bind here exactly as they do in internal/obs.
package obs

// Counter is a nil-safe instrument.
type Counter struct{ v uint64 }

// Add is properly guarded: no finding.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Inc touches the receiver before checking nil.
func (c *Counter) Inc() { // want "nil guard"
	c.v++
}

// Value guards too late, after the dereference.
func (c *Counter) Value() uint64 { // want "nil guard"
	v := c.v
	if c == nil {
		return 0
	}
	return v
}

// reset is unexported: the guard contract binds the public surface only.
func (c *Counter) reset() { c.v = 0 }

// Registry hands out named instruments.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[name]
}

// Gauge returns the named counter standing in for a gauge.
func (r *Registry) Gauge(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[name]
}

// Histogram returns the named counter standing in for a histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Counter {
	if r == nil {
		return nil
	}
	return r.counters[name]
}
