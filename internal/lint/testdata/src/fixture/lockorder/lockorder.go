// Package lockorder exercises the lock-acquisition cycle analyzer: two
// code paths that take the same pair of locks in opposite orders are a
// potential deadlock, including when one direction acquires through a
// helper call (the interprocedural summary).
package lockorder

import "sync"

// Pair's two locks are taken a-then-b by AB but b-then-a by BA (through
// lockA), closing the cycle.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB acquires a then b: the a → b direction, and the cycle's anchor edge
// (lockorder.Pair.a sorts first).
func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock() // want "lock-order cycle"
	p.b.Unlock()
	p.a.Unlock()
}

// BA acquires b, then reaches a through a helper while still holding b:
// the b → a direction comes from lockA's transitive summary.
func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.lockA()
}

func (p *Pair) lockA() {
	p.a.Lock()
	p.a.Unlock()
}

// Ordered takes its locks in the same order everywhere: no cycle.
type Ordered struct {
	first  sync.Mutex
	second sync.RWMutex
}

// Both nests second inside first.
func (o *Ordered) Both() {
	o.first.Lock()
	o.second.RLock()
	o.second.RUnlock()
	o.first.Unlock()
}

// BothAgain repeats the same discipline; repeated consistent edges are
// not findings.
func (o *Ordered) BothAgain() {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	o.second.Unlock()
}

// Grid has a real inversion that is documented as intentional: the
// suppression sits on the anchor edge's witness line.
type Grid struct {
	m sync.Mutex
	n sync.Mutex
}

// MN is the m → n direction.
func (g *Grid) MN() {
	g.m.Lock()
	g.n.Lock() //cdc:allow(lockorder) fixture: n is only tried, never blocked on, outside this path
	g.n.Unlock()
	g.m.Unlock()
}

// NM is the n → m direction, closing the sanctioned cycle.
func (g *Grid) NM() {
	g.n.Lock()
	g.m.Lock()
	g.m.Unlock()
	g.n.Unlock()
}

// Detached spawns a goroutine that locks b while the spawner holds a;
// the literal runs in its own schedule position, so no a → b edge comes
// from it.
func (p *Pair) Detached(done chan struct{}) {
	p.a.Lock()
	go func() {
		p.b.Lock()
		p.b.Unlock()
		close(done)
	}()
	p.a.Unlock()
}
