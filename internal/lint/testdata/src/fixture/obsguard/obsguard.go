// Package obsguard exercises duplicate instrument-name detection.
package obsguard

import "fixture/obs"

// Instruments mimics a pipeline layer's instrument bundle.
type Instruments struct {
	rows  *obs.Counter
	bytes *obs.Counter
}

// Bad registers the same name twice: both fields alias one instrument.
func Bad(r *obs.Registry) Instruments {
	return Instruments{
		rows:  r.Counter("record.rows"),
		bytes: r.Counter("record.rows"), // want "duplicate registration"
	}
}

// Good registers distinct names: no finding.
func Good(r *obs.Registry) Instruments {
	return Instruments{
		rows:  r.Counter("record.rows"),
		bytes: r.Counter("record.bytes"),
	}
}

// Kinds may reuse a name across instrument kinds (separate namespaces).
func Kinds(r *obs.Registry) (*obs.Counter, *obs.Counter) {
	return r.Counter("record.flush"), r.Gauge("record.flush")
}

// Separate registers the same name as Bad but in its own function; shared
// registries summing across ranks are by design, so no finding.
func Separate(r *obs.Registry) *obs.Counter {
	return r.Counter("record.rows")
}

// Allowed suppresses a deliberate alias.
func Allowed(r *obs.Registry) (*obs.Counter, *obs.Counter) {
	a := r.Counter("shared.rows")
	b := r.Counter("shared.rows") //cdc:allow(obsguard) fixture: deliberate alias
	return a, b
}
