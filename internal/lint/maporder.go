package lint

import (
	"go/ast"
	"go/types"
)

// MaporderAnalyzer flags ranging over a map while writing to an
// order-sensitive sink — appending to a slice, writing to an io.Writer /
// strings.Builder / hash, printing, or storing into slice elements. Go
// randomizes map iteration order per run, so any bytes or table built that
// way differ between record and replay even on identical input. Iterations
// that only aggregate (sum into a scalar, fill another map) are fine and
// not flagged; intentional cases that sort afterwards carry a
// //cdc:allow(maporder) with the sorting noted as the reason.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body writes to a slice, writer, hash, " +
		"or printed output (iteration order leaks into bytes)",
	Run: runMaporder,
}

// maporderWriteMethods are method names that serialize their argument into
// an ordered sink (io.Writer, strings.Builder, bytes.Buffer, hash.Hash).
var maporderWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteTo":     true,
	"Sum":         true,
}

// maporderPrintFuncs are fmt functions that emit ordered output.
var maporderPrintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if kind := maporderSink(pass.Info, rng.Body); kind != "" {
				pass.Reportf(rng.Pos(),
					"range over map %s inside this loop: map iteration order is randomized, so the produced order differs between record and replay",
					kind)
			}
			return true
		})
	}
}

// maporderSink scans a map-range body for the first order-sensitive write
// and describes it, or returns "" if the body only aggregates. It is
// shared with the interprocedural nodetermflow analyzer, which treats
// order-leaking ranges anywhere in the module as taint sources.
func maporderSink(info *types.Info, body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					kind = "appends to a slice"
					return false
				}
			case *ast.SelectorExpr:
				obj := info.Uses[fun.Sel]
				if obj == nil {
					return true
				}
				if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" && maporderPrintFuncs[obj.Name()] {
					kind = "prints ordered output"
					return false
				}
				// Method call on some receiver: Write-family or hash Sum.
				if _, isSel := info.Selections[fun]; isSel && maporderWriteMethods[obj.Name()] {
					kind = "calls " + obj.Name() + " on an ordered sink"
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := info.Types[idx.X]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
						kind = "stores into slice elements"
						return false
					}
				}
			}
		}
		return true
	})
	return kind
}
