package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cdcreplay/internal/lint/callgraph"
)

// NodetermflowAnalyzer is the interprocedural extension of nodeterm: it
// propagates taint from nondeterminism sources — wall-clock reads,
// math/rand, order-leaking map iteration, goroutine-population probes —
// through arbitrarily deep helper chains, and reports every call edge by
// which a function in the deterministic sink packages (encode, record,
// store) first reaches one. nodeterm only sees a time.Now written
// directly inside a scoped package; this pass sees the same read hidden
// one (or ten) helper calls away, in any package of the module.
//
// Sanctioned sources do not taint: a call that carries a reasoned
// //cdc:allow(nodeterm) (or //cdc:allow(nodetermflow)), and a map range
// carrying //cdc:allow(maporder), are vouched deterministic-in-effect by
// their inventory reason, so paths through them are not findings. The
// finding message embeds the full source→sink witness path.
var NodetermflowAnalyzer = &Analyzer{
	Name: "nodetermflow",
	Doc: "taint nondeterminism sources (wall clock, math/rand, map order, " +
		"goroutine counts) through helper chains into the deterministic " +
		"encode/record/store packages",
	Scope: []string{
		"internal/cdcformat",
		"internal/lpe",
		"internal/permdiff",
		"internal/varint",
		"internal/tables",
		"internal/lamport",
		"internal/core",
		"internal/record",
		"internal/store/...",
	},
	RunModule: runNodetermflow,
}

// nodetermflowSource describes an external function that samples
// nondeterministic state, or "" for anything else.
func nodetermflowSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		if nodetermClockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		// Only the package-level draw functions are nondeterministic:
		// they sample the process-global source, which Go seeds randomly.
		// Methods on an explicitly constructed *rand.Rand, and the
		// New/NewSource constructors themselves, are pure functions of
		// the caller's seed — if that seed comes from the wall clock, the
		// time.Now call is the source and is flagged on its own.
		if fn.Type().(*types.Signature).Recv() != nil {
			return ""
		}
		if fn.Name() == "New" || fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8" || fn.Name() == "NewZipf" {
			return ""
		}
		return pkg.Name() + "." + fn.Name()
	case "os":
		if fn.Name() == "Getpid" {
			return "os.Getpid"
		}
	case "runtime":
		// Goroutine-population probes: the closest thing to a goroutine
		// ID the stdlib exposes, and just as schedule-dependent.
		if fn.Name() == "NumGoroutine" || fn.Name() == "Stack" {
			return "runtime." + fn.Name()
		}
	}
	return ""
}

// taintInfo records how a tainted function reaches its nondeterminism
// source: the human description, the source position, and the next edge
// along a shortest witness path (absent when the source is a map range in
// the function's own body).
type taintInfo struct {
	source  string
	srcPos  token.Pos
	next    callgraph.Edge
	hasNext bool
	dist    int
}

func runNodetermflow(p *ModulePass) {
	g := p.Graph
	taint := make(map[*callgraph.Node]taintInfo)
	var queue []*callgraph.Node
	seed := func(n *callgraph.Node, ti taintInfo) {
		if _, ok := taint[n]; ok {
			return
		}
		taint[n] = ti
		queue = append(queue, n)
	}

	// Seed 1: module functions that call an external nondeterminism
	// source without a sanctioning directive. Funcs() is sorted and
	// out-edges are in source order, so seeding is deterministic.
	for _, n := range g.Funcs() {
		if !n.Local() {
			continue
		}
		for _, e := range n.Out {
			if e.Callee.Local() {
				continue
			}
			desc := nodetermflowSource(e.Callee.Func)
			if desc == "" {
				continue
			}
			if p.AllowedAt(e.Site, NodetermAnalyzer.Name) || p.AllowedAt(e.Site, "nodetermflow") {
				continue
			}
			seed(n, taintInfo{source: desc, srcPos: e.Site, next: e, hasNext: true, dist: 1})
			break
		}
	}

	// Seed 2: module functions whose body ranges over a map in an
	// order-leaking way (same detector the intra-procedural maporder
	// uses) without a sanctioning directive.
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.Node(fn)
				if node == nil {
					continue
				}
				rangePos := leakyMapRange(p, pkg, fd.Body)
				if rangePos == token.NoPos {
					continue
				}
				seed(node, taintInfo{source: "map iteration order", srcPos: rangePos})
			}
		}
	}

	// Propagate taint to callers breadth-first; the first (shortest)
	// path to each function wins and becomes its witness.
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		ti := taint[n]
		for _, e := range n.In {
			caller := e.Caller
			if caller == nil || !caller.Local() {
				continue
			}
			if _, ok := taint[caller]; ok {
				continue
			}
			taint[caller] = taintInfo{
				source: ti.source, srcPos: ti.srcPos,
				next: e, hasNext: true, dist: ti.dist + 1,
			}
			queue = append(queue, caller)
		}
	}

	// Report: every call edge from a sink-scope function into a tainted
	// module-local callee. Direct source calls (external callee) are
	// nodeterm's intra-procedural business and are not re-reported here.
	type repKey struct{ caller, callee *callgraph.Node }
	reported := make(map[repKey]bool)
	for _, n := range g.Funcs() {
		if !n.Local() || n.Pkg == nil || !p.InScope(n.Pkg.RelPath) {
			continue
		}
		for _, e := range n.Out {
			callee := e.Callee
			if !callee.Local() || callee == n {
				continue
			}
			ti, ok := taint[callee]
			if !ok {
				continue
			}
			k := repKey{n, callee}
			if reported[k] {
				continue
			}
			reported[k] = true
			p.Reportf(e.Site,
				"call chain reaches nondeterminism source %s (%s): %s → %s; the recorded order must not depend on wall clock, randomness, or map order",
				ti.source, p.RelPosition(ti.srcPos), p.ShortName(n.Func), renderTaintPath(p, callee, taint))
		}
	}
}

// leakyMapRange returns the position of the first unsanctioned
// order-leaking map range in body, or NoPos.
func leakyMapRange(p *ModulePass, pkg *Package, body *ast.BlockStmt) token.Pos {
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if maporderSink(pkg.Info, rng.Body) == "" {
			return true
		}
		if p.AllowedAt(rng.Pos(), MaporderAnalyzer.Name) || p.AllowedAt(rng.Pos(), "nodetermflow") {
			return true
		}
		pos = rng.Pos()
		return false
	})
	return pos
}

// renderTaintPath walks the witness chain from a tainted node down to its
// source and renders it as "helper → deeper → time.Now".
func renderTaintPath(p *ModulePass, n *callgraph.Node, taint map[*callgraph.Node]taintInfo) string {
	var parts []string
	cur := n
	for range [32]struct{}{} {
		ti, ok := taint[cur]
		if !ok {
			break
		}
		parts = append(parts, p.ShortName(cur.Func))
		if !ti.hasNext {
			parts = append(parts, ti.source+" at "+p.RelPosition(ti.srcPos))
			break
		}
		next := ti.next.Callee
		if !next.Local() {
			parts = append(parts, ti.source)
			break
		}
		cur = next
	}
	return strings.Join(parts, " → ")
}
