package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cdcreplay/internal/lint/callgraph"
)

// LockorderAnalyzer builds the module's lock-acquisition graph and
// reports cycles — the static shadow of a deadlock. A node is a lock
// identity (a sync.Mutex/RWMutex struct field keyed by its owning type,
// a package-level mutex var, or a named type with an embedded mutex); an
// edge A → B means "somewhere, B is acquired while A is held", either in
// the same function body or through a call made with A held into a
// function whose transitive summary acquires B. A cycle means two
// goroutines can block on each other's held lock; the finding carries
// the full witness path with the site of every edge.
//
// The model is deliberately an over-approximation: statements are walked
// in source order without branch sensitivity, `defer mu.Unlock()` holds
// to function exit, and interface calls fan out to every implementation
// (CHA). Locks held only inside `go`-launched or deferred literals do
// not extend the spawner's held set (they run in a different schedule
// position). Local mutex variables are ignored: their instances are
// per-call and the field/global keys are where cross-goroutine ordering
// lives. Intentional cycles (e.g. ordered by an invariant the analyzer
// cannot see) are suppressed at the reported site with
// //cdc:allow(lockorder) <reason>.
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "build the lock-acquisition order graph across the call graph " +
		"and report cycles (potential deadlocks) with witness paths",
	RunModule: runLockorder,
}

// lockEvent is one ordered observation inside a function body. Call
// events carry only their site; callees are resolved through the call
// graph's edges at that site, which honors CHA interface fan-out.
type lockEvent struct {
	kind  int // lockAcquire, lockRelease, lockCall
	key   string
	rlock bool
	site  token.Pos
}

const (
	lockAcquire = iota
	lockRelease
	lockCall
)

// lockEdge is one "B acquired while A held" observation.
type lockEdge struct {
	from, to string
	site     token.Pos
	// inFn is the function the observation was made in, for the report.
	inFn string
	// indirect is set when `to` comes from a callee's summary rather
	// than a literal Lock() at site.
	indirect string
}

func runLockorder(p *ModulePass) {
	// Phase 1: per-function event streams, restricted to the effective
	// scope (the default scope is the whole module; fixtures narrow it).
	events := make(map[*callgraph.Node][]lockEvent)
	var order []*callgraph.Node
	for _, pkg := range p.ScopedPkgs() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := p.Graph.Node(fn)
				if node == nil {
					continue
				}
				evs := collectLockEvents(pkg.Info, fd.Body)
				if len(evs) > 0 {
					events[node] = evs
					order = append(order, node)
				}
			}
		}
	}

	// Phase 2: transitive acquire summaries over the call graph
	// (worklist fixpoint; Ref and Go edges excluded — a referenced
	// function may never run here, and a spawned one runs elsewhere).
	summaries := lockSummaries(p, events, order)

	// Phase 3: replay each event stream with a held-set, emitting edges.
	edges := make(map[[2]string]lockEdge)
	for _, n := range order {
		addLockEdgesFor(p, n, events[n], summaries, edges)
	}

	reportLockCycles(p, edges)
}

// lockKeyOf names the lock identity behind the receiver expression of a
// Lock/Unlock call, or "" when the expression is not a trackable lock
// (locals, anonymous struct fields, map/slice elements).
func lockKeyOf(info *types.Info, expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				expr = e.X
				continue
			}
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if base := namedOf(sel.Recv()); base != nil {
				return typeKey(base) + "." + e.Sel.Name
			}
			return ""
		}
		// Package-qualified var: pkg.mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && varIsPackageLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			return ""
		}
		if varIsPackageLevel(v) {
			return v.Pkg().Name() + "." + v.Name()
		}
		// A local or parameter whose type embeds the mutex: key by the
		// named type — all instances share the ordering discipline.
		if named := namedOf(v.Type()); named != nil {
			return typeKey(named)
		}
	}
	return ""
}

func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func varIsPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// lockMethodTarget resolves a call to (*sync.Mutex)/(*sync.RWMutex)
// Lock-family methods and returns the lock key plus the method name.
func lockMethodTarget(info *types.Info, call *ast.CallExpr) (key, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", ""
	}
	if named := namedOf(recv.Type()); named == nil ||
		(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return lockKeyOf(info, sel.X), sel.Sel.Name
	}
	return "", ""
}

// collectLockEvents linearizes one function body into lock events.
// Literals launched by go/defer statements are separate schedule
// contexts: their contents neither extend the enclosing held-set nor
// inherit it (their own edges come from their own enclosing walk, and a
// deferred Unlock is modeled as hold-to-exit by skipping the release).
func collectLockEvents(info *types.Info, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	deferredCalls := make(map[*ast.CallExpr]bool)
	detachedLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				detachedLits[lit] = true
			}
		case *ast.GoStmt:
			deferredCalls[n.Call] = true
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				detachedLits[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if detachedLits[n] {
				return false
			}
		case *ast.CallExpr:
			if key, method := lockMethodTarget(info, n); method != "" {
				if key == "" {
					return true
				}
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					if !deferredCalls[n] {
						events = append(events, lockEvent{
							kind: lockAcquire, key: key,
							rlock: strings.Contains(method, "R"), site: n.Pos(),
						})
					}
				case "Unlock", "RUnlock":
					if !deferredCalls[n] {
						events = append(events, lockEvent{kind: lockRelease, key: key, site: n.Pos()})
					}
					// Deferred unlock: the lock is held to exit; no event.
				}
				return true
			}
			if deferredCalls[n] {
				// go f() / defer f(): f's acquisitions happen outside
				// this flow position.
				return true
			}
			events = append(events, lockEvent{kind: lockCall, site: n.Pos()})
		}
		return true
	}
	ast.Inspect(body, walk)
	return events
}

// calleesAt resolves the module-local functions a call site can reach:
// the graph's static and CHA-interface edges at that exact position.
// Ref edges (function values) and go-launched calls are excluded — a
// referenced function may never run here and a spawned one runs in a
// different schedule position.
func calleesAt(n *callgraph.Node, site token.Pos) []*callgraph.Node {
	var out []*callgraph.Node
	for _, e := range n.Out {
		if e.Site != site || e.Kind == callgraph.KindRef || e.Go || !e.Callee.Local() {
			continue
		}
		out = append(out, e.Callee)
	}
	return out
}

// lockSummaries computes the transitive acquire-set of every function
// with lock events, by worklist fixpoint over the call graph. Functions
// without events contribute nothing of their own but still propagate
// their callees' sets, so a lock acquired three frames down is visible
// at the top.
func lockSummaries(p *ModulePass, events map[*callgraph.Node][]lockEvent, order []*callgraph.Node) map[*callgraph.Node]map[string]bool {
	summaries := make(map[*callgraph.Node]map[string]bool)
	// Fixpoint: iterate until no set grows. The module's lock-key
	// universe is small, so this terminates quickly; iteration over the
	// deterministic order keeps behavior reproducible (the result is a
	// set union, order-insensitive anyway).
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			s := summaries[n]
			if s == nil {
				s = make(map[string]bool)
				summaries[n] = s
			}
			before := len(s)
			for _, ev := range events[n] {
				switch ev.kind {
				case lockAcquire:
					s[ev.key] = true
				case lockCall:
					for _, callee := range calleesAt(n, ev.site) {
						for k := range summaries[callee] { //cdc:allow(maporder) set union; order-insensitive
							s[k] = true
						}
					}
				}
			}
			if len(s) != before {
				changed = true
			}
		}
	}
	return summaries
}

// addLockEdgesFor replays one function's events with a held-set and
// records "to acquired while from held" edges, first witness wins.
func addLockEdgesFor(p *ModulePass, n *callgraph.Node, evs []lockEvent, summaries map[*callgraph.Node]map[string]bool, edges map[[2]string]lockEdge) {
	var held []string
	holding := make(map[string]int)
	emit := func(from, to string, site token.Pos, indirect string) {
		if from == to {
			return
		}
		k := [2]string{from, to}
		if _, ok := edges[k]; ok {
			return
		}
		edges[k] = lockEdge{from: from, to: to, site: site, inFn: p.ShortName(n.Func), indirect: indirect}
	}
	for _, ev := range evs {
		switch ev.kind {
		case lockAcquire:
			for _, h := range held {
				emit(h, ev.key, ev.site, "")
			}
			if holding[ev.key] == 0 {
				held = append(held, ev.key)
			}
			holding[ev.key]++
		case lockRelease:
			if holding[ev.key] > 0 {
				holding[ev.key]--
				if holding[ev.key] == 0 {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == ev.key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			}
		case lockCall:
			if len(held) == 0 {
				continue
			}
			for _, callee := range calleesAt(n, ev.site) {
				summary := summaries[callee]
				if len(summary) == 0 {
					continue
				}
				keys := make([]string, 0, len(summary))
				for k := range summary { //cdc:allow(maporder) sorted on the next line
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, h := range held {
					for _, k := range keys {
						emit(h, k, ev.site, p.ShortName(callee.Func))
					}
				}
			}
		}
	}
}

// reportLockCycles finds cycles in the acquisition graph and reports
// each once, anchored at the first edge's witness site, with the full
// path in the message.
func reportLockCycles(p *ModulePass, edges map[[2]string]lockEdge) {
	adj := make(map[string][]string)
	nodes := make(map[string]bool)
	for k := range edges { //cdc:allow(maporder) adjacency lists are sorted below
		adj[k[0]] = append(adj[k[0]], k[1])
		nodes[k[0]], nodes[k[1]] = true, true
	}
	var names []string
	for n := range nodes { //cdc:allow(maporder) sorted on the next line
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sort.Strings(adj[n])
	}

	seen := make(map[string]bool)
	var path []string
	onPath := make(map[string]bool)
	var dfs func(string)
	var cycles [][]string
	visited := make(map[string]bool)
	dfs = func(n string) {
		path = append(path, n)
		onPath[n] = true
		for _, m := range adj[n] {
			if onPath[m] {
				// Extract the cycle m ... n → m.
				start := 0
				for i, v := range path {
					if v == m {
						start = i
						break
					}
				}
				cyc := append([]string(nil), path[start:]...)
				if key := canonicalCycle(cyc); !seen[key] {
					seen[key] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if !visited[m] {
				dfs(m)
			}
		}
		// Note: nodes are not marked globally visited until their whole
		// subtree is done, so distinct cycles through shared nodes are
		// still found from later roots.
		onPath[n] = false
		path = path[:len(path)-1]
		visited[n] = true
	}
	for _, n := range names {
		if !visited[n] {
			dfs(n)
		}
	}

	for _, cyc := range cycles {
		// Rotate so the smallest key leads: stable anchor and message.
		rot := canonicalRotate(cyc)
		var steps []string
		for i := range rot {
			from, to := rot[i], rot[(i+1)%len(rot)]
			e := edges[[2]string{from, to}]
			loc := p.RelPosition(e.site)
			if e.indirect != "" {
				steps = append(steps, fmt.Sprintf("%s → %s (call into %s at %s, in %s)", from, to, e.indirect, loc, e.inFn))
			} else {
				steps = append(steps, fmt.Sprintf("%s → %s (locked at %s, in %s)", from, to, loc, e.inFn))
			}
		}
		first := edges[[2]string{rot[0], rot[1%len(rot)]}]
		p.Reportf(first.site,
			"lock-order cycle (potential deadlock): %s; acquire these locks in one global order or document the invariant with //cdc:allow(lockorder)",
			strings.Join(steps, "; "))
	}
}

func canonicalRotate(cyc []string) []string {
	min := 0
	for i, v := range cyc {
		if v < cyc[min] {
			min = i
		}
	}
	return append(append([]string(nil), cyc[min:]...), cyc[:min]...)
}

func canonicalCycle(cyc []string) string {
	return strings.Join(canonicalRotate(cyc), "→")
}
