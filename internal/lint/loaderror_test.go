package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"cdcreplay/internal/lint"
)

// TestLoadErrorsAreFindings pins the failure-is-visible contract: a
// package that fails to parse or typecheck becomes a loaderror finding
// (not a silent skip and not a fatal error), importers of a broken
// package are reported too, and healthy sibling packages are still
// analyzed.
func TestLoadErrorsAreFindings(t *testing.T) {
	cfg := lint.Config{Scopes: map[string][]string{"nodeterm": {"good"}}}
	findings, err := lint.Run(filepath.Join("testdata", "src", "broken"), []string{"./..."}, lint.Analyzers(), cfg)
	if err != nil {
		t.Fatalf("Run returned a fatal error, want loaderror findings: %v", err)
	}

	byCheck := make(map[string][]lint.Finding)
	for _, f := range findings {
		byCheck[f.Check] = append(byCheck[f.Check], f)
	}

	loadErrs := byCheck[lint.LoadErrorCheck]
	if len(loadErrs) == 0 {
		t.Fatal("no loaderror findings for a module with broken packages")
	}
	var sawTypeErr, sawParseErr, sawCascade bool
	for _, f := range loadErrs {
		if f.File == "" {
			t.Errorf("loaderror finding without a file: %s", f)
		}
		switch {
		case strings.HasPrefix(f.File, "bad/"):
			sawTypeErr = true
		case strings.HasPrefix(f.File, "synbad/"):
			sawParseErr = true
		case strings.HasPrefix(f.File, "dep/"):
			sawCascade = true
		}
	}
	if !sawTypeErr {
		t.Error("type-check failure in bad/ not reported")
	}
	if !sawParseErr {
		t.Error("parse failure in synbad/ not reported")
	}
	if !sawCascade {
		t.Error("importer of a broken package (dep/) not reported")
	}

	// The healthy package was still analyzed.
	var sawGood bool
	for _, f := range byCheck["nodeterm"] {
		if strings.HasPrefix(f.File, "good/") {
			sawGood = true
		}
	}
	if !sawGood {
		t.Errorf("healthy package good/ was not analyzed; findings: %v", findings)
	}
}
