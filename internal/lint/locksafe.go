package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LocksafeAnalyzer flags two lock-misuse classes that corrupt the
// recorder's concurrency silently rather than loudly.
//
// Copied locks: a sync.Mutex/Once/WaitGroup value that is copied (value
// receiver, range copy, plain assignment from an existing value) forks the
// lock state — two goroutines each lock their own copy and the critical
// section evaporates. This overlaps go vet's copylocks but runs in the
// same pass as the CDC-specific checks so one tool gates CI.
//
// Unaligned atomics: sync/atomic's 64-bit functions require 8-byte
// alignment, which Go only guarantees for struct fields at 8-aligned
// offsets; on 32-bit platforms a misplaced field panics at runtime.
// Offsets are computed under a 32-bit size model so the check bites even
// though CI runs 64-bit. (The newer atomic.Int64/Uint64 types are always
// aligned and are the preferred fix.)
var LocksafeAnalyzer = &Analyzer{
	Name: "locksafe",
	Doc: "flag copied sync.Mutex/Once/WaitGroup values and 64-bit " +
		"sync/atomic ops on fields not 8-aligned under a 32-bit layout",
	Run: runLocksafe,
}

// locksafeSyncTypes are the sync types whose values must never be copied
// after first use.
var locksafeSyncTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"Once":      true,
	"WaitGroup": true,
	"Cond":      true,
	"Map":       true,
	"Pool":      true,
}

// locksafeAtomic64Funcs are the sync/atomic package functions needing
// 8-byte alignment of their operand.
var locksafeAtomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// locksafeSizes models a 32-bit platform (the strictest alignment case).
var locksafeSizes = types.SizesFor("gc", "386")

func runLocksafe(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkValueReceiver(pass, n)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
						checkValueCopy(pass, rhs)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(pass, v)
				}
			case *ast.CallExpr:
				checkAtomicAlign(pass, n)
			}
			return true
		})
	}
}

// lockPath returns a description of the sync type t contains (directly or
// through struct/array nesting), or "" if it holds none.
func lockPath(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && locksafeSyncTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockPath(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPath(u.Field(i).Type(), seen); p != "" {
				return u.Field(i).Name() + " (" + p + ")"
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

func checkValueReceiver(pass *Pass, fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return
	}
	recv := fn.Recv.List[0]
	if _, isPtr := recv.Type.(*ast.StarExpr); isPtr {
		return
	}
	tv, ok := pass.Info.Types[recv.Type]
	if !ok {
		return
	}
	if p := lockPath(tv.Type, nil); p != "" {
		pass.Reportf(fn.Name.Pos(),
			"method %s has a value receiver containing %s: every call copies the lock — use a pointer receiver",
			fn.Name.Name, p)
	}
}

func checkRangeCopy(pass *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// The value var is a definition, so its type lives in Defs, which
	// TypeOf consults.
	typ := pass.Info.TypeOf(rng.Value)
	if typ == nil {
		return
	}
	if p := lockPath(typ, nil); p != "" {
		pass.Reportf(rng.Value.Pos(),
			"range copies values containing %s: iterate by index or over pointers instead",
			p)
	}
}

// checkValueCopy flags assignment from an existing addressable value whose
// type contains a lock. Composite literals and calls construct fresh
// values and are fine.
func checkValueCopy(pass *Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	tv, ok := pass.Info.Types[rhs]
	if !ok || !tv.IsValue() {
		return
	}
	if p := lockPath(tv.Type, nil); p != "" {
		pass.Reportf(rhs.Pos(),
			"assignment copies a value containing %s: share it through a pointer instead",
			p)
	}
}

func checkAtomicAlign(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !locksafeAtomic64Funcs[obj.Name()] {
		return
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return
	}
	field, ok := addr.X.(*ast.SelectorExpr)
	if !ok {
		return
	}
	off, known := fieldOffset32(pass, field)
	if known && off%8 != 0 {
		pass.Reportf(call.Pos(),
			"atomic.%s on field %s at 32-bit offset %d (not 8-aligned): panics on 32-bit platforms — move the field first or use atomic.Int64/Uint64",
			obj.Name(), field.Sel.Name, off)
	}
}

// fieldOffset32 computes the byte offset of a (possibly nested) field
// selection from the outermost struct under the 32-bit size model.
// Returns known=false when the expression is not a plain field chain.
func fieldOffset32(pass *Pass, sel *ast.SelectorExpr) (int64, bool) {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return 0, false
	}
	off, ok := structFieldOffset(selection)
	if !ok {
		return 0, false
	}
	// Accumulate enclosing field selections (&a.b.c): alignment of c
	// within b is only meaningful relative to a's layout.
	if inner, isSel := sel.X.(*ast.SelectorExpr); isSel {
		if innerSel, ok := pass.Info.Selections[inner]; ok && innerSel.Kind() == types.FieldVal {
			// Pointer indirection resets layout: (&a.b).c via pointer field
			// starts a fresh allocation with guaranteed 8-alignment.
			if _, isPtr := innerSel.Type().(*types.Pointer); !isPtr {
				innerOff, ok := fieldOffset32(pass, inner)
				if !ok {
					return 0, false
				}
				return innerOff + off, true
			}
		}
	}
	return off, true
}

// structFieldOffset resolves one selection's offset within its immediate
// struct, walking any embedded-field hops in the selection index chain.
func structFieldOffset(selection *types.Selection) (int64, bool) {
	t := selection.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	var total int64
	index := selection.Index()
	for i, idx := range index {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for j := range fields {
			fields[j] = st.Field(j)
		}
		offsets := locksafeSizes.Offsetsof(fields)
		total += offsets[idx]
		t = st.Field(idx).Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			// An embedded-pointer hop starts a fresh (8-aligned heap)
			// allocation; alignment restarts there.
			if i < len(index)-1 {
				total = 0
			}
		}
	}
	return total, true
}
