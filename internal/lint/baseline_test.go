package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cdcreplay/internal/lint"
)

func mkFinding(check, file, msg string, line int) lint.Finding {
	return lint.Finding{Check: check, File: file, Line: line, Col: 1, Message: msg}
}

// TestBaselineGrandfathersAndRatchets pins the core ratchet semantics:
// baselined findings pass, fresh ones fail, line moves don't matter,
// multiplicity does.
func TestBaselineGrandfathersAndRatchets(t *testing.T) {
	old := []lint.Finding{
		mkFinding("nodeterm", "a.go", "clock read", 10),
		mkFinding("errsink", "b.go", "dropped error", 20),
	}
	b := lint.NewBaseline(old)

	// Same findings → all grandfathered, nothing stale.
	fresh, stale := b.Apply(old)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("identical findings: fresh=%v stale=%v, want none", fresh, stale)
	}

	// A grandfathered finding that moved lines still matches.
	moved := []lint.Finding{
		mkFinding("nodeterm", "a.go", "clock read", 99),
		mkFinding("errsink", "b.go", "dropped error", 21),
	}
	fresh, stale = b.Apply(moved)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Fatalf("moved findings: fresh=%v stale=%v, want none", fresh, stale)
	}

	// A new finding is fresh even though its file has a baselined one.
	grown := append(append([]lint.Finding(nil), old...),
		mkFinding("nodeterm", "a.go", "second clock read", 30))
	fresh, _ = b.Apply(grown)
	if len(fresh) != 1 || fresh[0].Message != "second clock read" {
		t.Fatalf("grown findings: fresh=%v, want the new one only", fresh)
	}

	// A second identical finding in the same file exceeds the entry's
	// multiplicity budget and is fresh.
	doubled := append(append([]lint.Finding(nil), old...),
		mkFinding("nodeterm", "a.go", "clock read", 50))
	fresh, _ = b.Apply(doubled)
	if len(fresh) != 1 {
		t.Fatalf("doubled finding: fresh=%v, want exactly one", fresh)
	}

	// A fixed finding turns its entry stale.
	fixed := old[:1]
	fresh, stale = b.Apply(fixed)
	if len(fresh) != 0 || len(stale) != 1 || stale[0].Check != "errsink" {
		t.Fatalf("fixed finding: fresh=%v stale=%v, want one stale errsink", fresh, stale)
	}
}

// TestBaselineShrinkOnly pins the one-way ratchet: Shrink removes stale
// entries and never adds, even when fresh findings exist.
func TestBaselineShrinkOnly(t *testing.T) {
	b := lint.NewBaseline([]lint.Finding{
		mkFinding("nodeterm", "a.go", "clock read", 10),
		mkFinding("errsink", "b.go", "dropped error", 20),
	})
	current := []lint.Finding{
		mkFinding("nodeterm", "a.go", "clock read", 10),   // still present
		mkFinding("maporder", "c.go", "map iteration", 5), // fresh, must NOT be absorbed
	}
	shrunk := b.Shrink(current)
	if len(shrunk.Entries) != 1 {
		t.Fatalf("shrunk entries = %+v, want just the surviving nodeterm entry", shrunk.Entries)
	}
	if e := shrunk.Entries[0]; e.Check != "nodeterm" || e.File != "a.go" {
		t.Fatalf("surviving entry = %+v, want the nodeterm one", e)
	}
	// The fresh maporder finding still fails against the shrunk baseline.
	fresh, _ := shrunk.Apply(current)
	if len(fresh) != 1 || fresh[0].Check != "maporder" {
		t.Fatalf("fresh after shrink = %v, want the maporder finding", fresh)
	}
}

// TestBaselineFileRoundTrip writes a baseline to disk and loads it back;
// also checks the missing-file and bad-version paths.
func TestBaselineFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, lint.BaselineName)

	b := lint.NewBaseline([]lint.Finding{mkFinding("panicfree", "x.go", "library panic", 7)})
	var buf bytes.Buffer
	if err := lint.WriteBaseline(&buf, b); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if len(got.Entries) != 1 || got.Entries[0] != b.Entries[0] {
		t.Fatalf("round trip changed entries: %+v != %+v", got.Entries, b.Entries)
	}

	// Missing file = empty baseline, not an error.
	empty, err := lint.LoadBaseline(filepath.Join(dir, "absent.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if len(empty.Entries) != 0 {
		t.Fatalf("missing baseline has entries: %+v", empty.Entries)
	}

	// Unsupported version is an explicit error, not silent acceptance.
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Fatal("LoadBaseline accepted an unsupported version")
	}
}
