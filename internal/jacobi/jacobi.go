// Package jacobi implements a Jacobi iterative Poisson solver with halo
// exchange — the paper's hidden-determinism workload (§6.3, evaluated on
// the Himeno benchmark [11]).
//
// The grid is decomposed into horizontal slabs, one per rank. Every
// iteration each rank posts MPI_ANY_SOURCE receives for its halo rows,
// sends its boundary rows to its neighbours, completes the receives with
// Waitall, and relaxes its interior. The receive order is completely
// deterministic — only one sender can match each (direction) tag — yet the
// wildcard makes it *look* non-deterministic to a record-and-replay tool,
// so every receive must be recorded (§6.3: no tool can detect hidden
// determinism without observing the runtime behaviour). The regularity of
// the resulting event stream is exactly what makes CDC's LP encoding
// collapse it to almost nothing (Fig. 17).
package jacobi

import (
	"encoding/binary"
	"fmt"
	"math"

	"cdcreplay/internal/simmpi"
)

// Message tags by direction of travel.
const (
	// TagDown marks a boundary row traveling downward (received from the
	// upper neighbour).
	TagDown = 21
	// TagUp marks a boundary row traveling upward (received from the
	// lower neighbour).
	TagUp = 22
)

// Params configure a solver run.
type Params struct {
	// Rows is the number of interior grid rows per rank. Default 16.
	Rows int
	// Cols is the number of grid columns. Default 32.
	Cols int
	// Iterations is the number of Jacobi sweeps. Default 100.
	Iterations int
	// CheckEvery controls how often the global residual is reduced.
	// Default 25.
	CheckEvery int
}

func (p *Params) fill() {
	if p.Rows == 0 {
		p.Rows = 16
	}
	if p.Cols == 0 {
		p.Cols = 32
	}
	if p.Iterations == 0 {
		p.Iterations = 100
	}
	if p.CheckEvery == 0 {
		p.CheckEvery = 25
	}
}

// Result summarizes a run.
type Result struct {
	// Residual is the final global residual.
	Residual float64
	// Checksum is a deterministic sum of this rank's slab, for replay
	// equality checks.
	Checksum float64
	// HaloReceives counts the receives this rank completed.
	HaloReceives uint64
}

func encodeRow(row []float64) []byte {
	buf := make([]byte, 8*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeRow(dst []float64, b []byte) error {
	if len(b) != 8*len(dst) {
		return fmt.Errorf("jacobi: halo row is %d bytes, want %d", len(b), 8*len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// Run executes the solver on one rank. All ranks must call Run with
// identical Params.
func Run(mpi simmpi.MPI, p Params) (Result, error) {
	p.fill()
	res := Result{}
	rank, size := mpi.Rank(), mpi.Size()

	// Slab with two halo rows (index 0 and Rows+1).
	rows, cols := p.Rows, p.Cols
	cur := make([][]float64, rows+2)
	next := make([][]float64, rows+2)
	for i := range cur {
		cur[i] = make([]float64, cols)
		next[i] = make([]float64, cols)
	}
	// Dirichlet condition: the global top edge is hot.
	if rank == 0 {
		for j := 0; j < cols; j++ {
			cur[0][j] = 1.0
			next[0][j] = 1.0
		}
	}

	up, down := rank-1, rank+1
	for iter := 0; iter < p.Iterations; iter++ {
		// Post wildcard halo receives (hidden determinism: the sender is
		// unique per tag, but the receive cannot express that).
		var reqs []*simmpi.Request
		recvRows := make([][]float64, 0, 2)
		if up >= 0 {
			req, err := mpi.Irecv(simmpi.AnySource, TagDown)
			if err != nil {
				return res, err
			}
			reqs = append(reqs, req)
			recvRows = append(recvRows, cur[0])
		}
		if down < size {
			req, err := mpi.Irecv(simmpi.AnySource, TagUp)
			if err != nil {
				return res, err
			}
			reqs = append(reqs, req)
			recvRows = append(recvRows, cur[rows+1])
		}
		if up >= 0 {
			if err := mpi.Send(up, TagUp, encodeRow(cur[1])); err != nil {
				return res, err
			}
		}
		if down < size {
			if err := mpi.Send(down, TagDown, encodeRow(cur[rows])); err != nil {
				return res, err
			}
		}
		if len(reqs) > 0 {
			sts, err := mpi.Waitall(reqs)
			if err != nil {
				return res, err
			}
			for i, st := range sts {
				if err := decodeRow(recvRows[i], st.Data); err != nil {
					return res, err
				}
				res.HaloReceives++
			}
		}

		// Relax the interior.
		var local float64
		for i := 1; i <= rows; i++ {
			for j := 0; j < cols; j++ {
				l, r := j-1, j+1
				var vl, vr float64
				if l >= 0 {
					vl = cur[i][l]
				}
				if r < cols {
					vr = cur[i][r]
				}
				v := 0.25 * (cur[i-1][j] + cur[i+1][j] + vl + vr)
				d := v - cur[i][j]
				local += d * d
				next[i][j] = v
			}
		}
		cur, next = next, cur
		// Re-pin the hot edge after the swap.
		if rank == 0 {
			for j := 0; j < cols; j++ {
				cur[0][j] = 1.0
			}
		}

		if (iter+1)%p.CheckEvery == 0 || iter+1 == p.Iterations {
			r, err := mpi.Allreduce(local, simmpi.OpSum)
			if err != nil {
				return res, err
			}
			res.Residual = math.Sqrt(r)
		}
	}
	for i := 1; i <= rows; i++ {
		for j := 0; j < cols; j++ {
			res.Checksum += cur[i][j] * float64(i*cols+j+1)
		}
	}
	return res, nil
}
