package jacobi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

func TestRowCodecRoundTrip(t *testing.T) {
	row := []float64{1, 0.5, -3.25, 0}
	got := make([]float64, 4)
	if err := decodeRow(got, encodeRow(row)); err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("got %v want %v", got, row)
		}
	}
	if err := decodeRow(got, []byte{1}); err == nil {
		t.Fatal("accepted short row")
	}
}

func runPlain(t *testing.T, n int, seed int64, params Params) []Result {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{Seed: seed, MaxJitter: 4})
	results := make([]Result, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		r, err := Run(mpi, params)
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
		mu.Lock()
		results[rank] = r
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// The solver is deterministic despite its ANY_SOURCE receives: two runs
// produce identical residuals and checksums — the hidden determinism of
// §6.3.
func TestHiddenDeterminism(t *testing.T) {
	params := Params{Rows: 8, Cols: 16, Iterations: 40}
	a := runPlain(t, 4, 1, params)
	b := runPlain(t, 4, 99, params) // different network timing
	for rank := range a {
		if a[rank].Checksum != b[rank].Checksum {
			t.Fatalf("rank %d checksum differs across runs: %v vs %v", rank, a[rank].Checksum, b[rank].Checksum)
		}
	}
	if a[0].Residual != b[0].Residual {
		t.Fatalf("residual differs: %v vs %v", a[0].Residual, b[0].Residual)
	}
}

func TestResidualDecreases(t *testing.T) {
	short := runPlain(t, 3, 2, Params{Rows: 8, Cols: 16, Iterations: 10})
	long := runPlain(t, 3, 2, Params{Rows: 8, Cols: 16, Iterations: 200})
	if long[0].Residual >= short[0].Residual {
		t.Fatalf("residual did not decrease: %v (10 iters) vs %v (200 iters)", short[0].Residual, long[0].Residual)
	}
}

func TestHeatPropagatesFromHotEdge(t *testing.T) {
	results := runPlain(t, 2, 3, Params{Rows: 6, Cols: 8, Iterations: 300})
	// The top rank holds the hot boundary; its slab must carry more heat
	// than the bottom rank's.
	if results[0].Checksum <= results[1].Checksum {
		t.Fatalf("heat did not propagate downward: top %v bottom %v", results[0].Checksum, results[1].Checksum)
	}
	if results[0].HaloReceives == 0 {
		t.Fatal("no halo receives")
	}
}

func TestSingleRankNeedsNoCommunication(t *testing.T) {
	results := runPlain(t, 1, 4, Params{Rows: 6, Cols: 8, Iterations: 20})
	if results[0].HaloReceives != 0 {
		t.Fatalf("single rank performed %d halo receives", results[0].HaloReceives)
	}
}

// TestRecordReplay verifies the solver replays exactly under the tool
// stack, and that the record is small (the Fig. 17 property is measured in
// the harness; here we just require the pipeline to work on Waitall-style
// traffic).
func TestRecordReplay(t *testing.T) {
	const n = 3
	params := Params{Rows: 6, Cols: 12, Iterations: 60}

	w := simmpi.NewWorld(n, simmpi.Options{Seed: 5, MaxJitter: 6})
	files := make([][]byte, n)
	checks := make([]float64, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 16})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		r, rerr := Run(rec, params)
		if cerr := rec.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		mu.Lock()
		files[rank] = buf.Bytes()
		checks[rank] = r.Checksum
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}

	w2 := simmpi.NewWorld(n, simmpi.Options{Seed: 66, MaxJitter: 6})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{})
		r, rerr := Run(rp, params)
		if rerr != nil {
			return fmt.Errorf("rank %d: %w", rank, rerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		if r.Checksum != checks[rank] {
			return fmt.Errorf("rank %d checksum: replay %v != record %v", rank, r.Checksum, checks[rank])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
}
