// Package baseline implements the comparison recorders of the paper's
// evaluation (§6.1, Fig. 13):
//
//   - Raw: the traditional order-replay format of Fig. 4, bit-packed at
//     162 bits per row (count 64, flag 1, with_next 1, rank 32, clock 64),
//     with no compression;
//   - Gzip: the same packed rows passed through gzip;
//   - RE: CDC's redundancy elimination only (Fig. 6 tables, plain varints)
//     followed by gzip — the paper's "CDC (RE)" bar.
//
// The full "CDC (RE+PE+LPE)" and "CDC" methods come from internal/core; the
// former is the core encoder with all callsites merged (no MF
// identification), the latter with per-callsite streams (§4.4). The Method
// interface lets the harness drive all five over an identical event stream.
package baseline

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"io"

	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// BitsPerEvent is the paper's accounting for one uncompressed record row.
const BitsPerEvent = 162

// Method is a recording backend fed with the per-callsite event stream.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Observe feeds one record-table row.
	Observe(callsite uint64, ev tables.Event) error
	// Close flushes buffered state.
	Close() error
	// BytesWritten reports the total encoded size (exact after Close).
	BytesWritten() int64
}

type countingWriter struct {
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	cw.n += int64(len(p))
	return len(p), nil
}

// bitWriter packs bits MSB-first into an io.Writer.
type bitWriter struct {
	w    io.Writer
	cur  uint8
	nbit uint8
	err  error
}

func (b *bitWriter) writeBits(v uint64, n uint8) {
	for i := int(n) - 1; i >= 0; i-- {
		bit := uint8(v>>uint(i)) & 1
		b.cur = b.cur<<1 | bit
		b.nbit++
		if b.nbit == 8 {
			if b.err == nil {
				_, b.err = b.w.Write([]byte{b.cur})
			}
			b.cur, b.nbit = 0, 0
		}
	}
}

func (b *bitWriter) flush() error {
	if b.nbit > 0 {
		pad := 8 - b.nbit
		b.cur <<= pad
		if b.err == nil {
			_, b.err = b.w.Write([]byte{b.cur})
		}
		b.cur, b.nbit = 0, 0
	}
	return b.err
}

func packEvent(b *bitWriter, ev tables.Event) {
	b.writeBits(ev.Count, 64)
	var flag, withNext uint64
	if ev.Flag {
		flag = 1
	}
	if ev.WithNext {
		withNext = 1
	}
	b.writeBits(flag, 1)
	b.writeBits(withNext, 1)
	b.writeBits(uint64(uint32(ev.Rank)), 32)
	b.writeBits(ev.Clock, 64)
}

// Raw is the uncompressed traditional recorder.
type Raw struct {
	cw countingWriter
	bw bitWriter
}

// NewRaw creates a Raw method.
func NewRaw() *Raw {
	r := &Raw{}
	r.bw.w = &r.cw
	return r
}

// Name implements Method.
func (r *Raw) Name() string { return "w/o compression" }

// Observe implements Method.
func (r *Raw) Observe(_ uint64, ev tables.Event) error {
	packEvent(&r.bw, ev)
	return r.bw.err
}

// Close implements Method.
func (r *Raw) Close() error { return r.bw.flush() }

// BytesWritten implements Method.
func (r *Raw) BytesWritten() int64 { return r.cw.n }

// Gzip packs rows like Raw and pipes them through gzip. A bufio layer
// batches the bit-packer's byte-at-a-time output so deflate sees large
// writes — without it the per-call overhead would dominate the recording
// cost and distort the Fig. 16 comparison.
type Gzip struct {
	cw countingWriter
	zw *gzip.Writer
	bf *bufio.Writer
	bw bitWriter
}

// NewGzip creates a Gzip method.
func NewGzip() *Gzip {
	g := &Gzip{}
	g.zw = gzip.NewWriter(&g.cw)
	g.bf = bufio.NewWriterSize(g.zw, 32<<10)
	g.bw.w = g.bf
	return g
}

// Name implements Method.
func (g *Gzip) Name() string { return "gzip" }

// Observe implements Method.
func (g *Gzip) Observe(_ uint64, ev tables.Event) error {
	packEvent(&g.bw, ev)
	return g.bw.err
}

// Close implements Method.
func (g *Gzip) Close() error {
	if err := g.bw.flush(); err != nil {
		return err
	}
	if err := g.bf.Flush(); err != nil {
		return err
	}
	return g.zw.Close()
}

// BytesWritten implements Method.
func (g *Gzip) BytesWritten() int64 { return g.cw.n }

// RE applies redundancy elimination only, serializing the Fig. 6 tables as
// plain varints (no permutation or LP encoding), then gzip.
type RE struct {
	cw          countingWriter
	zw          *gzip.Writer
	chunkEvents int
	events      []tables.Event
	matched     int
}

// NewRE creates an RE method flushing every chunkEvents matched rows
// (0 means 4096, matching the core encoder's default).
func NewRE(chunkEvents int) *RE {
	if chunkEvents == 0 {
		chunkEvents = 4096
	}
	re := &RE{chunkEvents: chunkEvents}
	re.zw = gzip.NewWriter(&re.cw)
	return re
}

// Name implements Method.
func (re *RE) Name() string { return "CDC (RE)" }

// Observe implements Method.
func (re *RE) Observe(_ uint64, ev tables.Event) error {
	re.events = append(re.events, ev)
	if ev.Flag {
		re.matched++
	}
	if re.matched >= re.chunkEvents {
		return re.flush()
	}
	return nil
}

func (re *RE) flush() error {
	if len(re.events) == 0 {
		return nil
	}
	red := tables.Eliminate(re.events)
	re.events = re.events[:0]
	re.matched = 0
	// Columnar, fixed-width layout for the matched table: adjacent clock
	// values share their high bytes, which gzip exploits far better than
	// interleaved row-major varints would.
	var w varint.Writer
	w.Uint(uint64(len(red.Matched)))
	buf := make([]byte, 0, 12*len(red.Matched))
	for _, m := range red.Matched {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Rank))
	}
	for _, m := range red.Matched {
		buf = binary.LittleEndian.AppendUint64(buf, m.Clock)
	}
	w.Bytes(buf)
	w.Uint(uint64(len(red.WithNext)))
	for _, i := range red.WithNext {
		w.Uint(uint64(i))
	}
	w.Uint(uint64(len(red.Unmatched)))
	for _, u := range red.Unmatched {
		w.Uint(uint64(u.Index))
		w.Uint(u.Count)
	}
	_, err := re.zw.Write(w.Result())
	return err
}

// Close implements Method.
func (re *RE) Close() error {
	if err := re.flush(); err != nil {
		return err
	}
	return re.zw.Close()
}

// BytesWritten implements Method.
func (re *RE) BytesWritten() int64 { return re.cw.n }

// CDCMethod adapts a core.Encoder to Method. With MergeCallsites set, all
// events funnel into callsite 0, disabling MF identification — the paper's
// "CDC (RE + PE + LPE)" variant; otherwise it is the complete "CDC".
type CDCMethod struct {
	name           string
	enc            *core.Encoder
	mergeCallsites bool
}

// NewCDC wraps enc as the full CDC method.
func NewCDC(enc *core.Encoder) *CDCMethod {
	return &CDCMethod{name: "CDC", enc: enc}
}

// NewCDCNoMFID wraps enc as the CDC variant without MF identification.
func NewCDCNoMFID(enc *core.Encoder) *CDCMethod {
	return &CDCMethod{name: "CDC (RE + PE + LPE)", enc: enc, mergeCallsites: true}
}

// Name implements Method.
func (m *CDCMethod) Name() string { return m.name }

// RegisterCallsite forwards MF callsite names into the record stream.
// With MF identification disabled the merged stream needs no names.
func (m *CDCMethod) RegisterCallsite(id uint64, name string) error {
	if m.mergeCallsites {
		return nil
	}
	return m.enc.RegisterCallsite(id, name)
}

// Observe implements Method.
func (m *CDCMethod) Observe(callsite uint64, ev tables.Event) error {
	if m.mergeCallsites {
		callsite = 0
	}
	return m.enc.Observe(callsite, ev)
}

// Close implements Method.
func (m *CDCMethod) Close() error { return m.enc.Close() }

// BytesWritten implements Method.
func (m *CDCMethod) BytesWritten() int64 { return m.enc.BytesWritten() }

// Stats exposes the wrapped encoder's statistics.
func (m *CDCMethod) Stats() core.Stats { return m.enc.Stats() }

// FlushAll forwards the periodic memory-bound flush (§3.5), stamping the
// rank's sampled Lamport clock into the flush-point mark.
func (m *CDCMethod) FlushAll(clock uint64) error { return m.enc.FlushAll(clock) }
