package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
)

func TestRawSizeIs162BitsPerEvent(t *testing.T) {
	r := NewRaw()
	const n = 1000
	for i := 0; i < n; i++ {
		if err := r.Observe(0, tables.Matched(3, uint64(i), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	want := int64((n*BitsPerEvent + 7) / 8)
	if r.BytesWritten() != want {
		t.Fatalf("raw size = %d bytes, want %d (%d bits/event)", r.BytesWritten(), want, BitsPerEvent)
	}
}

// bitReader mirrors bitWriter for verification.
type bitReader struct {
	buf []byte
	pos int // bit position
}

func (b *bitReader) readBits(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		byteIdx := b.pos / 8
		bitIdx := 7 - b.pos%8
		v = v<<1 | uint64(b.buf[byteIdx]>>bitIdx&1)
		b.pos++
	}
	return v
}

func TestBitPackingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	events := []tables.Event{
		tables.Matched(0, 0, false),
		tables.Matched(2147483647, 1<<63, true),
		tables.Unmatched(12345),
	}
	for i := 0; i < 50; i++ {
		events = append(events, tables.Matched(int32(rng.Intn(1000)), rng.Uint64(), rng.Intn(2) == 0))
	}

	var buf bytes.Buffer
	bw := bitWriter{w: &buf}
	for _, ev := range events {
		packEvent(&bw, ev)
	}
	if err := bw.flush(); err != nil {
		t.Fatal(err)
	}

	br := bitReader{buf: buf.Bytes()}
	for i, want := range events {
		got := tables.Event{
			Count:    br.readBits(64),
			Flag:     br.readBits(1) == 1,
			WithNext: br.readBits(1) == 1,
			Rank:     int32(uint32(br.readBits(32))),
			Clock:    br.readBits(64),
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestGzipSmallerThanRawOnRedundantStream(t *testing.T) {
	raw, gz := NewRaw(), NewGzip()
	for i := 0; i < 5000; i++ {
		ev := tables.Matched(1, uint64(i), false)
		if err := raw.Observe(0, ev); err != nil {
			t.Fatal(err)
		}
		if err := gz.Observe(0, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if gz.BytesWritten() >= raw.BytesWritten() {
		t.Fatalf("gzip %d >= raw %d", gz.BytesWritten(), raw.BytesWritten())
	}
}

func TestREFlushesOnChunkBoundary(t *testing.T) {
	re := NewRE(4)
	for i := 0; i < 10; i++ {
		if err := re.Observe(0, tables.Matched(0, uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if re.BytesWritten() == 0 {
		t.Fatal("RE wrote nothing")
	}
}

// The Fig. 13 ordering on a representative near-ordered stream:
// raw > gzip > RE > CDC-no-MFID >= CDC is the shape the paper reports
// (allowing RE vs gzip some slack at small sizes, the strict claims are
// raw >> gzip and CDC << gzip).
func TestFig13ShapeOnSyntheticStream(t *testing.T) {
	rng := rand.New(rand.NewSource(77))

	methods := []Method{NewRaw(), NewGzip(), NewRE(0)}
	cdcEnc, err := core.NewEncoder(&bytes.Buffer{}, core.EncoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noMFEnc, err := core.NewEncoder(&bytes.Buffer{}, core.EncoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	methods = append(methods, NewCDCNoMFID(noMFEnc), NewCDC(cdcEnc))

	// Two callsites with different regularity, near-ordered clocks.
	clocks := map[int32]uint64{}
	for i := 0; i < 30000; i++ {
		cs := uint64(1 + i%2)
		r := int32(rng.Intn(6))
		clocks[r] += uint64(1 + rng.Intn(2))
		ev := tables.Matched(r, clocks[r], false)
		if rng.Intn(10) == 0 {
			for _, m := range methods {
				if err := m.Observe(cs, tables.Unmatched(uint64(1+rng.Intn(4)))); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, m := range methods {
			if err := m.Observe(cs, ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	sizes := map[string]int64{}
	for _, m := range methods {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		sizes[m.Name()] = m.BytesWritten()
		t.Logf("%-22s %8d bytes", m.Name(), m.BytesWritten())
	}
	if sizes["gzip"] >= sizes["w/o compression"] {
		t.Error("gzip did not beat raw")
	}
	if sizes["CDC"] >= sizes["gzip"] {
		t.Error("CDC did not beat gzip")
	}
	if sizes["CDC (RE)"] >= sizes["w/o compression"] {
		t.Error("RE did not beat raw")
	}
}
