// Package replay implements the replay-mode tool layer (paper §3.6, §4.2
// and the Axiom 1 release rule proved correct in §5).
//
// The Replayer stacks above a manual-mode lamport layer:
//
//	app → replay.Replayer → lamport.Layer (manual) → simmpi.Comm
//
// At every MF call it polls the layer below for completions (which arrive
// in this run's non-deterministic order), holds them in a pool, and
// releases them to the application strictly in the recorded observed order.
// Because message identifiers (rank, clock) are not stored in the record,
// the observed order is reconstructed per Fig. 2's decode box: the chunk's
// live messages are ranked by the Definition 6 reference order and the
// recorded permutation difference is applied.
//
// A receive event e at observed position t (reference rank r) is released
// only when the Axiom 1 conditions hold:
//
//	(i)   clocks of earlier events are already replayed — guaranteed
//	      because releases happen in observed order and each release ticks
//	      the lamport clock via TickReceive;
//	(ii)  enough chunk messages have been received to identify the rank-r
//	      message, and
//	(iii) the candidate's clock is strictly below the local minimum clock
//	      (LMC): the smallest clock any still-missing chunk message could
//	      carry, derived from per-sender FIFO clock monotonicity. (When
//	      every chunk message has arrived the ranks are exact and the LMC
//	      test is unnecessary.)
//
// Epoch enforcement (§3.5): a live message (s, c) belongs to the current
// chunk iff prevFrontier(s) < c ≤ frontier(s), where frontier is the
// chunk's epoch line; messages beyond it wait for a later chunk.
//
// Replay assumes what the record assumed (see DESIGN.md): distinct MF
// callsites must not compete for the same messages (disjoint tags or
// sources), which the paper's workloads satisfy by construction. Within a
// callsite, requests with equal specs are interchangeable: MPI binds
// arriving messages to posted receives in arrival order, so the binding may
// differ between record and replay. The Replayer therefore releases the
// *recorded message* through whichever compatible request slot the
// application is presenting, and keeps polling a slot whose own binding is
// still outstanding (a "zombie") so that its message is harvested later.
package replay

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"cdcreplay/internal/callsite"
	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/permdiff"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// ErrDiverged reports that the replayed application issued MF calls that
// are inconsistent with the record — almost always a non-deterministic
// application input rather than a tool bug.
var ErrDiverged = errors.New("replay: application diverged from record")

// ErrExhausted reports an MF call at a callsite whose recorded stream has
// no more events.
var ErrExhausted = errors.New("replay: record exhausted")

// ErrStalled reports that the replay waited longer than the timeout for a
// message the record promises; it carries diagnostic state.
var ErrStalled = errors.New("replay: stalled waiting for recorded message")

// Options configure a Replayer.
type Options struct {
	// Timeout bounds how long a release may wait for its message.
	// Default 30s.
	Timeout time.Duration
	// DisableMFID must match the recorder's setting: all events live in
	// the callsite-0 stream.
	DisableMFID bool
	// OptimisticDelay is how long a release may stall on the strict
	// Axiom 1 safety rule before the best available candidate is released
	// optimistically. Optimism is *verified*: every release consumes a
	// collected message, so when a chunk's releases finish, all of its
	// message keys are known and the rank→key assignment is checked to be
	// monotone; a wrong guess fails the replay with ErrDiverged instead
	// of silently producing a different execution. Optimism is needed for
	// tightly-coupled blocking exchanges (halo patterns), where a
	// receiver can never locally bound a drifted-behind sender's next
	// clock (the paper's Axiom 1 assumes that bound exists). The delay is
	// a race guard: a genuinely wedged exchange has nothing in flight, so
	// waiting longer only costs latency, while releasing too early risks
	// guessing while the true message is still in transit. Default 50ms;
	// negative disables optimism.
	OptimisticDelay time.Duration
	// LiveAfterExhausted changes what happens when the record runs out —
	// the normal state of a record salvaged from a crashed run. Instead
	// of failing with ErrExhausted, the replayer hands control back to
	// the live application: MF calls at an exhausted (or never-recorded)
	// callsite match messages in this run's natural arrival order, with
	// the lamport clock still ticking. The run up to the crash frontier
	// is exact replay; past it, execution continues non-deterministically
	// like a plain run. Live reports whether and where the handback
	// happened.
	LiveAfterExhausted bool
	// OnRelease, when set, is called for every receive event handed to the
	// application, in the order the application observes them — replayed
	// releases first, live-phase deliveries after. Tests and tracing tools
	// use it to compare observed orders across runs.
	OnRelease func(st simmpi.Status)
	// Obs, when non-nil, receives the replayer's metrics (replay.* names,
	// DESIGN.md §8): match-loop stalls, group wait latency, clock-wait
	// time, and pool depth.
	Obs *obs.Registry
	// CallsiteSkip is added to the frame skip when resolving MF callsites.
	// It lets a tool layer interposed between the application and the
	// replayer (e.g. a re-recording pass in the DST harness) resolve
	// callsites to the application's program counters rather than its own.
	CallsiteSkip int
}

func (o *Options) fill() {
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.OptimisticDelay == 0 {
		o.OptimisticDelay = 50 * time.Millisecond
	}
}

// pooled is a completion harvested below but not yet released to the app.
type pooled struct {
	st  simmpi.Status
	req *simmpi.Request
}

// senderTag keys the robust identification subsequences.
type senderTag struct {
	src int32
	tag int32
}

// Replayer replays one rank's recorded receive order.
type Replayer struct {
	next *lamport.Layer
	opts Options

	streams map[uint64]*stream
	pool    []pooled
	// lastSeen tracks, per sender, the largest piggybacked clock harvested
	// so far; FIFO delivery makes it a strict lower bound on every future
	// message's clock — the basis of the LMC rule.
	lastSeen map[int32]uint64
	// outstanding holds every receive posted below (by the app through
	// Irecv, or internally as a probe) whose completion has not been
	// harvested yet. The replayer polls all of them at every MF call:
	// a completion bound to one request may have to be released through a
	// different, spec-equivalent slot.
	outstanding map[*simmpi.Request]bool
	// appDone marks requests already virtually completed for the app but
	// still outstanding below (their own binding is yet to arrive).
	appDone map[*simmpi.Request]bool

	// liveNotes records why and where each callsite went live
	// (LiveAfterExhausted mode); non-empty means the crash frontier was
	// crossed.
	liveNotes []string

	// Streaming-replay state (NewStream): the shared chunk source, chunks
	// pulled ahead for callsites not yet asking, and the latched terminal
	// source state (ErrExhausted after a clean end).
	src     ChunkSource
	pending map[uint64][]*cdcformat.Chunk
	srcErr  error

	stats Stats

	// obs instruments, nil when Options.Obs is nil (no-op calls).
	mReleases    *obs.Counter
	mOptimistic  *obs.Counter
	mLive        *obs.Counter
	mStallPolls  *obs.Counter
	mClockWaitNs *obs.Counter
	mWaitNs      *obs.Histogram
	mPool        *obs.Gauge
	obsReg       *obs.Registry
}

// Stats counts what the replayer did, for observability and tests.
type Stats struct {
	// Released is the number of receive events handed to the application.
	Released uint64
	// UnmatchedConsumed is the number of forced failed-test results.
	UnmatchedConsumed uint64
	// OptimisticReleases counts releases that bypassed the strict Axiom 1
	// rule (paper-faithful format only; always verified at chunk end).
	OptimisticReleases uint64
	// ProbesPosted counts internal re-posted receives used to fetch
	// recorded messages whose natural slot was consumed out of order.
	ProbesPosted uint64
	// ChunksVerified counts completed chunks that passed the monotone
	// rank→key check.
	ChunksVerified uint64
	// LiveReleases counts receive events delivered after the record was
	// exhausted (LiveAfterExhausted mode), in natural arrival order.
	LiveReleases uint64
}

var _ simmpi.MPI = (*Replayer)(nil)

// newReplayer builds the rank-replay shell shared by New and NewStream.
func newReplayer(next *lamport.Layer, opts Options) *Replayer {
	opts.fill()
	rp := &Replayer{
		next:        next,
		opts:        opts,
		streams:     make(map[uint64]*stream),
		lastSeen:    make(map[int32]uint64),
		outstanding: make(map[*simmpi.Request]bool),
		appDone:     make(map[*simmpi.Request]bool),
	}
	reg := opts.Obs
	rp.obsReg = reg
	rp.mReleases = reg.Counter("replay.releases")
	rp.mOptimistic = reg.Counter("replay.optimistic")
	rp.mLive = reg.Counter("replay.live.releases")
	rp.mStallPolls = reg.Counter("replay.stall.polls")
	rp.mClockWaitNs = reg.Counter("replay.clockwait.ns")
	rp.mWaitNs = reg.Histogram("replay.wait.ns", obs.LatencyBounds())
	rp.mPool = reg.Gauge("replay.pool.depth")
	return rp
}

// New creates a Replayer for one rank from a fully decoded record. next
// must be a manual-mode lamport layer (lamport.WrapManual). It is the eager
// wrapper over the streaming machinery: each callsite's fetch closure walks
// the already-decoded slice. For records too large to materialize — or to
// replay straight off the parallel decode pipeline — use NewStream.
func New(next *lamport.Layer, rec *core.Record, opts Options) *Replayer {
	rp := newReplayer(next, opts)
	for cs, chunks := range rec.Chunks {
		name := rec.Names[cs]
		if name == "" {
			name = fmt.Sprintf("callsite %#x", cs)
		}
		st := &stream{name: name}
		for ci, c := range chunks {
			st.total += c.NumMatched
			for _, e := range c.Exceptions {
				if st.excChunk == nil {
					st.excChunk = make(map[tables.MatchedEntry]int)
				}
				e.Tag = 0 // keyed by (rank, clock) only
				st.excChunk[e] = ci
			}
		}
		chunks := chunks
		next := 0
		st.fetch = func() (*cdcformat.Chunk, error) {
			if next >= len(chunks) {
				return nil, ErrExhausted
			}
			c := chunks[next]
			next++
			return c, nil
		}
		rp.streams[cs] = st
	}
	return rp
}

// CallsiteMeta is the per-callsite summary a streaming replay needs up
// front: how many matched events the record holds (for Verify) and which
// chunk ordinal each boundary-inversion exception message is pinned to
// (collect cannot judge exception membership by epoch window alone, and the
// pinning chunk may stream in long after the message arrives).
type CallsiteMeta struct {
	Chunks   int
	Events   uint64
	ExcChunk map[tables.MatchedEntry]int
}

// RecordMeta is the prescan summary of one rank's record: everything the
// replayer must know about chunks it has not streamed yet. ScanRecord
// builds it in one bounded-memory pass.
type RecordMeta struct {
	Names     map[uint64]string
	Callsites map[uint64]*CallsiteMeta
}

// ScanRecord streams a record once and summarizes it into a RecordMeta.
// The pass keeps only counters and the (rare) exception keys — not the
// chunk tables — so a record of any size prescans in bounded memory. The
// iterator is closed when the scan returns. On a decode failure the meta
// summarizing the intact prefix is returned alongside the error, so a
// caller that can forgive the damage (a store's epoch pin) keeps the
// prefix — mirroring core.DrainRecord.
func ScanRecord(it *core.RecordIter) (*RecordMeta, error) {
	defer it.Close() //cdc:allow(errsink) read-side close; decode errors surface from Next
	m := &RecordMeta{Callsites: make(map[uint64]*CallsiteMeta)}
	for {
		f, err := it.Next()
		m.Names = it.Names()
		if err == io.EOF {
			return m, nil
		}
		if err != nil {
			return m, err
		}
		if f.Chunk == nil {
			continue
		}
		cm := m.Callsites[f.Chunk.Callsite]
		if cm == nil {
			cm = &CallsiteMeta{}
			m.Callsites[f.Chunk.Callsite] = cm
		}
		cm.Events += f.Chunk.NumMatched
		for _, e := range f.Chunk.Exceptions {
			if cm.ExcChunk == nil {
				cm.ExcChunk = make(map[tables.MatchedEntry]int)
			}
			e.Tag = 0 // keyed by (rank, clock) only
			cm.ExcChunk[e] = cm.Chunks
		}
		cm.Chunks++
	}
}

// ChunkSource feeds a streaming replay chunks in record order. Next returns
// io.EOF after the last chunk; Chunk.Callsite routes each one to its
// stream. Sources need not be safe for concurrent use — the replayer pulls
// from application goroutine context, one chunk at a time.
type ChunkSource interface {
	Next() (*cdcformat.Chunk, error)
	Close() error
}

// iterSource adapts a RecordIter into a ChunkSource by skipping the
// non-chunk frames.
type iterSource struct{ it *core.RecordIter }

func (s iterSource) Next() (*cdcformat.Chunk, error) {
	for {
		f, err := s.it.Next()
		if err != nil {
			return nil, err
		}
		if f.Chunk != nil {
			return f.Chunk, nil
		}
	}
}

func (s iterSource) Close() error { return s.it.Close() }

// IterSource exposes a RecordIter's chunk frames as a ChunkSource — the
// glue between the core decode pipeline (serial or pooled) and NewStream.
func IterSource(it *core.RecordIter) ChunkSource { return iterSource{it} }

// NewStream creates a Replayer that pulls chunks from src as replay
// progresses instead of materializing the record: with a pooled decode
// behind src (core.OpenRecordOptions / OpenRecordSegments), decoded chunks
// arrive a bounded prefetch window ahead of the consumption frontier and
// the whole record is never resident at once. meta comes from a ScanRecord
// prescan of the same record (the prescan pass may — and with a store,
// should — run through the parallel decoder too).
//
// The replayer owns src and closes it in Close. Chunks for a callsite that
// outpace that callsite's consumption are buffered pending; lockstep
// callsites keep that buffer near the prefetch depth.
func NewStream(next *lamport.Layer, meta *RecordMeta, src ChunkSource, opts Options) *Replayer {
	rp := newReplayer(next, opts)
	rp.src = src
	rp.pending = make(map[uint64][]*cdcformat.Chunk)
	for cs, cm := range meta.Callsites {
		name := meta.Names[cs]
		if name == "" {
			name = fmt.Sprintf("callsite %#x", cs)
		}
		cs := cs
		st := &stream{name: name, total: cm.Events, excChunk: cm.ExcChunk}
		st.fetch = func() (*cdcformat.Chunk, error) { return rp.pullChunk(cs) }
		rp.streams[cs] = st
	}
	return rp
}

// pullChunk returns callsite cs's next chunk, demultiplexing the shared
// source: chunks for other callsites pulled along the way wait in pending.
func (rp *Replayer) pullChunk(cs uint64) (*cdcformat.Chunk, error) {
	for {
		if q := rp.pending[cs]; len(q) > 0 {
			c := q[0]
			rp.pending[cs] = q[1:]
			return c, nil
		}
		if rp.srcErr != nil {
			return nil, rp.srcErr
		}
		c, err := rp.src.Next()
		if err != nil {
			if err == io.EOF {
				err = ErrExhausted
			}
			rp.srcErr = err
			continue
		}
		if c.Callsite == cs {
			return c, nil
		}
		rp.pending[c.Callsite] = append(rp.pending[c.Callsite], c)
	}
}

// Close releases the chunk source of a streaming replay (and with it the
// decode pipeline's workers). Eager replayers have nothing to release.
func (rp *Replayer) Close() error {
	if rp.src == nil {
		return nil
	}
	return rp.src.Close()
}

// specPair is a receive spec observed at a callsite.
type specPair struct{ src, tag int }

func (sp specPair) accepts(source, tag int) bool {
	return (sp.src == simmpi.AnySource || sp.src == source) &&
		(sp.tag == simmpi.AnyTag || sp.tag == tag)
}

// stream is the replay cursor over one callsite's chunks.
type stream struct {
	name string
	// fetch returns the callsite's next chunk in record order, ErrExhausted
	// past the last one, or the decode failure. Eager replays (New) close
	// over a decoded slice; streaming replays (NewStream) pull from the
	// shared ChunkSource, so a chunk's tables are decoded no earlier than
	// the prefetch window ahead of the consumption frontier.
	fetch func() (*cdcformat.Chunk, error)
	ci    int // chunks fetched so far; the loaded chunk's ordinal is ci-1
	// total and seen count matched events: total across the whole recorded
	// stream (from the record or the prescan), seen in fetched chunks.
	// Verify reports total-seen plus the loaded chunk's unreplayed tail
	// without needing the unfetched chunks in memory.
	total  uint64
	seen   uint64
	loaded bool
	err    error
	// live marks the callsite as past its recorded events: MF calls pass
	// messages through in natural arrival order (LiveAfterExhausted).
	live bool

	// specs are the receive specs seen in MF calls at this callsite; a
	// pooled message may only be collected here if some spec accepts it.
	// This keeps callsites with disjoint traffic (different tags or
	// sources) from stealing each other's messages even when their epoch
	// windows overlap numerically.
	specs []specPair

	// Current-chunk state.
	n            int
	refAtObs     []int
	withNext     map[int64]bool
	unmatched    map[int64]uint64
	prevFrontier map[int32]uint64
	frontier     map[int32]uint64
	// tied maps a colliding clock to its recorded multiplicity; seenTied
	// counts how many messages with that clock have arrived so far.
	tied     map[uint64]uint64
	seenTied map[uint64]uint64
	// senders/tags are the chunk's reference-order sender and tag columns,
	// when the record carries the robustness extension. With them, the
	// message for reference rank R is exactly the j-th chunk message to
	// arrive in the (senders[R], tags[R]) subsequence, where j counts
	// ranks below R with the same pair (per-sender arrival order equals
	// per-sender clock order by FIFO, and any subsequence of it is still
	// ordered): identification is immediate and the Axiom 1 machinery
	// (safe, optimism) is bypassed entirely. Identification is per
	// (sender, tag) rather than per sender alone because a stream's
	// spec filter admits or rejects pooled messages whole-tag at a time,
	// so a (sender, tag) subsequence can never have spec-induced gaps.
	// Note the j-th arrival, not the next unreleased one — the
	// application can complete same-sender messages out of order
	// (paper Fig. 3).
	senders []int32
	tags    []int32
	// perKeyIndex[R] is j above; arrivals collects per-(sender, tag)
	// arrival clocks in order.
	perKeyIndex []int
	arrivals    map[senderTag][]uint64
	// excChunk pins boundary-inversion exception messages to their chunk
	// index, overriding window membership (see cdcformat.Chunk.Exceptions).
	excChunk map[tables.MatchedEntry]int
	// collected holds unreleased chunk messages sorted by (clock, rank).
	collected []pooled
	collMax   map[int32]uint64
	released  []bool // by reference rank
	// releasedKey remembers each released rank's message key for the
	// end-of-chunk monotonicity verification of optimistic releases.
	releasedKey []tables.MatchedEntry
	nReleased   int
	t           int // next observed index
}

// load decodes the next chunk's tables.
func (s *stream) load() error {
	if s.prevFrontier == nil {
		s.prevFrontier = make(map[int32]uint64)
	}
	if s.loaded {
		for r, c := range s.frontier {
			if c > s.prevFrontier[r] {
				s.prevFrontier[r] = c
			}
		}
		s.loaded = false
	}
	c, err := s.fetch()
	if err != nil {
		if errors.Is(err, ErrExhausted) {
			return ErrExhausted
		}
		return fmt.Errorf("replay: %s chunk %d: %w", s.name, s.ci, err)
	}
	s.ci++
	s.seen += c.NumMatched
	s.loaded = true
	s.n = int(c.NumMatched)
	obs, err := permdiff.Decode(s.n, c.Moves)
	if err != nil {
		return fmt.Errorf("replay: %s chunk %d: %w", s.name, s.ci-1, err)
	}
	s.refAtObs = obs
	s.withNext = make(map[int64]bool, len(c.WithNext))
	for _, i := range c.WithNext {
		s.withNext[i] = true
	}
	s.unmatched = make(map[int64]uint64, len(c.Unmatched))
	for _, u := range c.Unmatched {
		s.unmatched[u.Index] += u.Count
	}
	s.frontier = make(map[int32]uint64, len(c.EpochLine))
	for _, e := range c.EpochLine {
		s.frontier[e.Rank] = e.Clock
	}
	s.tied = make(map[uint64]uint64, len(c.TiedClocks))
	s.seenTied = make(map[uint64]uint64, len(c.TiedClocks))
	for _, t := range c.TiedClocks {
		s.tied[t.Clock] = t.Count
	}
	s.senders = c.Senders
	s.tags = c.Tags
	s.perKeyIndex = nil
	s.arrivals = nil
	if len(s.senders) > 0 && len(s.tags) == len(s.senders) {
		s.perKeyIndex = make([]int, s.n)
		counts := make(map[senderTag]int)
		for r, src := range s.senders {
			key := senderTag{src, s.tags[r]}
			s.perKeyIndex[r] = counts[key]
			counts[key]++
		}
		s.arrivals = make(map[senderTag][]uint64)
	} else {
		s.senders = nil
		s.tags = nil
	}
	s.collected = s.collected[:0]
	s.collMax = make(map[int32]uint64)
	s.released = make([]bool, s.n)
	s.releasedKey = make([]tables.MatchedEntry, s.n)
	s.nReleased = 0
	s.t = 0
	return nil
}

// verifyChunk checks, once every event of the chunk has been released,
// that the rank→message assignment is a correct sort: keys must ascend
// with rank. A strict (Axiom 1) release can never violate this; an
// optimistic release that guessed wrong is caught here.
func (s *stream) verifyChunk() error {
	if s.nReleased < s.n {
		return nil
	}
	for r := 1; r < s.n; r++ {
		if !tables.Less(s.releasedKey[r-1], s.releasedKey[r]) {
			return fmt.Errorf("%w: callsite %s chunk %d: optimistic release mis-ordered ranks %d (%d,%d) and %d (%d,%d)",
				ErrDiverged, s.name, s.ci-1,
				r-1, s.releasedKey[r-1].Rank, s.releasedKey[r-1].Clock,
				r, s.releasedKey[r].Rank, s.releasedKey[r].Clock)
		}
	}
	return nil
}

// chunkDone reports whether every event and trailing unmatched run of the
// current chunk has been consumed.
func (s *stream) chunkDone() bool {
	return s.loaded && s.t >= s.n && s.unmatched[int64(s.n)] == 0
}

// ensure makes sure a chunk with remaining work is loaded, advancing past
// finished chunks (load merges each finished chunk's frontier).
func (s *stream) ensure() error {
	for {
		if s.loaded && !s.chunkDone() {
			return nil
		}
		if err := s.load(); err != nil {
			return err
		}
	}
}

// inWindow reports whether a live message belongs to the current chunk.
func (s *stream) inWindow(src int32, clock uint64) bool {
	f, ok := s.frontier[src]
	if !ok {
		return false
	}
	return clock > s.prevFrontier[src] && clock <= f
}

// learnSpecs remembers the receive specs presented at this callsite.
func (s *stream) learnSpecs(reqs []*simmpi.Request) {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		src, tag := r.Spec()
		sp := specPair{src, tag}
		known := false
		for _, have := range s.specs {
			if have == sp {
				known = true
				break
			}
		}
		if !known {
			s.specs = append(s.specs, sp)
		}
	}
}

func (s *stream) specAccepts(source, tag int) bool {
	for _, sp := range s.specs {
		if sp.accepts(source, tag) {
			return true
		}
	}
	return false
}

// collect moves current-chunk messages from the global pool into the
// stream's sorted collection.
func (s *stream) collect(rp *Replayer) {
	if !s.loaded {
		return
	}
	kept := rp.pool[:0]
	cur := s.ci - 1
	for _, p := range rp.pool {
		key := tables.MatchedEntry{Rank: int32(p.st.Source), Clock: p.st.Clock}
		member := false
		if ci, isExc := s.excChunk[key]; isExc {
			member = ci == cur && s.specAccepts(p.st.Source, p.st.Tag)
		} else {
			member = s.specAccepts(p.st.Source, p.st.Tag) && s.inWindow(int32(p.st.Source), p.st.Clock)
		}
		if member {
			s.insert(p)
		} else {
			kept = append(kept, p)
		}
	}
	rp.pool = kept
	if s.err == nil && len(s.collected)+s.nReleased > s.n {
		s.err = fmt.Errorf("%w: callsite %s chunk %d holds %d messages but records %d — "+
			"same-spec receives are being matched through multiple MF callsites",
			ErrDiverged, s.name, s.ci-1, len(s.collected)+s.nReleased, s.n)
	}
}

func (s *stream) insert(p pooled) {
	key := tables.MatchedEntry{Rank: int32(p.st.Source), Clock: p.st.Clock}
	i := sort.Search(len(s.collected), func(i int) bool {
		e := s.collected[i]
		return !tables.Less(tables.MatchedEntry{Rank: int32(e.st.Source), Clock: e.st.Clock}, key)
	})
	s.collected = append(s.collected, pooled{})
	copy(s.collected[i+1:], s.collected[i:])
	s.collected[i] = p
	if p.st.Clock > s.collMax[int32(p.st.Source)] {
		s.collMax[int32(p.st.Source)] = p.st.Clock
	}
	if _, isTied := s.tied[p.st.Clock]; isTied {
		s.seenTied[p.st.Clock]++
	}
	if s.arrivals != nil {
		key := senderTag{int32(p.st.Source), int32(p.st.Tag)}
		s.arrivals[key] = append(s.arrivals[key], p.st.Clock)
	}
}

// lmc computes the local minimum clock: the smallest clock a still-missing
// message of the current chunk could carry.
func (s *stream) lmc(rp *Replayer) uint64 {
	lmc := uint64(math.MaxUint64)
	for src, f := range s.frontier {
		if s.collMax[src] >= f {
			continue // this sender's chunk messages all arrived
		}
		if c := rp.lastSeen[src] + 1; c < lmc {
			lmc = c
		}
	}
	return lmc
}

// allCollected reports whether every not-yet-released chunk message has
// been harvested.
func (s *stream) allCollected() bool {
	return len(s.collected) == s.n-s.nReleased
}

// candidateAt returns the index in collected of the message for observed
// position tt, or -1 if it cannot be identified safely yet (Axiom 1).
//
// The safety rule refines the paper's scalar LMC with the Definition 6
// tie-break: a still-missing message from sender s carries a clock of at
// least lastSeen(s)+1 (per-sender FIFO), so its smallest possible
// reference key is (lastSeen(s)+1, s). The candidate is safe when its own
// key (clock, src) precedes every such bound — strictly more permissive
// than requiring clock < LMC, and necessary to make tightly-coupled
// exchanges (halo patterns) progress, while remaining sound.
func (s *stream) candidateAt(rp *Replayer, tt int) int {
	if len(s.senders) > 0 {
		// Exact mode: the rank-R message is the j-th arrival of the
		// (senders[R], tags[R]) subsequence. Per-sender arrivals come in
		// clock order (FIFO) — and so does any tag-restricted subsequence
		// of them — so the j-th arrival clock identifies it even when the
		// application completes same-sender messages out of order
		// (Fig. 3) or a callsite serves several tags.
		r := s.refAtObs[tt]
		key := senderTag{s.senders[r], s.tags[r]}
		j := s.perKeyIndex[r]
		clocks := s.arrivals[key]
		if j >= len(clocks) {
			return -1
		}
		want := clocks[j]
		for k := range s.collected {
			if int32(s.collected[k].st.Source) == key.src && int32(s.collected[k].st.Tag) == key.tag &&
				s.collected[k].st.Clock == want {
				return k
			}
		}
		return -1 // already staged for another position (impossible) or gone
	}
	k := s.candidateIndex(tt)
	if k < 0 {
		return -1
	}
	if s.allCollected() || s.safe(rp, &s.collected[k]) {
		return k
	}
	return -1
}

// candidateIndex locates the best guess for observed position tt among the
// collected messages, ignoring the Axiom 1 safety conditions.
func (s *stream) candidateIndex(tt int) int {
	r := s.refAtObs[tt]
	k := r
	for j := 0; j < r; j++ {
		if s.released[j] {
			k--
		}
	}
	if k >= len(s.collected) {
		return -1
	}
	return k
}

// safe reports whether no still-missing chunk message can precede cand in
// the reference order. A missing message from sender s carries a clock of
// at least lastSeen(s)+1; it precedes cand iff its smallest possible key
// (bound, s) precedes (cand.clock, cand.src). A tie at exactly cand's
// clock is additionally impossible unless the record lists that clock as
// tied (chunk TiedClocks) — the record run saw the same message multiset,
// so an unlisted collision cannot occur in the replay run either.
func (s *stream) safe(rp *Replayer, cand *pooled) bool {
	cc, cs := cand.st.Clock, int32(cand.st.Source)
	for src, f := range s.frontier {
		if s.collMax[src] >= f {
			continue // sender's chunk messages all arrived
		}
		bound := rp.lastSeen[src] + 1
		if bound > cc {
			continue
		}
		if bound < cc {
			return false
		}
		// bound == cc: a colliding clock must be a recorded tie with
		// copies still missing, and even then only matters if the rival
		// sender sorts first.
		if s.tieUnresolved(cc) && src < cs {
			return false
		}
	}
	return true
}

// tieUnresolved reports whether clock cc is a recorded collision with
// copies that have not arrived yet.
func (s *stream) tieUnresolved(cc uint64) bool {
	want, isTied := s.tied[cc]
	return isTied && s.seenTied[cc] < want
}

// takeAt removes collected[k] as the message for observed position tt.
func (s *stream) takeAt(k, tt int) pooled {
	r := s.refAtObs[tt]
	s.released[r] = true
	s.nReleased++
	out := s.collected[k]
	s.releasedKey[r] = tables.MatchedEntry{Rank: int32(out.st.Source), Clock: out.st.Clock}
	s.collected = append(s.collected[:k], s.collected[k+1:]...)
	return out
}

// groupLen returns the size of the with_next group starting at the current
// observed index.
func (s *stream) groupLen() int {
	g := 1
	for s.t+g < s.n && s.withNext[int64(s.t+g-1)] {
		g++
	}
	return g
}

// consumeUnmatched consumes one failed-test occurrence if the record has
// one pending at the current position, returning true if this MF call must
// report "no match".
func (s *stream) consumeUnmatched() bool {
	if s.unmatched[s.cursorIndex()] > 0 {
		s.unmatched[s.cursorIndex()]--
		return true
	}
	return false
}

func (s *stream) unmatchedPending() bool { return s.unmatched[s.cursorIndex()] > 0 }

func (s *stream) cursorIndex() int64 {
	if s.t >= s.n {
		return int64(s.n)
	}
	return int64(s.t)
}

// --- Replayer: MPI surface -----------------------------------------------

// Rank returns the wrapped endpoint's rank.
func (rp *Replayer) Rank() int { return rp.next.Rank() }

// Size returns the world size.
func (rp *Replayer) Size() int { return rp.next.Size() }

// Send passes through; the lamport layer attaches the replayed clock.
func (rp *Replayer) Send(dst, tag int, data []byte) error {
	return rp.next.Send(dst, tag, data)
}

// Irecv passes through, registering the request for global polling.
func (rp *Replayer) Irecv(src, tag int) (*simmpi.Request, error) {
	req, err := rp.next.Irecv(src, tag)
	if err != nil {
		return nil, err
	}
	rp.outstanding[req] = true
	return req, nil
}

// Barrier passes through (deterministic).
func (rp *Replayer) Barrier() error { return rp.next.Barrier() }

// Allreduce passes through (deterministic).
func (rp *Replayer) Allreduce(v float64, op simmpi.ReduceOp) (float64, error) {
	return rp.next.Allreduce(v, op)
}

// Reduce passes through (deterministic).
func (rp *Replayer) Reduce(v float64, op simmpi.ReduceOp, root int) (float64, error) {
	return rp.next.Reduce(v, op, root)
}

// Bcast passes through (deterministic).
func (rp *Replayer) Bcast(data []byte, root int) ([]byte, error) {
	return rp.next.Bcast(data, root)
}

// Gather passes through (deterministic).
func (rp *Replayer) Gather(v float64, root int) ([]float64, error) {
	return rp.next.Gather(v, root)
}

// Allgather passes through (deterministic).
func (rp *Replayer) Allgather(v float64) ([]float64, error) {
	return rp.next.Allgather(v)
}

// pollBelow harvests completions of every outstanding receive into the
// pool, reporting how many arrived.
func (rp *Replayer) pollBelow() (int, error) {
	set := make([]*simmpi.Request, 0, len(rp.outstanding))
	// Harvest order only populates the pool; releases are matched by the
	// recorded (sender, clock) keys, so pool order never reaches the app.
	for r := range rp.outstanding { //cdc:allow(maporder) pool is keyed by (sender, clock); release order comes from the record
		set = append(set, r)
	}
	idxs, sts, err := rp.next.Testsome(set)
	if err != nil {
		return 0, err
	}
	for k, i := range idxs {
		req := set[i]
		delete(rp.outstanding, req)
		delete(rp.appDone, req)
		rp.pool = append(rp.pool, pooled{st: sts[k], req: req})
		if src := int32(sts[k].Source); sts[k].Clock > rp.lastSeen[src] {
			rp.lastSeen[src] = sts[k].Clock
		}
	}
	if len(idxs) > 0 {
		rp.mPool.Set(int64(len(rp.pool)))
	}
	return len(idxs), nil
}

// ensureProbes posts an internal receive for every distinct spec among
// reqs that currently has no outstanding receive able to harvest the next
// message. This is how the replayer fetches a recorded message whose
// natural slot was consumed by an out-of-recorded-order arrival — the
// re-posting technique PMPI-level replay tools use. Probes are ordinary
// requests in the outstanding set; one per spec is enough, and a probe
// that never matches is as harmless as an application receive that is
// never matched.
func (rp *Replayer) ensureProbes(reqs []*simmpi.Request) error {
	type spec struct{ src, tag int }
	needed := map[spec]bool{}
	for _, r := range reqs {
		if r == nil {
			continue
		}
		src, tag := r.Spec()
		needed[spec{src, tag}] = true
	}
	for r := range rp.outstanding {
		src, tag := r.Spec()
		delete(needed, spec{src, tag})
	}
	// Post in sorted spec order: posting order decides which request an
	// incoming message binds to when specs overlap, so map order here would
	// leak goroutine-schedule noise into an otherwise deterministic replay.
	specs := make([]spec, 0, len(needed))
	for sp := range needed { //cdc:allow(maporder) specs are sorted by (src, tag) immediately below
		specs = append(specs, sp)
	}
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].src != specs[j].src {
			return specs[i].src < specs[j].src
		}
		return specs[i].tag < specs[j].tag
	})
	for _, sp := range specs {
		probe, err := rp.next.Irecv(sp.src, sp.tag)
		if err != nil {
			return err
		}
		rp.outstanding[probe] = true
		rp.stats.ProbesPosted++
	}
	return nil
}

// stream returns the record stream for the calling MF callsite. skip is the
// number of frames between this function and the application's MF call.
//
//go:noinline
func (rp *Replayer) stream(skip int) (*stream, error) {
	cs := uint64(0)
	name := "merged"
	if !rp.opts.DisableMFID {
		cs, name = callsite.ID(skip + 1 + rp.opts.CallsiteSkip)
	}
	s, ok := rp.streams[cs]
	if !ok {
		if rp.opts.LiveAfterExhausted {
			// The application reached a callsite the (salvaged) record never
			// saw — code past the crash point. Serve it live from now on.
			s = &stream{name: name}
			rp.goLive(s, "has no recorded stream (past the crash point)")
			rp.streams[cs] = s
			return s, nil
		}
		return nil, fmt.Errorf("%w: no recorded stream for MF callsite %s", ErrDiverged, name)
	}
	return s, nil
}

// goLive switches a callsite to live pass-through and records why.
func (rp *Replayer) goLive(s *stream, why string) {
	s.live = true
	rp.liveNotes = append(rp.liveNotes,
		fmt.Sprintf("callsite %s %s after %d replayed event(s); continuing live", s.name, why, rp.stats.Released))
}

// ensureOrLive advances the stream cursor, converting exhaustion into live
// mode when the option allows it.
func (rp *Replayer) ensureOrLive(s *stream) (bool, error) {
	if s.live {
		return true, nil
	}
	err := s.ensure()
	if err == nil {
		return false, nil
	}
	if rp.opts.LiveAfterExhausted && errors.Is(err, ErrExhausted) {
		rp.goLive(s, "exhausted its recorded stream")
		return true, nil
	}
	return false, err
}

// Live reports whether the replayer crossed the crash frontier into live
// execution, and where.
func (rp *Replayer) Live() (bool, string) {
	if len(rp.liveNotes) == 0 {
		return false, ""
	}
	return true, strings.Join(rp.liveNotes, "; ")
}

// liveDeliver hands pooled messages to the application in harvest order —
// the live phase has no record to consult, so natural arrival order is the
// execution. Up to limit messages (limit < 0: no bound) are assigned to
// compatible unused slots of reqs; the lamport clock ticks per delivery so
// piggybacked clocks stay meaningful for any rank still replaying.
func (rp *Replayer) liveDeliver(reqs []*simmpi.Request, limit int) ([]int, []simmpi.Status) {
	used := make([]bool, len(reqs))
	var idxs []int
	var sts []simmpi.Status
	kept := rp.pool[:0]
	for _, p := range rp.pool {
		if limit >= 0 && len(idxs) >= limit {
			kept = append(kept, p)
			continue
		}
		slot := -1
		for i, r := range reqs { // own binding first
			if r == p.req && !used[i] && !rp.appDone[r] {
				slot = i
				break
			}
		}
		if slot < 0 {
			for i, r := range reqs {
				if r == nil || used[i] || rp.appDone[r] {
					continue
				}
				if r.Accepts(p.st.Source, p.st.Tag) {
					slot = i
					break
				}
			}
		}
		if slot < 0 {
			kept = append(kept, p)
			continue
		}
		used[slot] = true
		idxs = append(idxs, slot)
		sts = append(sts, p.st)
		rp.finishSlot(reqs[slot])
		rp.next.TickReceive(p.st.Clock)
		if rp.opts.OnRelease != nil {
			rp.opts.OnRelease(p.st)
		}
	}
	rp.pool = kept
	rp.stats.LiveReleases += uint64(len(idxs))
	rp.mLive.Add(uint64(len(idxs)))
	return idxs, sts
}

// liveTestall is the all-or-nothing live Testall: every slot must be
// satisfiable by a distinct pooled message before anything is delivered.
func (rp *Replayer) liveTestall(reqs []*simmpi.Request) (bool, []simmpi.Status, error) {
	claimed := make([]int, len(reqs))
	usedPool := make([]bool, len(rp.pool))
	for i, r := range reqs {
		if r == nil || rp.appDone[r] {
			return false, nil, fmt.Errorf("replay: live Testall slot %d already consumed", i)
		}
		found := -1
		for pi, p := range rp.pool { // own binding first
			if !usedPool[pi] && p.req == r {
				found = pi
				break
			}
		}
		if found < 0 {
			for pi, p := range rp.pool {
				if !usedPool[pi] && r.Accepts(p.st.Source, p.st.Tag) {
					found = pi
					break
				}
			}
		}
		if found < 0 {
			return false, nil, nil
		}
		usedPool[found] = true
		claimed[i] = found
	}
	msgs := make([]pooled, len(claimed))
	for i, pi := range claimed {
		msgs[i] = rp.pool[pi]
	}
	kept := rp.pool[:0]
	for pi, p := range rp.pool {
		if !usedPool[pi] {
			kept = append(kept, p)
		}
	}
	rp.pool = kept
	sts := make([]simmpi.Status, len(reqs))
	for i, m := range msgs { // deliver in request order
		sts[i] = m.st
		rp.finishSlot(reqs[i])
		rp.next.TickReceive(m.st.Clock)
		if rp.opts.OnRelease != nil {
			rp.opts.OnRelease(m.st)
		}
	}
	rp.stats.LiveReleases += uint64(len(reqs))
	rp.mLive.Add(uint64(len(reqs)))
	return true, sts, nil
}

// liveWait blocks in live mode until limit deliveries (all=false) or every
// slot (all=true) completes, polling below.
func (rp *Replayer) liveWait(reqs []*simmpi.Request, limit int, all bool, what string) ([]int, []simmpi.Status, error) {
	deadline := time.Now().Add(rp.opts.Timeout) //cdc:allow(nodetermflow) live-wait deadline is a hang guard; grant order is driven by the recorded clocks
	spins := 0
	for {
		if _, err := rp.pollBelow(); err != nil {
			return nil, nil, err
		}
		if all {
			ok, sts, err := rp.liveTestall(reqs)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				idxs := make([]int, len(reqs))
				for i := range idxs {
					idxs[i] = i
				}
				return idxs, sts, nil
			}
		} else {
			idxs, sts := rp.liveDeliver(reqs, limit)
			if len(sts) > 0 {
				return idxs, sts, nil
			}
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
		if spins%1024 == 0 && time.Now().After(deadline) { //cdc:allow(nodetermflow) stall detection deadline; grant order is driven by the recorded clocks
			return nil, nil, fmt.Errorf("%w: live-phase %s past the record's end (pool %d)", ErrStalled, what, len(rp.pool))
		}
	}
}

// awaitGroup blocks until the whole with_next group at the stream cursor is
// identified and releasable, polling below. Identified members are staged
// incrementally: a member's identification can never be invalidated by
// later arrivals, so there is no rollback.
func (rp *Replayer) awaitGroup(s *stream, reqs []*simmpi.Request) ([]pooled, error) {
	g := s.groupLen()
	if s.t+g > s.n {
		return nil, fmt.Errorf("%w: with_next group at %s[%d] exceeds chunk", ErrDiverged, s.name, s.t)
	}
	for off := 1; off < g; off++ {
		if s.unmatched[int64(s.t+off)] > 0 {
			return nil, fmt.Errorf("%w: unmatched tests recorded inside a with_next group at %s[%d]",
				ErrDiverged, s.name, s.t+off)
		}
	}
	staged := make([]pooled, 0, g)
	start := time.Now() //cdc:allow(nodetermflow) staged-wait deadline is a hang guard; grant order is driven by the recorded clocks
	deadline := start.Add(rp.opts.Timeout)
	lastProgress := start
	// clockWaitStart is set while the stream holds collected-but-unreleasable
	// candidates — time the Axiom 1 clock conditions (not message arrival)
	// are what blocks progress. Only tracked when instrumented.
	var clockWaitStart time.Time
	spins := 0
	for {
		arrived, err := rp.pollBelow()
		if err != nil {
			return nil, err
		}
		s.collect(rp)
		if s.err != nil {
			return nil, s.err
		}
		progressed := arrived > 0
		for len(staged) < g {
			k := s.candidateAt(rp, s.t+len(staged))
			if k < 0 {
				break
			}
			staged = append(staged, s.takeAt(k, s.t+len(staged)))
			progressed = true
		}
		if len(staged) == g {
			rp.mWaitNs.Observe(uint64(time.Since(start))) //cdc:allow(nodetermflow) wait latency metric for observability; grants follow the recorded clocks
			if !clockWaitStart.IsZero() {
				rp.mClockWaitNs.Add(uint64(time.Since(clockWaitStart))) //cdc:allow(nodetermflow) clock-wait latency metric for observability only
			}
			return staged, nil
		}
		if rp.mClockWaitNs != nil {
			if len(s.collected) > 0 {
				if clockWaitStart.IsZero() {
					clockWaitStart = time.Now() //cdc:allow(nodetermflow) clock-wait latency metric for observability only
				}
			} else if !clockWaitStart.IsZero() {
				rp.mClockWaitNs.Add(uint64(time.Since(clockWaitStart))) //cdc:allow(nodetermflow) clock-wait latency metric for observability only
				clockWaitStart = time.Time{}
			}
		}
		if !progressed {
			rp.mStallPolls.Inc()
		}
		if progressed {
			lastProgress = time.Now() //cdc:allow(nodetermflow) optimistic-delay progress stamp; grants still follow the recorded clocks
		} else if len(s.senders) == 0 && rp.opts.OptimisticDelay >= 0 && time.Since(lastProgress) > rp.opts.OptimisticDelay { //cdc:allow(nodetermflow) optimistic-delay heuristic for live mode; recorded-order grants are unaffected
			// Strict Axiom 1 cannot certify a candidate; release the best
			// guess to keep the system live. The end-of-chunk
			// verification in verifyChunk rejects a wrong guess. A
			// candidate whose clock is a recorded collision with missing
			// copies is never guessed: its tie partners are guaranteed
			// chunk messages, so waiting for them always terminates.
			if k := s.candidateIndex(s.t + len(staged)); k >= 0 &&
				!s.tieUnresolved(s.collected[k].st.Clock) {
				staged = append(staged, s.takeAt(k, s.t+len(staged)))
				rp.stats.OptimisticReleases++
				rp.mOptimistic.Inc()
				lastProgress = time.Now() //cdc:allow(nodetermflow) optimistic-delay progress stamp; grants still follow the recorded clocks
				continue
			}
		}
		if err := rp.ensureProbes(reqs); err != nil {
			return nil, err
		}
		spins++
		if spins%64 == 0 {
			runtime.Gosched()
		}
		if spins%1024 == 0 && time.Now().After(deadline) { //cdc:allow(nodetermflow) stall detection deadline; grant order is driven by the recorded clocks
			return nil, rp.stallError(s, len(staged), g)
		}
	}
}

func (rp *Replayer) stallError(s *stream, staged, g int) error {
	base := fmt.Errorf("%w: callsite %s chunk %d: observed event %d/%d (group %d/%d staged, %d collected, lmc %d, pool %d)",
		ErrStalled, s.name, s.ci-1, s.t, s.n, staged, g, len(s.collected), s.lmc(rp), len(rp.pool))
	tt := s.t + staged
	if len(s.senders) == 0 || tt >= s.n {
		return base
	}
	r := s.refAtObs[tt]
	key := senderTag{s.senders[r], s.tags[r]}
	var pooled []string
	for _, p := range rp.pool {
		pooled = append(pooled, fmt.Sprintf("(%d,%d,tag%d)", p.st.Source, p.st.Clock, p.st.Tag))
	}
	return fmt.Errorf("%v; awaiting rank %d = arrival %d of (sender %d, tag %d) (have %d); pool=%v specs=%v",
		base, r, s.perKeyIndex[r], key.src, key.tag, len(s.arrivals[key]), pooled, s.specs)
}

// assignSlot picks the request slot to report a released message through:
// the message's own binding if the app still owns it, otherwise any
// app-owned request with a compatible spec.
func (rp *Replayer) assignSlot(reqs []*simmpi.Request, used []bool, m pooled) (int, error) {
	for i, r := range reqs {
		if r == m.req && !used[i] && !rp.appDone[r] {
			return i, nil
		}
	}
	for i, r := range reqs {
		if r == nil || used[i] || rp.appDone[r] {
			continue
		}
		if r.Accepts(m.st.Source, m.st.Tag) {
			return i, nil
		}
	}
	var slots []string
	for i, r := range reqs {
		if r == nil {
			slots = append(slots, "nil")
			continue
		}
		src, tag := r.Spec()
		slots = append(slots, fmt.Sprintf("%d:(%d,%d,used=%v,done=%v)", i, src, tag, used[i], rp.appDone[r]))
	}
	return -1, fmt.Errorf("%w: no request slot accepts replayed message from rank %d tag %d clock %d (slots %v)",
		ErrDiverged, m.st.Source, m.st.Tag, m.st.Clock, slots)
}

// finishSlot marks a slot virtually complete. If its own binding is still
// pending below it stays in the outstanding set and keeps being polled.
func (rp *Replayer) finishSlot(r *simmpi.Request) {
	if rp.outstanding[r] {
		rp.appDone[r] = true
	}
}

// release hands the group's messages to the app through slots of reqs,
// ticking the lamport clock per event in observed order. If ordered is
// true, group member i is assigned to reqs[i] (Waitall semantics: the
// record's rows are in request order); otherwise slots are chosen by
// binding or spec.
func (rp *Replayer) release(s *stream, reqs []*simmpi.Request, group []pooled, ordered bool) ([]int, []simmpi.Status, error) {
	used := make([]bool, len(reqs))
	idxs := make([]int, len(group))
	sts := make([]simmpi.Status, len(group))
	for gi, m := range group {
		var slot int
		if ordered {
			slot = gi
			if reqs[slot] == nil || rp.appDone[reqs[slot]] {
				return nil, nil, fmt.Errorf("%w: Waitall slot %d already completed", ErrDiverged, slot)
			}
			if !reqs[slot].Accepts(m.st.Source, m.st.Tag) {
				return nil, nil, fmt.Errorf("%w: Waitall slot %d does not accept replayed message from rank %d tag %d",
					ErrDiverged, slot, m.st.Source, m.st.Tag)
			}
		} else {
			var err error
			slot, err = rp.assignSlot(reqs, used, m)
			if err != nil {
				return nil, nil, err
			}
		}
		used[slot] = true
		idxs[gi] = slot
		sts[gi] = m.st
		rp.finishSlot(reqs[slot])
		rp.next.TickReceive(m.st.Clock)
		if rp.opts.OnRelease != nil {
			rp.opts.OnRelease(m.st)
		}
	}
	rp.stats.Released += uint64(len(group))
	rp.mReleases.Add(uint64(len(group)))
	s.t += len(group)
	if s.nReleased >= s.n && s.n > 0 {
		rp.stats.ChunksVerified++
	}
	if err := s.verifyChunk(); err != nil {
		return nil, nil, err
	}
	return idxs, sts, nil
}

// matchedCall releases the group at the cursor through reqs.
func (rp *Replayer) matchedCall(s *stream, reqs []*simmpi.Request, ordered bool) ([]int, []simmpi.Status, error) {
	group, err := rp.awaitGroup(s, reqs)
	if err != nil {
		return nil, nil, err
	}
	return rp.release(s, reqs, group, ordered)
}

// testFamily is the shared body of Test/Testany/Testsome. liveLimit bounds
// how many events a live-phase call may deliver (Test/Testany complete at
// most one; Testsome passes -1).
func (rp *Replayer) testFamily(s *stream, reqs []*simmpi.Request, liveLimit int) (bool, []int, []simmpi.Status, error) {
	live, err := rp.ensureOrLive(s)
	if err != nil {
		return false, nil, nil, err
	}
	if live {
		if _, err := rp.pollBelow(); err != nil {
			return false, nil, nil, err
		}
		idxs, sts := rp.liveDeliver(reqs, liveLimit)
		return len(sts) > 0, idxs, sts, nil
	}
	s.learnSpecs(reqs)
	if _, err := rp.pollBelow(); err != nil {
		return false, nil, nil, err
	}
	s.collect(rp)
	if s.err != nil {
		return false, nil, nil, s.err
	}
	if s.consumeUnmatched() {
		rp.stats.UnmatchedConsumed++
		return false, nil, nil, nil
	}
	idxs, sts, err := rp.matchedCall(s, reqs, false)
	return err == nil, idxs, sts, err
}

// waitFamily is the shared body of Wait/Waitany/Waitsome/Waitall. liveLimit
// bounds a live-phase call's deliveries (Wait/Waitany 1, Waitsome -1);
// ordered (Waitall) makes the live phase all-or-nothing too.
func (rp *Replayer) waitFamily(s *stream, reqs []*simmpi.Request, ordered bool, what string, liveLimit int) ([]int, []simmpi.Status, error) {
	live, err := rp.ensureOrLive(s)
	if err != nil {
		return nil, nil, err
	}
	if live {
		return rp.liveWait(reqs, liveLimit, ordered, what)
	}
	s.learnSpecs(reqs)
	if s.unmatchedPending() {
		return nil, nil, fmt.Errorf("%w: unmatched tests recorded at %s callsite %s", ErrDiverged, what, s.name)
	}
	return rp.matchedCall(s, reqs, ordered)
}

// Test replays a single-request test.
func (rp *Replayer) Test(req *simmpi.Request) (bool, simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return false, simmpi.Status{}, err
	}
	ok, _, sts, err := rp.testFamily(s, []*simmpi.Request{req}, 1)
	if err != nil || !ok {
		return false, simmpi.Status{}, err
	}
	if len(sts) != 1 {
		return false, simmpi.Status{}, fmt.Errorf("%w: Test released %d events", ErrDiverged, len(sts))
	}
	return true, sts[0], nil
}

// Testany replays a test over a set, completing at most one request.
func (rp *Replayer) Testany(reqs []*simmpi.Request) (int, bool, simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return -1, false, simmpi.Status{}, err
	}
	ok, idxs, sts, err := rp.testFamily(s, reqs, 1)
	if err != nil || !ok {
		return -1, false, simmpi.Status{}, err
	}
	if len(sts) != 1 {
		return -1, false, simmpi.Status{}, fmt.Errorf("%w: Testany released %d events", ErrDiverged, len(sts))
	}
	return idxs[0], true, sts[0], nil
}

// Testsome replays a multi-completion test.
func (rp *Replayer) Testsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return nil, nil, err
	}
	ok, idxs, sts, err := rp.testFamily(s, reqs, -1)
	if err != nil || !ok {
		return nil, nil, err
	}
	return idxs, sts, nil
}

// Testall replays an all-or-nothing test: a recorded failed test returns
// false; a recorded matched set is released in request order like Waitall.
func (rp *Replayer) Testall(reqs []*simmpi.Request) (bool, []simmpi.Status, error) {
	if len(reqs) == 0 {
		return true, nil, nil
	}
	s, err := rp.stream(2)
	if err != nil {
		return false, nil, err
	}
	live, err := rp.ensureOrLive(s)
	if err != nil {
		return false, nil, err
	}
	if live {
		if _, err := rp.pollBelow(); err != nil {
			return false, nil, err
		}
		return rp.liveTestall(reqs)
	}
	s.learnSpecs(reqs)
	if _, err := rp.pollBelow(); err != nil {
		return false, nil, err
	}
	s.collect(rp)
	if s.err != nil {
		return false, nil, s.err
	}
	if s.consumeUnmatched() {
		return false, nil, nil
	}
	idxs, sts, err := rp.matchedCall(s, reqs, true)
	if err != nil {
		return false, nil, err
	}
	if len(sts) != len(reqs) {
		return false, nil, fmt.Errorf("%w: Testall over %d requests released %d events", ErrDiverged, len(reqs), len(sts))
	}
	out := make([]simmpi.Status, len(reqs))
	for k, i := range idxs {
		out[i] = sts[k]
	}
	return true, out, nil
}

// Wait replays a blocking single-request wait.
func (rp *Replayer) Wait(req *simmpi.Request) (simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return simmpi.Status{}, err
	}
	_, sts, err := rp.waitFamily(s, []*simmpi.Request{req}, false, "Wait", 1)
	if err != nil {
		return simmpi.Status{}, err
	}
	if len(sts) != 1 {
		return simmpi.Status{}, fmt.Errorf("%w: Wait released %d events", ErrDiverged, len(sts))
	}
	return sts[0], nil
}

// Waitany replays a blocking wait over a set.
func (rp *Replayer) Waitany(reqs []*simmpi.Request) (int, simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return -1, simmpi.Status{}, err
	}
	idxs, sts, err := rp.waitFamily(s, reqs, false, "Waitany", 1)
	if err != nil {
		return -1, simmpi.Status{}, err
	}
	if len(sts) != 1 {
		return -1, simmpi.Status{}, fmt.Errorf("%w: Waitany released %d events", ErrDiverged, len(sts))
	}
	return idxs[0], sts[0], nil
}

// Waitsome replays a blocking multi-completion wait.
func (rp *Replayer) Waitsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	s, err := rp.stream(2)
	if err != nil {
		return nil, nil, err
	}
	return rp.waitFamily(s, reqs, false, "Waitsome", -1)
}

// Waitall replays a wait for every request. The record's with_next group
// rows are in request order (that is how Waitall reports statuses), so
// group member i maps to reqs[i].
func (rp *Replayer) Waitall(reqs []*simmpi.Request) ([]simmpi.Status, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	s, err := rp.stream(2)
	if err != nil {
		return nil, err
	}
	idxs, sts, err := rp.waitFamily(s, reqs, true, "Waitall", -1)
	if err != nil {
		return nil, err
	}
	if len(sts) != len(reqs) {
		return nil, fmt.Errorf("%w: Waitall over %d requests released %d events", ErrDiverged, len(reqs), len(sts))
	}
	out := make([]simmpi.Status, len(reqs))
	for k, i := range idxs {
		out[i] = sts[k]
	}
	return out, nil
}

// Stats returns the replayer's counters.
func (rp *Replayer) Stats() Stats { return rp.stats }

// Clock exposes the underlying lamport layer's current clock so a recorder
// stacked on top of a replayer (DST property P2) can discover the clock
// source exactly as it would on a plain lamport layer.
func (rp *Replayer) Clock() uint64 { return rp.next.Clock() }

// Verify reports leftover state after the application finished: unreplayed
// record events or unreleased pooled messages. Once the replay crossed into
// live execution (LiveAfterExhausted) the suffix is non-deterministic and
// leftover state is expected, so Verify reports nothing.
func (rp *Replayer) Verify() error {
	if live, _ := rp.Live(); live {
		return nil
	}
	var problems []error
	// Iterate streams in sorted-name order so Verify's error text is
	// stable run to run (map order would shuffle the problem list).
	streams := make([]*stream, 0, len(rp.streams))
	for _, s := range rp.streams { //cdc:allow(maporder) sorted by name immediately below
		streams = append(streams, s)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i].name < streams[j].name })
	for _, s := range streams {
		remaining := int(s.total - s.seen)
		if s.loaded {
			remaining += s.n - s.t
		}
		if remaining > 0 {
			problems = append(problems, fmt.Errorf("replay: %s has %d unreplayed events", s.name, remaining))
		}
	}
	if len(rp.pool) > 0 {
		problems = append(problems, fmt.Errorf("replay: %d messages pooled but never released", len(rp.pool)))
	}
	return errors.Join(problems...)
}
