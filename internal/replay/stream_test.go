package replay

import (
	"errors"
	"testing"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/simmpi"
	"cdcreplay/internal/tables"
)

// mkStream builds a stream over chunks constructed from event runs.
func mkStream(t *testing.T, runs ...[]tables.Event) *stream {
	t.Helper()
	s := &stream{name: "test"}
	var chunks []*cdcformat.Chunk
	for _, events := range runs {
		c := cdcformat.BuildChunkWithSenders(1, events)
		s.total += c.NumMatched
		chunks = append(chunks, c)
	}
	next := 0
	s.fetch = func() (*cdcformat.Chunk, error) {
		if next >= len(chunks) {
			return nil, ErrExhausted
		}
		c := chunks[next]
		next++
		return c, nil
	}
	return s
}

func TestStreamLoadAdvancesAndMergesFrontiers(t *testing.T) {
	s := mkStream(t,
		[]tables.Event{tables.Matched(0, 5, false), tables.Matched(1, 3, false)},
		[]tables.Event{tables.Matched(0, 9, false)},
	)
	if err := s.load(); err != nil {
		t.Fatal(err)
	}
	if s.n != 2 || s.t != 0 {
		t.Fatalf("chunk 0 state: n=%d t=%d", s.n, s.t)
	}
	if !s.inWindow(0, 5) || !s.inWindow(1, 3) {
		t.Fatal("chunk-0 messages not in window")
	}
	if s.inWindow(0, 9) {
		t.Fatal("chunk-1 message accepted by chunk 0")
	}
	// Pretend chunk 0 finished; load chunk 1 and check the cumulative
	// frontier excludes chunk-0 clocks.
	s.t = s.n
	if err := s.load(); err != nil {
		t.Fatal(err)
	}
	if s.prevFrontier[0] != 5 || s.prevFrontier[1] != 3 {
		t.Fatalf("prevFrontier = %v", s.prevFrontier)
	}
	if s.inWindow(0, 5) {
		t.Fatal("chunk-0 clock accepted by chunk 1")
	}
	if !s.inWindow(0, 9) {
		t.Fatal("chunk-1 clock rejected")
	}
}

func TestStreamExhaustion(t *testing.T) {
	s := mkStream(t, []tables.Event{tables.Matched(0, 1, false)})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	s.t = s.n // consume the only event
	if err := s.ensure(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("ensure after exhaustion = %v, want ErrExhausted", err)
	}
}

func TestStreamUnmatchedConsumption(t *testing.T) {
	s := mkStream(t, []tables.Event{
		tables.Unmatched(2),
		tables.Matched(0, 1, false),
		tables.Unmatched(1), // trailing
	})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	if !s.consumeUnmatched() || !s.consumeUnmatched() {
		t.Fatal("leading unmatched run not consumable twice")
	}
	if s.consumeUnmatched() {
		t.Fatal("third leading consumption succeeded")
	}
	s.t = 1 // matched event released
	if !s.consumeUnmatched() {
		t.Fatal("trailing unmatched run not consumable")
	}
	if !s.chunkDone() {
		t.Fatal("chunk not done after full consumption")
	}
}

func TestStreamGroupLen(t *testing.T) {
	s := mkStream(t, []tables.Event{
		tables.Matched(0, 1, true),
		tables.Matched(0, 2, true),
		tables.Matched(0, 3, false),
		tables.Matched(0, 4, false),
	})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	if g := s.groupLen(); g != 3 {
		t.Fatalf("group length = %d, want 3", g)
	}
	s.t = 3
	if g := s.groupLen(); g != 1 {
		t.Fatalf("tail group length = %d, want 1", g)
	}
}

func TestStreamExactIdentificationOutOfOrderArrival(t *testing.T) {
	// Record observed order: (1,4) then (0,2). Exact mode must hand out
	// (1,4) first even though (0,2) sorts lower and arrives first.
	s := mkStream(t, []tables.Event{
		tables.Matched(1, 4, false),
		tables.Matched(0, 2, false),
	})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	s.learnSpecs(nil)
	rp := &Replayer{lastSeen: map[int32]uint64{}}
	s.insert(pooled{st: simmpi.Status{Source: 0, Clock: 2}})
	if k := s.candidateAt(rp, 0); k != -1 {
		t.Fatalf("candidate found before (1,4) arrived: %d", k)
	}
	s.insert(pooled{st: simmpi.Status{Source: 1, Clock: 4}})
	k := s.candidateAt(rp, 0)
	if k < 0 {
		t.Fatal("no candidate with both messages present")
	}
	got := s.takeAt(k, 0)
	if got.st.Source != 1 || got.st.Clock != 4 {
		t.Fatalf("released (%d,%d), want (1,4)", got.st.Source, got.st.Clock)
	}
	k = s.candidateAt(rp, 1)
	if k < 0 {
		t.Fatal("no candidate for second event")
	}
	got = s.takeAt(k, 1)
	if got.st.Source != 0 || got.st.Clock != 2 {
		t.Fatalf("released (%d,%d), want (0,2)", got.st.Source, got.st.Clock)
	}
	if err := s.verifyChunk(); err != nil {
		t.Fatalf("verify failed on correct releases: %v", err)
	}
}

func TestVerifyChunkRejectsMisorderedReleases(t *testing.T) {
	s := mkStream(t, []tables.Event{
		tables.Matched(0, 1, false),
		tables.Matched(0, 2, false),
	})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	// Force a wrong assignment: rank 0 gets the higher clock.
	s.releasedKey[0] = tables.MatchedEntry{Rank: 0, Clock: 2}
	s.releasedKey[1] = tables.MatchedEntry{Rank: 0, Clock: 1}
	s.nReleased = 2
	if err := s.verifyChunk(); !errors.Is(err, ErrDiverged) {
		t.Fatalf("verify = %v, want ErrDiverged", err)
	}
}

func TestStreamSpecFiltering(t *testing.T) {
	s := mkStream(t, []tables.Event{tables.MatchedTagged(0, 7, 1, false)})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	rp := &Replayer{lastSeen: map[int32]uint64{}, pool: []pooled{
		{st: simmpi.Status{Source: 0, Tag: 9, Clock: 1}}, // wrong tag
	}}
	s.specs = []specPair{{simmpi.AnySource, 7}}
	s.collect(rp)
	if len(s.collected) != 0 {
		t.Fatal("collected a message no learned spec accepts")
	}
	if len(rp.pool) != 1 {
		t.Fatal("rejected message evicted from pool")
	}
	rp.pool = append(rp.pool, pooled{st: simmpi.Status{Source: 0, Tag: 7, Clock: 1}})
	s.collect(rp)
	if len(s.collected) != 1 || len(rp.pool) != 1 {
		t.Fatalf("collected %d pooled %d", len(s.collected), len(rp.pool))
	}
}

func TestStreamOverfullDetection(t *testing.T) {
	s := mkStream(t, []tables.Event{tables.Matched(0, 5, false)})
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	s.specs = []specPair{{simmpi.AnySource, simmpi.AnyTag}}
	rp := &Replayer{lastSeen: map[int32]uint64{}, pool: []pooled{
		{st: simmpi.Status{Source: 0, Clock: 3}},
		{st: simmpi.Status{Source: 0, Clock: 5}},
	}}
	s.collect(rp)
	if s.err == nil {
		t.Fatal("overfull chunk not detected")
	}
}

func TestStreamZeroMatchedChunk(t *testing.T) {
	// A flush can produce a chunk holding only unmatched-test runs
	// (N = 0): the stream must serve the run and advance cleanly.
	s := mkStream(t,
		[]tables.Event{tables.Unmatched(2)},
		[]tables.Event{tables.Matched(0, 5, false)},
	)
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	if s.n != 0 {
		t.Fatalf("n = %d", s.n)
	}
	if !s.consumeUnmatched() || !s.consumeUnmatched() {
		t.Fatal("unmatched run not consumable")
	}
	if s.consumeUnmatched() {
		t.Fatal("over-consumed")
	}
	if err := s.ensure(); err != nil {
		t.Fatal(err)
	}
	if s.n != 1 {
		t.Fatalf("second chunk n = %d", s.n)
	}
}
