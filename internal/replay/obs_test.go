package replay

import (
	"bytes"
	"sync"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/simmpi"
)

// TestReplayObsMetrics cross-checks the replay-layer metrics against
// Stats(): the counters are the same numbers exposed a second way, so they
// must agree exactly.
func TestReplayObsMetrics(t *testing.T) {
	const ranks, msgsPerSender = 3, 6
	_, files := runRecord(t, ranks, 311, gatherTestApp(msgsPerSender))

	reg := obs.NewRegistry()
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: 312, MaxJitter: 6, Obs: reg})
	var mu sync.Mutex
	var want Stats
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), recFile, Options{Obs: reg})
		if _, err := gatherTestApp(msgsPerSender)(rp); err != nil {
			return err
		}
		mu.Lock()
		st := rp.Stats()
		want.Released += st.Released
		want.OptimisticReleases += st.OptimisticReleases
		want.LiveReleases += st.LiveReleases
		mu.Unlock()
		return rp.Verify()
	})
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counter("replay.releases"); got != want.Released {
		t.Errorf("replay.releases = %d, Stats says %d", got, want.Released)
	}
	if want.Released == 0 {
		t.Fatal("no releases recorded; test is vacuous")
	}
	if got := s.Counter("replay.optimistic"); got != want.OptimisticReleases {
		t.Errorf("replay.optimistic = %d, Stats says %d", got, want.OptimisticReleases)
	}
	if got := s.Counter("replay.live.releases"); got != want.LiveReleases {
		t.Errorf("replay.live.releases = %d, Stats says %d", got, want.LiveReleases)
	}
	// Every released group passed through one awaitGroup success path.
	if h := s.Histogram("replay.wait.ns"); h.Count == 0 {
		t.Error("replay.wait.ns never observed")
	}
}
