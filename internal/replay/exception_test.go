package replay

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
)

// TestBoundaryInversionException forces the Fig. 3 same-sender inversion to
// straddle a chunk boundary: with one event per chunk, the app-observed
// order [msg2, msg1] puts msg2 (larger clock) in chunk 0 and msg1 (smaller
// clock) in chunk 1, where window membership alone would misassign msg1 to
// chunk 0. The encoder's exception entry must pin it to chunk 1.
func TestBoundaryInversionException(t *testing.T) {
	theApp := func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() == 1 {
			if err := mpi.Send(0, 1, []byte("msg1")); err != nil {
				return nil, err
			}
			return nil, mpi.Send(0, 1, []byte("msg2"))
		}
		req1, err := mpi.Irecv(simmpi.AnySource, 1)
		if err != nil {
			return nil, err
		}
		req2, err := mpi.Irecv(simmpi.AnySource, 1)
		if err != nil {
			return nil, err
		}
		var obs []observation
		for _, req := range []*simmpi.Request{req2, req1} {
			st, err := mpi.Wait(req)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
		}
		return obs, nil
	}

	w := simmpi.NewWorld(2, simmpi.Options{Seed: 31, MaxJitter: 4})
	var want []observation
	files := make([][]byte, 2)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 1})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		got, aerr := theApp(rec)
		if cerr := rec.Close(); aerr == nil {
			aerr = cerr
		}
		mu.Lock()
		if rank == 0 {
			want = got
		}
		files[rank] = buf.Bytes()
		mu.Unlock()
		return aerr
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}

	// The record must contain an exception entry for the inverted message.
	rec0, err := core.ReadRecord(bytes.NewReader(files[0]))
	if err != nil {
		t.Fatal(err)
	}
	excs := 0
	for _, chunks := range rec0.Chunks {
		for _, c := range chunks {
			excs += len(c.Exceptions)
		}
	}
	if excs != 1 {
		t.Fatalf("expected 1 boundary-inversion exception, found %d", excs)
	}

	w2 := simmpi.NewWorld(2, simmpi.Options{Seed: 77, MaxJitter: 4})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), recFile, Options{})
		got, aerr := theApp(rp)
		if aerr != nil {
			return fmt.Errorf("rank %d: %w", rank, aerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		if rank == 0 && !reflect.DeepEqual(got, want) {
			return fmt.Errorf("replay %v != record %v", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
}
