package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cdcreplay/internal/simmpi"
)

// randomProgram generates a family of deterministic-given-results programs
// exercising the full MF surface under randomized interleavings. Each rank
// sends exactly msgs messages to every peer on each of two tags, and
// consumes each tag's traffic through one seed-chosen MF family (a single
// callsite per family body, honoring the disjoint-traffic rule). The
// per-rank action schedule is driven by a seeded RNG, so the program is
// identical between record and replay runs while differing wildly across
// seeds.
//
// Deadlock freedom by construction: the main loop only uses non-blocking
// MF variants, so every rank finishes all its sends regardless of arrival
// timing; the drain phase may then block safely (all traffic is en route),
// after shrinking each pool so no more receives are outstanding than
// messages remain.
func randomProgram(seed int64, msgs, pool int, nonBlockingOnly bool) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(mpi.Rank())))
		n := mpi.Size()
		expectPerTag := (n - 1) * msgs

		pools := map[int][]*simmpi.Request{1: nil, 2: nil}
		for tag := 1; tag <= 2; tag++ {
			for i := 0; i < pool; i++ {
				req, err := mpi.Irecv(simmpi.AnySource, tag)
				if err != nil {
					return nil, err
				}
				pools[tag] = append(pools[tag], req)
			}
		}

		type sendKey struct{ peer, tag int }
		remaining := map[sendKey]int{}
		var sendOrder []sendKey
		for p := 0; p < n; p++ {
			if p == mpi.Rank() {
				continue
			}
			for tag := 1; tag <= 2; tag++ {
				remaining[sendKey{p, tag}] = msgs
				sendOrder = append(sendOrder, sendKey{p, tag})
			}
		}

		// Family per tag: 0=Test, 1=Testany, 2=Testsome, 3=Testall,
		// 4=Wait, 5=Waitany, 6=Waitsome, 7=Waitall.
		families := map[int]int{1: rng.Intn(8), 2: rng.Intn(8)}
		if nonBlockingOnly {
			families[1] %= 4
			families[2] %= 4
		}

		var obs []observation
		received := map[int]int{1: 0, 2: 0}
		seq := 0

		note := func(tag int, st simmpi.Status) {
			received[tag]++
			obs = append(obs, observation{st.Source, st.Clock, fmt.Sprintf("t%d:%s", tag, st.Data)})
		}

		// completeSlots reposts or drops *completed* pool slots (dropping a
		// consumed slot abandons nothing), highest index first so earlier
		// indices stay valid. The invariant "outstanding receives never
		// exceed messages still due" follows: a slot is only dropped when
		// the remaining need is already below the pool size, so blocking
		// drains at the end can never wait on a receive with no message.
		completeSlots := func(tag int, idxs []int) error {
			sorted := append([]int(nil), idxs...)
			sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
			for _, i := range sorted {
				need := expectPerTag - received[tag]
				if need >= len(pools[tag]) {
					req, err := mpi.Irecv(simmpi.AnySource, tag)
					if err != nil {
						return err
					}
					pools[tag][i] = req
					continue
				}
				pools[tag] = append(pools[tag][:i], pools[tag][i+1:]...)
			}
			return nil
		}

		// consume performs one MF call of the given family on the tag's
		// pool. Families 0–3 may find nothing; 4–7 block.
		consume := func(tag, family int) error {
			reqs := pools[tag]
			if len(reqs) == 0 {
				return nil
			}
			switch family {
			case 0:
				i := rng.Intn(len(reqs))
				ok, st, err := mpi.Test(reqs[i])
				if err != nil {
					return err
				}
				if ok {
					note(tag, st)
					return completeSlots(tag, []int{i})
				}
			case 1:
				i, ok, st, err := mpi.Testany(reqs)
				if err != nil {
					return err
				}
				if ok {
					note(tag, st)
					return completeSlots(tag, []int{i})
				}
			case 2:
				idxs, sts, err := mpi.Testsome(reqs)
				if err != nil {
					return err
				}
				for _, st := range sts {
					note(tag, st)
				}
				return completeSlots(tag, idxs)
			case 3:
				ok, sts, err := mpi.Testall(reqs)
				if err != nil {
					return err
				}
				if ok {
					all := make([]int, len(reqs))
					for i := range all {
						all[i] = i
					}
					for _, st := range sts {
						note(tag, st)
					}
					return completeSlots(tag, all)
				}
			case 4:
				st, err := mpi.Wait(reqs[0])
				if err != nil {
					return err
				}
				note(tag, st)
				return completeSlots(tag, []int{0})
			case 5:
				i, st, err := mpi.Waitany(reqs)
				if err != nil {
					return err
				}
				note(tag, st)
				return completeSlots(tag, []int{i})
			case 6:
				idxs, sts, err := mpi.Waitsome(reqs)
				if err != nil {
					return err
				}
				for _, st := range sts {
					note(tag, st)
				}
				return completeSlots(tag, idxs)
			case 7:
				sts, err := mpi.Waitall(reqs)
				if err != nil {
					return err
				}
				all := make([]int, len(reqs))
				for i := range all {
					all[i] = i
				}
				for _, st := range sts {
					note(tag, st)
				}
				return completeSlots(tag, all)
			}
			return nil
		}

		// Main loop: interleave sends with non-blocking polls.
		for len(sendOrder) > 0 {
			i := rng.Intn(len(sendOrder))
			k := sendOrder[i]
			seq++
			if err := mpi.Send(k.peer, k.tag, []byte(fmt.Sprintf("%d", seq))); err != nil {
				return nil, err
			}
			remaining[k]--
			if remaining[k] == 0 {
				sendOrder = append(sendOrder[:i], sendOrder[i+1:]...)
			}
			for tag := 1; tag <= 2; tag++ {
				// A tag's traffic must flow through ONE MF callsite
				// (each family's call is a distinct source line), so a
				// blocking-family tag is not polled here at all — its
				// receives all happen in the drain below, which is the
				// only place its family's callsite executes.
				if families[tag] >= 4 || received[tag] >= expectPerTag {
					continue
				}
				polls := 1 + rng.Intn(2)
				for p := 0; p < polls && received[tag] < expectPerTag; p++ {
					if err := consume(tag, families[tag]); err != nil {
						return nil, err
					}
				}
			}
		}

		// Drain phase: every rank's sends are complete (the main loop never
		// blocks), so the tag's real family — blocking included — is safe,
		// and completeSlots has kept outstanding ≤ need throughout.
		for tag := 1; tag <= 2; tag++ {
			for received[tag] < expectPerTag {
				if err := consume(tag, families[tag]); err != nil {
					return nil, err
				}
			}
		}
		return obs, nil
	}
}

// TestFuzzRecordReplayEquivalence sweeps seeds over the random-program
// family: every generated program must replay its exact observation
// sequence on differently-timed networks.
func TestFuzzRecordReplayEquivalence(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			recordThenReplay(t, 4, randomProgram(int64(seed), 6, 3, false))
		})
	}
}

// TestFuzzPaperFaithfulFormat validates the paper's exact record format
// (no sender column) on the workload class the paper targets: MCB-style
// wildcard Testsome polling and sequential gathers, at several shapes.
// Arbitrary random programs interleaving multiple traffic classes need the
// sender-column extension (see TestFuzzRecordReplayEquivalence and
// DESIGN.md): the Axiom 1 release rule alone cannot drive every
// transitively-blocking release chain from receiver-local knowledge.
func TestFuzzPaperFaithfulFormat(t *testing.T) {
	cases := []struct {
		name string
		n    int
		app  app
	}{
		{"testsome-pool-small", 3, testsomePoolApp(6, 2)},
		{"testsome-pool-wide", 5, testsomePoolApp(7, 4)},
		{"gather-test", 4, gatherTestApp(9)},
		{"gather-wait", 4, gatherWaitApp(8)},
		{"waitany", 3, waitanyApp(5)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			recordThenReplayOpts(t, c.n, c.app, true)
		})
	}
}
