package replay

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/record"
	"cdcreplay/internal/simmpi"
)

// observation is what an application can see of one receive.
type observation struct {
	Source  int
	Clock   uint64
	Payload string
}

// app is a deterministic program written against the MPI interface; it
// returns the rank's observed receive sequence.
type app func(mpi simmpi.MPI) ([]observation, error)

// runRecord executes the app under the recorder stack on a fresh world and
// returns per-rank observations and record files.
func runRecord(t *testing.T, n int, seed int64, a app) ([][]observation, [][]byte) {
	return runRecordOpts(t, n, seed, a, false)
}

func runRecordOpts(t *testing.T, n int, seed int64, a app, paperFormat bool) ([][]observation, [][]byte) {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{Seed: seed, MaxJitter: 8})
	obs := make([][]observation, n)
	bufs := make([]*bytes.Buffer, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 16, OmitSenderColumn: paperFormat})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{})
		got, aerr := a(rec)
		if cerr := rec.Close(); aerr == nil {
			aerr = cerr
		}
		mu.Lock()
		obs[rank] = got
		bufs[rank] = buf
		mu.Unlock()
		return aerr
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	files := make([][]byte, n)
	for i, b := range bufs {
		files[i] = b.Bytes()
	}
	return obs, files
}

// runReplay executes the app under the replayer stack against the given
// record files, on a world with a different seed (different message
// timing), and returns per-rank observations.
func runReplay(t *testing.T, n int, seed int64, files [][]byte, a app) [][]observation {
	t.Helper()
	w := simmpi.NewWorld(n, simmpi.Options{Seed: seed, MaxJitter: 8})
	obs := make([][]observation, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		rec, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), rec, Options{})
		got, aerr := a(rp)
		if aerr != nil {
			return fmt.Errorf("rank %d: %w", rank, aerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		mu.Lock()
		obs[rank] = got
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	return obs
}

// recordThenReplay asserts the replay reproduces the record run exactly,
// across several replay attempts with different network seeds.
func recordThenReplay(t *testing.T, n int, a app) {
	t.Helper()
	recordThenReplayOpts(t, n, a, false)
}

// recordThenReplayOpts additionally selects the paper-faithful record
// format (no sender column) when paperFormat is true.
func recordThenReplayOpts(t *testing.T, n int, a app, paperFormat bool) {
	t.Helper()
	want, files := runRecordOpts(t, n, 1001, a, paperFormat)
	for _, seed := range []int64{2002, 3003, 4004} {
		got := runReplay(t, n, seed, files, a)
		for r := range want {
			if !reflect.DeepEqual(got[r], want[r]) {
				t.Fatalf("seed %d rank %d: replay diverged\n got %v\nwant %v", seed, r, got[r], want[r])
			}
		}
	}
}

// gatherWaitApp: rank 0 receives from everyone with wildcard Wait — the
// simplest non-deterministic pattern.
func gatherWaitApp(msgsPerSender int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgsPerSender; i++ {
				payload := fmt.Sprintf("m%d.%d", mpi.Rank(), i)
				if err := mpi.Send(0, 1, []byte(payload)); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		var obs []observation
		total := (mpi.Size() - 1) * msgsPerSender
		for i := 0; i < total; i++ {
			req, err := mpi.Irecv(simmpi.AnySource, 1)
			if err != nil {
				return nil, err
			}
			st, err := mpi.Wait(req)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
		}
		return obs, nil
	}
}

func TestReplayGatherWait(t *testing.T) {
	recordThenReplay(t, 5, gatherWaitApp(12))
}

// gatherTestApp polls with Test, generating unmatched-test rows.
func gatherTestApp(msgsPerSender int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgsPerSender; i++ {
				if err := mpi.Send(0, 1, []byte{byte(i)}); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		var obs []observation
		total := (mpi.Size() - 1) * msgsPerSender
		req, err := mpi.Irecv(simmpi.AnySource, 1)
		if err != nil {
			return nil, err
		}
		for len(obs) < total {
			ok, st, err := mpi.Test(req)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
			if len(obs) < total {
				if req, err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
					return nil, err
				}
			}
		}
		return obs, nil
	}
}

func TestReplayGatherTestPolling(t *testing.T) {
	recordThenReplay(t, 4, gatherTestApp(10))
}

// testsomePoolApp posts a pool of wildcard receives and polls with
// Testsome, re-posting as they complete — the MCB pattern (§2.1).
func testsomePoolApp(msgsPerSender, poolSize int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgsPerSender; i++ {
				if err := mpi.Send(0, 1, []byte{byte(i)}); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		var obs []observation
		total := (mpi.Size() - 1) * msgsPerSender
		reqs := make([]*simmpi.Request, poolSize)
		for i := range reqs {
			var err error
			if reqs[i], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
				return nil, err
			}
		}
		for len(obs) < total {
			idxs, sts, err := mpi.Testsome(reqs)
			if err != nil {
				return nil, err
			}
			for k, i := range idxs {
				obs = append(obs, observation{sts[k].Source, sts[k].Clock, string(sts[k].Data)})
				if reqs[i], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
					return nil, err
				}
			}
		}
		return obs, nil
	}
}

func TestReplayTestsomePool(t *testing.T) {
	recordThenReplay(t, 5, testsomePoolApp(8, 3))
}

// forwardChainApp builds the dependency the incremental (LMC-based)
// release must handle: each rank forwards every received token onward, so
// releasing one receive gates the send producing the next. Batch-per-chunk
// replay would deadlock here; Axiom 1 release must not.
func forwardChainApp(tokens int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		n := mpi.Size()
		next := (mpi.Rank() + 1) % n
		var obs []observation
		if mpi.Rank() == 0 {
			for i := 0; i < tokens; i++ {
				if err := mpi.Send(next, 1, []byte{byte(i)}); err != nil {
					return nil, err
				}
				req, err := mpi.Irecv(n-1, 1)
				if err != nil {
					return nil, err
				}
				st, err := mpi.Wait(req)
				if err != nil {
					return nil, err
				}
				obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
			}
			return obs, nil
		}
		for i := 0; i < tokens; i++ {
			req, err := mpi.Irecv(mpi.Rank()-1, 1)
			if err != nil {
				return nil, err
			}
			st, err := mpi.Wait(req)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
			if err := mpi.Send(next, 1, st.Data); err != nil {
				return nil, err
			}
		}
		return obs, nil
	}
}

func TestReplayForwardChain(t *testing.T) {
	// tokens > ChunkEvents(16) forces receives whose enabling send depends
	// on an earlier receive in the same chunk.
	recordThenReplay(t, 3, forwardChainApp(40))
}

// fig3App reproduces the paper's Fig. 3: two wildcard receives, two
// messages from one sender, tested out of post order.
func fig3App() app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() == 1 {
			if err := mpi.Send(0, 1, []byte("msg1")); err != nil {
				return nil, err
			}
			return nil, mpi.Send(0, 1, []byte("msg2"))
		}
		if mpi.Rank() != 0 {
			return nil, nil
		}
		req1, err := mpi.Irecv(simmpi.AnySource, simmpi.AnyTag)
		if err != nil {
			return nil, err
		}
		req2, err := mpi.Irecv(simmpi.AnySource, simmpi.AnyTag)
		if err != nil {
			return nil, err
		}
		var obs []observation
		// Application-level out-of-order: wait for req2 before req1, from
		// a single MF callsite (the paper's Fig. 3 loop). Same-spec
		// receives must share a callsite for MF identification to apply.
		for _, req := range []*simmpi.Request{req2, req1} {
			st, err := mpi.Wait(req)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
		}
		return obs, nil
	}
}

func TestReplayFig3OutOfOrder(t *testing.T) {
	recordThenReplay(t, 2, fig3App())
}

// waitallHaloApp mimics a Jacobi halo exchange with AnySource receives
// completed by Waitall — the hidden-determinism pattern of §6.3.
func waitallHaloApp(iters int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		n := mpi.Size()
		left := (mpi.Rank() + n - 1) % n
		right := (mpi.Rank() + 1) % n
		var obs []observation
		for it := 0; it < iters; it++ {
			reqs := make([]*simmpi.Request, 2)
			var err error
			if reqs[0], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
				return nil, err
			}
			if reqs[1], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
				return nil, err
			}
			if err := mpi.Send(left, 1, []byte{byte(it)}); err != nil {
				return nil, err
			}
			if err := mpi.Send(right, 1, []byte{byte(it)}); err != nil {
				return nil, err
			}
			sts, err := mpi.Waitall(reqs)
			if err != nil {
				return nil, err
			}
			for _, st := range sts {
				obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
			}
		}
		return obs, nil
	}
}

func TestReplayWaitallHalo(t *testing.T) {
	recordThenReplay(t, 4, waitallHaloApp(25))
}

// multiCallsiteApp uses two distinct MF callsites with disjoint tags; MF
// identification must keep their streams separate.
func multiCallsiteApp(msgs int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				if err := mpi.Send(0, 1, []byte{1, byte(i)}); err != nil {
					return nil, err
				}
				if err := mpi.Send(0, 2, []byte{2, byte(i)}); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		var obs []observation
		total := (mpi.Size() - 1) * msgs
		for i := 0; i < total; i++ {
			// Callsite A: tag-1 traffic.
			reqA, err := mpi.Irecv(simmpi.AnySource, 1)
			if err != nil {
				return nil, err
			}
			stA, err := mpi.Wait(reqA)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{stA.Source, stA.Clock, string(stA.Data)})
			// Callsite B: tag-2 traffic (different source line → different
			// MF id).
			reqB, err := mpi.Irecv(simmpi.AnySource, 2)
			if err != nil {
				return nil, err
			}
			stB, err := mpi.Wait(reqB)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{stB.Source, stB.Clock, string(stB.Data)})
		}
		return obs, nil
	}
}

func TestReplayMultiCallsite(t *testing.T) {
	recordThenReplay(t, 3, multiCallsiteApp(10))
}

// waitanyApp exercises Waitany replay.
func waitanyApp(msgs int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				if err := mpi.Send(0, 1, []byte{byte(i)}); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		senders := mpi.Size() - 1
		reqs := make([]*simmpi.Request, senders)
		for s := 1; s <= senders; s++ {
			var err error
			if reqs[s-1], err = mpi.Irecv(s, 1); err != nil {
				return nil, err
			}
		}
		var obs []observation
		remaining := make([]int, senders)
		for i := range remaining {
			remaining[i] = msgs - 1
		}
		for done := 0; done < senders*msgs; done++ {
			i, st, err := mpi.Waitany(reqs)
			if err != nil {
				return nil, err
			}
			obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
			src := st.Source
			if remaining[src-1] > 0 {
				remaining[src-1]--
				if reqs[i], err = mpi.Irecv(src, 1); err != nil {
					return nil, err
				}
			}
		}
		return obs, nil
	}
}

func TestReplayWaitany(t *testing.T) {
	recordThenReplay(t, 4, waitanyApp(6))
}

// tallyApp demonstrates the paper's §2.1 motivation: a floating-point
// reduction whose result depends on receive order. Replay must reproduce
// the tally bit for bit.
func tallyApp(msgs int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		if mpi.Rank() != 0 {
			for i := 0; i < msgs; i++ {
				v := float64(mpi.Rank()) * 1e-7 * float64(i+1)
				if err := mpi.Send(0, 1, []byte(fmt.Sprintf("%.17g", v))); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		tally := 1.0
		total := (mpi.Size() - 1) * msgs
		for i := 0; i < total; i++ {
			req, err := mpi.Irecv(simmpi.AnySource, 1)
			if err != nil {
				return nil, err
			}
			st, err := mpi.Wait(req)
			if err != nil {
				return nil, err
			}
			var v float64
			if _, err := fmt.Sscanf(string(st.Data), "%g", &v); err != nil {
				return nil, err
			}
			tally += v
			tally *= 1.0000001 // amplify order sensitivity
		}
		return []observation{{0, 0, fmt.Sprintf("%.17g", tally)}}, nil
	}
}

func TestReplayReproducesFloatingPointTally(t *testing.T) {
	recordThenReplay(t, 6, tallyApp(15))
}

func TestReplayErrorOnMissingCallsite(t *testing.T) {
	// Record with one app, replay with a different one: the replayer must
	// detect the unknown callsite rather than misreplay.
	_, files := runRecord(t, 2, 7, gatherWaitApp(3))
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 8})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		rec, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), rec, Options{})
		if rank != 0 {
			for i := 0; i < 3; i++ {
				if err := rp.Send(0, 1, []byte("x")); err != nil {
					return err
				}
			}
			return nil
		}
		req, err := rp.Irecv(simmpi.AnySource, 1)
		if err != nil {
			return err
		}
		_, werr := rp.Wait(req) // different file:line than the record run
		if !errors.Is(werr, ErrDiverged) {
			return fmt.Errorf("Wait err = %v, want ErrDiverged", werr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVerifyReportsUnreplayedEvents(t *testing.T) {
	_, files := runRecord(t, 2, 9, gatherWaitApp(5))
	rec, err := core.ReadRecord(bytes.NewReader(files[0]))
	if err != nil {
		t.Fatal(err)
	}
	w := simmpi.NewWorld(1, simmpi.Options{})
	rp := New(lamport.WrapManual(w.Comm(0)), rec, Options{})
	if err := rp.Verify(); err == nil {
		t.Fatal("Verify passed with a fully unreplayed record")
	}
}

// testallApp exercises MPI_Testall record and replay: both halo messages
// must arrive before the call succeeds, and failed tests are counted.
func testallApp(rounds int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		n := mpi.Size()
		left := (mpi.Rank() + n - 1) % n
		right := (mpi.Rank() + 1) % n
		var obs []observation
		for round := 0; round < rounds; round++ {
			reqs := make([]*simmpi.Request, 2)
			var err error
			if reqs[0], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
				return nil, err
			}
			if reqs[1], err = mpi.Irecv(simmpi.AnySource, 1); err != nil {
				return nil, err
			}
			if err := mpi.Send(left, 1, []byte{byte(round)}); err != nil {
				return nil, err
			}
			if err := mpi.Send(right, 1, []byte{byte(round)}); err != nil {
				return nil, err
			}
			for {
				ok, sts, err := mpi.Testall(reqs)
				if err != nil {
					return nil, err
				}
				if ok {
					for _, st := range sts {
						obs = append(obs, observation{st.Source, st.Clock, string(st.Data)})
					}
					break
				}
			}
		}
		return obs, nil
	}
}

func TestReplayTestall(t *testing.T) {
	recordThenReplay(t, 4, testallApp(20))
}

// TestReplayReceiveMaxPolicy proves the alternative clock definition
// (paper §4.3 future work) is replayable end to end: record and replay
// with the ReceiveMax policy must agree exactly.
func TestReplayReceiveMaxPolicy(t *testing.T) {
	a := testsomePoolApp(8, 3)
	const n = 4
	w := simmpi.NewWorld(n, simmpi.Options{Seed: 61, MaxJitter: 8})
	want := make([][]observation, n)
	files := make([][]byte, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 16})
		if err != nil {
			return err
		}
		rec := record.New(lamport.WrapPolicy(mpi, lamport.ReceiveMax), baseline.NewCDC(enc), record.Options{})
		got, aerr := a(rec)
		if cerr := rec.Close(); aerr == nil {
			aerr = cerr
		}
		mu.Lock()
		want[rank] = got
		files[rank] = buf.Bytes()
		mu.Unlock()
		return aerr
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	w2 := simmpi.NewWorld(n, simmpi.Options{Seed: 62, MaxJitter: 8})
	err = w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManualPolicy(mpi, lamport.ReceiveMax), recFile, Options{})
		got, aerr := a(rp)
		if aerr != nil {
			return fmt.Errorf("rank %d: %w", rank, aerr)
		}
		if verr := rp.Verify(); verr != nil {
			return fmt.Errorf("rank %d: %w", rank, verr)
		}
		mu.Lock()
		defer mu.Unlock()
		if !reflect.DeepEqual(got, want[rank]) {
			return fmt.Errorf("rank %d diverged:\n got %v\nwant %v", rank, got, want[rank])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestReplayWithPeriodicFlush records under an aggressive time-based flush
// (many small chunks, gzip sync blocks between them) and verifies the
// replay is unaffected by the chunking pattern.
func TestReplayWithPeriodicFlush(t *testing.T) {
	a := testsomePoolApp(10, 3)
	const n = 4
	w := simmpi.NewWorld(n, simmpi.Options{Seed: 71, MaxJitter: 8})
	want := make([][]observation, n)
	files := make([][]byte, n)
	var mu sync.Mutex
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		buf := &bytes.Buffer{}
		enc, err := core.NewEncoder(buf, core.EncoderOptions{ChunkEvents: 1024})
		if err != nil {
			return err
		}
		rec := record.New(lamport.Wrap(mpi), baseline.NewCDC(enc), record.Options{
			FlushInterval: time.Millisecond,
		})
		got, aerr := a(rec)
		if cerr := rec.Close(); aerr == nil {
			aerr = cerr
		}
		mu.Lock()
		want[rank] = got
		files[rank] = buf.Bytes()
		mu.Unlock()
		return aerr
	})
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	// The time-based flush must have produced multiple chunks even though
	// the event count never hit ChunkEvents.
	rec0, err := core.ReadRecord(bytes.NewReader(files[0]))
	if err != nil {
		t.Fatal(err)
	}
	chunks := 0
	for _, cs := range rec0.Chunks {
		chunks += len(cs)
	}
	if chunks < 2 {
		t.Skipf("flush interval produced only %d chunk(s) on this machine; nothing to verify", chunks)
	}
	got := runReplay(t, n, 72, files, a)
	for r := range want {
		if !reflect.DeepEqual(got[r], want[r]) {
			t.Fatalf("rank %d diverged under periodic flushing", r)
		}
	}
}

// TestReplayRecordExhausted: an MF call past the recorded horizon must
// fail with ErrExhausted rather than inventing events.
func TestReplayRecordExhausted(t *testing.T) {
	_, files := runRecord(t, 2, 81, gatherWaitApp(3))
	w := simmpi.NewWorld(2, simmpi.Options{Seed: 82, MaxJitter: 4})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), recFile, Options{})
		// Replay a LONGER app against the shorter record: the same MF
		// callsite runs out of recorded events on the extra receive.
		_, aerr := gatherWaitApp(4)(rp)
		if rank != 0 {
			return aerr
		}
		if !errors.Is(aerr, ErrExhausted) {
			return fmt.Errorf("overlong replay err = %v, want ErrExhausted", aerr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReplayStatsPopulate sanity-checks the observability counters.
func TestReplayStatsPopulate(t *testing.T) {
	_, files := runRecord(t, 3, 83, gatherTestApp(6))
	w := simmpi.NewWorld(3, simmpi.Options{Seed: 84, MaxJitter: 6})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		recFile, err := core.ReadRecord(bytes.NewReader(files[rank]))
		if err != nil {
			return err
		}
		rp := New(lamport.WrapManual(mpi), recFile, Options{})
		if _, err := gatherTestApp(6)(rp); err != nil {
			return err
		}
		if rank == 0 {
			st := rp.Stats()
			if st.Released != 12 {
				return fmt.Errorf("released = %d, want 12", st.Released)
			}
			if st.ChunksVerified == 0 {
				return fmt.Errorf("no chunks verified: %+v", st)
			}
		}
		return rp.Verify()
	})
	if err != nil {
		t.Fatal(err)
	}
}
