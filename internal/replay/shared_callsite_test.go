package replay

import (
	"fmt"
	"testing"

	"cdcreplay/internal/simmpi"
)

// sharedCallsiteApp: two tag classes consumed through ONE Testsome line.
func sharedCallsiteApp(msgs int) app {
	return func(mpi simmpi.MPI) ([]observation, error) {
		n := mpi.Size()
		expect := (n - 1) * msgs
		pools := map[int][]*simmpi.Request{1: nil, 2: nil}
		for tag := 1; tag <= 2; tag++ {
			for i := 0; i < 2; i++ {
				req, err := mpi.Irecv(simmpi.AnySource, tag)
				if err != nil {
					return nil, err
				}
				pools[tag] = append(pools[tag], req)
			}
		}
		received := map[int]int{1: 0, 2: 0}
		var obs []observation
		poll := func(tag int) error {
			idxs, sts, err := mpi.Testsome(pools[tag]) // SHARED callsite
			if err != nil {
				return err
			}
			for k, i := range idxs {
				received[tag]++
				obs = append(obs, observation{sts[k].Source, sts[k].Clock, fmt.Sprintf("t%d:%s", tag, sts[k].Data)})
				req, err := mpi.Irecv(simmpi.AnySource, tag)
				if err != nil {
					return err
				}
				pools[tag][i] = req
			}
			return nil
		}
		// Interleave sends and alternating-tag polls.
		for m := 0; m < msgs; m++ {
			for p := 0; p < n; p++ {
				if p == mpi.Rank() {
					continue
				}
				for tag := 1; tag <= 2; tag++ {
					if err := mpi.Send(p, tag, []byte{byte(m)}); err != nil {
						return nil, err
					}
					if err := poll(1); err != nil {
						return nil, err
					}
					if err := poll(2); err != nil {
						return nil, err
					}
				}
			}
		}
		for received[1] < expect || received[2] < expect {
			for tag := 1; tag <= 2; tag++ {
				if received[tag] < expect {
					if err := poll(tag); err != nil {
						return nil, err
					}
				}
			}
		}
		return obs, nil
	}
}

func TestSharedCallsiteTwoTags(t *testing.T) {
	recordThenReplay(t, 3, sharedCallsiteApp(6))
}
