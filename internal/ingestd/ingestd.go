// Package ingestd is the record-ingest daemon: a TCP server that accepts
// order-record streams from many concurrent application instances and
// feeds them through the CDC encode pipeline into per-tenant record
// directories (DESIGN.md §12).
//
// Robustness is the point of the package, not a feature of it:
//
//   - Bounded per-session queues shed into THROTTLE backpressure instead
//     of growing without bound when the encoder falls behind.
//   - Per-tenant quotas cap sessions, ingest rate, and disk, with typed
//     rejection codes a client can classify as retryable or fatal.
//   - Every ACKed offset is a durable, exactly-once promise: it names
//     events that are on disk past a flush cut AND whose cross-rank
//     references are themselves acked, so even a SIGKILL followed by
//     recorddir.SalvageAll cannot trim them. Clients resume from the
//     server-stated offset after any disconnect.
//   - Graceful drain (SIGTERM) flushes, fsyncs, and finalizes manifests;
//     crash recovery (restart) salvages every incomplete run before
//     accepting the first session.
package ingestd

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/spsc"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
)

// Config parameterizes a Server. Zero values take defaults.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Root is the multi-tenant record root directory; runs land under
	// Root/<tenant>/<run>/ in the dir layout. Ignored when Store is set.
	Root string
	// Store overrides the storage backend: any store.Root (e.g.
	// shardstore.OpenRoot for the sharded layout, memstore.OpenRoot for
	// deterministic simulation). Nil means the dir layout under Root.
	Store store.Root
	// Workers is the ingest shard count; sessions are assigned
	// round-robin. Default 4.
	Workers int
	// QueueCap is the per-session row queue capacity (rounded up to a
	// power of two). Default 1024.
	QueueCap int
	// IdleTimeout reaps sessions with no inbound frames. Default 30s.
	IdleTimeout time.Duration
	// WriteTimeout bounds any single outbound frame write. Default 10s.
	WriteTimeout time.Duration
	// FlushInterval is the worker housekeeping cadence: at least this
	// often each active rank seals a durable cut and acks advance.
	// Default 50ms.
	FlushInterval time.Duration
	// SealEvents seals a rank's cut early once this many logical events
	// accumulated since the last cut, keeping ack latency flat under
	// load. Default 4096.
	SealEvents uint64
	// ChunkEvents is the encoder chunk size. Default 512 (smaller than
	// the offline default: the daemon flushes often, and an oversized
	// chunk target just pads seal latency).
	ChunkEvents int
	// Durable fsyncs records at every seal, making ACKs machine-crash
	// durable rather than process-crash durable. Default false.
	Durable bool
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	// Quotas maps tenant name to quota.
	Quotas map[string]Quota
	// Obs receives the daemon's instruments (nil disables).
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.SealEvents == 0 {
		c.SealEvents = 4096
	}
	if c.ChunkEvents == 0 {
		c.ChunkEvents = 512
	}
}

// Server is the ingest daemon.
type Server struct {
	cfg Config
	ln  net.Listener

	mu       sync.Mutex
	runs     map[string]*run
	tenants  map[string]*tenantState
	sessions map[uint64]*session
	seq      uint64

	workers  []*worker
	stop     chan struct{}
	stopOnce sync.Once
	draining atomic.Bool
	acceptWg sync.WaitGroup
	sessWg   sync.WaitGroup
	workerWg sync.WaitGroup

	root     store.Root
	salvaged []store.RunSalvage

	// pauseWorkers suspends queue draining; the throttle tests use it to
	// force the bounded queues full.
	pauseWorkers atomic.Bool

	sessGauge   *obs.Gauge
	sessTotal   *obs.Counter
	throttles   *obs.Counter
	resumes     *obs.Counter
	rejects     *obs.Counter
	events      *obs.Counter
	enqueueHist *obs.Histogram
	queueIns    spsc.Instruments
}

// New prepares a server over the record root, salvaging every run a
// previous process left incomplete so each rank's on-disk frontier is a
// consistent, appendable record before any client resumes onto it. Runs
// whose manifest is unreadable garbage are skipped with a finding (see
// Salvaged) rather than aborting startup: one damaged tenant directory
// must not turn into a full-root outage. Real salvage failures still
// abort — resuming onto an inconsistent frontier would break the
// exactly-once ack promise.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	root := cfg.Store
	if root == nil {
		root = dirstore.OpenRoot(cfg.Root)
	}
	salvaged, err := root.SalvageAll()
	if err != nil {
		return nil, fmt.Errorf("ingestd: salvaging %s: %w", cfg.Root, err)
	}
	for _, rs := range salvaged {
		if rs.Err != nil {
			return nil, fmt.Errorf("ingestd: salvaging run %s: %w", rs.Dir, rs.Err)
		}
	}
	reg := cfg.Obs
	s := &Server{
		cfg:      cfg,
		root:     root,
		runs:     make(map[string]*run),
		tenants:  make(map[string]*tenantState),
		sessions: make(map[uint64]*session),
		stop:     make(chan struct{}),
		salvaged: salvaged,

		sessGauge:   reg.Gauge("ingest.sessions"),
		sessTotal:   reg.Counter("ingest.sessions.total"),
		throttles:   reg.Counter("ingest.throttles"),
		resumes:     reg.Counter("ingest.resumes"),
		rejects:     reg.Counter("ingest.rejects"),
		events:      reg.Counter("ingest.events"),
		enqueueHist: reg.Histogram("ingest.enqueue.ns", obs.LatencyBounds()),
		queueIns: spsc.Instruments{
			Enqueued: reg.Counter("ingest.queue.enqueued"),
			Stalls:   reg.Counter("ingest.queue.stalls"),
			Depth:    reg.Gauge("ingest.queue.depth"),
		},
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers = append(s.workers, &worker{srv: s, notify: make(chan struct{}, 1)})
	}
	return s, nil
}

// Salvaged reports what startup recovery found, including skipped
// directories (RunSalvage.Skipped with the finding text).
func (s *Server) Salvaged() []store.RunSalvage { return s.salvaged }

// Start begins listening and serving.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for _, w := range s.workers {
		s.workerWg.Add(1)
		go w.loop()
	}
	s.acceptWg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.sessWg.Add(1)
		go func() {
			defer s.sessWg.Done()
			s.handleConn(c)
		}()
	}
}

// pathSafe accepts names usable as a single path element.
func pathSafe(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\\x00")
}

// handshake validates a Hello and attaches sess to its rank — atomically,
// so two concurrent handshakes for the same rank cannot both pass the
// busy check. Returns the resume offset to state in the Welcome.
func (s *Server) handshake(h ingestwire.Hello, sess *session) (uint64, *ingestwire.Reject) {
	if h.Version != ingestwire.Version {
		return 0, &ingestwire.Reject{Code: ingestwire.RejectVersion,
			Msg: fmt.Sprintf("server speaks version %d, client %d", ingestwire.Version, h.Version)}
	}
	if s.draining.Load() {
		return 0, &ingestwire.Reject{Code: ingestwire.RejectDraining, Msg: "server is draining"}
	}
	if !pathSafe(h.Tenant) || !pathSafe(h.Run) {
		return 0, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: "tenant and run must be path-safe names"}
	}

	s.mu.Lock()
	tenant := s.tenants[h.Tenant]
	if tenant == nil {
		q, ok := s.cfg.Quotas[h.Tenant]
		if !ok {
			q = s.cfg.DefaultQuota
		}
		tenant = newTenantState(h.Tenant, q, s.cfg.Obs)
		s.tenants[h.Tenant] = tenant
	}
	if !tenant.tryAcquireSession() {
		s.mu.Unlock()
		return 0, &ingestwire.Reject{Code: ingestwire.RejectQuotaSessions,
			Msg: fmt.Sprintf("tenant %s at %d concurrent sessions", h.Tenant, tenant.quota.MaxSessions)}
	}
	if tenant.overDisk() {
		tenant.releaseSession()
		s.mu.Unlock()
		return 0, &ingestwire.Reject{Code: ingestwire.RejectQuotaDisk,
			Msg: fmt.Sprintf("tenant %s over disk quota", h.Tenant)}
	}
	r, rej := s.openRun(tenant, h)
	if rej != nil {
		tenant.releaseSession()
		s.mu.Unlock()
		return 0, rej
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()

	r.mu.Lock()
	rs, err := s.openRank(r, h.Rank)
	if err == nil && rs.sess != nil {
		// Either a concurrent duplicate client or — the common case after
		// a client-side reconnect — the previous connection's queue is
		// still draining. Retryable: the client backs off and redials.
		err = fmt.Errorf("run %s rank %d has a live session", r.key, h.Rank)
		r.mu.Unlock()
		tenant.releaseSession()
		s.dropSession(sess.id)
		return 0, &ingestwire.Reject{Code: ingestwire.RejectRankBusy, Msg: err.Error()}
	}
	if err != nil {
		r.mu.Unlock()
		tenant.releaseSession()
		s.dropSession(sess.id)
		return 0, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
	}
	sess.tenant, sess.run, sess.rs = tenant, r, rs
	rs.sess = sess
	offset := rs.offset
	if rs.everAttached || rs.resumed {
		s.resumes.Inc()
	}
	rs.everAttached = true
	r.mu.Unlock()
	return offset, nil
}

func (s *Server) dropSession(id uint64) {
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
}

func (s *Server) handleConn(nc net.Conn) {
	wc := ingestwire.NewConn(nc)
	nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //cdc:allow(errsink) deadline set on live conn; read reports failure
	kind, payload, err := wc.ReadFrame()
	if err != nil || kind != ingestwire.KindHello {
		nc.Close() //cdc:allow(errsink) teardown of an unusable conn
		return
	}

	s.mu.Lock()
	s.seq++
	sess := &session{
		id:     s.seq,
		srv:    s,
		nc:     nc,
		wc:     wc,
		worker: s.workers[int(s.seq)%len(s.workers)],
		q:      spsc.New[ingestwire.Row](s.cfg.QueueCap),
	}
	sess.q.Instrument(s.queueIns)
	s.mu.Unlock()

	h, err := ingestwire.ParseHello(payload)
	var rej *ingestwire.Reject
	var offset uint64
	if err != nil {
		rej = &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
	} else {
		offset, rej = s.handshake(h, sess)
	}
	if rej != nil {
		s.rejects.Inc()
		nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //cdc:allow(errsink) best-effort reject delivery
		wc.WriteReject(ingestwire.KindReject, *rej)             //cdc:allow(errsink) best-effort reject delivery
		nc.Close()                                              //cdc:allow(errsink) teardown after reject
		return
	}

	s.sessGauge.Add(1)
	s.sessTotal.Inc()

	if err := sess.writeFrame(func(c *ingestwire.Conn) error {
		return c.WriteWelcome(ingestwire.Welcome{Session: sess.id, Offset: offset})
	}); err != nil {
		sess.dead.Store(true)
		sess.q.Close()
		nc.Close() //cdc:allow(errsink) teardown of a dead conn
	}
	sess.welcomed.Store(true)
	sess.worker.adopt(sess)
	if !sess.dead.Load() {
		sess.readLoop()
	}
}

// detach finishes a dead session's teardown after its queue drained.
// Called by the owning worker.
func (s *Server) detach(sess *session) {
	sess.run.mu.Lock()
	if sess.rs.sess == sess {
		sess.rs.sess = nil
	}
	sess.run.mu.Unlock()
	sess.tenant.releaseSession()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.sessGauge.Add(-1)
}

// Drain gracefully stops the server: new handshakes are rejected with
// RejectDraining, every live session is told to finish, and once sessions
// are gone (or ctx expires and they are cut) all open ranks are flushed,
// fsynced, and — for runs whose every rank finished — finalized.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	for _, sess := range s.sessions {
		go func(sess *session) {
			sess.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) advisory frame to a session that may be dying
				return c.WriteFrame(ingestwire.KindDrain, []byte{0})
			})
		}(sess)
	}
	s.mu.Unlock()

	deadline := time.NewTicker(2 * time.Millisecond)
	defer deadline.Stop()
	var expired bool
	for {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		select {
		case <-ctx.Done():
			expired = true
		case <-deadline.C:
		}
		if expired {
			s.mu.Lock()
			for _, sess := range s.sessions {
				sess.nc.Close() //cdc:allow(errsink) forced teardown at drain deadline
				sess.q.Close()
			}
			s.mu.Unlock()
			break
		}
	}

	s.shutdownLoops()
	s.sessWg.Wait()

	// Workers are stopped; flush whatever ranks are still open so every
	// record on disk is a cleanly closed stream.
	var firstErr error
	s.mu.Lock()
	runs := make([]*run, 0, len(s.runs))
	for _, r := range s.runs { //cdc:allow(maporder) teardown visit order; no bytes derive from it
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		r.mu.Lock()
		for _, rs := range r.rankState {
			drainQueueLocked(r, rs)
			if err := r.closeRank(rs); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		r.advanceAcks()
		if err := r.maybeFinalize(); err != nil && firstErr == nil {
			firstErr = err
		}
		r.mu.Unlock()
	}
	if expired && firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// drainQueueLocked empties a rank's attached session queue into the
// encoder (best effort — drain teardown path). Caller holds r.mu.
func drainQueueLocked(r *run, rs *rankState) {
	if rs.sess == nil {
		return
	}
	for {
		row, ok := rs.sess.q.TryDequeue()
		if !ok {
			return
		}
		if err := r.observe(rs, row); err != nil {
			rs.err = err
			return
		}
	}
}

// Kill stops the server abruptly — no flush, no manifest updates — so
// tests can stand in for a crash: everything past the last durable seal
// is lost, exactly as SIGKILL would lose it, and a new Server over the
// same root must salvage its way back.
func (s *Server) Kill() {
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.nc.Close() //cdc:allow(errsink) abrupt teardown is the point
		sess.q.Close()
	}
	s.mu.Unlock()
	s.shutdownLoops()
	s.sessWg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		r.mu.Lock()
		for _, rs := range r.rankState {
			if rs.blob != nil {
				// Close the blob without closing the encoder: buffered,
				// unflushed compressed data dies with the process image.
				rs.blob.Close() //cdc:allow(errsink) abrupt teardown is the point
				rs.blob = nil
				rs.closed = true
			}
		}
		r.mu.Unlock()
	}
}

// shutdownLoops stops the accept loop and workers, idempotently.
func (s *Server) shutdownLoops() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.ln != nil {
		s.ln.Close() //cdc:allow(errsink) listener teardown
	}
	s.acceptWg.Wait()
	s.workerWg.Wait()
}

// errSessionFatal wraps a session-killing ingest error with its wire code.
type errSessionFatal struct {
	code ingestwire.RejectCode
	err  error
}

func (e *errSessionFatal) Error() string { return e.err.Error() }

// worker is one ingest shard: it owns a subset of sessions and is the
// single consumer of each of their queues.
type worker struct {
	srv    *Server
	notify chan struct{}

	mu       sync.Mutex
	sessions []*session
}

func (w *worker) adopt(s *session) {
	w.mu.Lock()
	w.sessions = append(w.sessions, s)
	w.mu.Unlock()
	w.wake()
}

func (w *worker) wake() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

func (w *worker) loop() {
	defer w.srv.workerWg.Done()
	tick := time.NewTicker(w.srv.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-w.srv.stop:
			return
		case <-w.notify:
		case <-tick.C:
		}
		if w.srv.pauseWorkers.Load() {
			continue
		}
		w.service()
	}
}

func (w *worker) service() {
	w.mu.Lock()
	sessions := append([]*session(nil), w.sessions...)
	w.mu.Unlock()
	for _, s := range sessions {
		if w.serviceSession(s) {
			w.mu.Lock()
			for i, it := range w.sessions {
				if it == s {
					w.sessions = append(w.sessions[:i], w.sessions[i+1:]...)
					break
				}
			}
			w.mu.Unlock()
			w.srv.detach(s)
		}
	}
}

// serviceSession drains one session's queue into its rank encoder, seals
// and acks. Returns true when the session is dead and fully drained, i.e.
// ready to detach.
func (w *worker) serviceSession(s *session) (detach bool) {
	r, rs := s.run, s.rs
	type send struct {
		sess    *session
		ack     uint64
		done    bool
		doneOff uint64
	}
	var sends []send
	var fatal *errSessionFatal

	r.mu.Lock()
	for {
		row, ok := s.q.TryDequeue()
		if !ok {
			break
		}
		if rs.err != nil {
			continue // session is being killed; drop so the queue empties
		}
		if err := r.observe(rs, row); err != nil {
			rs.err = err
			fatal = &errSessionFatal{code: ingestwire.RejectMalformed, err: err}
			continue
		}
		w.srv.events.Add(row.Weight())
	}

	// Seal when due: enough events since the last cut, or the flush
	// interval elapsed. (Not every wakeup — over-frequent cuts shred the
	// record into tiny chunks.)
	if rs.err == nil && rs.rowsSinceSeal > 0 &&
		(rs.rowsSinceSeal >= w.srv.cfg.SealEvents ||
			time.Since(rs.lastSeal) >= w.srv.cfg.FlushInterval) {
		if err := r.seal(rs); err != nil {
			rs.err = err
			fatal = sealFatal(err)
		}
	}

	// Finish: the queue is empty and the client declared its total. The
	// offsets must agree exactly — both sides count the same logical
	// events — and then the rank's record closes durably.
	if fatal == nil && rs.err == nil && s.finished.Load() && !rs.closed && s.q.Len() == 0 {
		want := s.finishOffset.Load()
		switch {
		case rs.offset != want:
			rs.err = fmt.Errorf("rank %d finished at offset %d, server consumed %d", rs.rank, want, rs.offset)
			fatal = &errSessionFatal{code: ingestwire.RejectMalformed, err: rs.err}
		default:
			rs.finished = true
			if err := r.closeRank(rs); err != nil {
				rs.err = err
				fatal = sealFatal(err)
			}
		}
	}

	r.advanceAcks()
	for _, other := range r.rankState { //cdc:allow(maporder) per-session control frames; order across sessions is immaterial
		os := other.sess
		if os == nil || os.dead.Load() || !os.welcomed.Load() {
			continue
		}
		msg := send{sess: os, doneOff: other.acked}
		if other.acked > os.lastAck {
			os.lastAck = other.acked
			msg.ack = other.acked
		}
		if other.finished && other.closed && len(other.segments) == 0 && !os.doneSent {
			os.doneSent = true
			msg.done = true
		}
		if msg.ack > 0 || msg.done {
			sends = append(sends, msg)
		}
	}
	var finErr error
	if fatal == nil && rs.finished {
		finErr = r.maybeFinalize()
	}
	r.mu.Unlock()

	if finErr != nil && fatal == nil {
		fatal = sealFatal(finErr)
	}

	for _, m := range sends {
		if m.ack > 0 {
			m.sess.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) ack is advisory; a lost conn resumes from the same offset
				return c.WriteOffset(ingestwire.KindAck, m.ack)
			})
		}
		if m.done {
			m.sess.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) client retries finish if done is lost
				return c.WriteOffset(ingestwire.KindDone, m.doneOff)
			})
		}
	}
	s.maybeUnthrottle()

	if fatal != nil && !s.dead.Load() {
		s.sendReject(ingestwire.KindError, ingestwire.Reject{Code: fatal.code, Msg: fatal.err.Error()})
		s.dead.Store(true)
		s.q.Close()
		s.nc.Close() //cdc:allow(errsink) killing a misbehaving session
	}

	return s.dead.Load() && s.q.Len() == 0
}

// sealFatal classifies an encoder/seal failure for the wire.
func sealFatal(err error) *errSessionFatal {
	var qd *quotaDiskError
	if errors.As(err, &qd) {
		return &errSessionFatal{code: ingestwire.RejectQuotaDisk, err: err}
	}
	return &errSessionFatal{code: ingestwire.RejectMalformed, err: err}
}
