package ingestd

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cdcreplay/internal/ingestclient"
)

// TestHelperDaemon is not a test: when CDCD_HELPER_ROOT is set it becomes
// the child process of TestSIGKILLResume — a real cdcd daemon in its own
// process, so the parent can SIGKILL it mid-ingest and nothing buffered in
// user space survives.
func TestHelperDaemon(t *testing.T) {
	root := os.Getenv("CDCD_HELPER_ROOT")
	if root == "" {
		t.Skip("helper process only")
	}
	srv, err := New(Config{
		Addr:          "127.0.0.1:0",
		Root:          root,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("helper: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("helper: %v", err)
	}
	// Publish the bound address atomically so the parent never reads a
	// half-written file.
	tmp := filepath.Join(root, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(srv.Addr()), 0o644); err != nil {
		t.Fatalf("helper: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(root, "addr")); err != nil {
		t.Fatalf("helper: %v", err)
	}
	select {} // run until the parent kills us
}

func spawnDaemon(t *testing.T, root string) (*exec.Cmd, string) {
	t.Helper()
	os.Remove(filepath.Join(root, "addr")) //cdc:allow(errsink) stale addr from a prior child may not exist
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemon$", "-test.v")
	cmd.Env = append(os.Environ(), "CDCD_HELPER_ROOT="+root)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill() //cdc:allow(errsink) test teardown; child may already be dead
			cmd.Wait()         //cdc:allow(errsink) reap; exit status is expected to be a kill
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(filepath.Join(root, "addr")); err == nil && len(b) > 0 {
			return cmd, string(b)
		}
		if time.Now().After(deadline) {
			t.Fatal("helper daemon never published its address")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSIGKILLResume is the end-to-end crash-safety contract: a daemon
// PROCESS is killed with SIGKILL mid-ingest (no drain, no deferred
// cleanup, gzip state dies in its buffers), a fresh process salvages the
// same record root, and a resuming client replays from the salvaged
// frontier — the final record holds every event exactly once.
func TestSIGKILLResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec test")
	}
	root := t.TempDir()
	cmd, addr := spawnDaemon(t, root)

	rows := expectedRows(singleRankStream(4000, 11))
	cfg := clientConfig(addr, "acme", "sk", 0, 1)
	c, err := ingestclient.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	half := len(rows) / 2
	streamRows(t, c, rows[:half])
	// Wait for at least one durable ack so the kill provably destroys
	// in-flight state without voiding the whole test. The deadline is
	// generous: the child process competes with the rest of the suite for
	// CPU, and it only bounds the failure case.
	ackDeadline := time.Now().Add(30 * time.Second)
	for c.Acked() == 0 {
		if time.Now().After(ackDeadline) {
			t.Fatal("no ack before kill")
		}
		time.Sleep(time.Millisecond)
	}
	ackedBefore := c.Acked()

	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //cdc:allow(errsink) exit status of a SIGKILLed child is the expected failure

	_, addr2 := spawnDaemon(t, root)
	cfg2 := cfg
	cfg2.Addr = addr2
	c2, err := ingestclient.Dial(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	resumeAt := c2.Acked() // fresh client adopts the salvaged frontier
	if resumeAt < ackedBefore {
		t.Fatalf("salvaged frontier %d lost acked events (acked %d before SIGKILL)", resumeAt, ackedBefore)
	}
	var cum uint64
	idx := 0
	for idx < len(rows) && cum < resumeAt {
		cum += rows[idx].Weight()
		idx++
	}
	if cum != resumeAt {
		t.Fatalf("salvaged frontier %d does not fall on a row boundary (cum %d)", resumeAt, cum)
	}
	streamRows(t, c2, rows[idx:])
	if err := c2.Close(); err != nil {
		t.Fatalf("Close after SIGKILL resume: %v", err)
	}

	st := openRun(t, root, "acme", "sk", 1)
	if err := VerifyRank(st, 0, rows); err != nil {
		t.Fatalf("SIGKILL+salvage+resume lost or duplicated events: %v", err)
	}
}
