package ingestd

import (
	"fmt"
	"io"

	"cdcreplay/internal/core"
	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/store"
	"cdcreplay/internal/tables"
)

// logicalEvent is the flattened unit both sides of a verification compare:
// one matched receive, or one single failed test (an aggregated
// unmatched-row of count n expands to n of these, since the encoder's
// redundancy elimination re-aggregates at its own boundaries).
type logicalEvent struct {
	matched  bool
	withNext bool
	rank     int32
	clock    uint64
	tag      int32
}

func flattenRows(rows []ingestwire.Row, into map[uint64][]logicalEvent, entries map[uint64][]tables.MatchedEntry) {
	for _, r := range rows {
		if r.Ev.Flag {
			into[r.Callsite] = append(into[r.Callsite], logicalEvent{
				matched: true, withNext: r.Ev.WithNext,
				rank: r.Ev.Rank, clock: r.Ev.Clock, tag: r.Ev.Tag,
			})
			if entries != nil {
				entries[r.Callsite] = append(entries[r.Callsite],
					tables.MatchedEntry{Rank: r.Ev.Rank, Clock: r.Ev.Clock, Tag: r.Ev.Tag})
			}
		} else {
			for i := uint64(0); i < r.Ev.Count; i++ {
				into[r.Callsite] = append(into[r.Callsite], logicalEvent{})
			}
		}
	}
}

func flattenEvents(evs []tables.Event, into []logicalEvent) []logicalEvent {
	for _, ev := range evs {
		if ev.Flag {
			into = append(into, logicalEvent{
				matched: true, withNext: ev.WithNext,
				rank: ev.Rank, clock: ev.Clock, tag: ev.Tag,
			})
		} else {
			for i := uint64(0); i < ev.Count; i++ {
				into = append(into, logicalEvent{})
			}
		}
	}
	return into
}

// VerifyRank checks that one rank's record blob in st decodes to EXACTLY
// the logical events of rows, per callsite and in order — the byte-level
// CDC encoding round-trips the ingested stream with nothing lost,
// duplicated, or reordered. This is the loadgen and kill-test oracle:
// rows is everything the client ever observed, and a daemon that honored
// its exactly-once ack contract produced a record this function accepts.
func VerifyRank(st store.Store, rank int, rows []ingestwire.Row) error {
	expected := make(map[uint64][]logicalEvent)
	entries := make(map[uint64][]tables.MatchedEntry)
	names := make(map[uint64]string)
	flattenRows(rows, expected, entries)
	for _, r := range rows {
		if r.Name != "" && names[r.Callsite] == "" {
			names[r.Callsite] = r.Name
		}
	}

	f, err := st.OpenRank(rank)
	if err != nil {
		return err
	}
	defer f.Close() //cdc:allow(errsink) read-side close; decode errors surface from Next
	it, err := core.OpenRecord(f)
	if err != nil {
		return err
	}
	defer it.Close() //cdc:allow(errsink) read-side close; decode errors surface from Next

	got := make(map[uint64][]logicalEvent)
	entryPos := make(map[uint64]int)
	for {
		fr, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("decoding rank %d: %w", rank, err)
		}
		if fr.Chunk == nil {
			continue
		}
		cs := fr.Chunk.Callsite
		pos, need := entryPos[cs], int(fr.Chunk.NumMatched)
		if pos+need > len(entries[cs]) {
			return fmt.Errorf("callsite %d: record holds %d matched events, client observed %d",
				cs, pos+need, len(entries[cs]))
		}
		evs, err := fr.Chunk.ReconstructEvents(entries[cs][pos : pos+need])
		if err != nil {
			return fmt.Errorf("callsite %d chunk at matched offset %d: %w", cs, pos, err)
		}
		entryPos[cs] = pos + need
		got[cs] = flattenEvents(evs, got[cs])
	}

	for cs, want := range expected {
		g := got[cs]
		if len(g) != len(want) {
			return fmt.Errorf("callsite %d: record has %d logical events, client observed %d",
				cs, len(g), len(want))
		}
		for i := range want {
			if g[i] != want[i] {
				return fmt.Errorf("callsite %d event %d: record %+v, client %+v", cs, i, g[i], want[i])
			}
		}
	}
	for cs := range got {
		if _, ok := expected[cs]; !ok {
			return fmt.Errorf("record holds callsite %d the client never observed", cs)
		}
	}
	recNames := it.Names()
	for cs, name := range names {
		if recNames[cs] != name {
			return fmt.Errorf("callsite %d named %q in record, %q at client", cs, recNames[cs], name)
		}
	}
	return nil
}
