package ingestd

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cdcreplay/internal/ingestclient"
	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/obs"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/workload"
)

// startServer launches a daemon over a temp root with fast housekeeping.
func startServer(t *testing.T, mod func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Addr:          "127.0.0.1:0",
		Root:          t.TempDir(),
		FlushInterval: 5 * time.Millisecond,
		Obs:           obs.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return srv
}

// singleRankStream generates one rank's event stream: all matched events
// source from rank 0 so a ranks=1 run has no cross-rank references.
func singleRankStream(events int, seed int64) []tables.Event {
	return workload.Stream(workload.StreamParams{
		Events:        events,
		Senders:       1,
		Disorder:      2,
		UnmatchedProb: 0.3,
		GroupProb:     0.15,
		Seed:          seed,
	})
}

// expectedRows converts a stream into the wire rows a client emits,
// alternating between two callsites at MF-group boundaries (a WithNext
// group must stay within one callsite's stream).
func expectedRows(events []tables.Event) []ingestwire.Row {
	names := map[uint64]string{1: "recv@solver.c:42", 2: "wait@halo.c:7"}
	named := map[uint64]bool{}
	rows := make([]ingestwire.Row, 0, len(events))
	cs := uint64(1)
	for _, ev := range events {
		row := ingestwire.Row{Callsite: cs, Ev: ev}
		if !named[cs] {
			row.Name = names[cs]
			named[cs] = true
		}
		rows = append(rows, row)
		if !ev.Flag || !ev.WithNext {
			if cs == 1 {
				cs = 2
			} else {
				cs = 1
			}
		}
	}
	return rows
}

// streamRows feeds rows through a client.
func streamRows(t *testing.T, c *ingestclient.Client, rows []ingestwire.Row) {
	t.Helper()
	for _, r := range rows {
		if err := c.Observe(r.Callsite, r.Name, r.Ev, 0); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
}

func clientConfig(addr, tenant, run string, rank, ranks int) ingestclient.Config {
	return ingestclient.Config{
		Addr: addr, Tenant: tenant, Run: run, Rank: rank, Ranks: ranks,
		Backoff: ingestclient.Backoff{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, MaxAttempts: 20},
	}
}

// openRun opens tenant/run under root through the dir-layout store and
// checks its manifest is complete for the given world size.
func openRun(t *testing.T, root, tenant, run string, ranks int) store.Store {
	t.Helper()
	st, err := dirstore.OpenRoot(root).Open(tenant + "/" + run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(st, "ingest", ranks); err != nil {
		t.Fatalf("run %s/%s should open complete: %v", tenant, run, err)
	}
	return st
}

func drain(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestIngestRoundTrip(t *testing.T) {
	srv := startServer(t, nil)
	rows := expectedRows(singleRankStream(800, 1))

	c, err := ingestclient.Dial(clientConfig(srv.Addr(), "acme", "run1", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	streamRows(t, c, rows)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st := openRun(t, srv.cfg.Root, "acme", "run1", 1)
	if err := VerifyRank(st, 0, rows); err != nil {
		t.Fatalf("record does not match ingested stream: %v", err)
	}

	snap := srv.cfg.Obs.Snapshot()
	var weight uint64
	for _, r := range rows {
		weight += r.Weight()
	}
	if got := snap.Counter("ingest.events"); got != weight {
		t.Errorf("ingest.events = %d, want %d", got, weight)
	}
	if got := snap.Counter("ingest.sessions.total"); got != 1 {
		t.Errorf("ingest.sessions.total = %d, want 1", got)
	}
	if got := snap.Counter("ingest.tenant.acme.bytes"); got == 0 {
		t.Error("ingest.tenant.acme.bytes = 0, want > 0")
	}
	drain(t, srv)
}

func TestIngestMultiTenantMultiRank(t *testing.T) {
	srv := startServer(t, nil)
	const ranks = 3
	// Identical streams per rank (same seed): every cross-rank clock a
	// rank references is covered by the referenced rank's own stream, so
	// the ack barrier's fixed point completes.
	events := workload.Stream(workload.StreamParams{
		Events: 400, Senders: ranks, Disorder: 3, UnmatchedProb: 0.2, GroupProb: 0.1, Seed: 7,
	})
	rows := expectedRows(events)

	errs := make(chan error, 2*ranks)
	for _, tenant := range []string{"acme", "globex"} {
		for rank := 0; rank < ranks; rank++ {
			go func(tenant string, rank int) {
				c, err := ingestclient.Dial(clientConfig(srv.Addr(), tenant, "mr", rank, ranks))
				if err != nil {
					errs <- err
					return
				}
				for _, r := range rows {
					if err := c.Observe(r.Callsite, r.Name, r.Ev, 0); err != nil {
						errs <- err
						return
					}
				}
				errs <- c.Close()
			}(tenant, rank)
		}
	}
	for i := 0; i < 2*ranks; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
	for _, tenant := range []string{"acme", "globex"} {
		st := openRun(t, srv.cfg.Root, tenant, "mr", ranks)
		for rank := 0; rank < ranks; rank++ {
			if err := VerifyRank(st, rank, rows); err != nil {
				t.Fatalf("tenant %s rank %d: %v", tenant, rank, err)
			}
		}
	}
	drain(t, srv)
}

// rawHello dials and sends one handshake, returning the response frame.
func rawHello(t *testing.T, addr string, h ingestwire.Hello) (byte, ingestwire.Reject) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wc := ingestwire.NewConn(nc)
	if err := wc.WriteHello(h); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := wc.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if kind != ingestwire.KindReject {
		return kind, ingestwire.Reject{}
	}
	rej, err := ingestwire.ParseReject(payload)
	if err != nil {
		t.Fatal(err)
	}
	return kind, rej
}

func TestHandshakeRejections(t *testing.T) {
	srv := startServer(t, func(c *Config) {
		c.Quotas = map[string]Quota{"capped": {MaxSessions: 1}}
	})
	defer srv.Kill()

	// Occupy capped's only slot and run1's rank 0 with a live client.
	c, err := ingestclient.Dial(clientConfig(srv.Addr(), "capped", "run1", 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //cdc:allow(errsink) test teardown

	cases := []struct {
		name string
		h    ingestwire.Hello
		want ingestwire.RejectCode
	}{
		{"version", ingestwire.Hello{Version: 99, Tenant: "t", Run: "r", Rank: 0, Ranks: 1}, ingestwire.RejectVersion},
		{"unsafe tenant", ingestwire.Hello{Version: 1, Tenant: "a\\b", Run: "r", Rank: 0, Ranks: 1}, ingestwire.RejectMalformed},
		{"session quota", ingestwire.Hello{Version: 1, Tenant: "capped", Run: "other", Rank: 0, Ranks: 1}, ingestwire.RejectQuotaSessions},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kind, rej := rawHello(t, srv.Addr(), tc.h)
			if kind != ingestwire.KindReject || rej.Code != tc.want {
				t.Fatalf("got kind %#x code %v, want reject %v", kind, rej.Code, tc.want)
			}
		})
	}

	// Conflicting world size and rank-busy need the run to exist: the
	// live client declared run1 with 2 ranks and holds rank 0.
	t.Run("ranks conflict", func(t *testing.T) {
		// Different tenant so the session quota does not mask the check;
		// same tenant+run is what conflicts.
		_, rej := rawHello(t, srv.Addr(), ingestwire.Hello{Version: 1, Tenant: "capped", Run: "run1", Rank: 0, Ranks: 3})
		if rej.Code != ingestwire.RejectQuotaSessions {
			t.Fatalf("capped tenant should hit session quota first, got %v", rej.Code)
		}
	})
	t.Run("rank busy", func(t *testing.T) {
		srv2 := startServer(t, nil)
		defer srv2.Kill()
		c2, err := ingestclient.Dial(clientConfig(srv2.Addr(), "t", "r", 0, 2))
		if err != nil {
			t.Fatal(err)
		}
		defer c2.Close() //cdc:allow(errsink) test teardown
		_, rej := rawHello(t, srv2.Addr(), ingestwire.Hello{Version: 1, Tenant: "t", Run: "r", Rank: 0, Ranks: 2})
		if rej.Code != ingestwire.RejectRankBusy {
			t.Fatalf("second session on a held rank: got %v, want RankBusy", rej.Code)
		}
		_, rej = rawHello(t, srv2.Addr(), ingestwire.Hello{Version: 1, Tenant: "t", Run: "r", Rank: 1, Ranks: 3})
		if rej.Code != ingestwire.RejectRanksConflict {
			t.Fatalf("world-size conflict: got %v, want RanksConflict", rej.Code)
		}
	})
	t.Run("draining", func(t *testing.T) {
		srv3 := startServer(t, nil)
		defer srv3.Kill()
		srv3.draining.Store(true)
		_, rej := rawHello(t, srv3.Addr(), ingestwire.Hello{Version: 1, Tenant: "t", Run: "r", Rank: 0, Ranks: 1})
		if rej.Code != ingestwire.RejectDraining {
			t.Fatalf("draining server: got %v, want Draining", rej.Code)
		}
	})

	snap := srv.cfg.Obs.Snapshot()
	if got := snap.Counter("ingest.rejects"); got < 3 {
		t.Errorf("ingest.rejects = %d, want >= 3", got)
	}
}

func TestThrottleBackpressure(t *testing.T) {
	srv := startServer(t, func(c *Config) {
		c.QueueCap = 16
	})
	var throttledOn atomic.Bool
	cfg := clientConfig(srv.Addr(), "acme", "tt", 0, 1)
	cfg.BatchRows = 4
	cfg.OnThrottle = func(on bool) {
		if on {
			throttledOn.Store(true)
		}
	}

	// Suspend draining so the bounded queue must fill and shed.
	srv.pauseWorkers.Store(true)
	c, err := ingestclient.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := expectedRows(singleRankStream(600, 3))
	unpaused := make(chan struct{})
	go func() {
		// Let the client wedge against the full queue, then release.
		time.Sleep(50 * time.Millisecond)
		srv.pauseWorkers.Store(false)
		for _, w := range srv.workers {
			w.wake()
		}
		close(unpaused)
	}()
	streamRows(t, c, rows)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-unpaused

	snap := srv.cfg.Obs.Snapshot()
	if got := snap.Counter("ingest.throttles"); got == 0 {
		t.Error("ingest.throttles = 0, want > 0 (queue never shed)")
	}
	if got := snap.Counter("ingest.queue.stalls"); got == 0 {
		t.Error("ingest.queue.stalls = 0, want > 0")
	}
	if max := snap.Gauge("ingest.queue.depth").Max; max > 16 {
		t.Errorf("queue depth high-water %d exceeds capacity 16", max)
	}
	if !throttledOn.Load() {
		t.Error("client OnThrottle(true) never fired")
	}
	st := openRun(t, srv.cfg.Root, "acme", "tt", 1)
	if err := VerifyRank(st, 0, rows); err != nil {
		t.Fatalf("throttled stream corrupted: %v", err)
	}
	drain(t, srv)
}

func TestDiskQuotaKillsSession(t *testing.T) {
	srv := startServer(t, func(c *Config) {
		c.Quotas = map[string]Quota{"tiny": {MaxDiskBytes: 512}}
	})
	defer srv.Kill()

	cfg := clientConfig(srv.Addr(), "tiny", "dq", 0, 1)
	cfg.Backoff.MaxAttempts = 3
	c, err := ingestclient.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := expectedRows(singleRankStream(20000, 5))
	var gotErr error
	for _, r := range rows {
		if gotErr = c.Observe(r.Callsite, r.Name, r.Ev, 0); gotErr != nil {
			break
		}
	}
	if gotErr == nil {
		gotErr = c.Close()
	}
	var re *ingestclient.RejectedError
	if !errors.As(gotErr, &re) || re.Code != ingestwire.RejectQuotaDisk {
		t.Fatalf("over-quota stream ended with %v, want RejectQuotaDisk", gotErr)
	}
	if re.Retryable() {
		t.Fatal("disk quota rejection must be permanent")
	}
}

func TestServerKillSalvageResume(t *testing.T) {
	root := t.TempDir()
	reg := obs.NewRegistry()
	newServer := func() *Server {
		srv, err := New(Config{
			Addr: "127.0.0.1:0", Root: root,
			FlushInterval: 2 * time.Millisecond,
			Obs:           reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	srv := newServer()
	rows := expectedRows(singleRankStream(3000, 9))

	cfg := clientConfig(srv.Addr(), "acme", "kr", 0, 1)
	cfg.Backoff = ingestclient.Backoff{Base: 5 * time.Millisecond, Cap: 100 * time.Millisecond, MaxAttempts: 200}
	c, err := ingestclient.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Stream the first half, kill the daemon mid-flight, restart over the
	// same root, and resume from the salvaged frontier.
	half := len(rows) / 2
	streamRows(t, c, rows[:half])
	ackedBefore := c.Acked()
	srv.Kill()

	srv2 := newServer()
	// The client's config addr is stale; re-dial a fresh client at the
	// new address and replay everything the dead server never acked.
	// (The daemon process owns the address in production; in-process we
	// get a new port, so resume goes through a second Dial.)
	cfg2 := cfg
	cfg2.Addr = srv2.Addr()
	c2, err := ingestclient.Dial(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh client adopts the server's salvaged frontier as its offset;
	// the test replays the suffix the dead server never made durable.
	resumeAt := c2.Acked()

	// Find the row index whose cumulative weight reaches resumeAt.
	var cum uint64
	idx := 0
	for idx < len(rows) && cum < resumeAt {
		cum += rows[idx].Weight()
		idx++
	}
	if cum != resumeAt {
		t.Fatalf("salvaged frontier %d does not fall on a row boundary (cum %d)", resumeAt, cum)
	}
	if resumeAt < ackedBefore {
		t.Fatalf("salvaged frontier %d lost acked events (acked %d before kill)", resumeAt, ackedBefore)
	}
	streamRows(t, c2, rows[idx:])
	if err := c2.Close(); err != nil {
		t.Fatalf("Close after resume: %v", err)
	}

	st := openRun(t, root, "acme", "kr", 1)
	if err := VerifyRank(st, 0, rows); err != nil {
		t.Fatalf("kill+salvage+resume lost or duplicated events: %v", err)
	}
	drain(t, srv2)
}
