package ingestd

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/spsc"
)

// session is one client connection carrying one (tenant, run, rank)
// stream. Its reader goroutine (the accept handler) parses frames and
// enqueues rows; the owning worker drains the queue into the run's
// encoder. The two sides meet only at the spsc queue and a handful of
// atomics, so a stalled encoder never blocks frame parsing until the
// queue itself fills — at which point the reader throttles the client and
// blocks, pushing backpressure into the TCP window.
type session struct {
	id     uint64
	srv    *Server
	nc     net.Conn
	wc     *ingestwire.Conn
	tenant *tenantState
	run    *run
	rs     *rankState
	worker *worker
	q      *spsc.Queue[ingestwire.Row]

	// wmu serializes frame writes: the reader sends THROTTLE(on), the
	// worker sends ACK/THROTTLE(off)/DONE, the server sends DRAIN.
	wmu sync.Mutex

	dead         atomic.Bool
	welcomed     atomic.Bool
	finished     atomic.Bool
	finishOffset atomic.Uint64
	throttled    atomic.Bool

	// lastAck and doneSent are worker-side state (no locking needed).
	lastAck  uint64
	doneSent bool
}

// writeFrame runs fn against the framed conn under the write mutex and a
// fresh write deadline, so one stuck client cannot wedge a worker.
func (s *session) writeFrame(fn func(*ingestwire.Conn) error) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.nc.SetWriteDeadline(time.Now().Add(s.srv.cfg.WriteTimeout)) //cdc:allow(errsink) deadline set on live conn; write reports failure
	return fn(s.wc)
}

func (s *session) sendReject(kind byte, rej ingestwire.Reject) {
	s.srv.rejects.Inc()
	s.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) conn is being torn down
		return c.WriteReject(kind, rej)
	})
}

// readLoop consumes the session's frames until the connection dies or the
// client misbehaves. It runs on the accept handler's goroutine.
func (s *session) readLoop() {
	defer func() {
		s.dead.Store(true)
		s.q.Close()
		s.nc.Close() //cdc:allow(errsink) teardown of a dead conn
		s.worker.wake()
	}()
	for {
		s.nc.SetReadDeadline(time.Now().Add(s.srv.cfg.IdleTimeout)) //cdc:allow(errsink) deadline set on live conn; read reports failure
		kind, payload, err := s.wc.ReadFrame()
		if err != nil {
			return
		}
		switch kind {
		case ingestwire.KindEvents:
			rows, err := ingestwire.DecodeRows(payload)
			if err != nil {
				s.sendReject(ingestwire.KindError, ingestwire.Reject{
					Code: ingestwire.RejectMalformed, Msg: err.Error()})
				return
			}
			s.tenant.bytes.Add(uint64(len(payload)))
			if d := s.tenant.pace(len(payload), time.Now()); d > 0 {
				time.Sleep(d)
			}
			if !s.enqueue(rows) {
				return
			}
			s.worker.wake()
		case ingestwire.KindFinish:
			off, err := ingestwire.ParseOffset(payload)
			if err != nil {
				s.sendReject(ingestwire.KindError, ingestwire.Reject{
					Code: ingestwire.RejectMalformed, Msg: err.Error()})
				return
			}
			s.finishOffset.Store(off)
			s.finished.Store(true)
			s.worker.wake()
			// Keep reading: the client holds the conn open for DONE and
			// then closes, which lands here as EOF.
		default:
			s.sendReject(ingestwire.KindError, ingestwire.Reject{
				Code: ingestwire.RejectMalformed, Msg: "unexpected frame kind"})
			return
		}
	}
}

// enqueue pushes a batch of rows, throttling the client the moment the
// bounded queue sheds. The failed TryEnqueue is what drives backpressure:
// it flips the throttle exactly once per episode, and the subsequent
// blocking Enqueue stops frame intake so the kernel's TCP window does the
// rest. Returns false when the queue closed under us (server kill).
func (s *session) enqueue(rows []ingestwire.Row) bool {
	start := time.Now()
	for _, row := range rows {
		if s.q.TryEnqueue(row) {
			continue
		}
		if s.throttled.CompareAndSwap(false, true) {
			s.srv.throttles.Inc()
			s.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) advisory frame; conn failure surfaces on next read
				return c.WriteThrottle(true)
			})
		}
		if !s.q.Enqueue(row) {
			return false
		}
	}
	s.srv.enqueueHist.ObserveDuration(time.Since(start))
	return true
}

// maybeUnthrottle lifts the client's throttle once its queue has drained
// below a quarter of capacity. Worker-side.
func (s *session) maybeUnthrottle() {
	if s.throttled.Load() && s.q.Len() < s.q.Cap()/4 {
		if s.throttled.CompareAndSwap(true, false) {
			s.writeFrame(func(c *ingestwire.Conn) error { //cdc:allow(errsink) advisory frame; conn failure surfaces on next read
				return c.WriteThrottle(false)
			})
		}
	}
}
