package ingestd

import (
	"sync"
	"time"

	"cdcreplay/internal/obs"
)

// Quota bounds one tenant's footprint on the daemon. Zero fields are
// unlimited.
type Quota struct {
	// MaxSessions caps concurrent sessions across all of the tenant's
	// runs; excess handshakes are rejected with RejectQuotaSessions
	// (retryable: a slot frees when a session ends).
	MaxSessions int
	// MaxBytesPerSec paces the tenant's aggregate ingest: a session whose
	// tenant is over rate is slowed by delaying frame admission, not
	// rejected, so a bursty client degrades to its contracted rate.
	MaxBytesPerSec int64
	// MaxDiskBytes caps compressed record bytes on disk across the
	// tenant's runs; a session that crosses it is killed with a
	// RejectQuotaDisk error frame and later handshakes are rejected.
	MaxDiskBytes int64
}

// tenantState is the daemon's accounting for one tenant.
type tenantState struct {
	name  string
	quota Quota
	bytes *obs.Counter // ingest.tenant.<name>.bytes

	mu        sync.Mutex
	sessions  int
	diskBytes int64
	// token bucket for MaxBytesPerSec; tokens may go negative, in which
	// case the overdraft is the pacing delay times the rate.
	tokens     float64
	lastRefill time.Time
}

func newTenantState(name string, q Quota, reg *obs.Registry) *tenantState {
	return &tenantState{
		name:  name,
		quota: q,
		bytes: reg.Counter("ingest.tenant." + name + ".bytes"),
	}
}

// tryAcquireSession claims a session slot, false when at quota.
func (t *tenantState) tryAcquireSession() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxSessions > 0 && t.sessions >= t.quota.MaxSessions {
		return false
	}
	t.sessions++
	return true
}

func (t *tenantState) releaseSession() {
	t.mu.Lock()
	t.sessions--
	t.mu.Unlock()
}

// pace admits n ingested bytes against the rate quota and returns how long
// the caller must sleep before reading more. The bucket holds up to one
// second of burst.
func (t *tenantState) pace(n int, now time.Time) time.Duration {
	rate := t.quota.MaxBytesPerSec
	if rate <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lastRefill.IsZero() {
		t.lastRefill = now
		t.tokens = float64(rate)
	}
	t.tokens += now.Sub(t.lastRefill).Seconds() * float64(rate)
	t.lastRefill = now
	if max := float64(rate); t.tokens > max {
		t.tokens = max
	}
	t.tokens -= float64(n)
	if t.tokens >= 0 {
		return 0
	}
	return time.Duration(-t.tokens / float64(rate) * float64(time.Second))
}

// addDisk accounts n more record bytes, reporting false when the tenant
// crossed its disk quota.
func (t *tenantState) addDisk(n int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.diskBytes += n
	return t.quota.MaxDiskBytes <= 0 || t.diskBytes <= t.quota.MaxDiskBytes
}

// overDisk reports whether the tenant is at or past its disk quota.
func (t *tenantState) overDisk() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quota.MaxDiskBytes > 0 && t.diskBytes > t.quota.MaxDiskBytes
}
