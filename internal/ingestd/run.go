package ingestd

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
	"time"

	"cdcreplay/internal/core"
	"cdcreplay/internal/ingestwire"
	"cdcreplay/internal/store"
)

// ingestApp is the manifest App stamp for daemon-recorded runs.
const ingestApp = "ingest"

// segment is a sealed, not-yet-acked span of one rank's record: everything
// between two durable flush cuts.
type segment struct {
	// end is the rank's logical-event offset at the segment's cut.
	end uint64
	// clock is the cut's flush-mark clock.
	clock uint64
	// maxRef holds, per OTHER rank, the largest piggybacked clock the
	// segment's matched events reference. The segment is acked only once
	// it sits inside the run's maximal self-consistent cut: every
	// referenced rank holds a durable cut at or past that clock which
	// itself survives the cross-rank trim. store salvage retains any
	// self-consistent cut, so an ack is a durable exactly-once promise
	// even across a daemon crash.
	maxRef map[int]uint64
}

// rankState is one rank's ingest state within a run. All fields are
// guarded by the owning run's mu.
type rankState struct {
	rank int
	blob store.BlobWriter
	enc  *core.Encoder

	// names tracks callsites registered with THIS encoder instance, so a
	// client resending names after reconnect does not double-register.
	names map[uint64]bool
	// openGroups counts callsites whose last row had WithNext set: their
	// pending events sit in an unfinished MF group, and core.FlushAll
	// would skip them (writing no durable mark), so sealing waits until
	// every group closes.
	midGroup   map[uint64]bool
	openGroups int

	// offset counts logical events consumed into the encoder.
	offset uint64
	// clock is the largest producer clock observed, stamped on cuts.
	clock uint64
	// rowsSinceSeal counts logical events since the last durable cut.
	rowsSinceSeal uint64
	// pendingRef accumulates the next segment's maxRef.
	pendingRef map[int]uint64
	lastSeal   time.Time

	// segments are sealed spans awaiting the cross-rank ack barrier.
	segments []segment
	// acked is the offset promised durable to the client; ackedClock the
	// flush clock of the last acked cut.
	acked      uint64
	ackedClock uint64

	diskAccounted int64 // enc.BytesWritten() already charged to the tenant

	sess         *session
	everAttached bool
	resumed      bool // reopened from an on-disk record at daemon start
	finished     bool // client Finish observed and fully drained
	closed       bool // encoder closed (no further appends this process)
	err          error
}

// run is one (tenant, run) record store being ingested.
type run struct {
	key    string
	tenant *tenantState
	st     store.Store
	ranks  int

	// mu guards every rankState and the fields below. Coarse per-run
	// locking is deliberate: contention exists only between ranks of the
	// same run (rare — each rank has its own session and worker shard),
	// while distinct runs ingest fully in parallel.
	mu        sync.Mutex
	rankState map[int]*rankState
	finalized bool
}

// openRun finds or creates the run's record store. Called with the
// server mu held (run creation is rare; steady-state attaches hit the
// in-memory map first).
func (s *Server) openRun(tenant *tenantState, h ingestwire.Hello) (*run, *ingestwire.Reject) {
	key := h.Tenant + "/" + h.Run
	if r := s.runs[key]; r != nil {
		if r.ranks != h.Ranks {
			return nil, &ingestwire.Reject{Code: ingestwire.RejectRanksConflict,
				Msg: fmt.Sprintf("run %s has %d ranks, hello says %d", key, r.ranks, h.Ranks)}
		}
		return r, nil
	}
	st, err := s.root.Open(key)
	if err != nil {
		return nil, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
	}
	m, err := st.Manifest()
	switch {
	case err == nil:
		if m.Ranks != h.Ranks {
			return nil, &ingestwire.Reject{Code: ingestwire.RejectRanksConflict,
				Msg: fmt.Sprintf("run %s recorded %d ranks, hello says %d", key, m.Ranks, h.Ranks)}
		}
		// Mark the run in-progress again so a crash mid-append is seen by
		// the next restart's salvage instead of passing for complete.
		if _, err := st.Reopen(); err != nil {
			return nil, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
		}
	case errors.Is(err, fs.ErrNotExist):
		if err := st.Create(store.Manifest{Ranks: h.Ranks, App: ingestApp}); err != nil {
			return nil, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
		}
	default:
		return nil, &ingestwire.Reject{Code: ingestwire.RejectMalformed, Msg: err.Error()}
	}
	r := &run{key: key, tenant: tenant, st: st, ranks: h.Ranks, rankState: make(map[int]*rankState)}
	s.runs[key] = r
	return r, nil
}

// openRank finds or opens one rank's record blob and encoder. Called with
// the run's mu held.
func (s *Server) openRank(r *run, rank int) (*rankState, error) {
	if rs := r.rankState[rank]; rs != nil {
		if rs.err != nil {
			return nil, rs.err
		}
		return rs, nil
	}
	w, resume, err := r.st.AppendRank(rank)
	if err != nil {
		return nil, err
	}
	rs := &rankState{
		rank:     rank,
		blob:     w,
		names:    make(map[uint64]bool),
		midGroup: make(map[uint64]bool),
		lastSeal: time.Now(),
	}
	opts := core.EncoderOptions{
		ChunkEvents:  s.cfg.ChunkEvents,
		Durable:      s.cfg.Durable,
		Obs:          s.cfg.Obs,
		SeekableCuts: r.st.Seekable(),
		// Every durable seal also commits an epoch-index entry into the
		// manifest, so replay tooling can read the run mid-ingest pinned to
		// the last committed cut.
		OnFlushPoint: func(clock, events uint64, offset int64) error {
			return w.Commit(store.Cut{Clock: clock, Events: events, Offset: offset})
		},
	}
	if resume {
		// Everything already on disk survived salvage, so it is durable
		// AND run-consistent: the resumed frontier starts fully acked.
		events, clock, err := store.RankFrontier(r.st, rank)
		if err != nil {
			w.Close() //cdc:allow(errsink) open failed; best-effort release
			return nil, err
		}
		rs.offset, rs.clock = events, clock
		rs.acked, rs.ackedClock = events, clock
		rs.resumed = true
		opts.Resume, opts.ResumeClock = true, clock
	}
	rs.enc, err = core.NewEncoder(w, opts)
	if err != nil {
		w.Close() //cdc:allow(errsink) open failed; best-effort release
		return nil, err
	}
	r.rankState[rank] = rs
	return rs, nil
}

// observe feeds one wire row into the rank's encoder. Caller holds the
// run's mu.
func (r *run) observe(rs *rankState, row ingestwire.Row) error {
	if rs.closed {
		return fmt.Errorf("rank %d: row after finish", rs.rank)
	}
	ev := row.Ev
	if ev.Flag {
		if int(ev.Rank) < 0 || int(ev.Rank) >= r.ranks {
			return fmt.Errorf("rank %d: matched event references rank %d of %d", rs.rank, ev.Rank, r.ranks)
		}
	} else if ev.Count == 0 {
		return fmt.Errorf("rank %d: unmatched row with zero count", rs.rank)
	}
	if row.Name != "" && !rs.names[row.Callsite] {
		if err := rs.enc.RegisterCallsite(row.Callsite, row.Name); err != nil {
			return err
		}
		rs.names[row.Callsite] = true
	}
	if err := rs.enc.Observe(row.Callsite, ev); err != nil {
		return err
	}
	open := ev.Flag && ev.WithNext
	if rs.midGroup[row.Callsite] != open {
		rs.midGroup[row.Callsite] = open
		if open {
			rs.openGroups++
		} else {
			rs.openGroups--
		}
	}
	if ev.Flag && int(ev.Rank) != rs.rank {
		if rs.pendingRef == nil {
			rs.pendingRef = make(map[int]uint64)
		}
		if ev.Clock > rs.pendingRef[int(ev.Rank)] {
			rs.pendingRef[int(ev.Rank)] = ev.Clock
		}
	}
	if row.Clock > rs.clock {
		rs.clock = row.Clock
	}
	w := row.Weight()
	rs.offset += w
	rs.rowsSinceSeal += w
	return nil
}

// seal writes a durable flush cut for the rank, turning everything
// observed so far into a barrier-gated segment. A no-op while an MF group
// is open (the cut would skip that stream and carry no mark) or when
// nothing new was observed. Caller holds the run's mu.
func (r *run) seal(rs *rankState) error {
	if rs.closed || rs.rowsSinceSeal == 0 || rs.openGroups > 0 {
		return nil
	}
	before := rs.enc.Stats().FlushPoints
	if err := rs.enc.FlushAll(rs.clock); err != nil {
		return err
	}
	if rs.enc.Stats().FlushPoints == before {
		// No mark was written (an open group slipped past the openGroups
		// accounting): the cut is not durable, so nothing is sealed.
		return nil
	}
	rs.pushSegment()
	return r.chargeDisk(rs)
}

// closeRank finishes the rank's record: every pending stream flushes and
// the final mark makes the whole stream durable. Caller holds the run's
// mu.
func (r *run) closeRank(rs *rankState) error {
	if rs.closed {
		return nil
	}
	rs.closed = true
	if err := rs.enc.Close(); err != nil {
		return err
	}
	if rs.rowsSinceSeal > 0 {
		rs.pushSegment()
	}
	if err := r.chargeDisk(rs); err != nil {
		return err
	}
	err := rs.blob.Close()
	rs.blob = nil
	return err
}

func (rs *rankState) pushSegment() {
	rs.segments = append(rs.segments, segment{end: rs.offset, clock: rs.clock, maxRef: rs.pendingRef})
	rs.pendingRef = nil
	rs.rowsSinceSeal = 0
	rs.lastSeal = time.Now()
}

// chargeDisk accounts the encoder's new compressed bytes to the tenant.
func (r *run) chargeDisk(rs *rankState) error {
	n := rs.enc.BytesWritten()
	d := n - rs.diskAccounted
	rs.diskAccounted = n
	if !r.tenant.addDisk(d) {
		return &quotaDiskError{tenant: r.tenant.name}
	}
	return nil
}

// quotaDiskError marks a disk-quota kill so the session layer can report
// RejectQuotaDisk instead of a generic failure.
type quotaDiskError struct{ tenant string }

func (e *quotaDiskError) Error() string {
	return fmt.Sprintf("tenant %s over disk quota", e.tenant)
}

// advanceAcks runs the cross-rank ack barrier: it computes the MAXIMAL
// self-consistent cut over sealed segments — start from every rank's full
// sealed frontier and trim tail segments whose references exceed another
// rank's retained clock, cascading until stable — then acks everything
// retained. This mirrors recorddir.Salvage's trim exactly: salvage keeps
// any self-consistent cut, and adding later segments can only extend (never
// invalidate) a consistent prefix, so acked data survives every future
// crash. A least fixed point ("refs must already be ACKED") would deadlock
// here: ranks whose final segments reference each other form a cycle that
// only the maximal solution resolves. Caller holds the run's mu.
func (r *run) advanceAcks() {
	keep := make(map[int]int, len(r.rankState))
	front := make(map[int]uint64, len(r.rankState))
	for rank, rs := range r.rankState {
		keep[rank] = len(rs.segments)
		front[rank] = frontierClock(rs, len(rs.segments))
	}
	for changed := true; changed; {
		changed = false
		for rank, rs := range r.rankState {
			k := keep[rank]
			for k > 0 && !refsCovered(rank, rs.segments[k-1].maxRef, front) {
				k--
				changed = true
			}
			if k != keep[rank] {
				keep[rank] = k
				front[rank] = frontierClock(rs, k)
			}
		}
	}
	for rank, rs := range r.rankState {
		k := keep[rank]
		if k == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			seg := rs.segments[i]
			rs.acked = seg.end
			if seg.clock > rs.ackedClock {
				rs.ackedClock = seg.clock
			}
		}
		rs.segments = rs.segments[k:]
	}
}

// frontierClock is rank rs's retained flush clock when its first k sealed
// segments are kept: the acked clock advanced through those cuts.
func frontierClock(rs *rankState, k int) uint64 {
	c := rs.ackedClock
	for i := 0; i < k; i++ {
		if rs.segments[i].clock > c {
			c = rs.segments[i].clock
		}
	}
	return c
}

// refsCovered reports whether every cross-rank reference in maxRef lands at
// or below the referenced rank's retained frontier clock. A rank that never
// attached has no durable data, so any reference to it fails.
func refsCovered(self int, maxRef map[int]uint64, front map[int]uint64) bool {
	for rank, clock := range maxRef {
		if rank == self {
			continue
		}
		if f, ok := front[rank]; !ok || f < clock {
			return false
		}
	}
	return true
}

// maybeFinalize marks the run complete once every declared rank finished
// and fully acked. Caller holds the run's mu.
func (r *run) maybeFinalize() error {
	if r.finalized || len(r.rankState) != r.ranks {
		return nil
	}
	for _, rs := range r.rankState {
		if !rs.finished || !rs.closed || len(rs.segments) > 0 {
			return nil
		}
	}
	if err := r.st.Finalize(); err != nil {
		return err
	}
	r.finalized = true
	return nil
}
