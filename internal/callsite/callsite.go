// Package callsite derives stable matching-function identifiers from the
// program counter of the MF call (paper §4.4: "we analyze the call stacks
// of the function calls, and separately manage the record tables for the
// different MF call instances").
//
// The identifier is an FNV-1a hash of the caller's file:line, so it is
// stable between the record run and the replay run of the same program —
// unlike raw program-counter values, which can move between builds.
package callsite

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

type entry struct {
	id   uint64
	name string
}

var cache sync.Map // uintptr (pc) -> entry

// ID returns the identifier and human-readable name (file:line) of the
// caller skip frames above this function. skip follows runtime.Caller:
// skip=1 identifies ID's caller, skip=2 that function's caller, and so on.
func ID(skip int) (uint64, string) {
	pc, file, line, ok := runtime.Caller(skip)
	if !ok {
		return 0, "unknown"
	}
	if e, hit := cache.Load(pc); hit {
		ent := e.(entry)
		return ent.id, ent.name
	}
	// Keep the last two path components: unambiguous enough for humans,
	// and short enough that name frames stay negligible in the record.
	slashes := 0
	for i := len(file) - 1; i >= 0; i-- {
		if file[i] == '/' {
			slashes++
			if slashes == 2 {
				file = file[i+1:]
				break
			}
		}
	}
	name := fmt.Sprintf("%s:%d", file, line)
	h := fnv.New64a()
	h.Write([]byte(name))
	ent := entry{id: h.Sum64(), name: name}
	if ent.id == 0 {
		ent.id = 1 // reserve 0 for "MF identification disabled"
	}
	cache.Store(pc, ent)
	return ent.id, ent.name
}
