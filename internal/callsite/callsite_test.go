package callsite

import (
	"strings"
	"testing"
)

func fromHelperA() (uint64, string) { return ID(1) }

func fromHelperB() (uint64, string) { return ID(1) }

func TestDistinctCallsitesGetDistinctIDs(t *testing.T) {
	idA, nameA := fromHelperA()
	idB, nameB := fromHelperB()
	if idA == idB {
		t.Fatalf("distinct callsites share id %#x (%s vs %s)", idA, nameA, nameB)
	}
	if !strings.Contains(nameA, "callsite_test.go") {
		t.Fatalf("name %q does not identify the source file", nameA)
	}
}

func TestSameCallsiteIsStable(t *testing.T) {
	var ids []uint64
	var names []string
	for i := 0; i < 3; i++ {
		id, name := fromHelperA()
		ids = append(ids, id)
		names = append(names, name)
	}
	for i := 1; i < 3; i++ {
		if ids[i] != ids[0] || names[i] != names[0] {
			t.Fatalf("callsite identity unstable: %v %v", ids, names)
		}
	}
}

func TestLoopCallsiteIsOne(t *testing.T) {
	// All iterations of a loop share a source line, hence one MF id —
	// the paper's Fig. 3 pattern relies on this.
	seen := map[uint64]bool{}
	for i := 0; i < 5; i++ {
		id, _ := ID(1)
		seen[id] = true
	}
	if len(seen) != 1 {
		t.Fatalf("loop produced %d distinct ids", len(seen))
	}
}

func TestIDNeverZero(t *testing.T) {
	id, _ := fromHelperA()
	if id == 0 {
		t.Fatal("callsite id 0 is reserved for disabled MF identification")
	}
}

func TestBadSkipIsHarmless(t *testing.T) {
	id, name := ID(1000)
	if id != 0 || name != "unknown" {
		t.Fatalf("got %#x %q for absurd skip", id, name)
	}
}
