package lpe

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAppendEncodeMatchesEncode pins the append variant to Encode on random
// sequences, including appending after existing content.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		xs := make([]int64, rng.Intn(100))
		for i := range xs {
			xs[i] = rng.Int63n(1 << 30)
		}
		want := Encode(nil, xs)
		got := AppendEncode(nil, xs)
		if len(xs) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: append %v, encode %v", trial, got, want)
		}
		prefixed := AppendEncode([]int64{-1, -2}, xs)
		if !reflect.DeepEqual(prefixed[2:], want) || prefixed[0] != -1 || prefixed[1] != -2 {
			t.Fatalf("trial %d: append after prefix corrupted: %v", trial, prefixed)
		}
	}
}

// TestAppendEncodeAllocs pins the reused-buffer path at zero allocations.
func TestAppendEncodeAllocs(t *testing.T) {
	xs := make([]int64, 4096)
	for i := range xs {
		xs[i] = int64(i * 3)
	}
	dst := AppendEncode(nil, xs) // size the buffer
	if allocs := testing.AllocsPerRun(50, func() { dst = AppendEncode(dst[:0], xs) }); allocs != 0 {
		t.Fatalf("warm AppendEncode allocates %v times per call, want 0", allocs)
	}
}
