package lpe_test

import (
	"fmt"

	"cdcreplay/internal/lpe"
)

// The paper's §3.4 example: a near-linear index column encodes to
// residuals clustered at zero, which zigzag varints and gzip then shrink.
func ExampleEncode() {
	indices := []int64{1, 2, 4, 6, 8, 12, 17}
	residuals := lpe.Encode(nil, indices)
	fmt.Println(residuals)
	fmt.Println(lpe.Decode(nil, residuals))
	// Output:
	// [1 0 1 0 0 2 1]
	// [1 2 4 6 8 12 17]
}
