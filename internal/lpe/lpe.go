// Package lpe implements the lossless linear predictive encoding CDC applies
// to monotonically increasing index columns (paper §3.4).
//
// The predictor assumes x_n lies on the line through x_{n-1} and x_{n-2}
// (order p = 2 with coefficients (a1, a2) = (2, −1)), so the stored residual
// is
//
//	e_n = x_n − 2·x_{n−1} + x_{n−2}   with x_{n≤0} = 0.
//
// For index sequences that grow at a near-constant stride the residuals
// cluster around zero, which zigzag varints store in one byte and gzip
// compresses further. Encoding is exactly invertible: e_1 = x_1, and each
// x_n is recovered recursively from the residual stream.
package lpe

import "cdcreplay/internal/varint"

// Encode writes the LP residuals of xs into dst (allocating if dst is nil or
// too short) and returns the residual slice. len(result) == len(xs).
func Encode(dst, xs []int64) []int64 {
	if cap(dst) < len(xs) {
		dst = make([]int64, len(xs))
	}
	dst = dst[:len(xs)]
	var x1, x2 int64 // x_{n-1}, x_{n-2}; zero before the sequence starts
	for i, x := range xs {
		dst[i] = x - 2*x1 + x2
		x2, x1 = x1, x
	}
	return dst
}

// AppendEncode appends the LP residuals of xs to dst and returns the
// extended slice — the pooling-friendly variant of Encode: a caller that
// keeps dst's backing array (e.g. a per-worker scratch in the parallel
// encode pipeline) pays zero allocations in steady state.
func AppendEncode(dst, xs []int64) []int64 {
	var x1, x2 int64
	for _, x := range xs {
		dst = append(dst, x-2*x1+x2)
		x2, x1 = x1, x
	}
	return dst
}

// EncodedSize returns the total zigzag-varint byte size of the LP residuals
// of xs, without allocating the residual slice — the LPE stage's
// contribution to the per-stage byte accounting (DESIGN.md §8).
func EncodedSize(xs []int64) int {
	var n int
	var x1, x2 int64
	for _, x := range xs {
		n += varint.IntSize(x - 2*x1 + x2)
		x2, x1 = x1, x
	}
	return n
}

// Decode inverts Encode, reconstructing the original values from residuals.
func Decode(dst, es []int64) []int64 {
	if cap(dst) < len(es) {
		dst = make([]int64, len(es))
	}
	dst = dst[:len(es)]
	var x1, x2 int64
	for i, e := range es {
		x := e + 2*x1 - x2
		dst[i] = x
		x2, x1 = x1, x
	}
	return dst
}
