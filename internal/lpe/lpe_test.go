package lpe

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The worked example from paper §3.4: {1,2,4,6,8,12,17} encodes to
// {1,0,1,0,0,2,1}.
func TestPaperExample(t *testing.T) {
	xs := []int64{1, 2, 4, 6, 8, 12, 17}
	want := []int64{1, 0, 1, 0, 0, 2, 1}
	got := Encode(nil, xs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Encode(%v) = %v, want %v", xs, got, want)
	}
	back := Decode(nil, got)
	if !reflect.DeepEqual(back, xs) {
		t.Fatalf("Decode(Encode(x)) = %v, want %v", back, xs)
	}
}

func TestFirstResidualEqualsFirstValue(t *testing.T) {
	// e1 = x1 − x̂1 = x1 because x_{n≤0} = 0 (paper Eq. 2 discussion).
	xs := []int64{42, 50}
	es := Encode(nil, xs)
	if es[0] != 42 {
		t.Fatalf("e1 = %d, want 42", es[0])
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Encode(nil, nil); len(got) != 0 {
		t.Fatalf("Encode(nil) = %v", got)
	}
	if got := Encode(nil, []int64{7}); !reflect.DeepEqual(got, []int64{7}) {
		t.Fatalf("Encode([7]) = %v", got)
	}
	if got := Decode(nil, []int64{7}); !reflect.DeepEqual(got, []int64{7}) {
		t.Fatalf("Decode([7]) = %v", got)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(xs []int64) bool {
		enc := Encode(nil, xs)
		dec := Decode(nil, enc)
		if len(xs) == 0 {
			return len(dec) == 0
		}
		return reflect.DeepEqual(dec, xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearSequencesEncodeToNearZero(t *testing.T) {
	// A perfectly linear index column must produce residuals that are zero
	// beyond the warm-up terms — the property that makes gzip effective.
	xs := make([]int64, 100)
	for i := range xs {
		xs[i] = int64(3 + 5*i)
	}
	es := Encode(nil, xs)
	for i := 2; i < len(es); i++ {
		if es[i] != 0 {
			t.Fatalf("residual[%d] = %d, want 0", i, es[i])
		}
	}
}

func TestEncodeReusesDst(t *testing.T) {
	xs := []int64{1, 2, 3}
	dst := make([]int64, 8)
	got := Encode(dst, xs)
	if &got[0] != &dst[0] {
		t.Fatal("Encode did not reuse provided buffer")
	}
}

func TestDecodeReusesDst(t *testing.T) {
	es := []int64{1, 0, 0}
	dst := make([]int64, 8)
	got := Decode(dst, es)
	if &got[0] != &dst[0] {
		t.Fatal("Decode did not reuse provided buffer")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, 4096)
	v := int64(0)
	for i := range xs {
		v += rng.Int63n(5)
		xs[i] = v
	}
	dst := make([]int64, len(xs))
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(dst, xs)
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int64, 4096)
	v := int64(0)
	for i := range xs {
		v += rng.Int63n(5)
		xs[i] = v
	}
	es := Encode(nil, xs)
	dst := make([]int64, len(es))
	b.SetBytes(int64(len(es) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(dst, es)
	}
}
