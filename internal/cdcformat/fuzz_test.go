package cdcformat

import (
	"bytes"
	"testing"

	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// fuzzSeedChunk builds a representative chunk (moves, with-next groups,
// unmatched runs, multi-rank epoch line, sender column) for the seed corpus.
func fuzzSeedChunk() []byte {
	events := []tables.Event{
		tables.MatchedTagged(0, 3, 4, false),
		tables.MatchedTagged(1, 3, 2, false),
		tables.Unmatched(2),
		tables.MatchedTagged(0, 9, 5, true),
		tables.MatchedTagged(1, 3, 5, false),
		tables.MatchedTagged(2, 3, 2, false),
		tables.MatchedTagged(0, 3, 6, false),
	}
	return BuildChunkWithSenders(7, events).Marshal(nil)
}

// FuzzChunkDecode checks decoder totality and re-encode canonicality: on any
// input, Unmarshal either errors or returns a chunk; on success, the chunk
// must survive Marshal → Unmarshal → Marshal as a byte-for-byte fixed point
// (the committed corpus under testdata/fuzz is seeded from chunks that
// cdcdst-explored schedules actually produced — see DESIGN.md §11).
func FuzzChunkDecode(f *testing.F) {
	valid := fuzzSeedChunk()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x00})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Unmarshal(varint.NewReader(data))
		if err != nil {
			return // rejected inputs just must not panic
		}
		enc1 := c.Marshal(nil)
		c2, err := Unmarshal(varint.NewReader(enc1))
		if err != nil {
			t.Fatalf("re-decoding an accepted chunk's encoding failed: %v", err)
		}
		enc2 := c2.Marshal(nil)
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode is not a fixed point:\nfirst:  %x\nsecond: %x", enc1, enc2)
		}
	})
}
