package cdcformat

import (
	"bytes"
	"math/rand"
	"testing"

	"cdcreplay/internal/tables"
)

// randomTaggedEvents is randomEvents plus nonzero tags and occasional
// cross-sender clock ties, exercising every chunk table.
func randomTaggedEvents(rng *rand.Rand, n int) []tables.Event {
	clock := map[int32]uint64{}
	var events []tables.Event
	lastUnmatched := false
	for i := 0; i < n; i++ {
		if !lastUnmatched && rng.Intn(4) == 0 {
			events = append(events, tables.Unmatched(uint64(1+rng.Intn(6))))
			lastUnmatched = true
			continue
		}
		lastUnmatched = false
		r := int32(rng.Intn(6))
		clock[r] += uint64(1 + rng.Intn(4))
		events = append(events, tables.MatchedTagged(r, int32(rng.Intn(3)), clock[r], rng.Intn(5) == 0))
	}
	return events
}

// TestBuilderMatchesBuildChunk pins the Builder's scratch-based path to the
// allocating one: for random streams, with and without the sender column,
// the marshaled bytes must be identical — the property the parallel encode
// pipeline's byte-identity guarantee rests on. One Builder is reused across
// all trials so scratch recycling is exercised, not just the cold path.
func TestBuilderMatchesBuildChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var b Builder
	var got []byte
	for trial := 0; trial < 400; trial++ {
		events := randomTaggedEvents(rng, 1+rng.Intn(80))
		for _, senders := range []bool{false, true} {
			var want *Chunk
			if senders {
				want = BuildChunkWithSenders(uint64(trial), events)
			} else {
				want = BuildChunk(uint64(trial), events)
			}
			// Boundary exceptions are appended by the encoder, not the
			// builder; give both sides the same set.
			if trial%3 == 0 {
				want.Exceptions = []tables.MatchedEntry{{Rank: 1, Clock: uint64(trial)}}
			}
			c := b.Build(uint64(trial), events, senders)
			c.Exceptions = want.Exceptions

			got = b.AppendMarshal(got[:0], c)
			if wantBytes := want.Marshal(nil); !bytes.Equal(got, wantBytes) {
				t.Fatalf("trial %d senders=%v: marshal mismatch\nbuilder: %x\nlegacy:  %x",
					trial, senders, got, wantBytes)
			}
		}
	}
}

// TestBuilderOverflowRanks drives the map fallback for ranks outside the
// dense epoch-line range and checks it against the legacy path.
func TestBuilderOverflowRanks(t *testing.T) {
	events := []tables.Event{
		tables.Matched(maxDenseRank+7, 5, false),
		tables.Matched(2, 3, false),
		tables.Unmatched(2),
		tables.Matched(maxDenseRank+7, 9, false),
		tables.Matched(-3, 4, false),
	}
	var b Builder
	c := b.Build(1, events, true)
	got := b.AppendMarshal(nil, c)
	want := BuildChunkWithSenders(1, events).Marshal(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("overflow-rank marshal mismatch\nbuilder: %x\nlegacy:  %x", got, want)
	}
}

// TestBuilderAllocs pins the steady-state allocation count of a warm
// Builder at zero: the whole point of the scratch design is that the encode
// workers stop churning the GC once their buffers have grown to chunk size.
func TestBuilderAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	events := randomTaggedEvents(rng, 4096)
	var b Builder
	var buf []byte
	run := func() {
		c := b.Build(7, events, true)
		buf = b.AppendMarshal(buf[:0], c)
	}
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("warm Builder Build+AppendMarshal allocates %v times per chunk, want 0", allocs)
	}
}

func BenchmarkBuilderBuildMarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	events := randomTaggedEvents(rng, 4096)
	var bld Builder
	var buf []byte
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := bld.Build(0, events, true)
		buf = bld.AppendMarshal(buf[:0], c)
	}
}
