// Package cdcformat defines the CDC on-disk chunk format (paper Fig. 8 plus
// §3.5 epoch enforcement).
//
// A chunk is the unit CDC flushes from memory to storage. It holds, for one
// matching-function callsite and one flush interval:
//
//   - the permutation-difference table (observed index, delay),
//   - the with_next table,
//   - the unmatched-test table (index, count),
//   - the epoch line: per-sender maximum piggybacked clock among the
//     chunk's matched messages.
//
// Message identifiers (rank, clock) of matched messages are NOT stored —
// that is the point of CDC. At replay the reference order is rebuilt from
// the piggybacked clocks of the live messages, and the epoch line decides
// which chunk each live message belongs to: since per-sender clocks
// strictly increase, the chunk's messages from sender s are exactly the
// receives with clock in (previous frontier(s), frontier(s)].
//
// All index columns are linear-predictive encoded (§3.4) before zigzag
// varint serialization, and the surrounding stream is gzip-compressed by
// the storage writer, completing the paper's pipeline.
package cdcformat

import (
	"fmt"
	"sort"

	"cdcreplay/internal/lpe"
	"cdcreplay/internal/permdiff"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// MaxChunkEvents bounds the matched-event count a decoder will accept in
// one chunk, protecting against allocation bombs from corrupt record files.
const MaxChunkEvents = 1 << 24

// EpochEntry is one epoch-line row: the largest clock received from Rank
// within the chunk.
type EpochEntry struct {
	Rank  int32
	Clock uint64
}

// Chunk is the decoded in-memory form of one CDC record chunk.
type Chunk struct {
	// Callsite identifies the matching-function call instance (§4.4);
	// zero when MF identification is disabled.
	Callsite uint64
	// NumMatched is the number of matched receive events in the chunk.
	NumMatched uint64
	// Moves is the permutation-difference table (§3.3).
	Moves []permdiff.Move
	// WithNext lists 0-based matched-event indices received together with
	// their successor.
	WithNext []int64
	// Unmatched lists runs of failed tests keyed by following-match index.
	Unmatched []tables.UnmatchedRun
	// EpochLine holds per-sender clock frontiers, sorted by rank.
	EpochLine []EpochEntry
	// TiedClocks lists, sorted ascending by clock, the clock values
	// carried by more than one of the chunk's messages (necessarily from
	// different senders), with their multiplicities. This is a liveness
	// extension over the paper's format: its Axiom 1 release rule
	// compares a candidate's clock against the minimum clock of the
	// *next receive*, which a receiver cannot bound tightly enough
	// without knowing whether a colliding clock can still arrive. The
	// list is almost always empty, costing one varint per chunk; when a
	// tie does occur the multiplicity lets the replayer hold the tied
	// messages until all of them have arrived and their rank-order is
	// exact.
	TiedClocks []TiedClock
	// Senders, when present (length NumMatched), lists the sender rank of
	// each chunk message in *reference* order. It is an optional
	// robustness extension: with it, the replayer can release the message
	// for reference rank R as simply "the next FIFO message from
	// Senders[R]" with no clock reasoning at all, which makes replay
	// exact and deadlock-free even for tightly-coupled blocking exchanges
	// that the paper's Axiom 1 release rule cannot drive (its LMC bound
	// is not computable from receiver-local knowledge in those patterns).
	// The column costs a fraction of a byte per event after gzip and is
	// omitted by the paper-faithful encoder configuration used for the
	// compression-size experiments.
	Senders []int32
	// Tags accompanies Senders (reference order): the robust replayer
	// identifies the message for reference rank R as the j-th arrival of
	// the (Senders[R], Tags[R]) subsequence, where j counts lower ranks
	// with the same pair. Identification per (sender, tag) stays exact
	// even when an MF callsite serves several tags, because a stream
	// filters pooled messages by learned specs whole-tag at a time.
	Tags []int32
	// Exceptions lists chunk messages whose clock does not exceed an
	// earlier chunk's epoch frontier for their sender. This happens when
	// the application completes same-sender messages out of order (the
	// paper's Fig. 3) *across* a flush boundary: window-based chunk
	// membership would misassign such a message to the earlier chunk, so
	// it is pinned here explicitly. Empty in all but pathological
	// streams.
	Exceptions []tables.MatchedEntry
}

// TiedClock records a within-chunk clock collision.
type TiedClock struct {
	Clock uint64
	// Count is the number of chunk messages carrying Clock (≥ 2).
	Count uint64
}

// ValueCount returns the paper's stored-value accounting for the chunk
// (Fig. 8's "19 values" for the worked example): two per permutation move,
// one per with_next index, two per unmatched run, two per epoch entry.
// The TiedClocks liveness extension is excluded to keep the accounting
// comparable with the paper's figures; its size is reported by the byte
// counts, where it belongs.
func (c *Chunk) ValueCount() int {
	return 2*len(c.Moves) + len(c.WithNext) + 2*len(c.Unmatched) + 2*len(c.EpochLine)
}

// Marshal appends the serialized chunk to dst.
func (c *Chunk) Marshal(dst []byte) []byte {
	w := varint.Writer{}
	w.Uint(c.Callsite)
	w.Uint(c.NumMatched)

	w.Uint(uint64(len(c.Moves)))
	idx := make([]int64, len(c.Moves))
	for i, m := range c.Moves {
		idx[i] = m.ObservedIndex
	}
	for _, e := range lpe.Encode(nil, idx) {
		w.Int(e)
	}
	for _, m := range c.Moves {
		w.Int(m.Delay)
	}

	w.Uint(uint64(len(c.WithNext)))
	for _, e := range lpe.Encode(nil, c.WithNext) {
		w.Int(e)
	}

	w.Uint(uint64(len(c.Unmatched)))
	idx = make([]int64, len(c.Unmatched))
	for i, u := range c.Unmatched {
		idx[i] = u.Index
	}
	for _, e := range lpe.Encode(nil, idx) {
		w.Int(e)
	}
	for _, u := range c.Unmatched {
		w.Uint(u.Count)
	}

	w.Uint(uint64(len(c.EpochLine)))
	ranks := make([]int64, len(c.EpochLine))
	for i, e := range c.EpochLine {
		ranks[i] = int64(e.Rank)
	}
	for _, e := range lpe.Encode(nil, ranks) {
		w.Int(e)
	}
	for _, e := range c.EpochLine {
		w.Uint(e.Clock)
	}

	w.Uint(uint64(len(c.TiedClocks)))
	prev := uint64(0)
	for _, t := range c.TiedClocks {
		w.Uint(t.Clock - prev) // sorted ascending: delta encode
		w.Uint(t.Count)
		prev = t.Clock
	}

	w.Uint(uint64(len(c.Senders)))
	for _, r := range c.Senders {
		w.Uint(uint64(uint32(r)))
	}
	w.Uint(uint64(len(c.Tags)))
	for _, t := range c.Tags {
		w.Uint(uint64(uint32(t)))
	}

	w.Uint(uint64(len(c.Exceptions)))
	for _, e := range c.Exceptions {
		w.Uint(uint64(uint32(e.Rank)))
		w.Uint(e.Clock)
	}
	return append(dst, w.Result()...)
}

// Unmarshal decodes one chunk from r.
func Unmarshal(r *varint.Reader) (*Chunk, error) {
	c := &Chunk{}
	var err error
	if c.Callsite, err = r.Uint(); err != nil {
		return nil, fmt.Errorf("cdcformat: callsite: %w", err)
	}
	if c.NumMatched, err = r.Uint(); err != nil {
		return nil, fmt.Errorf("cdcformat: matched count: %w", err)
	}
	if c.NumMatched > MaxChunkEvents {
		return nil, fmt.Errorf("cdcformat: matched count %d exceeds limit %d", c.NumMatched, MaxChunkEvents)
	}

	nm, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: move count: %w", err)
	}
	if err := sane(nm, c.NumMatched); err != nil {
		return nil, fmt.Errorf("cdcformat: moves: %w", err)
	}
	movesIdx, err := readLPColumn(r, int(nm))
	if err != nil {
		return nil, fmt.Errorf("cdcformat: move indices: %w", err)
	}
	if nm > 0 {
		c.Moves = make([]permdiff.Move, nm)
	}
	for i := range c.Moves {
		d, err := r.Int()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: move delay: %w", err)
		}
		c.Moves[i] = permdiff.Move{ObservedIndex: movesIdx[i], Delay: d}
	}

	nw, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: with_next count: %w", err)
	}
	if err := sane(nw, c.NumMatched); err != nil {
		return nil, fmt.Errorf("cdcformat: with_next: %w", err)
	}
	if c.WithNext, err = readLPColumn(r, int(nw)); err != nil {
		return nil, fmt.Errorf("cdcformat: with_next indices: %w", err)
	}
	if nw == 0 {
		c.WithNext = nil
	}

	nu, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: unmatched count: %w", err)
	}
	if err := sane(nu, c.NumMatched+1); err != nil {
		return nil, fmt.Errorf("cdcformat: unmatched: %w", err)
	}
	uIdx, err := readLPColumn(r, int(nu))
	if err != nil {
		return nil, fmt.Errorf("cdcformat: unmatched indices: %w", err)
	}
	if nu > 0 {
		c.Unmatched = make([]tables.UnmatchedRun, nu)
	}
	for i := range c.Unmatched {
		cnt, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: unmatched run count: %w", err)
		}
		c.Unmatched[i] = tables.UnmatchedRun{Index: uIdx[i], Count: cnt}
	}

	ne, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: epoch count: %w", err)
	}
	if err := sane(ne, c.NumMatched); err != nil {
		return nil, fmt.Errorf("cdcformat: epoch line: %w", err)
	}
	eRanks, err := readLPColumn(r, int(ne))
	if err != nil {
		return nil, fmt.Errorf("cdcformat: epoch ranks: %w", err)
	}
	if ne > 0 {
		c.EpochLine = make([]EpochEntry, ne)
	}
	for i := range c.EpochLine {
		clk, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: epoch clock: %w", err)
		}
		c.EpochLine[i] = EpochEntry{Rank: int32(eRanks[i]), Clock: clk}
	}

	nt, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: tie count: %w", err)
	}
	if err := sane(nt, c.NumMatched); err != nil {
		return nil, fmt.Errorf("cdcformat: tied clocks: %w", err)
	}
	if nt > 0 {
		c.TiedClocks = make([]TiedClock, nt)
	}
	prev := uint64(0)
	for i := range c.TiedClocks {
		d, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: tied clock: %w", err)
		}
		cnt, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: tied clock count: %w", err)
		}
		if err := sane(cnt, c.NumMatched); err != nil {
			return nil, fmt.Errorf("cdcformat: tied clock count: %w", err)
		}
		prev += d
		c.TiedClocks[i] = TiedClock{Clock: prev, Count: cnt}
	}

	ns, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: sender column count: %w", err)
	}
	if ns != 0 && ns != c.NumMatched {
		return nil, fmt.Errorf("cdcformat: sender column has %d entries, want 0 or %d", ns, c.NumMatched)
	}
	if ns > 0 {
		c.Senders = make([]int32, ns)
	}
	for i := range c.Senders {
		v, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: sender column: %w", err)
		}
		c.Senders[i] = int32(uint32(v))
	}
	nt2, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: tag column count: %w", err)
	}
	if nt2 != 0 && nt2 != ns {
		return nil, fmt.Errorf("cdcformat: tag column has %d entries, want 0 or %d", nt2, ns)
	}
	if nt2 > 0 {
		c.Tags = make([]int32, nt2)
	}
	for i := range c.Tags {
		v, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: tag column: %w", err)
		}
		c.Tags[i] = int32(uint32(v))
	}

	nx, err := r.Uint()
	if err != nil {
		return nil, fmt.Errorf("cdcformat: exception count: %w", err)
	}
	if err := sane(nx, c.NumMatched); err != nil {
		return nil, fmt.Errorf("cdcformat: exceptions: %w", err)
	}
	if nx > 0 {
		c.Exceptions = make([]tables.MatchedEntry, nx)
	}
	for i := range c.Exceptions {
		rk, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: exception rank: %w", err)
		}
		clk, err := r.Uint()
		if err != nil {
			return nil, fmt.Errorf("cdcformat: exception clock: %w", err)
		}
		c.Exceptions[i] = tables.MatchedEntry{Rank: int32(uint32(rk)), Clock: clk}
	}
	return c, nil
}

// sane guards decode allocations against corrupt counts: no table can be
// longer than the matched-event count allows.
func sane(n, limit uint64) error {
	if n > limit {
		return fmt.Errorf("table length %d exceeds matched count %d", n, limit)
	}
	return nil
}

func readLPColumn(r *varint.Reader, n int) ([]int64, error) {
	es := make([]int64, n)
	for i := range es {
		v, err := r.Int()
		if err != nil {
			return nil, err
		}
		es[i] = v
	}
	return lpe.Decode(es, es), nil
}

// BuildChunk encodes one flush interval of events at one callsite into a
// chunk: redundancy elimination, reference-order ranking (Definition 6),
// permutation-difference encoding and epoch-line construction. The chunk
// carries no sender column (the paper-faithful format); see
// BuildChunkWithSenders.
func BuildChunk(callsite uint64, events []tables.Event) *Chunk {
	red := tables.Eliminate(events)
	return buildFromReduced(callsite, &red, false)
}

// BuildChunkWithSenders is BuildChunk plus the reference-order sender
// column robustness extension.
func BuildChunkWithSenders(callsite uint64, events []tables.Event) *Chunk {
	red := tables.Eliminate(events)
	return buildFromReduced(callsite, &red, true)
}

func buildFromReduced(callsite uint64, red *tables.Reduced, senders bool) *Chunk {
	obs := permdiff.Rank(len(red.Matched), func(i, j int) bool {
		return tables.Less(red.Matched[i], red.Matched[j])
	})
	frontier := map[int32]uint64{}
	clockSeen := map[uint64]int{}
	for _, m := range red.Matched {
		if m.Clock > frontier[m.Rank] {
			frontier[m.Rank] = m.Clock
		}
		clockSeen[m.Clock]++
	}
	var epoch []EpochEntry
	for r, clk := range frontier { //cdc:allow(maporder) entries are sorted by rank immediately below
		epoch = append(epoch, EpochEntry{Rank: r, Clock: clk})
	}
	sort.Slice(epoch, func(i, j int) bool { return epoch[i].Rank < epoch[j].Rank })
	var ties []TiedClock
	for clk, n := range clockSeen { //cdc:allow(maporder) ties are sorted by clock immediately below
		if n > 1 {
			ties = append(ties, TiedClock{Clock: clk, Count: uint64(n)})
		}
	}
	sort.Slice(ties, func(i, j int) bool { return ties[i].Clock < ties[j].Clock })
	c := &Chunk{
		Callsite:   callsite,
		NumMatched: uint64(len(red.Matched)),
		Moves:      permdiff.Encode(obs),
		WithNext:   red.WithNext,
		Unmatched:  red.Unmatched,
		EpochLine:  epoch,
		TiedClocks: ties,
	}
	if senders && len(red.Matched) > 0 {
		c.Senders = make([]int32, len(red.Matched))
		c.Tags = make([]int32, len(red.Matched))
		for i, m := range red.Matched {
			// obs[i] is the reference rank of observed message i, so the
			// sender/tag columns at that rank describe this message.
			c.Senders[obs[i]] = m.Rank
			c.Tags[obs[i]] = m.Tag
		}
	}
	return c
}

// ReconstructEvents inverts BuildChunk given the chunk's matched message
// identifiers in ANY order (at replay they come from the live messages;
// in tests from the original events). It returns the full event stream in
// observed order.
func (c *Chunk) ReconstructEvents(msgs []tables.MatchedEntry) ([]tables.Event, error) {
	if uint64(len(msgs)) != c.NumMatched {
		return nil, fmt.Errorf("cdcformat: chunk has %d matched events, got %d messages", c.NumMatched, len(msgs))
	}
	ref := append([]tables.MatchedEntry(nil), msgs...)
	sort.Slice(ref, func(i, j int) bool { return tables.Less(ref[i], ref[j]) })
	obs, err := permdiff.Decode(len(ref), c.Moves)
	if err != nil {
		return nil, err
	}
	red := tables.Reduced{
		Matched:   make([]tables.MatchedEntry, len(ref)),
		WithNext:  c.WithNext,
		Unmatched: c.Unmatched,
	}
	for i, r := range obs {
		red.Matched[i] = ref[r]
	}
	return red.Restore(), nil
}

// StageSizes reports the serialized byte size of one chunk's event set at
// the three in-memory CDC pipeline stages, for the per-stage byte
// accounting the obs layer exposes (DESIGN.md §8):
//
//	re — redundancy elimination only (paper §3.2): the reduced tables with
//	     the matched (rank, clock) column stored explicitly, plain varints;
//	pe — permutation encoding (§3.3): the matched column replaced by the
//	     permutation-difference moves plus the epoch line, index columns
//	     still plain varints;
//	lp — linear predictive encoding (§3.4) applied to the index columns:
//	     exactly the bytes Marshal produces.
//
// The final gzip stage is accounted by the storage writer
// (core.FrameWriter.BytesWritten), where the cross-chunk stream lives.
func StageSizes(events []tables.Event, c *Chunk) (re, pe, lp int) {
	// Tables shared by every stage, always plain varints.
	shared := varint.UintSize(uint64(len(c.WithNext))) +
		varint.UintSize(uint64(len(c.Unmatched)))
	for _, u := range c.Unmatched {
		shared += varint.UintSize(u.Count)
	}

	// Stage 1 — RE: matched identifiers explicit, index columns plain.
	re = varint.UintSize(c.NumMatched) + shared
	for _, ev := range events {
		if ev.Flag {
			re += varint.UintSize(uint64(uint32(ev.Rank))) + varint.UintSize(ev.Clock)
		}
	}
	for _, i := range c.WithNext {
		re += varint.IntSize(i)
	}
	for _, u := range c.Unmatched {
		re += varint.IntSize(u.Index)
	}

	// Columns PE introduces and both later stages carry.
	peTail := varint.UintSize(uint64(len(c.EpochLine))) +
		varint.UintSize(uint64(len(c.TiedClocks))) +
		varint.UintSize(uint64(len(c.Senders))) +
		varint.UintSize(uint64(len(c.Tags))) +
		varint.UintSize(uint64(len(c.Exceptions)))
	for _, e := range c.EpochLine {
		peTail += varint.UintSize(e.Clock)
	}
	prev := uint64(0)
	for _, t := range c.TiedClocks {
		peTail += varint.UintSize(t.Clock-prev) + varint.UintSize(t.Count)
		prev = t.Clock
	}
	for _, s := range c.Senders {
		peTail += varint.UintSize(uint64(uint32(s)))
	}
	for _, t := range c.Tags {
		peTail += varint.UintSize(uint64(uint32(t)))
	}
	for _, e := range c.Exceptions {
		peTail += varint.UintSize(uint64(uint32(e.Rank))) + varint.UintSize(e.Clock)
	}

	head := varint.UintSize(c.Callsite) + varint.UintSize(c.NumMatched) +
		varint.UintSize(uint64(len(c.Moves)))
	delays := 0
	for _, m := range c.Moves {
		delays += varint.IntSize(m.Delay)
	}

	// The four index columns LPE transforms, as plain and as LP'd bytes.
	moveIdx := make([]int64, len(c.Moves))
	for i, m := range c.Moves {
		moveIdx[i] = m.ObservedIndex
	}
	unmatchedIdx := make([]int64, len(c.Unmatched))
	for i, u := range c.Unmatched {
		unmatchedIdx[i] = u.Index
	}
	epochRanks := make([]int64, len(c.EpochLine))
	for i, e := range c.EpochLine {
		epochRanks[i] = int64(e.Rank)
	}
	plainCols, lpCols := 0, 0
	for _, col := range [][]int64{moveIdx, c.WithNext, unmatchedIdx, epochRanks} {
		lpCols += lpe.EncodedSize(col)
		for _, v := range col {
			plainCols += varint.IntSize(v)
		}
	}

	pe = head + delays + shared + peTail + plainCols
	lp = head + delays + shared + peTail + lpCols
	return re, pe, lp
}
