package cdcformat

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cdcreplay/internal/permdiff"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// paperFig4 is the literal 11-row record table of paper Fig. 4.
func paperFig4() []tables.Event {
	return []tables.Event{
		tables.Matched(0, 2, false),
		tables.Unmatched(2),
		tables.Matched(0, 13, true),
		tables.Matched(2, 8, false),
		tables.Matched(1, 8, false),
		tables.Matched(0, 15, false),
		tables.Matched(1, 19, false),
		tables.Unmatched(3),
		tables.Matched(0, 17, false),
		tables.Unmatched(1),
		tables.Matched(0, 18, false),
	}
}

// TestPaperWorkedExample follows the paper end to end: the 11-event table
// of Fig. 4 carries 55 values; after the full CDC encoding (Fig. 8) only 19
// values remain, including the epoch line.
func TestPaperWorkedExample(t *testing.T) {
	events := paperFig4()
	if got := tables.ValueCount(events); got != 55 {
		t.Fatalf("original values = %d, want 55", got)
	}
	c := BuildChunk(7, events)
	if c.NumMatched != 8 {
		t.Errorf("matched = %d, want 8", c.NumMatched)
	}
	if len(c.Moves) != 3 {
		t.Errorf("permutation moves = %d, want 3 (Fig. 7)", len(c.Moves))
	}
	if got := c.ValueCount(); got != 19 {
		t.Errorf("CDC values = %d, want 19 (Fig. 8)", got)
	}
	wantEpoch := []EpochEntry{{0, 18}, {1, 19}, {2, 8}}
	if !reflect.DeepEqual(c.EpochLine, wantEpoch) {
		t.Errorf("epoch line = %v, want %v (Fig. 8)", c.EpochLine, wantEpoch)
	}

	// Reconstruction from the message multiset in arbitrary order.
	msgs := shuffledMatched(events, 5)
	got, err := c.ReconstructEvents(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("reconstructed events differ:\n got %v\nwant %v", got, events)
	}
}

func shuffledMatched(events []tables.Event, seed int64) []tables.MatchedEntry {
	var msgs []tables.MatchedEntry
	for _, ev := range events {
		if ev.Flag {
			msgs = append(msgs, tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock})
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(msgs), func(i, j int) { msgs[i], msgs[j] = msgs[j], msgs[i] })
	return msgs
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	c := BuildChunk(42, paperFig4())
	buf := c.Marshal(nil)
	got, err := Unmarshal(varint.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, c)
	}
}

func TestMarshalEmptyChunk(t *testing.T) {
	c := BuildChunk(0, nil)
	buf := c.Marshal(nil)
	got, err := Unmarshal(varint.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMatched != 0 || len(got.Moves) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestInReferenceOrderChunkHasNoMoves(t *testing.T) {
	// Monotonically increasing clocks: the matched-test table compresses
	// to nothing (§3.3: "CDC records nothing for the matched-test table").
	events := []tables.Event{
		tables.Matched(0, 1, false),
		tables.Matched(1, 2, false),
		tables.Matched(0, 3, false),
		tables.Matched(2, 5, false),
	}
	c := BuildChunk(0, events)
	if len(c.Moves) != 0 {
		t.Fatalf("in-order receives produced %d moves: %v", len(c.Moves), c.Moves)
	}
}

func TestClockTieBrokenByRank(t *testing.T) {
	// Two messages with equal clocks: Definition 6 places the smaller
	// sender rank first in the reference order, so receiving the bigger
	// rank first counts as a permutation.
	inOrder := []tables.Event{
		tables.Matched(1, 8, false),
		tables.Matched(2, 8, false),
	}
	if c := BuildChunk(0, inOrder); len(c.Moves) != 0 {
		t.Fatalf("rank-ordered ties produced moves: %v", c.Moves)
	}
	outOfOrder := []tables.Event{
		tables.Matched(2, 8, false),
		tables.Matched(1, 8, false),
	}
	c := BuildChunk(0, outOfOrder)
	if len(c.Moves) != 1 {
		t.Fatalf("reversed ties produced %d moves", len(c.Moves))
	}
	got, err := c.ReconstructEvents([]tables.MatchedEntry{{Rank: 1, Clock: 8}, {Rank: 2, Clock: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, outOfOrder) {
		t.Fatalf("reconstructed %v, want %v", got, outOfOrder)
	}
}

func TestReconstructRejectsWrongMessageCount(t *testing.T) {
	c := BuildChunk(0, paperFig4())
	if _, err := c.ReconstructEvents(nil); err == nil {
		t.Fatal("accepted empty message set")
	}
}

func TestUnmarshalRejectsCorruptCounts(t *testing.T) {
	// A chunk claiming a gigantic matched count must not allocate.
	var w varint.Writer
	w.Uint(0)       // callsite
	w.Uint(1 << 40) // absurd matched count
	if _, err := Unmarshal(varint.NewReader(w.Result())); err == nil {
		t.Fatal("accepted absurd matched count")
	}

	// A chunk whose move table exceeds its matched count must fail.
	w = varint.Writer{}
	w.Uint(0) // callsite
	w.Uint(2) // matched
	w.Uint(5) // 5 moves > 2 matched
	if _, err := Unmarshal(varint.NewReader(w.Result())); err == nil {
		t.Fatal("accepted move table longer than matched count")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	c := BuildChunk(3, paperFig4())
	buf := c.Marshal(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := Unmarshal(varint.NewReader(buf[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d bytes", cut, len(buf))
		}
	}
}

func TestRandomRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		events := randomEvents(rng, 1+rng.Intn(60))
		c := BuildChunk(uint64(trial), events)

		// Wire round trip.
		buf := c.Marshal(nil)
		c2, err := Unmarshal(varint.NewReader(buf))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(c2, c) {
			t.Fatalf("trial %d: wire mismatch\n got %+v\nwant %+v", trial, c2, c)
		}

		// Semantic round trip from a shuffled message multiset.
		got, err := c2.ReconstructEvents(shuffledMatched(events, int64(trial)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("trial %d: reconstruct mismatch\n got %v\nwant %v", trial, got, events)
		}
	}
}

// randomEvents builds an event stream with per-sender strictly increasing
// clocks (the invariant the lamport layer provides) plus unmatched runs.
func randomEvents(rng *rand.Rand, n int) []tables.Event {
	clock := map[int32]uint64{}
	var events []tables.Event
	lastUnmatched := false
	for i := 0; i < n; i++ {
		if !lastUnmatched && rng.Intn(4) == 0 {
			events = append(events, tables.Unmatched(uint64(1+rng.Intn(6))))
			lastUnmatched = true
			continue
		}
		lastUnmatched = false
		r := int32(rng.Intn(6))
		clock[r] += uint64(1 + rng.Intn(9))
		events = append(events, tables.Matched(r, clock[r], rng.Intn(5) == 0))
	}
	return events
}

func BenchmarkBuildChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	events := randomEvents(rng, 4096)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildChunk(0, events)
	}
}

func BenchmarkMarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := BuildChunk(0, randomEvents(rng, 4096))
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	buf := BuildChunk(0, randomEvents(rng, 4096)).Marshal(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(varint.NewReader(buf)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestQuickMarshalRoundTrip drives Marshal/Unmarshal with randomly built —
// but structurally valid — chunks, independent of BuildChunk.
func TestQuickMarshalRoundTrip(t *testing.T) {
	gen := func(seed int64) *Chunk {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		c := &Chunk{Callsite: rng.Uint64(), NumMatched: uint64(n)}
		// Moves: sorted observed indices with small delays, valid ranges.
		used := map[int64]bool{}
		for i := 0; i < n/3; i++ {
			obs := int64(rng.Intn(n))
			if used[obs] {
				continue
			}
			used[obs] = true
			d := int64(rng.Intn(5)) - 2
			if obs-d < 0 || obs-d >= int64(n) {
				d = 0
			}
			c.Moves = append(c.Moves, permdiff.Move{ObservedIndex: obs, Delay: d})
		}
		sort.Slice(c.Moves, func(i, j int) bool { return c.Moves[i].ObservedIndex < c.Moves[j].ObservedIndex })
		for i := 0; i < n/4; i++ {
			c.WithNext = append(c.WithNext, int64(i*2))
		}
		for i := 0; i < n/5; i++ {
			c.Unmatched = append(c.Unmatched, tables.UnmatchedRun{Index: int64(i * 3), Count: uint64(1 + rng.Intn(9))})
		}
		clk := uint64(0)
		for r := 0; r < n/6; r++ {
			clk += uint64(1 + rng.Intn(50))
			c.EpochLine = append(c.EpochLine, EpochEntry{Rank: int32(r), Clock: clk})
		}
		tclk := uint64(0)
		for i := 0; i < n/8; i++ {
			tclk += uint64(1 + rng.Intn(30))
			c.TiedClocks = append(c.TiedClocks, TiedClock{Clock: tclk, Count: uint64(2 + rng.Intn(3))})
		}
		if n > 0 && rng.Intn(2) == 0 {
			c.Senders = make([]int32, n)
			c.Tags = make([]int32, n)
			for i := range c.Senders {
				c.Senders[i] = int32(rng.Intn(8))
				c.Tags[i] = int32(rng.Intn(4))
			}
		}
		for i := 0; i < n/10; i++ {
			c.Exceptions = append(c.Exceptions, tables.MatchedEntry{Rank: int32(rng.Intn(8)), Clock: rng.Uint64() % 1000})
		}
		return c
	}
	for seed := int64(0); seed < 300; seed++ {
		c := gen(seed)
		got, err := Unmarshal(varint.NewReader(c.Marshal(nil)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got, c) {
			t.Fatalf("seed %d: round trip mismatch\n got %+v\nwant %+v", seed, got, c)
		}
	}
}

// TestStageSizesLPMatchesMarshal pins the stage accounting to reality: the
// lp stage is defined as "exactly the bytes Marshal produces", so any drift
// between StageSizes and the wire format is a bug in one of them.
func TestStageSizesLPMatchesMarshal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		events := randomEvents(rng, 1+rng.Intn(60))
		c := BuildChunk(uint64(trial), events)
		re, pe, lp := StageSizes(events, c)
		if got := len(c.Marshal(nil)); lp != got {
			t.Fatalf("trial %d: StageSizes lp = %d, Marshal produced %d bytes", trial, lp, got)
		}
		if re <= 0 || pe <= 0 || lp <= 0 {
			t.Fatalf("trial %d: non-positive stage size re=%d pe=%d lp=%d", trial, re, pe, lp)
		}
	}
}
