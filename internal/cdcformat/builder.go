package cdcformat

import (
	"slices"

	"cdcreplay/internal/lpe"
	"cdcreplay/internal/permdiff"
	"cdcreplay/internal/tables"
	"cdcreplay/internal/varint"
)

// maxDenseRank bounds the sender-rank range served by the Builder's dense
// epoch-line scratch; chunks with ranks outside [0, maxDenseRank) fall back
// to a map. simmpi worlds number ranks 0..size−1, so real records always
// take the dense path.
const maxDenseRank = 1 << 12

// refKey is one matched event expressed for Definition 6 reference
// ranking: the Builder sorts these concrete keys once instead of calling
// sort.SliceStable through two closures (permdiff.Rank), which is the
// hottest part of chunk encoding.
type refKey struct {
	clock uint64
	rank  int32
	idx   int32
}

// Builder builds and marshals chunks through reusable scratch buffers: the
// redundancy-elimination tables, the reference-order sort keys, the
// permutation-encoding scratch (permdiff.Scratch), the epoch/tie
// accumulators, and the LPE column staging all live on the Builder and are
// recycled across chunks. After warm-up a Build + AppendMarshal pair
// allocates nothing (pinned by TestBuilderAllocs), which is what lets the
// parallel encode pipeline keep one pooled Builder per worker instead of
// churning the GC once per chunk.
//
// The produced chunk is equivalent to BuildChunk/BuildChunkWithSenders and
// AppendMarshal's bytes are identical to Chunk.Marshal's (pinned by the
// equivalence tests). A Builder is not safe for concurrent use, and the
// chunk returned by Build — including every table it references — is owned
// by the Builder and valid only until the next Build call.
type Builder struct {
	matched   []tables.MatchedEntry
	withNext  []int64
	unmatched []tables.UnmatchedRun
	keys      []refKey
	obs       []int
	pd        permdiff.Scratch
	epoch     []EpochEntry
	ties      []TiedClock
	senders   []int32
	tags      []int32
	chunk     Chunk

	// rankClock is the dense per-sender frontier, all-zero between builds
	// (a zero clock never enters the epoch line, mirroring the map path's
	// zero default); overflow serves out-of-range ranks.
	rankClock []uint64
	overflow  map[int32]uint64

	// colA/colB stage index columns and their LP residuals in AppendMarshal.
	colA, colB []int64
}

// Build encodes one flush interval of events at one callsite, exactly as
// BuildChunk (senders=false) or BuildChunkWithSenders (senders=true) would.
func (b *Builder) Build(callsite uint64, events []tables.Event, senders bool) *Chunk {
	// Redundancy elimination (tables.Eliminate, scratch-backed), building
	// the reference sort keys in the same pass.
	matched := b.matched[:0]
	withNext := b.withNext[:0]
	unmatched := b.unmatched[:0]
	keys := b.keys[:0]
	var pendingUnmatched uint64
	for _, ev := range events {
		if !ev.Flag {
			pendingUnmatched += ev.Count
			continue
		}
		idx := int64(len(matched))
		if pendingUnmatched > 0 {
			unmatched = append(unmatched, tables.UnmatchedRun{Index: idx, Count: pendingUnmatched})
			pendingUnmatched = 0
		}
		if ev.WithNext {
			withNext = append(withNext, idx)
		}
		matched = append(matched, tables.MatchedEntry{Rank: ev.Rank, Clock: ev.Clock, Tag: ev.Tag})
		keys = append(keys, refKey{clock: ev.Clock, rank: ev.Rank, idx: int32(idx)})
	}
	if pendingUnmatched > 0 {
		unmatched = append(unmatched, tables.UnmatchedRun{Index: int64(len(matched)), Count: pendingUnmatched})
	}
	b.matched, b.withNext, b.unmatched = matched, withNext, unmatched

	// Reference ranking: sort by (clock, rank) — tables.Less — with the
	// observed index as the final tie-break, replicating the stable sort.
	slices.SortFunc(keys, func(x, y refKey) int {
		if x.clock != y.clock {
			if x.clock < y.clock {
				return -1
			}
			return 1
		}
		if x.rank != y.rank {
			if x.rank < y.rank {
				return -1
			}
			return 1
		}
		if x.idx < y.idx {
			return -1
		}
		return 1
	})
	b.keys = keys
	if cap(b.obs) < len(keys) {
		b.obs = make([]int, len(keys))
	}
	obs := b.obs[:len(keys)]
	for r, k := range keys {
		obs[k.idx] = r
	}

	// Epoch line: per-sender maximum piggybacked clock, sorted by rank.
	// A zero clock never raises a frontier (matching the map-based path).
	epoch := b.epoch[:0]
	dense := true
	maxRank := int32(-1)
	for _, m := range matched {
		if m.Rank < 0 || m.Rank >= maxDenseRank {
			dense = false
			break
		}
		if m.Rank > maxRank {
			maxRank = m.Rank
		}
	}
	if dense {
		if int(maxRank) >= len(b.rankClock) {
			b.rankClock = make([]uint64, maxRank+1)
		}
		for _, m := range matched {
			if m.Clock > b.rankClock[m.Rank] {
				b.rankClock[m.Rank] = m.Clock
			}
		}
		for r := int32(0); r <= maxRank; r++ {
			if b.rankClock[r] > 0 {
				epoch = append(epoch, EpochEntry{Rank: r, Clock: b.rankClock[r]})
				b.rankClock[r] = 0
			}
		}
	} else {
		if b.overflow == nil {
			b.overflow = make(map[int32]uint64)
		} else {
			clear(b.overflow)
		}
		for _, m := range matched {
			if m.Clock > b.overflow[m.Rank] {
				b.overflow[m.Rank] = m.Clock
			}
		}
		for r, clk := range b.overflow { //cdc:allow(maporder) entries are sorted by rank immediately below
			epoch = append(epoch, EpochEntry{Rank: r, Clock: clk})
		}
		slices.SortFunc(epoch, func(x, y EpochEntry) int {
			if x.Rank < y.Rank {
				return -1
			}
			return 1
		})
	}
	b.epoch = epoch

	// Tied clocks: equal clocks are adjacent in the sorted keys, so the
	// collision scan is a linear pass yielding ties already clock-sorted.
	ties := b.ties[:0]
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j].clock == keys[i].clock {
			j++
		}
		if j-i > 1 {
			ties = append(ties, TiedClock{Clock: keys[i].clock, Count: uint64(j - i)})
		}
		i = j
	}
	b.ties = ties

	c := &b.chunk
	*c = Chunk{
		Callsite:   callsite,
		NumMatched: uint64(len(matched)),
		Moves:      b.pd.Encode(obs),
		WithNext:   withNext,
		Unmatched:  unmatched,
		EpochLine:  epoch,
		TiedClocks: ties,
	}
	if senders && len(matched) > 0 {
		if cap(b.senders) < len(matched) {
			b.senders = make([]int32, len(matched))
			b.tags = make([]int32, len(matched))
		}
		sn, tg := b.senders[:len(matched)], b.tags[:len(matched)]
		for i, m := range matched {
			sn[obs[i]] = m.Rank
			tg[obs[i]] = m.Tag
		}
		c.Senders, c.Tags = sn, tg
	}
	return c
}

// AppendMarshal appends the chunk's serialization to dst, producing bytes
// identical to Chunk.Marshal but staging the LPE index columns in the
// Builder's scratch instead of allocating them per call.
func (b *Builder) AppendMarshal(dst []byte, c *Chunk) []byte {
	dst = varint.AppendUint(dst, c.Callsite)
	dst = varint.AppendUint(dst, c.NumMatched)

	dst = varint.AppendUint(dst, uint64(len(c.Moves)))
	colA := b.colA[:0]
	for _, m := range c.Moves {
		colA = append(colA, m.ObservedIndex)
	}
	colB := lpe.AppendEncode(b.colB[:0], colA)
	for _, e := range colB {
		dst = varint.AppendInt(dst, e)
	}
	for _, m := range c.Moves {
		dst = varint.AppendInt(dst, m.Delay)
	}

	dst = varint.AppendUint(dst, uint64(len(c.WithNext)))
	colB = lpe.AppendEncode(colB[:0], c.WithNext)
	for _, e := range colB {
		dst = varint.AppendInt(dst, e)
	}

	dst = varint.AppendUint(dst, uint64(len(c.Unmatched)))
	colA = colA[:0]
	for _, u := range c.Unmatched {
		colA = append(colA, u.Index)
	}
	colB = lpe.AppendEncode(colB[:0], colA)
	for _, e := range colB {
		dst = varint.AppendInt(dst, e)
	}
	for _, u := range c.Unmatched {
		dst = varint.AppendUint(dst, u.Count)
	}

	dst = varint.AppendUint(dst, uint64(len(c.EpochLine)))
	colA = colA[:0]
	for _, e := range c.EpochLine {
		colA = append(colA, int64(e.Rank))
	}
	colB = lpe.AppendEncode(colB[:0], colA)
	for _, e := range colB {
		dst = varint.AppendInt(dst, e)
	}
	for _, e := range c.EpochLine {
		dst = varint.AppendUint(dst, e.Clock)
	}

	dst = varint.AppendUint(dst, uint64(len(c.TiedClocks)))
	prev := uint64(0)
	for _, t := range c.TiedClocks {
		dst = varint.AppendUint(dst, t.Clock-prev) // sorted ascending: delta encode
		dst = varint.AppendUint(dst, t.Count)
		prev = t.Clock
	}

	dst = varint.AppendUint(dst, uint64(len(c.Senders)))
	for _, r := range c.Senders {
		dst = varint.AppendUint(dst, uint64(uint32(r)))
	}
	dst = varint.AppendUint(dst, uint64(len(c.Tags)))
	for _, t := range c.Tags {
		dst = varint.AppendUint(dst, uint64(uint32(t)))
	}

	dst = varint.AppendUint(dst, uint64(len(c.Exceptions)))
	for _, e := range c.Exceptions {
		dst = varint.AppendUint(dst, uint64(uint32(e.Rank)))
		dst = varint.AppendUint(dst, e.Clock)
	}
	b.colA, b.colB = colA, colB
	return dst
}
