package recorddir

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cdcreplay/internal/core"
)

// salvageTmpSuffix names the sibling directory a crash-safe in-place
// salvage writes into before swapping it over the damaged run.
const salvageTmpSuffix = ".salvaged"

// RunSalvage is one run directory's outcome from SalvageAll.
type RunSalvage struct {
	// Dir is the run directory, relative to the walked root.
	Dir string
	// Salvaged reports the run was incomplete and a consistent prefix was
	// recovered in place; Report describes what survived. False with a
	// nil Err means the run was already complete and was left untouched.
	Salvaged bool
	// Adopted reports a finished salvage from a previous crashed recovery
	// (the swap's rename had not happened yet) was moved into place.
	Adopted bool
	// Report is the per-rank salvage outcome (nil unless Salvaged).
	Report *SalvageReport
	// Err is the failure for this run; SalvageAll continues past it so one
	// damaged tenant cannot block every other tenant's recovery.
	Err error
}

// SalvageAll walks a multi-tenant record root (any directory tree holding
// record directories, e.g. root/tenant/run) and recovers every run left
// incomplete by a crash, in place. Complete runs are left untouched. The
// in-place swap is itself crash-safe:
//
//  1. the salvaged prefix is written to <run>.salvaged (a stale one from an
//     earlier interrupted recovery is removed first),
//  2. the damaged run directory is removed,
//  3. <run>.salvaged is renamed over the run's path.
//
// A crash between steps 2 and 3 leaves only <run>.salvaged; the next
// SalvageAll adopts it by finishing the rename. A crash before step 2
// leaves the damaged run intact and the half-written salvage output is
// discarded and redone. Results are sorted by Dir so the report order is
// deterministic regardless of filesystem walk order.
func SalvageAll(root string) ([]RunSalvage, error) {
	dirs, orphans, err := findRuns(root)
	if err != nil {
		return nil, err
	}
	var out []RunSalvage
	// Adopt finished-but-unrenamed salvages from a previous crashed
	// recovery before scanning run dirs, so the adopted run is then seen
	// (and skipped) as complete.
	for _, tmp := range orphans {
		dst := strings.TrimSuffix(tmp, salvageTmpSuffix)
		rs := RunSalvage{Dir: relOrSelf(root, dst), Adopted: true}
		if rs.Err = os.Rename(tmp, dst); rs.Err == nil {
			dirs = append(dirs, dst)
		}
		out = append(out, rs)
	}
	seen := make(map[string]bool, len(dirs))
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rs := salvageRun(root, dir)
		if rs != nil {
			out = append(out, *rs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// salvageRun recovers one run directory if needed; nil means it was
// complete and untouched.
func salvageRun(root, dir string) *RunSalvage {
	rs := &RunSalvage{Dir: relOrSelf(root, dir)}
	m, err := readManifest(dir)
	if err != nil {
		rs.Err = err
		return rs
	}
	if m.Complete {
		return nil
	}
	tmp := dir + salvageTmpSuffix
	if err := os.RemoveAll(tmp); err != nil {
		rs.Err = err
		return rs
	}
	report, err := Salvage(dir, tmp)
	if err != nil {
		rs.Err = fmt.Errorf("recorddir: salvaging %s: %w", dir, err)
		return rs
	}
	if err := os.RemoveAll(dir); err != nil {
		rs.Err = err
		return rs
	}
	if err := os.Rename(tmp, dir); err != nil {
		rs.Err = err
		return rs
	}
	rs.Salvaged = true
	rs.Report = report
	return rs
}

// findRuns locates record directories (holding a manifest) and orphaned
// .salvaged directories under root. A missing root is an empty store, not
// an error, so a first daemon start needs no special casing.
func findRuns(root string) (dirs, orphans []string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == root && errors.Is(err, fs.ErrNotExist) {
				return filepath.SkipAll
			}
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, salvageTmpSuffix) {
			// Orphaned only when the destination vanished; otherwise it is
			// a stale partial salvage the per-run swap will redo.
			if _, serr := os.Stat(strings.TrimSuffix(path, salvageTmpSuffix)); errors.Is(serr, fs.ErrNotExist) {
				orphans = append(orphans, path)
			}
			return filepath.SkipDir
		}
		if _, serr := os.Stat(filepath.Join(path, ManifestName)); serr == nil {
			dirs = append(dirs, path)
			return filepath.SkipDir
		}
		return nil
	})
	return dirs, orphans, err
}

func relOrSelf(root, dir string) string {
	if rel, err := filepath.Rel(root, dir); err == nil {
		return rel
	}
	return dir
}

// ReadManifest reads a run directory's manifest without the completeness
// and identity checks Open applies — the ingest attach path expects
// in-progress (and, before salvage, crashed) runs.
func ReadManifest(dir string) (Manifest, error) { return readManifest(dir) }

// Reopen marks an existing record directory as in-progress again so new
// events can be appended to its rank records (core.EncoderOptions.Resume).
// It inverts Finalize: the manifest's Complete marker is cleared, so a
// crash while appending is detected on the next Open/SalvageAll instead of
// being mistaken for a finished run. The rank files themselves are left
// untouched. Returns the manifest as it was before clearing.
func Reopen(dir string) (Manifest, error) {
	m, err := readManifest(dir)
	if err != nil {
		return m, err
	}
	prev := m
	m.Complete = false
	if err := writeManifest(dir, m); err != nil {
		return prev, err
	}
	return prev, nil
}

// OpenRankFileAppend opens a rank's record file for appending, creating it
// if absent. resume reports whether the file already has content — in that
// case the caller must write through core.NewFrameWriterResume (the magic
// header is already present); a fresh file takes the ordinary writer.
func OpenRankFileAppend(dir string, rank int) (f *os.File, resume bool, err error) {
	path := RankPath(dir, rank)
	fi, err := os.Stat(path)
	switch {
	case err == nil:
		resume = fi.Size() > 0
	case errors.Is(err, fs.ErrNotExist):
		// fresh file
	default:
		return nil, false, err
	}
	f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, err
	}
	return f, resume, nil
}

// RankFrontier scans one rank's record file and reports its logical-event
// frontier: the number of logical events (each matched receive counts one,
// each unmatched test counts one — an aggregated failed-test row of count
// n counts n) and the largest flush-mark clock. The ingest daemon states
// this frontier as the resume offset after a restart: everything the file
// holds is durable, so a client holding unacked events from that offset on
// can replay the tail exactly once. A missing file is an empty frontier.
func RankFrontier(path string) (events, clock uint64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	it, err := core.OpenRecord(f)
	if err != nil {
		return 0, 0, err
	}
	defer it.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	for {
		fr, err := it.Next()
		if err == io.EOF {
			return events, clock, nil
		}
		if err != nil {
			return events, clock, err
		}
		if fr.Chunk != nil {
			events += fr.Chunk.NumMatched
			for _, run := range fr.Chunk.Unmatched {
				events += run.Count
			}
		}
		if fr.Flush && fr.FlushClock > clock {
			clock = fr.FlushClock
		}
	}
}
