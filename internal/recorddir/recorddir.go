// Package recorddir manages on-disk record directories: one CDC record
// file per rank plus a JSON manifest describing the run, so a replay can
// check it is being pointed at a compatible record before starting (wrong
// rank count or wrong application are caught up front instead of
// manifesting as replay divergence).
package recorddir

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/internal/core"
)

// ManifestName is the metadata file's name inside a record directory.
const ManifestName = "manifest.json"

// ManifestVersion guards against format drift.
const ManifestVersion = 1

// Manifest describes a recorded run.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Ranks is the world size of the recorded run.
	Ranks int `json:"ranks"`
	// App names the recorded application (free form; checked on replay).
	App string `json:"app"`
	// Params carries application parameters for the replayer's operator
	// to cross-check (free form).
	Params map[string]string `json:"params,omitempty"`
}

// RankPath returns the record file path for a rank.
func RankPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d.cdc", rank))
}

// Create prepares dir (creating it if needed) and writes the manifest.
// Existing rank files from a previous record are removed so a shorter
// re-record cannot leave stale ranks behind.
func Create(dir string, m Manifest) error {
	if m.Ranks <= 0 {
		return fmt.Errorf("recorddir: manifest needs a positive rank count, got %d", m.Ranks)
	}
	m.Version = ManifestVersion
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "rank*.cdc"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(buf, '\n'), 0o644)
}

// CreateRankFile opens the rank's record file for writing.
func CreateRankFile(dir string, rank int) (*os.File, error) {
	return os.Create(RankPath(dir, rank))
}

// Open reads and validates a record directory's manifest: version, rank
// count, optional app name, and the presence of every rank file.
func Open(dir string, wantApp string, wantRanks int) (Manifest, error) {
	var m Manifest
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, fmt.Errorf("recorddir: %w (is %q a record directory?)", err, dir)
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		return m, fmt.Errorf("recorddir: corrupt manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return m, fmt.Errorf("recorddir: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if wantApp != "" && m.App != wantApp {
		return m, fmt.Errorf("recorddir: record is of app %q, not %q", m.App, wantApp)
	}
	if wantRanks != 0 && m.Ranks != wantRanks {
		return m, fmt.Errorf("recorddir: record has %d ranks, replay world has %d", m.Ranks, wantRanks)
	}
	for rank := 0; rank < m.Ranks; rank++ {
		if _, err := os.Stat(RankPath(dir, rank)); err != nil {
			return m, fmt.Errorf("recorddir: missing record for rank %d: %w", rank, err)
		}
	}
	return m, nil
}

// LoadRank decodes one rank's record.
func LoadRank(dir string, rank int) (*core.Record, error) {
	f, err := os.Open(RankPath(dir, rank))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadRecord(f)
}
