// Package recorddir manages on-disk record directories: one CDC record
// file per rank plus a JSON manifest describing the run, so a replay can
// check it is being pointed at a compatible record before starting (wrong
// rank count or wrong application are caught up front instead of
// manifesting as replay divergence).
//
// The manifest doubles as the directory's commit record: Create writes it
// atomically (temp file + rename + directory fsync) with Complete unset,
// and Finalize flips Complete after every rank closed cleanly. A crash at
// any point therefore leaves either no manifest or one that says the run
// did not finish — Open refuses such a directory and points the operator at
// Salvage instead of silently replaying a torn record.
package recorddir

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/internal/core"
)

// ManifestName is the metadata file's name inside a record directory.
const ManifestName = "manifest.json"

// ManifestVersion guards against format drift. v2 added the Complete and
// Salvaged markers (and rides the record-format v2 bump).
const ManifestVersion = 2

// ErrIncomplete marks a record directory whose run never finished cleanly —
// the manifest exists but Complete was never set. Salvage can usually
// recover a consistent prefix.
var ErrIncomplete = errors.New("recorddir: record incomplete (crashed run?)")

// Manifest describes a recorded run.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Ranks is the world size of the recorded run.
	Ranks int `json:"ranks"`
	// App names the recorded application (free form; checked on replay).
	App string `json:"app"`
	// Params carries application parameters for the replayer's operator
	// to cross-check (free form).
	Params map[string]string `json:"params,omitempty"`
	// Complete is set by Finalize once every rank's record closed
	// cleanly. Open refuses directories without it.
	Complete bool `json:"complete"`
	// Salvaged marks a directory produced by Salvage: a consistent prefix
	// of a crashed run, replayable up to the crash frontier.
	Salvaged bool `json:"salvaged,omitempty"`
	// Spsc records the observe-queue idle-backoff parameters the run used
	// (nil for records predating the field), so a recording's latency
	// behaviour is reproducible from its manifest alone.
	Spsc *SpscBackoff `json:"spsc_backoff,omitempty"`
}

// SpscBackoff is the manifest form of spsc.Backoff (see that type for
// semantics). MaxNap is stored in nanoseconds to keep the JSON integral.
type SpscBackoff struct {
	SpinBeforeYield int   `json:"spin_before_yield"`
	YieldBeforeNap  int   `json:"yield_before_nap"`
	MaxNapNs        int64 `json:"max_nap_ns"`
}

// RankPath returns the record file path for a rank.
func RankPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d.cdc", rank))
}

// writeManifest atomically replaces the manifest: the bytes land in a temp
// file first, the rename is atomic on POSIX filesystems, and the directory
// fsync makes the rename itself durable. A crash at any point leaves either
// the old manifest or the new one, never a torn file.
func writeManifest(dir string, m Manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close() //cdc:allow(errsink) best-effort cleanup; the write error is already propagating
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //cdc:allow(errsink) best-effort cleanup; the sync error is already propagating
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close() //cdc:allow(errsink) best-effort cleanup; the sync error is already propagating
		return err
	}
	// The close error is propagated too: on some filesystems close is when
	// deferred write errors surface, and durability claims must see them.
	return d.Close()
}

// Create prepares dir (creating it if needed) and writes the manifest with
// Complete unset; call Finalize after every rank's record closed cleanly.
// Existing rank files from a previous record are removed so a shorter
// re-record cannot leave stale ranks behind.
func Create(dir string, m Manifest) error {
	if m.Ranks <= 0 {
		return fmt.Errorf("recorddir: manifest needs a positive rank count, got %d", m.Ranks)
	}
	m.Version = ManifestVersion
	m.Complete = false
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "rank*.cdc"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	return writeManifest(dir, m)
}

// Finalize marks the record complete. Call it only after every rank's
// record file has been written and closed cleanly.
func Finalize(dir string) error {
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	m.Complete = true
	return writeManifest(dir, m)
}

// CreateRankFile opens the rank's record file for writing.
func CreateRankFile(dir string, rank int) (*os.File, error) {
	return os.Create(RankPath(dir, rank))
}

func readManifest(dir string) (Manifest, error) {
	var m Manifest
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return m, fmt.Errorf("recorddir: %w (is %q a record directory?)", err, dir)
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		return m, fmt.Errorf("recorddir: corrupt manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return m, fmt.Errorf("recorddir: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	return m, nil
}

// Open reads and validates a record directory's manifest: version,
// completeness, rank count, optional app name, and the presence of every
// rank file. Directories of crashed runs fail with ErrIncomplete.
func Open(dir string, wantApp string, wantRanks int) (Manifest, error) {
	m, err := readManifest(dir)
	if err != nil {
		return m, err
	}
	if !m.Complete {
		return m, fmt.Errorf("%w: %s (run cdcinspect salvage to recover a prefix)", ErrIncomplete, dir)
	}
	if wantApp != "" && m.App != wantApp {
		return m, fmt.Errorf("recorddir: record is of app %q, not %q", m.App, wantApp)
	}
	if wantRanks != 0 && m.Ranks != wantRanks {
		return m, fmt.Errorf("recorddir: record has %d ranks, replay world has %d", m.Ranks, wantRanks)
	}
	for rank := 0; rank < m.Ranks; rank++ {
		if _, err := os.Stat(RankPath(dir, rank)); err != nil {
			return m, fmt.Errorf("recorddir: missing record for rank %d: %w", rank, err)
		}
	}
	return m, nil
}

// LoadRank decodes one rank's record.
func LoadRank(dir string, rank int) (*core.Record, error) {
	f, err := os.Open(RankPath(dir, rank))
	if err != nil {
		return nil, err
	}
	defer f.Close() //cdc:allow(errsink) read-side close; decode errors surface from ReadRecord
	return core.ReadRecord(f)
}
