package recorddir

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/core"
)

// Salvage recovers a replayable prefix from the record directory of a
// crashed run.
//
// Per rank, the unit of recovery is the flush-point segment: frames between
// consecutive flush-point marks. A mark is written only when the encoder
// flushed every callsite stream through it, so the segments before a mark
// are a complete cut of the rank's event history; frames past the last
// CRC-valid mark (torn by the crash) are discarded.
//
// Per-rank prefixes are then trimmed to a mutually consistent frontier.
// Let C[s] be the largest received-message clock in rank s's kept prefix
// (infinite when s's whole record survived intact). Any send s made with
// piggyback clock ≤ C[s] necessarily precedes the kept receive achieving
// C[s] — Lamport clocks are monotone within a rank — so a prefix replay of
// s deterministically regenerates it. A kept chunk of rank r is therefore
// only replayable if every epoch-line entry (sender s, clock c) satisfies
// c ≤ C[s]; segments violating this are trimmed, which can lower C[r] and
// cascade, so the trim iterates to a fixed point (it terminates: kept
// prefixes only shrink).
//
// The salvaged directory is written to outDir with Complete and Salvaged
// set; replayers see Salvaged and switch to replay-to-crash-point mode.
func Salvage(dir, outDir string) (*SalvageReport, error) {
	if dir == outDir {
		return nil, errors.New("recorddir: salvage output must be a different directory")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}

	n := m.Ranks
	segs := make([][]*segment, n)
	report := &SalvageReport{Ranks: make([]RankSalvage, n)}
	clean := make([]bool, n)
	for r := 0; r < n; r++ {
		rs := &report.Ranks[r]
		rs.Rank = r
		segs[r], clean[r], rs.Damage = readSegments(RankPath(dir, r))
		rs.Truncated = !clean[r]
		rs.SegmentsTotal = len(segs[r])
		for _, s := range segs[r] {
			rs.EventsTotal += s.events()
		}
	}

	// Fixed-point trim to a consistent cross-rank frontier.
	keep := make([]int, n)
	frontiers := make([]uint64, n)
	for r := 0; r < n; r++ {
		keep[r] = len(segs[r])
		frontiers[r] = frontier(segs[r], keep[r], clean[r])
	}
	for changed := true; changed; {
		changed = false
		for r := 0; r < n; r++ {
			if v := firstViolation(segs[r], keep[r], frontiers); v < keep[r] {
				keep[r] = v
				frontiers[r] = frontier(segs[r], keep[r], clean[r])
				changed = true
			}
		}
	}

	// Write the salvaged directory.
	if err := Create(outDir, m); err != nil {
		return nil, err
	}
	for r := 0; r < n; r++ {
		rs := &report.Ranks[r]
		rs.SegmentsKept = keep[r]
		rs.Frontier = frontiers[r]
		for _, s := range segs[r][:keep[r]] {
			rs.EventsKept += s.events()
		}
		if err := writeRankPrefix(outDir, r, segs[r][:keep[r]]); err != nil {
			return nil, fmt.Errorf("recorddir: writing salvaged rank %d: %w", r, err)
		}
	}
	m.Complete = true
	m.Salvaged = true
	if err := writeManifest(outDir, m); err != nil {
		return nil, err
	}
	return report, nil
}

// SalvageReport describes what Salvage recovered.
type SalvageReport struct {
	Ranks []RankSalvage
}

// Events returns the total salvaged matched-event count across ranks.
func (r *SalvageReport) Events() (kept, total uint64) {
	for _, rs := range r.Ranks {
		kept += rs.EventsKept
		total += rs.EventsTotal
	}
	return kept, total
}

// RankSalvage describes one rank's salvage outcome.
type RankSalvage struct {
	Rank int
	// Truncated reports the rank's record file was damaged or missing;
	// Damage describes how.
	Truncated bool
	Damage    string
	// SegmentsKept of SegmentsTotal flush-point segments survived the
	// CRC scan and the consistency trim.
	SegmentsKept, SegmentsTotal int
	// EventsKept of EventsTotal matched events are in the kept prefix.
	EventsKept, EventsTotal uint64
	// Frontier is the rank's kept-clock frontier C[r]; math.MaxUint64
	// means the whole record survived intact.
	Frontier uint64
}

// segment is one flush-point segment: the frames up to and including a
// flush mark, with its chunk frames also decoded for frontier math.
// flushClock is the writing rank's Lamport clock stamped into the closing
// mark — a lower bound on its clock at the cut.
type segment struct {
	frames     []*core.Frame
	chunks     []*cdcformat.Chunk
	flushClock uint64
}

func (s *segment) events() uint64 {
	var n uint64
	for _, c := range s.chunks {
		n += c.NumMatched
	}
	return n
}

// readSegments scans one record file into complete flush-point segments,
// dropping any trailing frames not sealed by a mark. clean reports the file
// ended exactly at a mark with an intact gzip stream; damage describes the
// failure otherwise.
func readSegments(path string) (segs []*segment, clean bool, damage string) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Sprintf("open: %v", err)
	}
	defer f.Close() //cdc:allow(errsink) read-side close of the damaged file being scanned
	fr, err := core.NewFrameReader(f)
	if err != nil {
		return nil, false, err.Error()
	}
	defer fr.Close() //cdc:allow(errsink) read-side close; scan errors are captured as segment damage
	cur := &segment{}
	for {
		frame, err := fr.Next()
		if err == io.EOF {
			return segs, len(cur.frames) == 0, ""
		}
		if err != nil {
			return segs, false, err.Error()
		}
		cur.frames = append(cur.frames, frame)
		if frame.Chunk != nil {
			cur.chunks = append(cur.chunks, frame.Chunk)
		}
		if frame.Flush {
			cur.flushClock = frame.FlushClock
			segs = append(segs, cur)
			cur = &segment{}
		}
	}
}

// frontier computes C[r] over the kept prefix: the rank's own clock at the
// last kept flush mark (every send with clock ≤ C[r] strictly precedes the
// cut, since the clock ticks at each send), or MaxUint64 for a fully intact
// record (its replay regenerates every send, recorded receives and the
// deterministic continuation alike). Received epoch clocks — a weaker lower
// bound on the same clock — are folded in for records whose marks carry no
// sample.
func frontier(segs []*segment, keep int, clean bool) uint64 {
	if clean && keep == len(segs) {
		return math.MaxUint64
	}
	var c uint64
	for _, s := range segs[:keep] {
		if s.flushClock > c {
			c = s.flushClock
		}
		for _, ch := range s.chunks {
			for _, e := range ch.EpochLine {
				if e.Clock > c {
					c = e.Clock
				}
			}
		}
	}
	return c
}

// firstViolation returns the index of the first kept segment holding a
// chunk that references a sender clock beyond that sender's frontier, or
// keep when the whole kept prefix is consistent.
func firstViolation(segs []*segment, keep int, frontiers []uint64) int {
	for i, s := range segs[:keep] {
		for _, ch := range s.chunks {
			for _, e := range ch.EpochLine {
				if int(e.Rank) < len(frontiers) && e.Clock > frontiers[e.Rank] {
					return i
				}
			}
		}
	}
	return keep
}

// writeRankPrefix re-emits the kept frames verbatim into a fresh record
// file (re-framed, so the new file is itself cleanly closed).
func writeRankPrefix(dir string, rank int, segs []*segment) error {
	f, err := CreateRankFile(dir, rank)
	if err != nil {
		return err
	}
	fw, err := core.NewFrameWriter(f, 0, false)
	if err != nil {
		f.Close() //cdc:allow(errsink) best-effort cleanup; the writer-construction error is already propagating
		return err
	}
	var lastClock uint64
	for _, s := range segs {
		for _, frame := range s.frames {
			if err := fw.WriteFrame(frame.Kind, frame.Payload); err != nil {
				f.Close() //cdc:allow(errsink) best-effort cleanup; the frame-write error is already propagating
				return err
			}
		}
		lastClock = s.flushClock
	}
	if err := fw.Close(lastClock); err != nil {
		f.Close() //cdc:allow(errsink) best-effort cleanup; the frame-writer close error is already propagating
		return err
	}
	return f.Close()
}
