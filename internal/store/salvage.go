package store

import (
	"errors"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/core"
)

// This file holds the backend-independent salvage machinery: scanning a
// damaged blob into flush-point segments, trimming per-rank prefixes to a
// mutually consistent cross-rank frontier, and re-emitting the kept
// frames. Backends own only the byte movement around it (where blobs come
// from, how the recovered run is swapped into place crash-safely).
//
// Per rank, the unit of recovery is the flush-point segment: frames
// between consecutive flush-point marks. A mark is written only when the
// encoder flushed every callsite stream through it, so the segments before
// a mark are a complete cut of the rank's event history; frames past the
// last CRC-valid mark (torn by the crash) are discarded.
//
// Per-rank prefixes are then trimmed to a mutually consistent frontier.
// Let C[s] be the largest received-message clock in rank s's kept prefix
// (infinite when s's whole record survived intact). Any send s made with
// piggyback clock ≤ C[s] necessarily precedes the kept receive achieving
// C[s] — Lamport clocks are monotone within a rank — so a prefix replay of
// s deterministically regenerates it. A kept chunk of rank r is therefore
// only replayable if every epoch-line entry (sender s, clock c) satisfies
// c ≤ C[s]; segments violating this are trimmed, which can lower C[r] and
// cascade, so the trim iterates to a fixed point (it terminates: kept
// prefixes only shrink).

// SalvageReport describes what a salvage recovered.
type SalvageReport struct {
	Ranks []RankSalvage
}

// Events returns the total salvaged matched-event count across ranks.
func (r *SalvageReport) Events() (kept, total uint64) {
	for _, rs := range r.Ranks {
		kept += rs.EventsKept
		total += rs.EventsTotal
	}
	return kept, total
}

// RankSalvage describes one rank's salvage outcome.
type RankSalvage struct {
	Rank int
	// Truncated reports the rank's record blob was damaged or missing;
	// Damage describes how.
	Truncated bool
	Damage    string
	// SegmentsKept of SegmentsTotal flush-point segments survived the
	// CRC scan and the consistency trim.
	SegmentsKept, SegmentsTotal int
	// EventsKept of EventsTotal matched events are in the kept prefix.
	EventsKept, EventsTotal uint64
	// Frontier is the rank's kept-clock frontier C[r]; math.MaxUint64
	// means the whole record survived intact.
	Frontier uint64
}

// RunSalvage is one run's outcome from a Root.SalvageAll sweep.
type RunSalvage struct {
	// Dir is the run's name, relative to the walked root.
	Dir string
	// Salvaged reports the run was incomplete and a consistent prefix was
	// recovered in place; Report describes what survived. False with a
	// nil Err means the run was already complete and was left untouched.
	Salvaged bool
	// Adopted reports a finished salvage from a previous crashed recovery
	// (the swap's rename had not happened yet) was moved into place.
	Adopted bool
	// Skipped reports the run was left untouched because its manifest is
	// unreadable garbage (ErrBadManifest class); Finding says how. A
	// skipped run is a logged finding, not a sweep failure — one damaged
	// tenant must not block every other tenant's recovery.
	Skipped bool
	Finding string
	// Report is the per-rank salvage outcome (nil unless Salvaged).
	Report *SalvageReport
	// Err is the failure for this run; SalvageAll continues past it so one
	// damaged tenant cannot block every other tenant's recovery.
	Err error
}

// Segment is one flush-point segment: the frames up to and including a
// flush mark, with its chunk frames also decoded for frontier math.
// FlushClock is the writing rank's Lamport clock stamped into the closing
// mark — a lower bound on its clock at the cut.
type Segment struct {
	Frames     []*core.Frame
	Chunks     []*cdcformat.Chunk
	FlushClock uint64
}

// Events counts the segment's matched receive events.
func (s *Segment) Events() uint64 {
	var n uint64
	for _, c := range s.Chunks {
		n += c.NumMatched
	}
	return n
}

// ScanSegments scans one record blob into complete flush-point segments,
// dropping any trailing frames not sealed by a mark. clean reports the
// blob ended exactly at a mark with an intact gzip stream; damage
// describes the failure otherwise.
func ScanSegments(r io.Reader) (segs []*Segment, clean bool, damage string) {
	fr, err := core.NewFrameReader(r)
	if err != nil {
		return nil, false, err.Error()
	}
	defer fr.Close() //cdc:allow(errsink) read-side close; scan errors are captured as segment damage
	cur := &Segment{}
	for {
		frame, err := fr.Next()
		if err == io.EOF {
			return segs, len(cur.Frames) == 0, ""
		}
		if err != nil {
			return segs, false, err.Error()
		}
		cur.Frames = append(cur.Frames, frame)
		if frame.Chunk != nil {
			cur.Chunks = append(cur.Chunks, frame.Chunk)
		}
		if frame.Flush {
			cur.FlushClock = frame.FlushClock
			segs = append(segs, cur)
			cur = &Segment{}
		}
	}
}

// SalvagePlan is a computed consistent cut of a crashed run: the per-rank
// kept segments and the report describing them. Backends write Keep[r]
// into their own crash-safe destination (WriteSegments) and record the
// rebuilt single-cut index.
type SalvagePlan struct {
	Report *SalvageReport
	Keep   [][]*Segment
}

// PlanSalvage scans every rank's blob (openRank; a missing blob may return
// fs.ErrNotExist and counts as fully damaged) and trims to the cross-rank
// consistent frontier. It moves no bytes.
func PlanSalvage(m Manifest, openRank func(rank int) (io.ReadCloser, error)) (*SalvagePlan, error) {
	n := m.Ranks
	segs := make([][]*Segment, n)
	report := &SalvageReport{Ranks: make([]RankSalvage, n)}
	clean := make([]bool, n)
	for r := 0; r < n; r++ {
		rs := &report.Ranks[r]
		rs.Rank = r
		blob, err := openRank(r)
		if err != nil {
			segs[r], clean[r], rs.Damage = nil, false, "open: "+err.Error()
		} else {
			segs[r], clean[r], rs.Damage = ScanSegments(blob)
			blob.Close() //cdc:allow(errsink) read-side close of the damaged blob being scanned
		}
		rs.Truncated = !clean[r]
		rs.SegmentsTotal = len(segs[r])
		for _, s := range segs[r] {
			rs.EventsTotal += s.Events()
		}
	}

	// Fixed-point trim to a consistent cross-rank frontier.
	keep := make([]int, n)
	frontiers := make([]uint64, n)
	for r := 0; r < n; r++ {
		keep[r] = len(segs[r])
		frontiers[r] = frontier(segs[r], keep[r], clean[r])
	}
	for changed := true; changed; {
		changed = false
		for r := 0; r < n; r++ {
			if v := firstViolation(segs[r], keep[r], frontiers); v < keep[r] {
				keep[r] = v
				frontiers[r] = frontier(segs[r], keep[r], clean[r])
				changed = true
			}
		}
	}

	plan := &SalvagePlan{Report: report, Keep: make([][]*Segment, n)}
	for r := 0; r < n; r++ {
		rs := &report.Ranks[r]
		rs.SegmentsKept = keep[r]
		rs.Frontier = frontiers[r]
		plan.Keep[r] = segs[r][:keep[r]]
		for _, s := range plan.Keep[r] {
			rs.EventsKept += s.Events()
		}
	}
	return plan, nil
}

// frontier computes C[r] over the kept prefix: the rank's own clock at the
// last kept flush mark (every send with clock ≤ C[r] strictly precedes the
// cut, since the clock ticks at each send), or MaxUint64 for a fully intact
// record (its replay regenerates every send, recorded receives and the
// deterministic continuation alike). Received epoch clocks — a weaker lower
// bound on the same clock — are folded in for records whose marks carry no
// sample.
func frontier(segs []*Segment, keep int, clean bool) uint64 {
	if clean && keep == len(segs) {
		return math.MaxUint64
	}
	var c uint64
	for _, s := range segs[:keep] {
		if s.FlushClock > c {
			c = s.FlushClock
		}
		for _, ch := range s.Chunks {
			for _, e := range ch.EpochLine {
				if e.Clock > c {
					c = e.Clock
				}
			}
		}
	}
	return c
}

// firstViolation returns the index of the first kept segment holding a
// chunk that references a sender clock beyond that sender's frontier, or
// keep when the whole kept prefix is consistent.
func firstViolation(segs []*Segment, keep int, frontiers []uint64) int {
	for i, s := range segs[:keep] {
		for _, ch := range s.Chunks {
			for _, e := range ch.EpochLine {
				if int(e.Rank) < len(frontiers) && e.Clock > frontiers[e.Rank] {
					return i
				}
			}
		}
	}
	return keep
}

// WriteSegments re-emits kept frames verbatim into a fresh record blob
// (magic, one gzip stream, cleanly closed with the last kept flush clock),
// byte-identical to what the pre-Store salvage wrote. It returns the blob
// size and closing clock, which with the plan's EventsKept form the
// salvaged run's single-cut index entry.
func WriteSegments(w io.Writer, segs []*Segment) (n int64, lastClock uint64, err error) {
	fw, err := core.NewFrameWriter(w, 0, false)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range segs {
		for _, frame := range s.Frames {
			if err := fw.WriteFrame(frame.Kind, frame.Payload); err != nil {
				return fw.BytesWritten(), 0, err
			}
		}
		lastClock = s.FlushClock
	}
	if err := fw.Close(lastClock); err != nil {
		return fw.BytesWritten(), lastClock, err
	}
	return fw.BytesWritten(), lastClock, nil
}

// SalvageTmpSuffix names the sibling directory a crash-safe in-place
// salvage writes into before swapping it over the damaged run.
const SalvageTmpSuffix = ".salvaged"

// FindRuns locates run directories (holding a manifest) and orphaned
// SalvageTmpSuffix directories under root. A missing root is an empty
// store, not an error, so a first daemon start needs no special casing.
func FindRuns(root string) (dirs, orphans []string, err error) {
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == root && errors.Is(err, fs.ErrNotExist) {
				return filepath.SkipAll
			}
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, SalvageTmpSuffix) {
			// Orphaned only when the destination vanished; otherwise it is
			// a stale partial salvage the per-run swap will redo.
			if _, serr := os.Stat(strings.TrimSuffix(path, SalvageTmpSuffix)); errors.Is(serr, fs.ErrNotExist) {
				orphans = append(orphans, path)
			}
			return filepath.SkipDir
		}
		if _, serr := os.Stat(filepath.Join(path, ManifestName)); serr == nil {
			dirs = append(dirs, path)
			return filepath.SkipDir
		}
		return nil
	})
	return dirs, orphans, err
}

// RelOrSelf returns dir relative to root, or dir itself when no relative
// form exists — run names in RunSalvage reports.
func RelOrSelf(root, dir string) string {
	if rel, err := filepath.Rel(root, dir); err == nil {
		return rel
	}
	return dir
}
