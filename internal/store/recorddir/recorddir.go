// Package recorddir is the layout engine for the flat directory-per-run
// record format: one CDC record file per rank plus a JSON manifest
// describing the run. It predates the store.Store API and remains the
// byte-level ground truth for that layout; the dirstore backend wraps it
// behind the Store interface, and nothing outside internal/store should
// need the path-based functions here.
//
// The manifest doubles as the directory's commit record: Create writes it
// atomically (temp file + rename + directory fsync) with Complete unset,
// and Finalize flips Complete after every rank closed cleanly. A crash at
// any point therefore leaves either no manifest or one that says the run
// did not finish — Open refuses such a directory and points the operator at
// Salvage instead of silently replaying a torn record.
package recorddir

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
)

// ManifestName is the metadata file's name inside a record directory.
const ManifestName = store.ManifestName

// ManifestVersion guards against format drift (see store.ManifestVersion).
const ManifestVersion = store.ManifestVersion

// ErrIncomplete marks a record directory whose run never finished cleanly —
// the manifest exists but Complete was never set. Salvage can usually
// recover a consistent prefix.
var ErrIncomplete = store.ErrIncomplete

// Manifest describes a recorded run (the store.Manifest type; recorddir
// reads and writes the same JSON).
type Manifest = store.Manifest

// SpscBackoff is the manifest form of spsc.Backoff.
type SpscBackoff = store.SpscBackoff

// RankPath returns the record file path for a rank.
func RankPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%04d.cdc", rank))
}

func writeManifest(dir string, m Manifest) error {
	return store.WriteManifestFile(dir, m)
}

func readManifest(dir string) (Manifest, error) {
	return store.ReadManifestFile(dir)
}

// Create prepares dir (creating it if needed) and writes the manifest with
// Complete unset; call Finalize after every rank's record closed cleanly.
// Existing rank files from a previous record are removed so a shorter
// re-record cannot leave stale ranks behind, and any stale chunk index is
// dropped with them.
func Create(dir string, m Manifest) error {
	if m.Ranks <= 0 {
		return fmt.Errorf("recorddir: manifest needs a positive rank count, got %d", m.Ranks)
	}
	m.Version = ManifestVersion
	m.Complete = false
	m.Index = nil
	m.Shards = nil
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "rank*.cdc"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	return writeManifest(dir, m)
}

// Finalize marks the record complete. Call it only after every rank's
// record file has been written and closed cleanly.
func Finalize(dir string) error {
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	m.Complete = true
	return writeManifest(dir, m)
}

// CreateRankFile opens the rank's record file for writing.
func CreateRankFile(dir string, rank int) (*os.File, error) {
	return os.Create(RankPath(dir, rank))
}

// Open reads and validates a record directory's manifest: version,
// completeness, rank count, optional app name, and the presence of every
// rank file. Directories of crashed runs fail with ErrIncomplete.
func Open(dir string, wantApp string, wantRanks int) (Manifest, error) {
	m, err := readManifest(dir)
	if err != nil {
		return m, err
	}
	if !m.Complete {
		return m, fmt.Errorf("%w: %s (run cdcinspect salvage to recover a prefix)", ErrIncomplete, dir)
	}
	if wantApp != "" && m.App != wantApp {
		return m, fmt.Errorf("recorddir: record is of app %q, not %q", m.App, wantApp)
	}
	if wantRanks != 0 && m.Ranks != wantRanks {
		return m, fmt.Errorf("recorddir: record has %d ranks, replay world has %d", m.Ranks, wantRanks)
	}
	for rank := 0; rank < m.Ranks; rank++ {
		if _, err := os.Stat(RankPath(dir, rank)); err != nil {
			return m, fmt.Errorf("recorddir: missing record for rank %d: %w", rank, err)
		}
	}
	return m, nil
}

// LoadRank decodes one rank's record.
func LoadRank(dir string, rank int) (*core.Record, error) {
	f, err := os.Open(RankPath(dir, rank))
	if err != nil {
		return nil, err
	}
	defer f.Close() //cdc:allow(errsink) read-side close; decode errors surface from DrainRecord
	it, err := core.OpenRecord(f)
	if err != nil {
		return nil, err
	}
	rec, err := core.DrainRecord(it)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadManifest reads a run directory's manifest without the completeness
// and identity checks Open applies — the ingest attach path expects
// in-progress (and, before salvage, crashed) runs.
func ReadManifest(dir string) (Manifest, error) { return readManifest(dir) }

// Reopen marks an existing record directory as in-progress again so new
// events can be appended to its rank records (core.EncoderOptions.Resume).
// It inverts Finalize: the manifest's Complete marker is cleared, so a
// crash while appending is detected on the next Open/SalvageAll instead of
// being mistaken for a finished run. The rank files themselves are left
// untouched. Returns the manifest as it was before clearing.
func Reopen(dir string) (Manifest, error) {
	m, err := readManifest(dir)
	if err != nil {
		return m, err
	}
	prev := m.Clone()
	m.Complete = false
	if err := writeManifest(dir, m); err != nil {
		return prev, err
	}
	return prev, nil
}

// OpenRankFileAppend opens a rank's record file for appending, creating it
// if absent. resume reports whether the file already has content — in that
// case the caller must write through core.NewFrameWriterResume (the magic
// header is already present); a fresh file takes the ordinary writer.
func OpenRankFileAppend(dir string, rank int) (f *os.File, resume bool, err error) {
	path := RankPath(dir, rank)
	fi, err := os.Stat(path)
	switch {
	case err == nil:
		resume = fi.Size() > 0
	case errors.Is(err, os.ErrNotExist):
		// fresh file
	default:
		return nil, false, err
	}
	f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false, err
	}
	return f, resume, nil
}
