package recorddir

import (
	"errors"
	"os"
	"strings"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/tables"
)

func writeRank(t *testing.T, dir string, rank int, events int) {
	t.Helper()
	f, err := CreateRankFile(dir, rank)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewEncoder(f, core.EncoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		if err := enc.Observe(0, tables.Matched(0, uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Ranks: 3, App: "mcb", Params: map[string]string{"particles": "100"}}
	if err := Create(dir, m); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		writeRank(t, dir, r, 5)
	}
	if err := Finalize(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, "mcb", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ranks != 3 || got.App != "mcb" || got.Params["particles"] != "100" {
		t.Fatalf("manifest = %+v", got)
	}
	rec, err := LoadRank(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chunks) == 0 {
		t.Fatal("rank record empty")
	}
}

func TestOpenRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, Manifest{Ranks: 2, App: "mcb"}); err != nil {
		t.Fatal(err)
	}
	writeRank(t, dir, 0, 1)
	writeRank(t, dir, 1, 1)
	if err := Finalize(dir); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, "jacobi", 2); err == nil || !strings.Contains(err.Error(), "app") {
		t.Fatalf("wrong-app err = %v", err)
	}
	if _, err := Open(dir, "mcb", 4); err == nil || !strings.Contains(err.Error(), "ranks") {
		t.Fatalf("wrong-rank err = %v", err)
	}
	if _, err := Open(t.TempDir(), "", 0); err == nil {
		t.Fatal("opened a non-record directory")
	}
}

func TestOpenDetectsMissingRankFile(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, Manifest{Ranks: 2, App: "x"}); err != nil {
		t.Fatal(err)
	}
	writeRank(t, dir, 0, 1) // rank 1 missing
	if err := Finalize(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "", 0); err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v", err)
	}
}

// TestOpenRefusesIncompleteRecord covers the crash window between Create
// and Finalize: however far the record run got — manifest only, or all rank
// files written but not finalized — Open must refuse the directory.
func TestOpenRefusesIncompleteRecord(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, Manifest{Ranks: 1, App: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "", 0); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("fresh directory: err = %v, want ErrIncomplete", err)
	}
	writeRank(t, dir, 0, 3)
	if _, err := Open(dir, "", 0); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("all ranks written, not finalized: err = %v, want ErrIncomplete", err)
	}
	if err := Finalize(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "", 0); err != nil {
		t.Fatalf("finalized directory refused: %v", err)
	}
}

// TestCrashDuringCreateNeverYieldsCompleteManifest simulates the
// fault-injected crash the manifest protocol must survive: a record run
// that dies before its first flush. Whatever partial state exists on disk —
// including a torn temp manifest left beside the real one — Open must not
// accept the directory as a complete record.
func TestCrashDuringCreateNeverYieldsCompleteManifest(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, Manifest{Ranks: 2, App: "x"}); err != nil {
		t.Fatal(err)
	}
	// Crash point: rank files created but never written or closed.
	f, err := CreateRankFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	// A torn manifest temp file from an interrupted writeManifest.
	if err := os.WriteFile(dir+"/"+ManifestName+".tmp123", []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "", 0); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("crashed record opened as complete: err = %v", err)
	}
}

func TestCreateRemovesStaleRankFiles(t *testing.T) {
	dir := t.TempDir()
	if err := Create(dir, Manifest{Ranks: 3, App: "x"}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		writeRank(t, dir, r, 1)
	}
	// Re-record with fewer ranks: the old rank0002 file must vanish.
	if err := Create(dir, Manifest{Ranks: 2, App: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(RankPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatalf("stale rank file survived: %v", err)
	}
}

func TestCreateRejectsBadManifest(t *testing.T) {
	if err := Create(t.TempDir(), Manifest{Ranks: 0}); err == nil {
		t.Fatal("accepted zero ranks")
	}
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/"+ManifestName, []byte(`{"version":99,"ranks":1,"app":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "", 0); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v", err)
	}
}
