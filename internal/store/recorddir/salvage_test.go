package recorddir

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"cdcreplay/internal/baseline"
	"cdcreplay/internal/core"
	"cdcreplay/internal/lamport"
	"cdcreplay/internal/mcb"
	"cdcreplay/internal/record"
	"cdcreplay/internal/replay"
	"cdcreplay/internal/simmpi"
)

// rcv identifies one application-observed receive: the unique
// (sender, piggyback clock) pair.
type rcv struct {
	src   int
	clock uint64
}

// tapLayer logs every matched receive the application observes, in order.
// It sits below the recorder — the app→recorder frame chain is untouched,
// so MF callsite identification still sees the application's call sites —
// and embeds the lamport layer so the recorder can still sample Clock().
// MCB completes all its receives through Testsome, the only MF it calls.
type tapLayer struct {
	*lamport.Layer
	log *[]rcv
}

func (t *tapLayer) Testsome(reqs []*simmpi.Request) ([]int, []simmpi.Status, error) {
	idxs, sts, err := t.Layer.Testsome(reqs)
	for _, st := range sts {
		*t.log = append(*t.log, rcv{st.Source, st.Clock})
	}
	return idxs, sts, err
}

// TestKillARankSalvageReplay is the crash-consistency pipeline end to end:
// record MCB under a fault plan that kills one rank mid-run, salvage the
// torn directory, replay the salvaged record on two different networks, and
// require each rank's replayed receive order to match the crashed run's
// observed order through the entire salvaged prefix.
// recordCrashedRun records MCB into dir under a fault plan killing rank 1
// after kill receives, abandoning each recorder the way a crash would. It
// returns the per-rank application-observed receive logs.
func recordCrashedRun(t *testing.T, dir string, params mcb.Params, seed int64, kill uint64) [][]rcv {
	t.Helper()
	const ranks = 4
	if err := Create(dir, Manifest{Ranks: ranks, App: "mcb"}); err != nil {
		t.Fatal(err)
	}
	recLogs := make([][]rcv, ranks)
	plan := &simmpi.FaultPlan{KillRank: 1, KillAfterReceives: kill}
	w := simmpi.NewWorld(ranks, simmpi.Options{Seed: seed, MaxJitter: 8, Faults: plan})
	err := w.RunRanked(func(rank int, mpi simmpi.MPI) error {
		f, err := CreateRankFile(dir, rank)
		if err != nil {
			return err
		}
		enc, err := core.NewEncoder(f, core.EncoderOptions{Durable: true})
		if err != nil {
			f.Close()
			return err
		}
		tap := &tapLayer{Layer: lamport.Wrap(mpi), log: &recLogs[rank]}
		rec := record.New(tap, baseline.NewCDC(enc), record.Options{FlushEveryRows: 16})
		_, rerr := mcb.Run(rec, params)
		if rerr == nil {
			// This rank outran the fault; close cleanly (the directory as a
			// whole is still incomplete — Finalize is never called).
			if err := rec.Close(); err != nil {
				return err
			}
			return f.Close()
		}
		rec.Abandon()
		f.Close()
		if errors.Is(rerr, simmpi.ErrKilled) || errors.Is(rerr, simmpi.ErrAborted) {
			return nil
		}
		return rerr
	})
	if err != nil {
		t.Fatalf("record run: %v", err)
	}
	if !w.Aborted() {
		t.Fatal("fault plan did not kill rank 1")
	}
	return recLogs
}

func TestKillARankSalvageReplay(t *testing.T) {
	const ranks = 4
	params := mcb.Params{Particles: 150, TimeSteps: 2, Seed: 11, CrossProb: 0.4}
	dir := filepath.Join(t.TempDir(), "record")
	salv := filepath.Join(t.TempDir(), "salvaged")

	// A crash that lands before some rank durably flushed anything salvages
	// nothing — the consistent frontier is the minimum across ranks, exactly
	// like a coordinated checkpoint. That placement is a scheduling accident
	// (likely on a single-CPU box), so re-roll the crash until it lands
	// somewhere salvageable; the ordering property is checked wherever it
	// lands.
	var recLogs [][]rcv
	var report *SalvageReport
	var kept, total uint64
	for attempt := 0; attempt < 6; attempt++ {
		recLogs = recordCrashedRun(t, dir, params, 5+int64(attempt), 90+60*uint64(attempt))
		var err error
		report, err = Salvage(dir, salv)
		if err != nil {
			t.Fatalf("salvage: %v", err)
		}
		kept, total = report.Events()
		for _, rs := range report.Ranks {
			t.Logf("attempt %d rank %d: kept %d/%d segments, %d/%d events, frontier %d, torn=%v %s",
				attempt, rs.Rank, rs.SegmentsKept, rs.SegmentsTotal, rs.EventsKept, rs.EventsTotal,
				rs.Frontier, rs.Truncated, rs.Damage)
		}
		if kept > 0 {
			break
		}
	}
	if kept == 0 {
		t.Fatalf("no crash placement salvaged any events (last run recorded %d)", total)
	}
	t.Logf("salvaged %d of %d events", kept, total)

	// Replay the salvaged prefix on two different networks.
	for _, seed := range []int64{77, 78} {
		repLogs := make([][]rcv, ranks)
		var mu sync.Mutex
		var liveTotal uint64
		w2 := simmpi.NewWorld(ranks, simmpi.Options{Seed: seed, MaxJitter: 8})
		err := w2.RunRanked(func(rank int, mpi simmpi.MPI) error {
			recFile, err := LoadRank(salv, rank)
			if err != nil {
				return err
			}
			rp := replay.New(lamport.WrapManual(mpi), recFile, replay.Options{
				LiveAfterExhausted: true,
				OnRelease: func(st simmpi.Status) {
					repLogs[rank] = append(repLogs[rank], rcv{st.Source, st.Clock})
				},
			})
			if _, rerr := mcb.Run(rp, params); rerr != nil {
				return rerr
			}
			if err := rp.Verify(); err != nil {
				return err
			}
			mu.Lock()
			liveTotal += rp.Stats().LiveReleases
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("replay run (seed %d): %v", seed, err)
		}
		if liveTotal == 0 {
			t.Errorf("replay (seed %d) never went live past the crash frontier", seed)
		}

		// The replayed order must reproduce the crashed run's observed order
		// through the whole salvaged prefix, rank by rank.
		for r := 0; r < ranks; r++ {
			n := int(report.Ranks[r].EventsKept)
			if len(recLogs[r]) < n || len(repLogs[r]) < n {
				t.Fatalf("seed %d rank %d: logs shorter than salvaged prefix: recorded %d, replayed %d, want >= %d",
					seed, r, len(recLogs[r]), len(repLogs[r]), n)
			}
			for i := 0; i < n; i++ {
				if repLogs[r][i] != recLogs[r][i] {
					t.Fatalf("seed %d rank %d: receive %d/%d diverged: recorded %+v, replayed %+v",
						seed, r, i, n, recLogs[r][i], repLogs[r][i])
				}
			}
		}
	}
}
