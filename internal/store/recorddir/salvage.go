package recorddir

import (
	"errors"
	"fmt"
	"io"
	"os"

	"cdcreplay/internal/store"
)

// SalvageReport describes what Salvage recovered (the store type).
type SalvageReport = store.SalvageReport

// RankSalvage describes one rank's salvage outcome (the store type).
type RankSalvage = store.RankSalvage

// Salvage recovers a replayable prefix from the record directory of a
// crashed run. The segment scan and the cross-rank fixed-point trim are
// store.PlanSalvage (see its package comment for the frontier math); this
// function owns the directory byte movement: re-emitting kept frames into
// outDir's rank files and publishing the salvaged manifest with Complete
// and Salvaged set and the chunk index rebuilt as one final cut per rank.
// Replayers see Salvaged and switch to replay-to-crash-point mode.
func Salvage(dir, outDir string) (*SalvageReport, error) {
	if dir == outDir {
		return nil, errors.New("recorddir: salvage output must be a different directory")
	}
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	plan, err := store.PlanSalvage(m, func(rank int) (io.ReadCloser, error) {
		return os.Open(RankPath(dir, rank))
	})
	if err != nil {
		return nil, err
	}

	// Write the salvaged directory (Create drops any stale index).
	if err := Create(outDir, m); err != nil {
		return nil, err
	}
	m, err = readManifest(outDir)
	if err != nil {
		return nil, err
	}
	for r := 0; r < m.Ranks; r++ {
		size, lastClock, err := writeRankPrefix(outDir, r, plan.Keep[r])
		if err != nil {
			return nil, fmt.Errorf("recorddir: writing salvaged rank %d: %w", r, err)
		}
		m.AppendIndex(r, store.IndexEntry{
			Clock:  lastClock,
			Events: plan.Report.Ranks[r].EventsKept,
			Offset: size,
		})
	}
	m.Complete = true
	m.Salvaged = true
	if err := writeManifest(outDir, m); err != nil {
		return nil, err
	}
	return plan.Report, nil
}

// writeRankPrefix re-emits the kept frames verbatim into a fresh record
// file (re-framed, so the new file is itself cleanly closed), reporting
// its size and closing clock for the rebuilt index.
func writeRankPrefix(dir string, rank int, segs []*store.Segment) (size int64, lastClock uint64, err error) {
	f, err := CreateRankFile(dir, rank)
	if err != nil {
		return 0, 0, err
	}
	size, lastClock, err = store.WriteSegments(f, segs)
	if err != nil {
		f.Close() //cdc:allow(errsink) best-effort cleanup; the frame-write error is already propagating
		return size, lastClock, err
	}
	return size, lastClock, f.Close()
}
