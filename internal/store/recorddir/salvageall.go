package recorddir

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
)

// RunSalvage is one run directory's outcome from SalvageAll (the store
// type).
type RunSalvage = store.RunSalvage

// SalvageAll walks a multi-tenant record root (any directory tree holding
// record directories, e.g. root/tenant/run) and recovers every run left
// incomplete by a crash, in place. Complete runs are left untouched; runs
// whose manifest is unreadable garbage are skipped with a finding (one
// damaged tenant must not block the sweep — see RunSalvage.Skipped). The
// in-place swap is itself crash-safe:
//
//  1. the salvaged prefix is written to <run>.salvaged (a stale one from an
//     earlier interrupted recovery is removed first),
//  2. the damaged run directory is removed,
//  3. <run>.salvaged is renamed over the run's path.
//
// A crash between steps 2 and 3 leaves only <run>.salvaged; the next
// SalvageAll adopts it by finishing the rename. A crash before step 2
// leaves the damaged run intact and the half-written salvage output is
// discarded and redone. Results are sorted by Dir so the report order is
// deterministic regardless of filesystem walk order.
func SalvageAll(root string) ([]RunSalvage, error) {
	dirs, orphans, err := store.FindRuns(root)
	if err != nil {
		return nil, err
	}
	var out []RunSalvage
	// Adopt finished-but-unrenamed salvages from a previous crashed
	// recovery before scanning run dirs, so the adopted run is then seen
	// (and skipped) as complete.
	for _, tmp := range orphans {
		dst := strings.TrimSuffix(tmp, store.SalvageTmpSuffix)
		rs := RunSalvage{Dir: store.RelOrSelf(root, dst), Adopted: true}
		if rs.Err = os.Rename(tmp, dst); rs.Err == nil {
			dirs = append(dirs, dst)
		}
		out = append(out, rs)
	}
	seen := make(map[string]bool, len(dirs))
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rs := salvageRun(root, dir)
		if rs != nil {
			out = append(out, *rs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out, nil
}

// salvageRun recovers one run directory if needed; nil means it was
// complete and untouched. An unreadable-garbage manifest yields a skip
// finding, not an error: the directory plainly is not a healthy run, but
// refusing to start the daemon over it would turn one damaged tenant into
// a full-root outage.
func salvageRun(root, dir string) *RunSalvage {
	rs := &RunSalvage{Dir: store.RelOrSelf(root, dir)}
	m, err := readManifest(dir)
	if err != nil {
		if errors.Is(err, store.ErrBadManifest) {
			rs.Skipped = true
			rs.Finding = err.Error()
			return rs
		}
		rs.Err = err
		return rs
	}
	if m.Complete {
		return nil
	}
	tmp := dir + store.SalvageTmpSuffix
	if err := os.RemoveAll(tmp); err != nil {
		rs.Err = err
		return rs
	}
	report, err := Salvage(dir, tmp)
	if err != nil {
		rs.Err = fmt.Errorf("recorddir: salvaging %s: %w", dir, err)
		return rs
	}
	if err := os.RemoveAll(dir); err != nil {
		rs.Err = err
		return rs
	}
	if err := os.Rename(tmp, dir); err != nil {
		rs.Err = err
		return rs
	}
	rs.Salvaged = true
	rs.Report = report
	return rs
}

// SalvageInPlace recovers one run directory with the same crash-safe
// sibling-swap SalvageAll uses, without walking a root. Complete runs are
// left untouched (nil report); unreadable-garbage manifests surface their
// ErrBadManifest error — a single-run caller asked for this directory
// specifically, so there is nothing to sweep past.
func SalvageInPlace(dir string) (*SalvageReport, error) {
	rs := salvageRun(dir, dir)
	if rs == nil {
		return nil, nil
	}
	if rs.Skipped {
		return nil, fmt.Errorf("recorddir: %s", rs.Finding)
	}
	return rs.Report, rs.Err
}

// RankFrontier scans one rank's record file and reports its logical-event
// frontier: the number of logical events (each matched receive counts one,
// each unmatched test counts one — an aggregated failed-test row of count
// n counts n) and the largest flush-mark clock. The ingest daemon states
// this frontier as the resume offset after a restart: everything the file
// holds is durable, so a client holding unacked events from that offset on
// can replay the tail exactly once. A missing file is an empty frontier.
func RankFrontier(path string) (events, clock uint64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	it, err := core.OpenRecord(f)
	if err != nil {
		return 0, 0, err
	}
	defer it.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	for {
		fr, err := it.Next()
		if err == io.EOF {
			return events, clock, nil
		}
		if err != nil {
			return events, clock, err
		}
		if fr.Chunk != nil {
			events += fr.Chunk.NumMatched
			for _, run := range fr.Chunk.Unmatched {
				events += run.Count
			}
		}
		if fr.Flush && fr.FlushClock > clock {
			clock = fr.FlushClock
		}
	}
}
