package recorddir

import (
	"os"
	"path/filepath"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
	"cdcreplay/internal/tables"
)

// makeRun writes a single-rank run under root at tenant/run with events
// matched events, optionally leaving the manifest incomplete and the rank
// file torn (crash simulation by truncation past the last flush mark).
func makeRun(t *testing.T, root, tenant, run string, events int, complete, torn bool) string {
	t.Helper()
	dir := filepath.Join(root, tenant, run)
	if err := Create(dir, Manifest{Ranks: 1, App: "ingest"}); err != nil {
		t.Fatal(err)
	}
	f, err := CreateRankFile(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewEncoder(f, core.EncoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < events; i++ {
		if err := enc.Observe(0, tables.Matched(0, uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%4 == 0 {
			if err := enc.FlushAll(uint64(i + 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if torn {
		// Chop the tail so the final frames are damaged, as a crash
		// mid-write would leave them.
		path := RankPath(dir, 0)
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf[:len(buf)-7], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if complete {
		if err := Finalize(dir); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSalvageAllRecoversIncompleteRuns(t *testing.T) {
	root := t.TempDir()
	makeRun(t, root, "acme", "run1", 16, true, false)  // complete: untouched
	makeRun(t, root, "acme", "run2", 16, false, true)  // crashed: salvage
	makeRun(t, root, "globex", "run1", 8, false, true) // crashed: salvage

	results, err := SalvageAll(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("SalvageAll returned %d results, want 2 (complete run untouched): %+v", len(results), results)
	}
	for _, rs := range results {
		if rs.Err != nil {
			t.Fatalf("run %s: %v", rs.Dir, rs.Err)
		}
		if !rs.Salvaged || rs.Report == nil {
			t.Fatalf("run %s not salvaged: %+v", rs.Dir, rs)
		}
		kept, _ := rs.Report.Events()
		if kept == 0 {
			t.Fatalf("run %s salvaged zero events", rs.Dir)
		}
	}
	if results[0].Dir != filepath.Join("acme", "run2") || results[1].Dir != filepath.Join("globex", "run1") {
		t.Fatalf("results not sorted by dir: %q, %q", results[0].Dir, results[1].Dir)
	}

	// Every salvaged run is now complete and replayable in place.
	for _, dir := range []string{filepath.Join(root, "acme", "run2"), filepath.Join(root, "globex", "run1")} {
		m, err := Open(dir, "ingest", 1)
		if err != nil {
			t.Fatalf("salvaged run %s does not open: %v", dir, err)
		}
		if !m.Salvaged {
			t.Fatalf("salvaged run %s not marked Salvaged", dir)
		}
	}

	// Idempotent: a second sweep finds nothing to do.
	results, err = SalvageAll(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("second SalvageAll sweep returned %d results, want 0", len(results))
	}
}

func TestSalvageAllAdoptsOrphanedSwap(t *testing.T) {
	root := t.TempDir()
	dir := makeRun(t, root, "acme", "run1", 12, false, true)

	// Simulate a recovery that crashed between removing the damaged run
	// and renaming the salvaged copy into place.
	tmp := dir + store.SalvageTmpSuffix
	if _, err := Salvage(dir, tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	results, err := SalvageAll(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Adopted || results[0].Err != nil {
		t.Fatalf("orphaned swap not adopted: %+v", results)
	}
	if _, err := Open(dir, "ingest", 1); err != nil {
		t.Fatalf("adopted run does not open: %v", err)
	}
}

func TestSalvageAllMissingRoot(t *testing.T) {
	results, err := SalvageAll(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil {
		t.Fatalf("missing root should be an empty store: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("missing root returned %d results", len(results))
	}
}

func TestReopenClearsComplete(t *testing.T) {
	root := t.TempDir()
	dir := makeRun(t, root, "acme", "run1", 8, true, false)

	prev, err := Reopen(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !prev.Complete {
		t.Fatal("Reopen should report the prior manifest, which was complete")
	}
	if _, err := Open(dir, "ingest", 1); err == nil {
		t.Fatal("reopened dir should refuse Open until finalized again")
	}
	if err := Finalize(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "ingest", 1); err != nil {
		t.Fatalf("finalized-again dir should open: %v", err)
	}
}

func TestOpenRankFileAppendAndFrontier(t *testing.T) {
	root := t.TempDir()
	dir := makeRun(t, root, "acme", "run1", 10, true, false)

	events, clock, err := RankFrontier(RankPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if events != 10 {
		t.Fatalf("frontier events = %d, want 10", events)
	}
	if clock == 0 {
		t.Fatal("frontier clock = 0, want last flush-mark clock")
	}

	f, resume, err := OpenRankFileAppend(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resume {
		t.Fatal("existing rank file should resume")
	}
	enc, err := core.NewEncoder(f, core.EncoderOptions{Resume: true, ResumeClock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := enc.Observe(0, tables.Matched(0, clock+uint64(i+1), false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Observe(0, tables.Unmatched(2)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	events2, clock2, err := RankFrontier(RankPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if events2 != 15 { // 10 + 3 matched + 2 unmatched tests
		t.Fatalf("frontier after append = %d, want 15", events2)
	}
	if clock2 < clock+3 {
		t.Fatalf("frontier clock after append = %d, want >= %d", clock2, clock+3)
	}

	// A fresh rank takes the non-resume path.
	f2, resume2, err := OpenRankFileAppend(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if resume2 {
		t.Fatal("fresh rank file should not resume")
	}
	ev0, _, err := RankFrontier(RankPath(dir, 2))
	if err != nil || ev0 != 0 {
		t.Fatalf("missing rank frontier = %d,%v want 0,nil", ev0, err)
	}
}
