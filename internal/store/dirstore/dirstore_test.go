package dirstore_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/dst"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
	"cdcreplay/internal/store/recorddir"
	"cdcreplay/internal/store/storetest"
)

func TestDirstoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store {
		return dirstore.New(filepath.Join(t.TempDir(), "run"))
	})
}

// TestDirstoreByteCompatGolden pins the redesign's byte-compatibility
// promise: a run recorded through the dirstore backend produces rank
// files byte-identical to the raw encoder streams the pre-Store recorddir
// layout wrote (dirstore keeps SeekableCuts off, and index commits touch
// only the manifest). If this test breaks, historical records and the new
// layout have diverged.
func TestDirstoreByteCompatGolden(t *testing.T) {
	opts := core.EncoderOptions{ChunkEvents: 64}
	want, err := dst.DeterministicRecord("exchange", 1, true, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	if err := dst.DeterministicRecordTo("exchange", 1, true, opts, dirstore.New(dir)); err != nil {
		t.Fatal(err)
	}
	for rank, wantBytes := range want {
		got, err := os.ReadFile(recorddir.RankPath(dir, rank))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes) {
			t.Errorf("rank %d: dirstore blob (%d bytes) differs from pre-Store recorddir bytes (%d bytes)",
				rank, len(got), len(wantBytes))
		}
	}
}
