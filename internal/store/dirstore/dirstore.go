// Package dirstore is the store.Store backend for the flat
// directory-per-run layout: one rankNNNN.cdc file per rank beside
// manifest.json, byte-compatible with what the pre-Store recorddir
// package wrote (pinned by TestDirstoreByteCompatGolden). It delegates
// the byte-level layout to recorddir and adds the Store contract on top:
// per-epoch index commits into the manifest and epoch-pinned concurrent
// readers.
//
// Cuts are non-seekable here (gzip sync flush, not member boundaries), so
// the record bytes stay identical to historical records; index offsets
// still bound pinned reads exactly.
package dirstore

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"cdcreplay/internal/store"
	"cdcreplay/internal/store/recorddir"
)

// DirStore is one run in the dir layout. The zero value is unusable; use
// New. Safe for one writer per rank plus concurrent readers in-process.
type DirStore struct {
	dir string
	// mu serializes the manifest read-modify-write that Commit performs:
	// rank writers run on their own goroutines but share the one manifest
	// file.
	mu sync.Mutex
}

// New returns the run store rooted at dir. Nothing is touched until
// Create (recording) or a read method (replay).
func New(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir exposes the underlying directory for operator-facing messages.
func (s *DirStore) Dir() string { return s.dir }

// Layout reports store.LayoutDir.
func (s *DirStore) Layout() string { return store.LayoutDir }

// Seekable reports false: cuts are gzip sync flushes, byte-compatible with
// pre-Store records, so index offsets are pin bounds but not seek targets.
func (s *DirStore) Seekable() bool { return false }

// Manifest returns the current manifest.
func (s *DirStore) Manifest() (store.Manifest, error) {
	return store.ReadManifestFile(s.dir)
}

// Create initializes the run directory (see recorddir.Create) and stamps
// the layout into the manifest.
func (s *DirStore) Create(m store.Manifest) error {
	m.Layout = store.LayoutDir
	m.SeekableCuts = false
	m.Shards = nil
	return recorddir.Create(s.dir, m)
}

// WriteManifest republishes m atomically.
func (s *DirStore) WriteManifest(m store.Manifest) error {
	return store.WriteManifestFile(s.dir, m)
}

// Finalize marks the run complete.
func (s *DirStore) Finalize() error { return recorddir.Finalize(s.dir) }

// Reopen clears the Complete marker for appending, returning the manifest
// as it was before.
func (s *DirStore) Reopen() (store.Manifest, error) { return recorddir.Reopen(s.dir) }

// CreateRank opens rank's record file for writing from scratch.
func (s *DirStore) CreateRank(rank int) (store.BlobWriter, error) {
	f, err := recorddir.CreateRankFile(s.dir, rank)
	if err != nil {
		return nil, err
	}
	return &blobWriter{s: s, f: f, rank: rank}, nil
}

// AppendRank opens rank's record file for appending, creating it if
// absent. The writer's commit base is the existing size and the last
// committed entry's cumulative events, so resumed cuts index the whole
// blob, not just the new tail.
func (s *DirStore) AppendRank(rank int) (store.BlobWriter, bool, error) {
	f, resume, err := recorddir.OpenRankFileAppend(s.dir, rank)
	if err != nil {
		return nil, false, err
	}
	bw := &blobWriter{s: s, f: f, rank: rank}
	if resume {
		fi, err := f.Stat()
		if err != nil {
			f.Close() //cdc:allow(errsink) best-effort cleanup; the stat error is already propagating
			return nil, false, err
		}
		bw.baseOffset = fi.Size()
		m, err := s.Manifest()
		if err != nil {
			f.Close() //cdc:allow(errsink) best-effort cleanup; the manifest error is already propagating
			return nil, false, err
		}
		bw.baseEvents = m.LastCut(rank).Events
	}
	return bw, resume, nil
}

// OpenRank opens rank's blob for reading, pinned to the last committed
// index offset when the run is incomplete (the concurrent-reader rule:
// never hand out bytes past the committed epoch line).
func (s *DirStore) OpenRank(rank int) (store.BlobReader, error) {
	m, err := s.Manifest()
	if err != nil {
		return nil, err
	}
	f, err := os.Open(recorddir.RankPath(s.dir, rank))
	if err != nil {
		if !m.Complete && errors.Is(err, fs.ErrNotExist) {
			// The writer has not created the blob yet; readers of a live
			// run see the empty committed prefix, not a missing-file error.
			return store.EmptyBlob(), nil
		}
		return nil, err
	}
	size := int64(0)
	if m.Complete {
		fi, err := f.Stat()
		if err != nil {
			f.Close() //cdc:allow(errsink) best-effort cleanup; the stat error is already propagating
			return nil, err
		}
		size = fi.Size()
	} else {
		size = m.LastCut(rank).Offset
	}
	return &fileBlob{SectionReader: io.NewSectionReader(f, 0, size), f: f}, nil
}

// RawRank opens rank's full blob, torn tail included (the salvage and
// frontier-scan view). A rank that never wrote yields fs.ErrNotExist.
func (s *DirStore) RawRank(rank int) (store.BlobReader, error) {
	f, err := os.Open(recorddir.RankPath(s.dir, rank))
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close() //cdc:allow(errsink) best-effort cleanup; the stat error is already propagating
		return nil, err
	}
	return &fileBlob{SectionReader: io.NewSectionReader(f, 0, fi.Size()), f: f}, nil
}

// Salvage recovers the run in place with recorddir's crash-safe sibling
// swap. Complete runs are untouched (nil report); the salvaged manifest
// carries a rebuilt single-cut index per rank.
func (s *DirStore) Salvage() (*store.SalvageReport, error) {
	return recorddir.SalvageInPlace(s.dir)
}

// commit appends one absolute index entry and republishes the manifest.
func (s *DirStore) commit(rank int, e store.IndexEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := store.ReadManifestFile(s.dir)
	if err != nil {
		return err
	}
	m.AppendIndex(rank, e)
	return store.WriteManifestFile(s.dir, m)
}

// blobWriter is one rank's append stream: writes go straight to the file,
// Commit translates the encoder's writer-relative cut to blob-absolute
// coordinates and publishes it.
type blobWriter struct {
	s          *DirStore
	f          *os.File
	rank       int
	baseOffset int64
	baseEvents uint64
}

func (w *blobWriter) Write(p []byte) (int, error) { return w.f.Write(p) }
func (w *blobWriter) Sync() error                 { return w.f.Sync() }
func (w *blobWriter) Close() error                { return w.f.Close() }

func (w *blobWriter) Commit(cut store.Cut) error {
	return w.s.commit(w.rank, store.IndexEntry{
		Clock:  cut.Clock,
		Events: w.baseEvents + cut.Events,
		Offset: w.baseOffset + cut.Offset,
	})
}

// fileBlob is a (possibly pinned) read view of one rank file.
type fileBlob struct {
	*io.SectionReader
	f *os.File
}

func (b *fileBlob) Close() error { return b.f.Close() }

var _ store.Store = (*DirStore)(nil)

// Root is a multi-run dir-layout store (the ingest daemon's record root).
type Root struct{ root string }

// OpenRoot returns the multi-run store rooted at root. A missing root is
// an empty store.
func OpenRoot(root string) *Root { return &Root{root: root} }

// Open returns the run store at name (slash-separated, e.g. tenant/run).
func (r *Root) Open(name string) (store.Store, error) {
	return New(filepath.Join(r.root, filepath.FromSlash(name))), nil
}

// SalvageAll recovers every incomplete run under the root in place (see
// recorddir.SalvageAll — garbage manifests are skipped with a finding).
func (r *Root) SalvageAll() ([]store.RunSalvage, error) {
	return recorddir.SalvageAll(r.root)
}

var _ store.Root = (*Root)(nil)
