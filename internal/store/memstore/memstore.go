// Package memstore is the in-memory store.Store backend, for DST and
// tests: the same manifest/commit/pinning contract as the disk backends
// with no filesystem underneath. Writers append to per-rank byte slices;
// readers snapshot the committed prefix, so a reader opened mid-recording
// stays stable while the writer keeps appending (writers never mutate
// bytes below a committed offset).
//
// Cuts are seekable: the encoder closes a gzip member at every flush
// point, so committed index offsets are random-access decode points.
package memstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"cdcreplay/internal/store"
)

// MemStore is one in-memory run. Use New; safe for one writer per rank
// plus concurrent readers.
type MemStore struct {
	mu      sync.Mutex
	m       store.Manifest
	created bool
	blobs   map[int]*[]byte
}

// New returns an empty in-memory run store.
func New() *MemStore { return &MemStore{blobs: make(map[int]*[]byte)} }

// Layout reports store.LayoutMemory.
func (s *MemStore) Layout() string { return store.LayoutMemory }

// Seekable reports true: cuts end gzip members.
func (s *MemStore) Seekable() bool { return true }

// Manifest returns a snapshot of the current manifest.
func (s *MemStore) Manifest() (store.Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.created {
		return store.Manifest{}, fmt.Errorf("store: %w (memstore run was never created)", fs.ErrNotExist)
	}
	return s.m.Clone(), nil
}

// Create initializes the run from m, dropping any previous blobs.
func (s *MemStore) Create(m store.Manifest) error {
	if m.Ranks <= 0 {
		return fmt.Errorf("memstore: manifest needs a positive rank count, got %d", m.Ranks)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m.Version = store.ManifestVersion
	m.Complete = false
	m.Index = nil
	m.Shards = nil
	m.Layout = store.LayoutMemory
	m.SeekableCuts = true
	s.m = m.Clone()
	s.created = true
	s.blobs = make(map[int]*[]byte)
	return nil
}

// WriteManifest replaces the manifest with m.
func (s *MemStore) WriteManifest(m store.Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m.Clone()
	s.created = true
	return nil
}

// Finalize marks the run complete.
func (s *MemStore) Finalize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.created {
		return errors.New("memstore: Finalize before Create")
	}
	s.m.Complete = true
	return nil
}

// Reopen clears the Complete marker for appending, returning the manifest
// as it was before.
func (s *MemStore) Reopen() (store.Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.created {
		return store.Manifest{}, errors.New("memstore: Reopen before Create")
	}
	prev := s.m.Clone()
	s.m.Complete = false
	return prev, nil
}

// CreateRank opens rank's blob for writing from scratch.
func (s *MemStore) CreateRank(rank int) (store.BlobWriter, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob := new([]byte)
	s.blobs[rank] = blob
	return &blobWriter{s: s, rank: rank, blob: blob}, nil
}

// AppendRank opens rank's blob for appending, creating it if absent.
func (s *MemStore) AppendRank(rank int) (store.BlobWriter, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[rank]
	if !ok {
		blob = new([]byte)
		s.blobs[rank] = blob
	}
	resume := len(*blob) > 0
	return &blobWriter{
		s:          s,
		rank:       rank,
		blob:       blob,
		baseOffset: int64(len(*blob)),
		baseEvents: s.m.LastCut(rank).Events,
	}, resume, nil
}

// OpenRank returns a stable snapshot of rank's blob, pinned to the last
// committed index offset when the run is incomplete.
func (s *MemStore) OpenRank(rank int) (store.BlobReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[rank]
	if !ok {
		if !s.m.Complete {
			// The writer has not created the blob yet; readers of a live
			// run see the empty committed prefix, not a missing-file error.
			return store.EmptyBlob(), nil
		}
		return nil, fmt.Errorf("memstore: rank %d: %w", rank, fs.ErrNotExist)
	}
	size := int64(len(*blob))
	if !s.m.Complete {
		size = s.m.LastCut(rank).Offset
	}
	return newMemBlob((*blob)[:size]), nil
}

// RawRank returns a stable snapshot of rank's full blob.
func (s *MemStore) RawRank(rank int) (store.BlobReader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[rank]
	if !ok {
		return nil, fmt.Errorf("memstore: rank %d: %w", rank, fs.ErrNotExist)
	}
	return newMemBlob(*blob), nil
}

// Salvage recovers the run in place to a consistent prefix (see
// store.PlanSalvage), rebuilding each rank blob as a cleanly closed record
// with a single-cut index. Complete runs are untouched (nil report).
func (s *MemStore) Salvage() (*store.SalvageReport, error) {
	m, err := s.Manifest()
	if err != nil {
		return nil, err
	}
	if m.Complete {
		return nil, nil
	}
	plan, err := store.PlanSalvage(m, func(rank int) (io.ReadCloser, error) {
		return s.RawRank(rank)
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.Index = nil
	for r := 0; r < m.Ranks; r++ {
		var buf bytes.Buffer
		size, lastClock, err := store.WriteSegments(&buf, plan.Keep[r])
		if err != nil {
			return nil, fmt.Errorf("memstore: rewriting salvaged rank %d: %w", r, err)
		}
		b := buf.Bytes()
		s.blobs[r] = &b
		s.m.AppendIndex(r, store.IndexEntry{
			Clock:  lastClock,
			Events: plan.Report.Ranks[r].EventsKept,
			Offset: size,
		})
	}
	s.m.Complete = true
	s.m.Salvaged = true
	return plan.Report, nil
}

// commit appends one absolute index entry under the lock.
func (s *MemStore) commit(rank int, e store.IndexEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m.AppendIndex(rank, e)
	return nil
}

// blobWriter appends to one rank's byte slice. Appends happen under the
// store lock so concurrent OpenRank snapshots slice a consistent backing
// array; bytes below a committed offset are never rewritten.
type blobWriter struct {
	s          *MemStore
	rank       int
	blob       *[]byte
	baseOffset int64
	baseEvents uint64
}

func (w *blobWriter) Write(p []byte) (int, error) {
	w.s.mu.Lock()
	*w.blob = append(*w.blob, p...)
	w.s.mu.Unlock()
	return len(p), nil
}

func (w *blobWriter) Sync() error  { return nil }
func (w *blobWriter) Close() error { return nil }

func (w *blobWriter) Commit(cut store.Cut) error {
	return w.s.commit(w.rank, store.IndexEntry{
		Clock:  cut.Clock,
		Events: w.baseEvents + cut.Events,
		Offset: w.baseOffset + cut.Offset,
	})
}

// memBlob is a read view over a snapshot slice.
type memBlob struct{ *bytes.Reader }

func newMemBlob(b []byte) *memBlob { return &memBlob{bytes.NewReader(b)} }

func (b *memBlob) Close() error { return nil }
func (b *memBlob) Size() int64  { return b.Reader.Size() }

var _ store.Store = (*MemStore)(nil)

// Root is an in-memory multi-run store for DST and tests.
type Root struct {
	mu   sync.Mutex
	runs map[string]*MemStore
}

// OpenRoot returns an empty in-memory multi-run store.
func OpenRoot() *Root { return &Root{runs: make(map[string]*MemStore)} }

// Open returns the run store at name, creating an empty one on first use.
func (r *Root) Open(name string) (store.Store, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.runs[name]
	if !ok {
		st = New()
		r.runs[name] = st
	}
	return st, nil
}

// SalvageAll recovers every incomplete created run, sorted by name. Runs
// never created (opened but never written) are skipped silently, matching
// the on-disk sweep's "no manifest, not a run" rule.
func (r *Root) SalvageAll() ([]store.RunSalvage, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.runs))
	for name, st := range r.runs { //cdc:allow(maporder) collected names are sorted below before use
		if st.isCreated() {
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	sort.Strings(names)
	var out []store.RunSalvage
	for _, name := range names {
		r.mu.Lock()
		st := r.runs[name]
		r.mu.Unlock()
		rs := store.RunSalvage{Dir: strings.TrimPrefix(name, "/")}
		report, err := st.Salvage()
		switch {
		case err != nil:
			rs.Err = err
		case report == nil:
			continue // complete, untouched
		default:
			rs.Salvaged = true
			rs.Report = report
		}
		out = append(out, rs)
	}
	return out, nil
}

func (s *MemStore) isCreated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.created
}

var _ store.Root = (*Root)(nil)
