package memstore_test

import (
	"testing"

	"cdcreplay/internal/store"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/store/storetest"
)

func TestMemstoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) store.Store {
		return memstore.New()
	})
}
