package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"

	"cdcreplay/internal/cdcformat"
	"cdcreplay/internal/core"
)

// Open reads and validates a run's manifest for replay: completeness, rank
// count, optional app name. Runs of crashed recordings fail with
// ErrIncomplete (salvage first, or read pinned via LoadRank).
func Open(st Store, wantApp string, wantRanks int) (Manifest, error) {
	m, err := st.Manifest()
	if err != nil {
		return m, err
	}
	if !m.Complete {
		return m, fmt.Errorf("%w (run cdcinspect salvage to recover a prefix)", ErrIncomplete)
	}
	if wantApp != "" && m.App != wantApp {
		return m, fmt.Errorf("store: record is of app %q, not %q", m.App, wantApp)
	}
	if wantRanks != 0 && m.Ranks != wantRanks {
		return m, fmt.Errorf("store: record has %d ranks, replay world has %d", m.Ranks, wantRanks)
	}
	for rank := 0; rank < m.Ranks; rank++ {
		r, err := st.OpenRank(rank)
		if err != nil {
			return m, fmt.Errorf("store: missing record for rank %d: %w", rank, err)
		}
		r.Close() //cdc:allow(errsink) existence probe only; decode errors surface from LoadRank
	}
	return m, nil
}

// LoadRank decodes one rank's record through the store's pinning rules.
//
// On a complete run this is a plain full decode. On an incomplete run the
// blob arrives pinned to the last committed cut; a pin that lands inside a
// still-open gzip member (non-seekable backends) decodes every committed
// frame and then ends in an unexpected-EOF truncation, which is the pin
// boundary, not damage — that one case is forgiven and the committed
// prefix returned. A CRC mismatch or malformed frame below the pin is real
// corruption and still fails.
func LoadRank(st Store, rank int) (*core.Record, error) {
	m, err := st.Manifest()
	if err != nil {
		return nil, err
	}
	r, err := st.OpenRank(rank)
	if err != nil {
		return nil, err
	}
	defer r.Close() //cdc:allow(errsink) read-side close; decode errors surface from DrainRecord
	it, err := core.OpenRecord(r)
	if err != nil {
		if !m.Complete && tolerableAtPin(err) {
			return &core.Record{Chunks: map[uint64][]*cdcformat.Chunk{}}, nil
		}
		return nil, err
	}
	rec, err := core.DrainRecord(it)
	if err == nil {
		return rec, nil
	}
	if !m.Complete && tolerableAtPin(err) {
		return rec, nil
	}
	return nil, err
}

// TolerableAtPin reports a decode failure that is exactly the epoch-pin
// boundary of an in-progress blob: the stream ran out mid-frame (or before
// the magic, for a pin at zero). Any other cause — CRC mismatch, malformed
// payload, unknown frame kind — is corruption below the pin. Streaming
// readers of incomplete runs (cdc.Replay) use it the way LoadRank does: to
// treat the pin boundary as a clean end of record.
func TolerableAtPin(err error) bool {
	var te *core.TruncatedRecordError
	return errors.As(err, &te) && errors.Is(te.Cause, io.ErrUnexpectedEOF)
}

func tolerableAtPin(err error) bool { return TolerableAtPin(err) }

// OpenRankIter opens one rank's record as a streaming iterator through a
// decode policy, picking the widest decode parallelism the backend
// supports: on a seekable store with a committed chunk index and
// DecodeWorkers ≥ 1, the committed epochs become independently inflated
// segments (core.OpenRecordSegments); otherwise the stream-mode pipeline
// (or a plain serial decode) reads the blob front to back. On incomplete
// runs the blob arrives pinned, exactly like LoadRank.
//
// The returned closer is the underlying blob: close the iterator first,
// then the blob (cdc.RecordReader-style errors.Join works).
func OpenRankIter(st Store, rank int, o core.DecoderOptions) (*core.RecordIter, io.Closer, error) {
	r, err := st.OpenRank(rank)
	if err != nil {
		return nil, nil, err
	}
	if o.DecodeWorkers > 0 && st.Seekable() {
		m, err := st.Manifest()
		if err != nil {
			r.Close() //cdc:allow(errsink) open failed; the open error is the one to report
			return nil, nil, err
		}
		if idx := m.RankIndex(rank); len(idx) > 0 {
			cuts := make([]int64, 0, len(idx))
			for _, e := range idx {
				cuts = append(cuts, e.Offset)
			}
			it, err := core.OpenRecordSegments(r, r.Size(), cuts, o)
			if err != nil {
				r.Close() //cdc:allow(errsink) open failed; the open error is the one to report
				return nil, nil, err
			}
			return it, r, nil
		}
	}
	it, err := core.OpenRecordOptions(r, o)
	if err != nil {
		r.Close() //cdc:allow(errsink) open failed; the open error is the one to report
		return nil, nil, err
	}
	return it, r, nil
}

// SeekRankIter opens one rank's record positioned at the start of epoch —
// 0-based: epoch 0 is the record head, epoch k (1 ≤ k ≤ len(index)) begins
// just past the rank's k-th committed cut, so epoch len(index) is the tail
// written after the last commit. The first frame Next returns is the first
// frame of the target epoch, identically on every backend:
//
//   - a seekable store jumps straight to the cut's blob offset, and with
//     DecodeWorkers ≥ 1 the remaining epochs decode segment-parallel
//     (core.OpenRecordSegmentsAt);
//   - a non-seekable store decodes from byte zero and discards frames until
//     epoch flush marks have passed — same frame stream, linear cost.
//
// Callsite-name frames before the seek point are replayed only on the skip
// path, so names resolve best-effort after a seek. Seeking to epoch 0 is
// exactly OpenRankIter. On incomplete runs the blob arrives pinned, so a
// seek target can only name committed epochs.
func SeekRankIter(st Store, rank, epoch int, o core.DecoderOptions) (*core.RecordIter, io.Closer, error) {
	if epoch <= 0 {
		if epoch < 0 {
			return nil, nil, fmt.Errorf("store: negative seek epoch %d", epoch)
		}
		return OpenRankIter(st, rank, o)
	}
	m, err := st.Manifest()
	if err != nil {
		return nil, nil, err
	}
	idx := m.RankIndex(rank)
	if epoch > len(idx) {
		return nil, nil, fmt.Errorf("store: rank %d has %d committed epoch(s), cannot seek to epoch %d", rank, len(idx), epoch)
	}
	r, err := st.OpenRank(rank)
	if err != nil {
		return nil, nil, err
	}
	if st.Seekable() {
		cuts := make([]int64, 0, len(idx)-epoch)
		for _, e := range idx[epoch:] {
			cuts = append(cuts, e.Offset)
		}
		it, err := core.OpenRecordSegmentsAt(r, r.Size(), idx[epoch-1].Offset, cuts, o)
		if err != nil {
			r.Close() //cdc:allow(errsink) open failed; the open error is the one to report
			return nil, nil, err
		}
		return it, r, nil
	}
	it, err := core.OpenRecordOptions(r, o)
	if err != nil {
		r.Close() //cdc:allow(errsink) open failed; the open error is the one to report
		return nil, nil, err
	}
	for it.FlushPoints() < uint64(epoch) {
		if _, err := it.Next(); err != nil {
			it.Close() //cdc:allow(errsink) best-effort cleanup; the scan error is already propagating
			r.Close()  //cdc:allow(errsink) best-effort cleanup; the scan error is already propagating
			if err == io.EOF {
				err = fmt.Errorf("store: rank %d record ended before epoch %d", rank, epoch)
			}
			return nil, nil, err
		}
	}
	return it, r, nil
}

// RankFrontier scans one rank's full blob (torn tail included) and reports
// its logical-event frontier: the number of logical events (each matched
// receive counts one, each unmatched test counts one — an aggregated
// failed-test row of count n counts n) and the largest flush-mark clock.
// The ingest daemon states this frontier as the resume offset after a
// restart. A rank that never wrote is an empty frontier.
func RankFrontier(st Store, rank int) (events, clock uint64, err error) {
	r, err := st.RawRank(rank)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer r.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	if r.Size() == 0 {
		// A registered-but-unwritten blob (crash right after AppendRank
		// opened it) is an empty frontier, same as a missing one.
		return 0, 0, nil
	}
	it, err := core.OpenRecord(r)
	if err != nil {
		return 0, 0, err
	}
	defer it.Close() //cdc:allow(errsink) read-side close; scan errors surface from Next
	for {
		fr, err := it.Next()
		if err == io.EOF {
			return events, clock, nil
		}
		if err != nil {
			return events, clock, err
		}
		if fr.Chunk != nil {
			events += fr.Chunk.NumMatched
			for _, run := range fr.Chunk.Unmatched {
				events += run.Count
			}
		}
		if fr.Flush && fr.FlushClock > clock {
			clock = fr.FlushClock
		}
	}
}
