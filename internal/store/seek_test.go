package store_test

import (
	"fmt"
	"io"
	"testing"

	"cdcreplay/internal/core"
	"cdcreplay/internal/store"
	"cdcreplay/internal/store/dirstore"
	"cdcreplay/internal/store/memstore"
	"cdcreplay/internal/workload"
)

// recordEpochs streams a synthetic workload into st as one rank with an
// index commit per epoch, mirroring what the cdc pipeline does.
func recordEpochs(t *testing.T, st store.Store, events, epochs int) {
	t.Helper()
	if err := st.Create(store.Manifest{Ranks: 1, App: "seek-test"}); err != nil {
		t.Fatal(err)
	}
	w, err := st.CreateRank(0)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewEncoder(w, core.EncoderOptions{
		ChunkEvents:  64,
		SeekableCuts: st.Seekable(),
		OnFlushPoint: func(clock, events uint64, offset int64) error {
			return w.Commit(store.Cut{Clock: clock, Events: events, Offset: offset})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := workload.Stream(workload.StreamParams{Events: events, Senders: 4, Disorder: 3, Seed: 7})
	per := (len(evs) + epochs - 1) / epochs
	var maxClock uint64
	for i, ev := range evs {
		if err := enc.Observe(1, ev); err != nil {
			t.Fatal(err)
		}
		if ev.Clock > maxClock {
			maxClock = ev.Clock
		}
		if (i+1)%per == 0 && i+1 < len(evs) {
			if err := enc.FlushAll(maxClock); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// drainKinds consumes an iterator to EOF, returning (kind, payload) pairs.
func drainKinds(t *testing.T, it *core.RecordIter) []string {
	t.Helper()
	var out []string
	for {
		f, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, fmt.Sprintf("%d:%s", f.Kind, f.Payload))
	}
}

// TestSeekRankIterEpochBoundaries pins the seek contract across backends:
// SeekRankIter(epoch) must deliver exactly the frames a full decode yields
// past epoch flush marks, on the seekable jump path and the skip path
// alike, at serial and pooled widths.
func TestSeekRankIterEpochBoundaries(t *testing.T) {
	backends := []struct {
		name string
		mk   func(t *testing.T) store.Store
	}{
		{"mem", func(t *testing.T) store.Store { return memstore.New() }},
		{"dir", func(t *testing.T) store.Store { return dirstore.New(t.TempDir()) }},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			st := b.mk(t)
			recordEpochs(t, st, 900, 5)
			m, err := st.Manifest()
			if err != nil {
				t.Fatal(err)
			}
			idx := m.RankIndex(0)
			if len(idx) == 0 {
				t.Fatal("no committed epochs")
			}

			it, blob, err := store.OpenRankIter(st, 0, core.DecoderOptions{})
			if err != nil {
				t.Fatal(err)
			}
			all := drainKinds(t, it)
			it.Close()
			blob.Close()

			// tail returns the frames past k flush marks of the full stream.
			tail := func(k int) []string {
				seen := 0
				for i, f := range all {
					if f[0] == '3' { // frameFlush kind
						seen++
						if seen == k {
							return all[i+1:]
						}
					}
				}
				t.Fatalf("fewer than %d flush marks", k)
				return nil
			}

			for epoch := 0; epoch <= len(idx); epoch++ {
				want := all
				if epoch > 0 {
					want = tail(epoch)
				}
				for _, workers := range []int{0, 2} {
					it, blob, err := store.SeekRankIter(st, 0, epoch, core.DecoderOptions{DecodeWorkers: workers})
					if err != nil {
						t.Fatalf("epoch %d workers=%d: %v", epoch, workers, err)
					}
					got := drainKinds(t, it)
					it.Close()
					blob.Close()
					if len(got) != len(want) {
						t.Fatalf("epoch %d workers=%d: got %d frames, want %d", epoch, workers, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("epoch %d workers=%d: frame %d differs", epoch, workers, i)
						}
					}
				}
			}

			// Out-of-range epochs fail cleanly.
			if _, _, err := store.SeekRankIter(st, 0, len(idx)+1, core.DecoderOptions{}); err == nil {
				t.Fatal("seek past last committed epoch: want error")
			}
			if _, _, err := store.SeekRankIter(st, 0, -1, core.DecoderOptions{}); err == nil {
				t.Fatal("negative epoch: want error")
			}
		})
	}
}
